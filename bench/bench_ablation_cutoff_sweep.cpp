// Ablation (paper sec 8): "What appear to just be parameters of the task
// assignment policy (e.g., duration cutoffs) can have a greater effect on
// performance than anything else."
//
// Sweeps the SITA short/long cutoff across the feasible range at a fixed
// system load, reporting analytic and simulated mean slowdown as a function
// of the Host-1 load fraction it induces. The sharp minimum well below 0.5
// is the paper's case for load unbalancing in one picture.
#include <iostream>

#include "common.hpp"
#include "core/cutoffs.hpp"
#include "core/policies/sita.hpp"
#include "core/server.hpp"
#include "queueing/cutoff_search.hpp"
#include "workload/arrival.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"load"});
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double("load", 0.7);
  bench::print_header(
      "Ablation: SITA cutoff sensitivity at system load " +
          util::format_sig(rho, 2),
      "Mean slowdown vs the Host-1 load fraction induced by the cutoff; "
      "expected: sharp minimum near rho/2, divergence toward both ends.",
      opts);

  // Training-half cutoff machinery + evaluation-half trace (paper method).
  const std::vector<double> sizes = workload::make_sizes(
      workload::find_workload(opts.workload), opts.seed, opts.jobs);
  const std::size_t mid = sizes.size() / 2;
  const std::vector<double> train(sizes.begin(),
                                  sizes.begin() + static_cast<std::ptrdiff_t>(mid));
  const std::vector<double> eval(sizes.begin() + static_cast<std::ptrdiff_t>(mid),
                                 sizes.end());
  const core::CutoffDeriver deriver(train);
  const auto& model = deriver.model();
  const double lambda = deriver.lambda_for(rho, 2);

  dist::Rng rng = dist::Rng(opts.seed).split(777);
  const workload::Trace trace =
      workload::Trace::with_poisson_load(eval, rho, 2, rng);

  std::vector<double> fractions;
  bench::Series analytic{"analytic E[S]", {}}, simulated{"simulated E[S]", {}};
  for (double f = 0.10; f <= 0.66; f += 0.04) {
    const double cutoff = model.load_quantile(f);
    const auto r = queueing::evaluate_cutoff(model, lambda, cutoff);
    if (!r.feasible) continue;
    fractions.push_back(f);
    analytic.values.push_back(r.metrics.mean_slowdown);
    core::SitaPolicy policy({cutoff}, "SITA-sweep");
    const core::RunResult run = core::simulate(policy, trace, 2);
    simulated.values.push_back(core::summarize(run).mean_slowdown);
  }
  bench::print_panel(
      "Mean slowdown vs Host-1 load fraction (cutoff parameter sweep)",
      "f1", fractions, {analytic, simulated}, opts.csv);

  const auto opt = deriver.sita_u_opt(rho);
  std::cout << "\nSearched optimum: f1 = "
            << util::format_sig(opt.host1_load_fraction, 3)
            << " (rule of thumb rho/2 = " << util::format_sig(rho / 2.0, 3)
            << "), cutoff = " << util::format_sig(opt.cutoff, 4) << " s\n";
  return 0;
}
