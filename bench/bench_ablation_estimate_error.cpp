// Ablation: how much runtime-estimate quality do the policies really need?
//
// The paper (sec 1.2, sec 7) notes that in practice LWL is implemented from
// user-submitted runtime *estimates*, while SITA needs only a 1-bit
// short/long classification. This bench degrades both:
//   * LWL observes per-host work through lognormal noise of growing sigma;
//   * SITA-U-fair suffers misclassification under two error models —
//     uniform (any job can land anywhere, so even the rare huge jobs hit
//     the short host) and borderline (only jobs within 4x of the cutoff can
//     flip, the paper's "users judge short vs long" scenario).
// Findings this bench demonstrates: LWL is almost insensitive to
// observation noise (pooling absorbs it); borderline SITA errors are nearly
// free, which supports the paper's sec 7 argument; but *uniform* errors are
// deadly past a few percent — SITA's win hinges on the largest jobs being
// classified correctly, exactly why the paper emphasizes users' incentive
// to get the one bit right.
#include <iostream>

#include "common.hpp"
#include "core/cutoffs.hpp"
#include "core/metrics.hpp"
#include "core/policies/noisy_lwl.hpp"
#include "core/policies/sita.hpp"
#include "core/server.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"load"});
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double("load", 0.7);
  bench::print_header(
      "Ablation: estimate-error sensitivity at load " +
          util::format_sig(rho, 2) + ", 2 hosts",
      "Noisy-LWL vs SITA-U-fair under uniform and borderline "
      "misclassification.",
      opts);

  // Shared workload and cutoff derivation (paper method).
  const std::vector<double> sizes = workload::make_sizes(
      workload::find_workload(opts.workload), opts.seed, opts.jobs);
  const std::size_t mid = sizes.size() / 2;
  const std::vector<double> train(
      sizes.begin(), sizes.begin() + static_cast<std::ptrdiff_t>(mid));
  const std::vector<double> eval(
      sizes.begin() + static_cast<std::ptrdiff_t>(mid), sizes.end());
  const core::CutoffDeriver deriver(train);
  const double fair_cutoff = deriver.sita_u_fair(rho).cutoff;
  dist::Rng rng = dist::Rng(opts.seed).split(99);
  const workload::Trace trace =
      workload::Trace::with_poisson_load(eval, rho, 2, rng);

  const std::vector<double> sigmas = {0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0};
  const std::vector<double> error_rates = {0.0, 0.02, 0.05, 0.1,
                                           0.2, 0.35, 0.5};
  bench::Series lwl{"Noisy-LWL (vs sigma)", {}},
      uniform{"SITA-U-fair uniform err", {}},
      borderline{"SITA-U-fair borderline err", {}};
  std::vector<double> axis;
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    axis.push_back(static_cast<double>(i));
    core::NoisyLeastWorkLeftPolicy noisy(sigmas[i]);
    lwl.values.push_back(
        core::summarize(core::simulate(noisy, trace, 2, opts.seed))
            .mean_slowdown);
    core::SitaPolicy su({fair_cutoff}, "SITA-uniform", error_rates[i],
                        core::SitaPolicy::ErrorModel::kUniform);
    uniform.values.push_back(
        core::summarize(core::simulate(su, trace, 2, opts.seed))
            .mean_slowdown);
    core::SitaPolicy sb({fair_cutoff}, "SITA-borderline", error_rates[i],
                        core::SitaPolicy::ErrorModel::kBorderline);
    borderline.values.push_back(
        core::summarize(core::simulate(sb, trace, 2, opts.seed))
            .mean_slowdown);
  }
  bench::print_panel(
      "Mean slowdown vs error level i (sigma_i = {0,.25,.5,1,1.5,2,3}; "
      "eps_i = {0,.02,.05,.1,.2,.35,.5})",
      "level", axis, {lwl, uniform, borderline}, opts.csv);

  std::cout
      << "\nReading: LWL barely notices even order-of-magnitude estimate "
         "noise; borderline SITA errors cost little (the paper's sec 7 "
         "argument); uniform errors — huge jobs misrouted onto the short "
         "host — erase SITA's advantage past a few percent. Correctly "
         "classifying the heavy tail is the one bit that matters.\n";
  return 0;
}
