// Ablation (paper sec 7, limitations): user runtime estimates are imperfect.
//
// The paper argues SITA needs only a 1-bit estimate (short vs long) and
// that misclassified small jobs mostly hurt themselves. This bench injects
// classification errors at rate eps — each misclassified job is routed to a
// uniformly random wrong size interval — and tracks how SITA-E and
// SITA-U-fair degrade toward (and past) Least-Work-Left.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"load"});
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double("load", 0.7);
  bench::print_header(
      "Ablation: SITA under classification errors, 2 hosts, load " +
          util::format_sig(rho, 2),
      "Mean slowdown vs error rate; expected: graceful degradation, "
      "SITA-U-fair stays competitive at realistic error rates.",
      opts);

  const std::vector<double> error_rates = {0.0,  0.02, 0.05, 0.1,
                                           0.2,  0.3,  0.5};
  const std::vector<core::PolicyKind> policies =
      opts.policy_list("SITA-E,SITA-U-fair,Least-Work-Left");
  const std::vector<double> load{rho};

  std::vector<bench::Series> series;
  for (core::PolicyKind kind : policies) {
    series.push_back({core::to_string(kind), {}});
  }
  for (double eps : error_rates) {
    core::ExperimentConfig cfg = opts.experiment_config(2);
    cfg.sita_error_rate = eps;
    core::Workbench wb(workload::find_workload(opts.workload), cfg);
    const auto points = wb.sweep(policies, load, opts.sweep_options());
    for (std::size_t k = 0; k < policies.size(); ++k) {
      series[k].values.push_back(points[k].summary.mean_slowdown);
    }
  }
  bench::print_panel("Mean slowdown vs classification error rate",
                     "error", error_rates, series, opts.csv);
  return 0;
}
