// Ablation (paper sec 7, limitations): user runtime estimates are imperfect.
//
// The paper argues SITA needs only a 1-bit estimate (short vs long) and
// that misclassified small jobs mostly hurt themselves. This bench injects
// classification errors at rate eps — each misclassified job is routed to a
// uniformly random wrong size interval — and tracks how SITA-E and
// SITA-U-fair degrade toward (and past) Least-Work-Left.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  using core::PolicyKind;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double("load", 0.7);
  bench::print_header(
      "Ablation: SITA under classification errors, 2 hosts, load " +
          util::format_sig(rho, 2),
      "Mean slowdown vs error rate; expected: graceful degradation, "
      "SITA-U-fair stays competitive at realistic error rates.",
      opts);

  const std::vector<double> error_rates = {0.0,  0.02, 0.05, 0.1,
                                           0.2,  0.3,  0.5};
  bench::Series sita_e{"SITA-E", {}}, fair{"SITA-U-fair", {}},
      lwl{"Least-Work-Left (reference)", {}};
  for (double eps : error_rates) {
    core::ExperimentConfig cfg = opts.experiment_config(2);
    cfg.sita_error_rate = eps;
    core::Workbench wb(workload::find_workload(opts.workload), cfg);
    sita_e.values.push_back(
        wb.run_point(PolicyKind::kSitaE, rho).summary.mean_slowdown);
    fair.values.push_back(
        wb.run_point(PolicyKind::kSitaUFair, rho).summary.mean_slowdown);
    lwl.values.push_back(
        wb.run_point(PolicyKind::kLeastWorkLeft, rho).summary.mean_slowdown);
  }
  bench::print_panel("Mean slowdown vs classification error rate",
                     "error", error_rates, {sita_e, fair, lwl}, opts.csv);
  return 0;
}
