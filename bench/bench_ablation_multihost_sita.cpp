// Ablation: true multi-cutoff SITA-U versus the paper's grouped
// approximation (sec 5).
//
// The paper extends SITA-U to many hosts by reusing the 2-host cutoff with
// two LWL host groups, arguing a full (h-1)-cutoff search is too expensive.
// With analytic scoring the full search is cheap (coordinate descent /
// nested fairness construction — see queueing/cutoff_search.hpp), so this
// bench quantifies what the approximation gives away.
#include <iostream>

#include "common.hpp"
#include "queueing/cutoff_search.hpp"
#include "queueing/policy_analysis.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"load"});
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double("load", 0.7);
  bench::print_header(
      "Ablation: multi-cutoff SITA-U vs grouped SITA-U+LWL at load " +
          util::format_sig(rho, 2),
      "Analytic multi-cutoff results plus simulated grouped policies; "
      "expected: the full search wins, the grouped form tracks it.",
      opts);

  const queueing::MixtureSizeModel model(
      workload::service_distribution(workload::find_workload(opts.workload)));
  const std::vector<double> host_counts = {2, 4, 8, 16};

  // At h == 2 the multi-cutoff and grouped variants all coincide with the
  // plain 2-host SITA-U policies, so the simulated columns substitute them.
  const core::PolicyKind opt_2h = bench::policy_named("SITA-U-opt");
  const core::PolicyKind fair_2h = bench::policy_named("SITA-U-fair");
  const std::vector<core::PolicyKind> sim_multi{
      bench::policy_named("SITA-U-opt-multi"),
      bench::policy_named("SITA-U-opt+LWL"),
      bench::policy_named("SITA-U-fair+LWL")};
  const std::vector<core::PolicyKind> sim_2h{opt_2h, opt_2h, fair_2h};
  const std::vector<double> load{rho};

  bench::Series sita_e{"SITA-E (analytic)", {}},
      opt_multi{"SITA-U-opt multi (analytic)", {}},
      fair_multi{"SITA-U-fair multi (analytic)", {}},
      sim_opt_multi{"SITA-U-opt multi (simulated)", {}},
      grouped_opt{"SITA-U-opt+LWL (simulated)", {}},
      grouped_fair{"SITA-U-fair+LWL (simulated)", {}};
  for (double hd : host_counts) {
    const auto h = static_cast<std::size_t>(hd);
    const double lambda = queueing::lambda_for_load(model, rho, h);
    sita_e.values.push_back(
        queueing::analyze_sita_e(model, lambda, h).mean_slowdown);
    opt_multi.values.push_back(
        queueing::find_sita_u_opt_multi(model, lambda, h)
            .metrics.mean_slowdown);
    fair_multi.values.push_back(
        queueing::find_sita_u_fair_multi(model, lambda, h)
            .metrics.mean_slowdown);
    core::Workbench wb(workload::find_workload(opts.workload),
                       opts.experiment_config(h));
    const auto points =
        wb.sweep(h == 2 ? sim_2h : sim_multi, load, opts.sweep_options());
    sim_opt_multi.values.push_back(points[0].summary.mean_slowdown);
    grouped_opt.values.push_back(points[1].summary.mean_slowdown);
    grouped_fair.values.push_back(points[2].summary.mean_slowdown);
  }
  bench::print_panel("Mean slowdown vs host count", "hosts", host_counts,
                     {sita_e, opt_multi, fair_multi, sim_opt_multi,
                      grouped_opt, grouped_fair},
                     opts.csv);
  return 0;
}
