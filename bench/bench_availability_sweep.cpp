// Availability sweep — mean slowdown vs host availability per policy.
//
// Not a paper figure: the robustness extension. Hosts alternate between up
// and down (exponential uptime/repair, sim/faults.hpp); each grid point
// fixes the availability A = MTBF/(MTBF+MTTR) by scaling MTBF at constant
// MTTR, so lower A means both more frequent failures and the same outage
// length. Jobs caught in a failure follow --recovery (default resubmit).
// A = 1 runs with the fault model disabled, so that column reproduces the
// fault-free bench results exactly.
//
// MTTR defaults to max_eval_job_size / 4 rather than a fixed constant:
// fail-stop restarts lose all completed work, so a job only finishes once
// it draws an uptime longer than itself. With the heavy-tailed paper
// workloads (Pareto tails, sample maxima ~1000x the mean) a fixed small
// MTTR would make MTBF << the largest job at low availability and that job
// would restart essentially forever. Anchoring MTTR to the sample maximum
// keeps MTBF >= max job size across the whole grid (at A = 0.8, MTBF =
// 4 * MTTR = max size, i.e. ~e restart attempts for the worst job).
//
// The sweep runs hardened (SweepOptions::isolate_failures): a replication
// that fails — e.g. an audit violation under --audit — is reported with its
// seed and error text, and the remaining grid still completes.
//
// Expected shape: every policy degrades as A drops; SITA is hit hardest
// (losing the short host floods a neighbor with work it was never sized
// for) while Least-Work-Left degrades smoothly, since dead hosts simply
// drop out of the argmin.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "c90",
                                               {"load", "hosts"});
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double_in("load", 0.5, 0.05, 0.95);
  const auto hosts =
      static_cast<std::size_t>(cli.get_int_in("hosts", 4, 2, 1024));
  double mttr = opts.mttr;
  if (mttr <= 0.0) {
    const std::vector<double> sizes = workload::make_sizes(
        workload::find_workload(opts.workload), opts.seed, opts.jobs);
    mttr = *std::max_element(sizes.begin(), sizes.end()) / 4.0;
  }
  bench::print_header(
      "Availability sweep: mean slowdown vs host availability at load " +
          util::format_sig(rho, 2) + ", " + std::to_string(hosts) + " hosts",
      "Robustness extension (not a paper figure). MTTR fixed at " +
          util::format_sig(mttr, 3) +
          ", MTBF scaled per availability point; recovery = " +
          core::to_string(opts.recovery) + ".",
      opts);

  const std::vector<double> availabilities = {1.0,  0.999, 0.99,
                                              0.95, 0.9,   0.8};
  const std::vector<core::PolicyKind> policies = opts.policy_list(
      "Random,Shortest-Queue,Least-Work-Left,SITA-E");
  const std::vector<double> load{rho};

  core::SweepOptions sweep = opts.sweep_options();
  sweep.isolate_failures = true;
  sweep.retry_failed_once = false;

  std::vector<bench::Series> slowdown_series;
  std::vector<bench::Series> failed_series;
  for (core::PolicyKind kind : policies) {
    slowdown_series.push_back({core::to_string(kind), {}});
    failed_series.push_back({core::to_string(kind), {}});
  }
  for (double a : availabilities) {
    core::ExperimentConfig cfg = opts.experiment_config(hosts);
    if (a < 1.0) {
      cfg.faults.enabled = true;
      cfg.faults.mttr = mttr;
      cfg.faults.mtbf = a / (1.0 - a) * mttr;
      cfg.recovery = opts.recovery;
    } else {
      cfg.faults.enabled = false;
    }
    core::Workbench wb(workload::find_workload(opts.workload), cfg);
    const auto points = wb.sweep(policies, load, sweep);
    for (std::size_t k = 0; k < policies.size(); ++k) {
      slowdown_series[k].values.push_back(points[k].summary.mean_slowdown);
      failed_series[k].values.push_back(
          static_cast<double>(points[k].summary.jobs_failed));
      for (const core::ReplicationFailure& f : points[k].failures) {
        std::cerr << "[failure] policy=" << core::to_string(policies[k])
                  << " availability=" << a << " replication="
                  << (f.replication == core::ReplicationFailure::kPlanStep
                          ? std::string("plan")
                          : std::to_string(f.replication))
                  << " seed=" << f.seed << ": " << f.error << "\n";
      }
    }
  }
  bench::print_panel("Mean slowdown vs availability (completed jobs)",
                     "avail", availabilities, slowdown_series, opts.csv);
  if (opts.recovery == core::RecoveryMode::kAbandon) {
    bench::print_panel("Jobs abandoned (summed over replications)", "avail",
                       availabilities, failed_series, opts.csv, 6);
  }
  return 0;
}
