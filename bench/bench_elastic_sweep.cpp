// Elastic sweep — the cost-of-capacity vs slowdown frontier.
//
// For each MMPP2 burst factor, runs every tracked policy twice on the same
// heterogeneous fleet and trace: once with the fleet fixed (autoscaler off)
// and once elastic (hysteresis autoscaler, sim/autoscaler.hpp). Three
// panels over the burst-factor axis:
//
//   * mean slowdown, fixed fleet     — the paper's metric, baseline;
//   * mean slowdown, elastic fleet   — what hysteresis scaling costs;
//   * host-hours saved (%)           — 1 - powered/total host-time, what
//                                      scaling buys.
//
// Expected shape: savings grow with burstiness (the calm valleys between
// bursts are where capacity is released) at a bounded slowdown premium —
// the hysteresis band plus the warm-up delay keep thrash out of the burst
// onsets. The fleet defaults to two capacity classes (half 1x, half 2x
// hosts) so SITA-class has real classes to split over; --speeds overrides.
//
// Extra flags: --hosts N (fleet size, 16), --load R (system load, 0.45),
// --bursts a,b,c (MMPP2 burst ratios, 2,5,10,30) plus the common elastic
// set (--speeds, --scale-up, --scale-down, --scale-period, --warmup,
// --min-hosts). The autoscaler knobs default to the hysteresis band
// 0.75/0.35 with the sampling period and warm-up delay scaled to the
// workload's mean job size.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/math.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(
      argc, argv, "c90", {"hosts", "load", "bursts"},
      /*sweeps_probe_period=*/false, /*supports_elastic=*/true);
  const util::Cli cli(argc, argv);
  std::size_t hosts = 16;
  double rho = 0.45;
  std::vector<double> bursts;
  try {
    hosts = static_cast<std::size_t>(cli.get_int_in("hosts", 16, 2, 100000));
    rho = cli.get_double_in("load", 0.45, 0.01, 0.99);
    if (opts.min_hosts > hosts) {
      throw util::CliError("option --min-hosts: " +
                           std::to_string(opts.min_hosts) +
                           " exceeds the fleet size (--hosts " +
                           std::to_string(hosts) + ")");
    }
    for (const auto part : util::split(cli.get_string("bursts", "2,5,10,30"),
                                       ',')) {
      const std::string token{util::trim(part)};
      if (token.empty()) continue;
      double ratio = 0.0;
      std::size_t used = 0;
      try {
        ratio = std::stod(token, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != token.size() || !(ratio >= 1.0) || !(ratio <= 1e6)) {
        throw util::CliError("option --bursts: '" + token +
                             "' is not a ratio in [1, 1e6]");
      }
      bursts.push_back(ratio);
    }
    if (bursts.empty()) {
      throw util::CliError("option --bursts: names no burst ratios");
    }
  } catch (const util::CliError& e) {
    std::cerr << cli.program() << ": " << e.what() << "\n";
    return 2;
  }
  bench::print_header(
      "Elastic sweep: slowdown and host-hours saved vs burst factor, " +
          std::to_string(hosts) + " hosts at load " + util::format_sig(rho, 2),
      "Expected shape: host-hours saved grows with burstiness (calm valleys "
      "release capacity) at a bounded slowdown premium over the fixed fleet.",
      opts);

  // The autoscaler's clocks live on the service-time scale: sample about
  // once per mean job, warm up in half of one.
  const workload::WorkloadSpec& spec = workload::find_workload(opts.workload);
  const std::vector<double> sizes =
      workload::make_sizes(spec, opts.seed, opts.jobs);
  const double mean_size =
      util::compensated_sum(sizes) / static_cast<double>(sizes.size());

  core::ExperimentConfig base = opts.experiment_config(hosts);
  base.arrivals = core::ArrivalKind::kBursty;
  if (base.host_speeds.empty()) {
    // Two contiguous capacity classes: the slow half and a 2x fast half.
    base.host_speeds.assign(hosts, 1.0);
    for (std::size_t h = hosts / 2; h < hosts; ++h) base.host_speeds[h] = 2.0;
  }
  if (!base.autoscaler.enabled) {
    base.autoscaler.enabled = true;
    base.autoscaler.check_period = mean_size;
    base.autoscaler.warmup_delay = 0.5 * mean_size;
    base.autoscaler.min_hosts = std::max<std::size_t>(1, hosts / 8);
    // Burst onsets need capacity back fast: a 2-sample window halves the
    // reaction latency and a proportional step ramps the whole fleet in a
    // few decisions instead of one host per window.
    base.autoscaler.window = 2;
    base.autoscaler.scale_step = std::max<std::size_t>(1, hosts / 4);
  }

  const std::vector<core::PolicyKind> policies = opts.policy_list(
      "Shortest-Queue,Least-Work-Left,SITA-class");

  std::vector<bench::Series> fixed_slowdown(policies.size());
  std::vector<bench::Series> elastic_slowdown(policies.size());
  std::vector<bench::Series> saved_pct(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    fixed_slowdown[p].name = elastic_slowdown[p].name = saved_pct[p].name =
        core::to_string(policies[p]);
  }

  // Flag values interact in ways the parser cannot see (e.g. a --speeds
  // pattern whose capacity classes give SITA-class coincident cutoff
  // quantiles): surface those as clean config errors, not aborts.
  try {
    for (const double burst : bursts) {
      for (std::size_t p = 0; p < policies.size(); ++p) {
        core::ExperimentConfig cfg = base;
        cfg.burst_ratio = burst;
        cfg.autoscaler.enabled = false;
        const core::Workbench fixed(spec, cfg);
        const core::ExperimentPoint pf = fixed.run_point(policies[p], rho);
        fixed_slowdown[p].values.push_back(pf.summary.mean_slowdown);

        cfg.autoscaler.enabled = true;
        const core::Workbench elastic(spec, cfg);
        const core::ExperimentPoint pe = elastic.run_point(policies[p], rho);
        elastic_slowdown[p].values.push_back(pe.summary.mean_slowdown);
        const double total = pe.summary.host_hours_total;
        const double powered = pe.summary.host_hours_powered;
        saved_pct[p].values.push_back(
            total > 0.0 ? 100.0 * (1.0 - powered / total) : 0.0);
      }
    }
  } catch (const ContractViolation& e) {
    std::cerr << cli.program() << ": invalid elastic configuration: "
              << e.what() << "\n";
    return 2;
  }

  bench::print_panel("Elastic sweep: mean slowdown, fixed fleet",
                     "burst", bursts, fixed_slowdown, opts.csv);
  bench::print_panel("Elastic sweep: mean slowdown, elastic fleet",
                     "burst", bursts, elastic_slowdown, opts.csv);
  bench::print_panel("Elastic sweep: host-hours saved (%), elastic fleet",
                     "burst", bursts, saved_pct, opts.csv);
  return 0;
}
