// Fairness profile — the paper's conclusion (sec 8) in one table.
//
// "What's nice about our SITA-U-fair policy is that it both gives extra
// benefit to short jobs ... while at the same time guaranteeing that the
// expected slowdown for short and long jobs is equal." Footnote 1 adds the
// ideal reference: Processor-Sharing, where EVERY job sees the same
// expected slowdown — but which run-to-completion supercomputers cannot
// implement.
//
// This bench prints mean slowdown per job-size class (geometric buckets)
// for: LWL (the balancing incumbent), SITA-E, SITA-U-fair, and the
// preemptive PS ideal (LWL-dispatched PS hosts). Expected: LWL and SITA-E
// crush the small jobs; SITA-U-fair flattens the profile dramatically,
// approaching PS's flat line without any preemption.
#include <iostream>

#include "common.hpp"
#include "core/cutoffs.hpp"
#include "core/metrics.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/sita.hpp"
#include "core/ps_server.hpp"
#include "core/server.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"load", "classes"});
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double("load", 0.7);
  const auto classes = static_cast<std::size_t>(cli.get_int("classes", 8));
  bench::print_header(
      "Fairness profile: mean slowdown by job-size class at load " +
          util::format_sig(rho, 2) + ", 2 hosts",
      "Expected: LWL/SITA-E punish small jobs by orders of magnitude; "
      "SITA-U-fair flattens the profile toward the preemptive PS ideal.",
      opts);

  const std::vector<double> sizes = workload::make_sizes(
      workload::find_workload(opts.workload), opts.seed, opts.jobs);
  const std::size_t mid = sizes.size() / 2;
  const std::vector<double> train(
      sizes.begin(), sizes.begin() + static_cast<std::ptrdiff_t>(mid));
  const std::vector<double> eval(
      sizes.begin() + static_cast<std::ptrdiff_t>(mid), sizes.end());
  const core::CutoffDeriver deriver(train);
  dist::Rng rng = dist::Rng(opts.seed).split(4242);
  const workload::Trace trace =
      workload::Trace::with_poisson_load(eval, rho, 2, rng);

  core::LeastWorkLeftPolicy lwl;
  core::SitaPolicy sita_e(deriver.sita_e(2), "SITA-E");
  const auto fair = deriver.sita_u_fair(rho);
  core::SitaPolicy sita_fair({fair.cutoff}, "SITA-U-fair");

  const core::RunResult run_lwl = core::simulate(lwl, trace, 2);
  const core::RunResult run_e = core::simulate(sita_e, trace, 2);
  const core::RunResult run_f = core::simulate(sita_fair, trace, 2);
  core::LeastWorkLeftPolicy lwl_for_ps;
  core::PsServer ps(2, lwl_for_ps);
  const core::RunResult run_ps = ps.run(trace);

  const auto c_lwl = core::slowdown_by_size_class(run_lwl, classes);
  const auto c_e = core::slowdown_by_size_class(run_e, classes);
  const auto c_f = core::slowdown_by_size_class(run_f, classes);
  const auto c_ps = core::slowdown_by_size_class(run_ps, classes);

  util::Table table({"size class (s)", "jobs", "LWL (FCFS)", "SITA-E",
                     "SITA-U-fair", "PS ideal"});
  for (std::size_t i = 0; i < classes; ++i) {
    table.add_row({util::format_sig(c_lwl[i].size_lo, 2) + " - " +
                       util::format_sig(c_lwl[i].size_hi, 2),
                   std::to_string(c_lwl[i].jobs),
                   util::format_sig(c_lwl[i].mean_slowdown, 4),
                   util::format_sig(c_e[i].mean_slowdown, 4),
                   util::format_sig(c_f[i].mean_slowdown, 4),
                   util::format_sig(c_ps[i].mean_slowdown, 4)});
  }
  table.print(std::cout);

  auto spread = [&](const std::vector<core::SizeClassSlowdown>& cs) {
    double lo = 1e300, hi = 0.0;
    for (const auto& c : cs) {
      if (c.jobs < 50) continue;
      lo = std::min(lo, c.mean_slowdown);
      hi = std::max(hi, c.mean_slowdown);
    }
    return hi / lo;
  };
  std::cout << "\nmax/min slowdown across size classes (1 = perfectly "
               "fair):\n  LWL "
            << util::format_sig(spread(c_lwl), 3) << "   SITA-E "
            << util::format_sig(spread(c_e), 3) << "   SITA-U-fair "
            << util::format_sig(spread(c_f), 3) << "   PS "
            << util::format_sig(spread(c_ps), 3) << "\n";
  return 0;
}
