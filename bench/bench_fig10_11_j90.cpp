// Figures 10 and 11 (appendix B) — the J90 trace results.
//
// Figure 10: mean + variance of slowdown for ALL policies (balancing and
// unbalancing) on the J90 workload, 2 hosts. Figure 11: fraction of load on
// Host 1 under SITA-U-opt/fair vs the rho/2 rule of thumb, on J90.
// The paper reports these "virtually identical" to the C90 results.
#include <iostream>

#include "common.hpp"
#include "core/cutoffs.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "j90");
  bench::print_header(
      "Figures 10+11: appendix B, J90 workload, 2 hosts",
      "Expected shape: same policy ranking as C90 (Figs 2/4/5).", opts);

  const std::vector<core::PolicyKind> policies = opts.policy_list(
      "Random,Least-Work-Left,SITA-E,SITA-U-opt,SITA-U-fair");
  core::Workbench wb(workload::find_workload(opts.workload),
                     opts.experiment_config(2));
  const std::vector<double> loads = bench::paper_loads();
  const auto points = wb.sweep(policies, loads, opts.sweep_options());

  const auto mean_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.mean_slowdown; });
  const auto var_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.var_slowdown; });
  bench::print_panel("Fig 10 (top): mean slowdown vs system load", "load",
                     loads, mean_series, opts.csv);
  bench::print_panel("Fig 10 (bottom): variance in slowdown vs system load",
                     "load", loads, var_series, opts.csv);

  // Figure 11: Host 1 load fractions.
  const std::vector<double> sizes = workload::make_sizes(
      workload::find_workload(opts.workload), opts.seed, opts.jobs);
  const std::vector<double> train(
      sizes.begin(),
      sizes.begin() + static_cast<std::ptrdiff_t>(sizes.size() / 2));
  const core::CutoffDeriver deriver(train);
  bench::Series opt{"SITA-U-opt", {}}, fair{"SITA-U-fair", {}},
      thumb{"rule-of-thumb (rho/2)", {}};
  for (double rho : loads) {
    opt.values.push_back(deriver.sita_u_opt(rho).host1_load_fraction);
    fair.values.push_back(deriver.sita_u_fair(rho).host1_load_fraction);
    thumb.values.push_back(rho / 2.0);
  }
  bench::print_panel("Fig 11: Host 1 load fraction vs system load", "load",
                     loads, {opt, fair, thumb}, opts.csv);
  return 0;
}
