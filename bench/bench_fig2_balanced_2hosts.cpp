// Figure 2 — "Experimental comparison of task assignment policies which
// balance load for a system with 2 hosts in terms of (top) mean slowdown
// and (bottom) variance in slowdown."
//
// Trace-driven simulation of Random, Least-Work-Left and SITA-E on the C90
// workload over system loads 0.1..0.8 (Round-Robin and Shortest-Queue were
// evaluated by the paper too but omitted from its plot as "not notable";
// pass --all to include them here).
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"all"});
  const util::Cli cli(argc, argv);
  bench::print_header(
      "Figure 2: load-balancing policies, 2 hosts (simulation)",
      "Expected shape: Random >> LWL >> SITA-E in mean slowdown (Random ~10x "
      "SITA-E); variance gaps larger still.",
      opts);

  const std::vector<core::PolicyKind> policies = opts.policy_list(
      cli.has("all")
          ? "Random,Round-Robin,Shortest-Queue,Least-Work-Left,SITA-E"
          : "Random,Least-Work-Left,SITA-E");

  core::Workbench wb(workload::find_workload(opts.workload),
                     opts.experiment_config(2));
  const std::vector<double> loads = bench::paper_loads();
  const auto points = wb.sweep(policies, loads, opts.sweep_options());

  const auto mean_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.mean_slowdown; });
  const auto var_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.var_slowdown; });
  const auto resp_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.mean_response; });
  bench::print_panel("Fig 2 (top): mean slowdown vs system load", "load",
                     loads, mean_series, opts.csv);
  bench::print_panel("Fig 2 (bottom): variance in slowdown vs system load",
                     "load", loads, var_series, opts.csv);
  // Not plotted in the paper; reported in its sec 3.2 text ("for system
  // loads greater than 0.5, SITA-E outperforms LWL by factors of 2-3").
  bench::print_panel("Companion: mean response time (s) vs system load",
                     "load", loads, resp_series, opts.csv);
  return 0;
}
