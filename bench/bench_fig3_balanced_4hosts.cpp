// Figure 3 — "Experimental comparison of task assignment policies which
// balance load for a system with 4 hosts."
//
// Same comparison as Figure 2 but with h = 4 (SITA-E uses 3 load-
// equalizing cutoffs). Expected: LWL and SITA-E both improve markedly over
// the 2-host system; Random is unchanged; LWL wins at low load, SITA-E wins
// by 2-4x at medium/high load, and SITA-E's variance is ~25x lower.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 3: load-balancing policies, 4 hosts (simulation)",
      "Expected shape: LWL < SITA-E at low load; SITA-E wins >= 2x for "
      "load >= 0.5; Random unchanged vs 2 hosts.",
      opts);

  const std::vector<core::PolicyKind> policies =
      opts.policy_list("Random,Least-Work-Left,SITA-E");
  core::Workbench wb(workload::find_workload(opts.workload),
                     opts.experiment_config(4));
  const std::vector<double> loads = bench::paper_loads();
  const auto points = wb.sweep(policies, loads, opts.sweep_options());

  const auto mean_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.mean_slowdown; });
  const auto var_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.var_slowdown; });
  bench::print_panel("Fig 3 (top): mean slowdown vs system load", "load",
                     loads, mean_series, opts.csv);
  bench::print_panel("Fig 3 (bottom): variance in slowdown vs system load",
                     "load", loads, var_series, opts.csv);
  return 0;
}
