// Figure 4 — "Experimental comparison of mean slowdown and variance of
// slowdown on SITA-E versus SITA-U-fair and SITA-U-opt as a function of
// system load."
//
// The paper's headline result: purposely *unbalancing* load improves on the
// best load-balancing policy by 4-10x in mean slowdown and 10-100x in
// variance over loads 0.5-0.8, and the fair variant is only slightly worse
// than the optimal one. Cutoffs are derived on the training half of the
// trace via the per-host M/G/1 analysis, exactly as in the paper (sec 4.1).
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 4: SITA-E vs SITA-U-opt vs SITA-U-fair, 2 hosts (simulation)",
      "Expected shape: SITA-U-fair ~ SITA-U-opt, both 4-10x better than "
      "SITA-E in mean slowdown, 10-100x in variance (loads 0.5-0.8).",
      opts);

  const std::vector<core::PolicyKind> policies =
      opts.policy_list("SITA-E,SITA-U-opt,SITA-U-fair");
  core::Workbench wb(workload::find_workload(opts.workload),
                     opts.experiment_config(2));
  const std::vector<double> loads = bench::paper_loads();
  const auto points = wb.sweep(policies, loads, opts.sweep_options());

  const auto mean_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.mean_slowdown; });
  const auto var_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.var_slowdown; });
  bench::print_panel("Fig 4 (top): mean slowdown vs system load", "load",
                     loads, mean_series, opts.csv);
  bench::print_panel("Fig 4 (bottom): variance in slowdown vs system load",
                     "load", loads, var_series, opts.csv);

  // Improvement factors the paper quotes (first vs last series, i.e.
  // SITA-E vs SITA-U-fair under the default policy list).
  if (policies.size() >= 2) {
    const auto& base = mean_series.front();
    const auto& best = mean_series.back();
    std::cout << "\n" << base.name << " / " << best.name
              << " improvement factors:\n";
    util::Table t({"load", "mean slowdown factor", "variance factor"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
      t.add_numeric_row(
          util::format_sig(loads[i], 2),
          {base.values[i] / best.values[i],
           var_series.front().values[i] / var_series.back().values[i]},
          3);
    }
    t.print(std::cout);
  }
  return 0;
}
