// Figure 5 — "Fraction of the total load which goes to Host 1 under
// SITA-U-opt and SITA-U-fair and our rule of thumb."
//
// For each system load rho, the searched cutoffs put roughly load fraction
// rho/2 on the short-jobs host (vs 0.5 always for SITA-E) — the paper's
// rule of thumb (sec 4.4). Fractions are computed from the training-half
// cutoff derivation, as in the paper.
#include <iostream>

#include "common.hpp"
#include "core/cutoffs.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 5: fraction of total load on Host 1 vs system load",
      "Expected shape: SITA-U-opt ~ SITA-U-fair ~ rho/2 (rule of thumb); "
      "SITA-E would be a flat 0.5.",
      opts);

  const std::vector<double> sizes = workload::make_sizes(
      workload::find_workload(opts.workload), opts.seed, opts.jobs);
  const std::vector<double> train(
      sizes.begin(), sizes.begin() + static_cast<std::ptrdiff_t>(sizes.size() / 2));
  const core::CutoffDeriver deriver(train);

  const std::vector<double> loads = bench::paper_loads();
  bench::Series opt{"SITA-U-opt", {}}, fair{"SITA-U-fair", {}},
      thumb{"rule-of-thumb (rho/2)", {}}, sita_e{"SITA-E", {}};
  for (double rho : loads) {
    opt.values.push_back(deriver.sita_u_opt(rho).host1_load_fraction);
    fair.values.push_back(deriver.sita_u_fair(rho).host1_load_fraction);
    thumb.values.push_back(rho / 2.0);
    sita_e.values.push_back(0.5);
  }
  bench::print_panel("Fig 5: Host 1 load fraction vs system load", "load",
                     loads, {opt, fair, thumb, sita_e}, opts.csv);

  // Companion detail: the cutoffs themselves (seconds).
  bench::Series opt_c{"opt cutoff (s)", {}}, fair_c{"fair cutoff (s)", {}},
      thumb_c{"thumb cutoff (s)", {}};
  for (double rho : loads) {
    opt_c.values.push_back(deriver.sita_u_opt(rho).cutoff);
    fair_c.values.push_back(deriver.sita_u_fair(rho).cutoff);
    thumb_c.values.push_back(deriver.rule_of_thumb(rho));
  }
  bench::print_panel("Derived short/long cutoffs (not in paper figure)",
                     "load", loads, {opt_c, fair_c, thumb_c}, opts.csv);
  return 0;
}
