// Figure 6 — "Results for systems with more than 4 machines and a system
// load of 0.7."
//
// Mean slowdown as a function of the number of hosts at fixed system load
// 0.7, for Least-Work-Left and the grouped (sec 5) variants of SITA-E,
// SITA-U-opt and SITA-U-fair: hosts are split into a short group and a long
// group by the previously derived 2-host cutoff, LWL within each group.
// Expected: modified SITA-E beats LWL for small host counts, LWL overtakes
// it for large ones; the SITA-U variants dominate until every policy
// converges (h >~ 70).
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"load"});
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double("load", 0.7);
  bench::print_header(
      "Figure 6: mean slowdown vs number of hosts at system load " +
          util::format_sig(rho, 2),
      "Expected shape: SITA-E+LWL beats LWL at small h; LWL overtakes at "
      "large h; SITA-U variants best until all converge (h >~ 70).",
      opts);

  const std::vector<double> host_counts = {2, 4, 8, 12, 16, 24, 32,
                                           48, 64, 80};
  const std::vector<core::PolicyKind> grouped = opts.policy_list(
      "Least-Work-Left,SITA-E+LWL,SITA-U-opt+LWL,SITA-U-fair+LWL");
  const std::vector<double> load{rho};

  std::vector<bench::Series> mean_series;
  for (core::PolicyKind kind : grouped) {
    mean_series.push_back({core::to_string(kind), {}});
  }
  for (double h : host_counts) {
    core::Workbench wb(workload::find_workload(opts.workload),
                       opts.experiment_config(static_cast<std::size_t>(h)));
    const auto points = wb.sweep(grouped, load, opts.sweep_options());
    for (std::size_t k = 0; k < grouped.size(); ++k) {
      mean_series[k].values.push_back(points[k].summary.mean_slowdown);
    }
  }
  bench::print_panel("Fig 6: mean slowdown vs number of hosts", "hosts",
                     host_counts, mean_series, opts.csv);
  return 0;
}
