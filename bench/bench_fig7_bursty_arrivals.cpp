// Figure 7 — "Results for scaled arrival times" (sec 6, non-Poisson
// arrivals).
//
// The paper replaces Poisson arrivals with the traces' own interarrival
// times scaled to each load, which are much burstier. We substitute a
// 2-state MMPP (burst/calm phases) scaled the same way — see DESIGN.md.
// Expected: SITA-U-opt/fair still beat LWL over the practically interesting
// loads (0.6-0.9), but LWL wins at very high load (> ~0.95) because it is
// the only policy that absorbs arrival burstiness.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 7: bursty (scaled-trace) arrivals, 2 hosts (simulation)",
      "Expected shape: SITA-U wins for loads 0.6-0.9; LWL wins above ~0.95 "
      "where arrival burstiness dominates.",
      opts);

  core::ExperimentConfig cfg = opts.experiment_config(2);
  cfg.arrivals = core::ArrivalKind::kBursty;
  core::Workbench wb(workload::find_workload(opts.workload), cfg);

  std::vector<double> loads = bench::paper_loads();
  loads.push_back(0.9);
  loads.push_back(0.95);
  loads.push_back(0.98);

  const std::vector<core::PolicyKind> policies =
      opts.policy_list("Least-Work-Left,SITA-U-opt,SITA-U-fair");
  const auto points = wb.sweep(policies, loads, opts.sweep_options());
  const auto mean_series = bench::series_by_policy(
      points, policies, loads.size(),
      [](const core::ExperimentPoint& p) { return p.summary.mean_slowdown; });
  bench::print_panel("Fig 7: mean slowdown vs system load (bursty arrivals)",
                     "load", loads, mean_series, opts.csv);
  return 0;
}
