// Figure 8 (appendix A) — "Analytical comparison of mean slowdown on task
// assignment policies which balance load, as a function of system load."
//
// Pure closed-form/approximate analysis, no simulation: Random = M/G/1 via
// Bernoulli splitting, Round-Robin = Kingman bound with Erlang-h arrivals,
// LWL = M/G/h approximation, SITA-E = per-host M/G/1 at load-equalizing
// cutoffs; all over the calibrated analytic workload model. The paper finds
// these "in very close agreement with the simulation results" (Fig 2).
#include <iostream>

#include "common.hpp"
#include "queueing/policy_analysis.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"hosts"});
  const util::Cli cli(argc, argv);
  const auto hosts = static_cast<std::size_t>(cli.get_int("hosts", 2));
  bench::print_header(
      "Figure 8: ANALYTIC mean slowdown, load-balancing policies, " +
          std::to_string(hosts) + " hosts",
      "Expected shape: matches Figure 2's simulation ordering "
      "(Random >> Round-Robin > LWL >> SITA-E).",
      opts);

  const queueing::MixtureSizeModel model(
      workload::service_distribution(workload::find_workload(opts.workload)));
  const std::vector<double> loads = bench::paper_loads();

  bench::Series random{"Random", {}}, rr{"Round-Robin", {}},
      lwl{"Least-Work-Left", {}}, sita{"SITA-E", {}};
  for (double rho : loads) {
    const double lambda = queueing::lambda_for_load(model, rho, hosts);
    random.values.push_back(
        queueing::analyze_random(model, lambda, hosts).mean_slowdown);
    rr.values.push_back(
        queueing::analyze_round_robin(model, lambda, hosts).mean_slowdown);
    lwl.values.push_back(
        queueing::analyze_lwl(model, lambda, hosts).mean_slowdown);
    sita.values.push_back(
        queueing::analyze_sita_e(model, lambda, hosts).mean_slowdown);
  }
  bench::print_panel("Fig 8: analytic mean slowdown vs system load", "load",
                     loads, {random, rr, lwl, sita}, opts.csv);
  return 0;
}
