// Figure 9 (appendix A) — "Analytical comparison of mean slowdown for
// SITA-E and SITA-U-opt and SITA-U-fair, as a function of system load."
//
// Closed-form per-host M/G/1 analysis on the calibrated analytic workload
// model, with the SITA-U cutoffs found by the same analytic searches the
// experiments use. Also reports the per-host slowdowns under SITA-U-fair to
// show the fairness root (equal short/long expected slowdown).
#include <iostream>

#include "common.hpp"
#include "queueing/cutoff_search.hpp"
#include "queueing/policy_analysis.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Figure 9: ANALYTIC mean slowdown, SITA-E vs SITA-U-opt/fair, 2 hosts",
      "Expected shape: matches Figure 4's simulation ordering; SITA-U-fair "
      "within a small factor of SITA-U-opt.",
      opts);

  const queueing::MixtureSizeModel model(
      workload::service_distribution(workload::find_workload(opts.workload)));
  const std::vector<double> loads = bench::paper_loads();

  bench::Series sita_e{"SITA-E", {}}, opt{"SITA-U-opt", {}},
      fair{"SITA-U-fair", {}};
  bench::Series fair_s1{"fair: E[S] short host", {}},
      fair_s2{"fair: E[S] long host", {}};
  for (double rho : loads) {
    const double lambda = queueing::lambda_for_load(model, rho, 2);
    sita_e.values.push_back(
        queueing::analyze_sita_e(model, lambda, 2).mean_slowdown);
    const auto o = queueing::find_sita_u_opt(model, lambda);
    const auto f = queueing::find_sita_u_fair(model, lambda);
    opt.values.push_back(o.metrics.mean_slowdown);
    fair.values.push_back(f.metrics.mean_slowdown);
    fair_s1.values.push_back(f.metrics.hosts[0].mg1.mean_slowdown);
    fair_s2.values.push_back(f.metrics.hosts[1].mg1.mean_slowdown);
  }
  bench::print_panel("Fig 9: analytic mean slowdown vs system load", "load",
                     loads, {sita_e, opt, fair}, opts.csv);
  bench::print_panel(
      "Fairness check: per-host expected slowdown under SITA-U-fair "
      "(equal by construction)",
      "load", loads, {fair_s1, fair_s2}, opts.csv);
  return 0;
}
