// Microbenchmarks (google-benchmark): raw performance of the simulation
// substrate. Not a paper artifact — these quantify that the event engine
// and policies are fast enough that every figure regenerates in seconds.
#include <benchmark/benchmark.h>

#include "core/metrics.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/random.hpp"
#include "core/policies/sita.hpp"
#include "core/server.hpp"
#include "dist/rng.hpp"
#include "sim/event_queue.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace distserv;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dist::Rng rng(1);
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) times.push_back(rng.uniform01() * 1e6);
  for (auto _ : state) {
    sim::EventQueue q;
    for (double t : times) q.schedule(t, [] {});
    double last = 0.0;
    while (!q.empty()) last = q.pop().time;
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(65536);

void BM_RngUniform(benchmark::State& state) {
  dist::Rng rng(7);
  double acc = 0.0;
  for (auto _ : state) acc += rng.uniform01();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngUniform);

void BM_BoundedParetoSample(benchmark::State& state) {
  const auto& d =
      workload::service_distribution(workload::find_workload("c90"));
  dist::Rng rng(7);
  double acc = 0.0;
  for (auto _ : state) acc += d.sample(rng);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BoundedParetoSample);

template <typename PolicyT>
void run_server_bench(benchmark::State& state, PolicyT& policy,
                      std::size_t hosts) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const workload::Trace trace = workload::make_trace(
      workload::find_workload("c90"), 0.7, hosts, /*seed=*/3, n);
  for (auto _ : state) {
    const core::RunResult r = core::simulate(policy, trace, hosts);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ServerLwl2Hosts(benchmark::State& state) {
  core::LeastWorkLeftPolicy policy;
  run_server_bench(state, policy, 2);
}
BENCHMARK(BM_ServerLwl2Hosts)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_ServerRandom16Hosts(benchmark::State& state) {
  core::RandomPolicy policy;
  run_server_bench(state, policy, 16);
}
BENCHMARK(BM_ServerRandom16Hosts)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_ServerSita2Hosts(benchmark::State& state) {
  core::SitaPolicy policy({10000.0}, "SITA-bench");
  run_server_bench(state, policy, 2);
}
BENCHMARK(BM_ServerSita2Hosts)->Arg(10000)->Unit(benchmark::kMillisecond);

// Same run as BM_ServerLwl2Hosts but with the audit layer verifying every
// queueing invariant online — the measured gap is the cost of --audit.
void BM_ServerLwl2HostsAudited(benchmark::State& state) {
  core::LeastWorkLeftPolicy policy;
  const auto n = static_cast<std::size_t>(state.range(0));
  const workload::Trace trace = workload::make_trace(
      workload::find_workload("c90"), 0.7, 2, /*seed=*/3, n);
  sim::AuditConfig audit;
  audit.enabled = true;
  for (auto _ : state) {
    const core::RunResult r = core::simulate_audited(policy, trace, 2, audit);
    if (!r.audit->ok()) state.SkipWithError("audit violation");
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ServerLwl2HostsAudited)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
