// Microbenchmarks + the tracked end-to-end throughput suite.
//
// Two modes:
//
//   (default)        google-benchmark microbenchmarks: raw performance of
//                    the typed event queue, the RNG, the service-time
//                    sampler, and representative server runs.
//
//   --json <path>    the perf-regression harness: times end-to-end
//                    simulation throughput (jobs/sec) for each policy at
//                    h ∈ {2, 8, 32, 1024} with the fault model and the control
//                    plane off/on, plus the event-queue schedule+pop rate,
//                    and writes one flat JSON report. scripts/perf_check.sh
//                    compares such a report against the committed baseline
//                    BENCH_simulator.json with a tolerance band.
//                    Extra flags: --jobs N (default 20000 per run),
//                    --reps N (default 3, median-of — the median, not the
//                    best, so one lucky rep cannot mask a regression and
//                    one noisy neighbor cannot fail the gate).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/random.hpp"
#include "core/policies/round_robin.hpp"
#include "core/policies/shortest_queue.hpp"
#include "core/policies/sita.hpp"
#include "core/server.hpp"
#include "dist/rng.hpp"
#include "sim/event_queue.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace distserv;

// ---------------------------------------------------------------------------
// google-benchmark microbenchmarks
// ---------------------------------------------------------------------------

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dist::Rng rng(1);
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) times.push_back(rng.uniform01() * 1e6);
  for (auto _ : state) {
    sim::EventQueue q;
    q.reserve(n);
    for (double t : times) q.schedule(t, sim::Event::timer());
    double last = 0.0;
    while (!q.empty()) last = q.pop().time;
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(65536);

// The simulation's actual queue shape: a near-constant pending set with
// schedule-one/pop-one churn (lazy arrivals keep the event list O(hosts)).
void BM_EventQueueSteadyStateChurn(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  sim::EventQueue q;
  q.reserve(pending);
  dist::Rng rng(2);
  double t = 0.0;
  for (std::size_t i = 0; i < pending; ++i) {
    q.schedule(t += rng.uniform01(), sim::Event::timer());
  }
  for (auto _ : state) {
    const sim::Event e = q.pop();
    q.schedule(e.time + rng.uniform01() * static_cast<double>(pending),
               sim::Event::timer());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueSteadyStateChurn)->Arg(16)->Arg(256);

void BM_RngUniform(benchmark::State& state) {
  dist::Rng rng(7);
  double acc = 0.0;
  for (auto _ : state) acc += rng.uniform01();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngUniform);

void BM_BoundedParetoSample(benchmark::State& state) {
  const auto& d =
      workload::service_distribution(workload::find_workload("c90"));
  dist::Rng rng(7);
  double acc = 0.0;
  for (auto _ : state) acc += d.sample(rng);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BoundedParetoSample);

template <typename PolicyT>
void run_server_bench(benchmark::State& state, PolicyT& policy,
                      std::size_t hosts) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const workload::Trace trace = workload::make_trace(
      workload::find_workload("c90"), 0.7, hosts, /*seed=*/3, n);
  for (auto _ : state) {
    const core::RunResult r = core::simulate(policy, trace, hosts);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ServerLwl2Hosts(benchmark::State& state) {
  core::LeastWorkLeftPolicy policy;
  run_server_bench(state, policy, 2);
}
BENCHMARK(BM_ServerLwl2Hosts)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_ServerRandom16Hosts(benchmark::State& state) {
  core::RandomPolicy policy;
  run_server_bench(state, policy, 16);
}
BENCHMARK(BM_ServerRandom16Hosts)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_ServerSita2Hosts(benchmark::State& state) {
  core::SitaPolicy policy({10000.0}, "SITA-bench");
  run_server_bench(state, policy, 2);
}
BENCHMARK(BM_ServerSita2Hosts)->Arg(10000)->Unit(benchmark::kMillisecond);

// Same run as BM_ServerLwl2Hosts but with the audit layer verifying every
// queueing invariant online — the measured gap is the cost of --audit.
void BM_ServerLwl2HostsAudited(benchmark::State& state) {
  core::LeastWorkLeftPolicy policy;
  const auto n = static_cast<std::size_t>(state.range(0));
  const workload::Trace trace = workload::make_trace(
      workload::find_workload("c90"), 0.7, 2, /*seed=*/3, n);
  sim::AuditConfig audit;
  audit.enabled = true;
  for (auto _ : state) {
    const core::RunResult r = core::simulate_audited(policy, trace, 2, audit);
    if (!r.audit->ok()) state.SkipWithError("audit violation");
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ServerLwl2HostsAudited)->Arg(10000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: the tracked end-to-end throughput suite
// ---------------------------------------------------------------------------

struct ThroughputResult {
  std::string name;
  double throughput = 0.0;  ///< jobs/sec (e2e) or events/sec (micro)
};

enum class Mode { kPlain, kFaults, kControl };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kPlain: return "plain";
    case Mode::kFaults: return "faults";
    case Mode::kControl: return "control";
  }
  return "?";
}

/// Median of the per-rep throughputs. The suite used to keep the best rep,
/// which let one lucky scheduling window mask a real regression; the median
/// is robust in both directions (one noisy-neighbor rep cannot fail the
/// gate either).
double median_of(std::vector<double> reps) {
  std::sort(reps.begin(), reps.end());
  const std::size_t n = reps.size();
  if (n % 2 == 1) return reps[n / 2];
  return 0.5 * (reps[n / 2 - 1] + reps[n / 2]);
}

/// Policies the suite tracks. SITA-E cutoffs are per-trace size quantiles
/// (equal-count splits) — representative routing work, derived
/// deterministically from the trace itself.
core::PolicyPtr make_tracked_policy(const std::string& name,
                                    const workload::Trace& trace,
                                    std::size_t hosts) {
  if (name == "Random") return std::make_unique<core::RandomPolicy>();
  if (name == "Round-Robin") return std::make_unique<core::RoundRobinPolicy>();
  if (name == "Shortest-Queue") {
    return std::make_unique<core::ShortestQueuePolicy>();
  }
  if (name == "Least-Work-Left") {
    return std::make_unique<core::LeastWorkLeftPolicy>();
  }
  if (name == "SITA-E") {
    std::vector<double> sizes;
    sizes.reserve(trace.size());
    for (const workload::Job& j : trace.jobs()) sizes.push_back(j.size);
    std::sort(sizes.begin(), sizes.end());
    std::vector<double> cutoffs;
    cutoffs.reserve(hosts - 1);
    for (std::size_t i = 1; i < hosts; ++i) {
      cutoffs.push_back(sizes[i * sizes.size() / hosts]);
    }
    // Quantile ties would violate the strictly-increasing contract; nudge.
    for (std::size_t i = 1; i < cutoffs.size(); ++i) {
      if (cutoffs[i] <= cutoffs[i - 1]) cutoffs[i] = cutoffs[i - 1] * 1.0001;
    }
    return std::make_unique<core::SitaPolicy>(cutoffs, "SITA-E");
  }
  std::fprintf(stderr, "unknown tracked policy %s\n", name.c_str());
  std::exit(2);
}

/// The control-plane configuration every tracked control row runs under.
/// The misroute oracle (re-running the policy on live state per dispatch to
/// count staleness-changed decisions) is a diagnostic, not part of the
/// dispatch path, and its cost scales with the policy rather than the
/// control plane — the suite turns it off so the tracked number measures
/// the probe/snapshot/RPC fast path the perf wall is meant to guard.
sim::ControlPlaneConfig tracked_control_config(double gap, std::size_t hosts) {
  sim::ControlPlaneConfig control;
  control.enabled = true;
  control.probe_period = 5.0 * gap * static_cast<double>(hosts);
  control.probe_loss = 0.1;
  control.rpc_timeout = 1.0 * gap;
  control.rpc_loss = 0.05;
  control.ack_loss = 0.05;
  control.max_retries = 2;
  control.backoff_base = 0.5 * gap;
  control.backoff_cap = 4.0 * gap;
  control.misroute_oracle = false;
  return control;
}

double time_one_run(core::Policy& policy, const workload::Trace& trace,
                    std::size_t hosts, Mode mode) {
  // Fault and control time constants scale with the trace's mean
  // interarrival gap, so the event volume they add is proportional to the
  // job count — not to the workload's (arbitrary) time unit. With the c90
  // trace's multi-thousand-second mean size, absolute constants like
  // "probe every 20s" would drown the run in probe events.
  const double duration =
      trace.jobs().back().arrival - trace.jobs().front().arrival;
  const double gap = duration / static_cast<double>(trace.size() - 1);
  core::DistributedServer server(hosts, policy);
  if (mode == Mode::kFaults) {
    // Fault constants scale with the PER-HOST service scale (the fleet gap
    // times h), not the fleet-wide arrival gap. The fleet gap shrinks as
    // 1/h while the job-size tail does not, so mtbf = 1000 * gap at h = 32
    // put the largest c90 jobs beyond a host's MTBF: under kResubmit they
    // restarted from scratch on every failure (thousands of interruptions),
    // stretching the simulated makespan ~170x and with it the renewal
    // fail/repair event volume — the Random/h32/faults "throughput cliff"
    // in earlier baselines was this event churn, not dispatch cost.
    const double host_gap = gap * static_cast<double>(hosts);
    sim::FaultConfig faults;
    faults.enabled = true;
    faults.mtbf = 1000.0 * host_gap;
    faults.mttr = 20.0 * host_gap;
    server.enable_faults(faults, core::RecoveryMode::kResubmit);
  }
  if (mode == Mode::kControl) {
    // Probes are per-host, so their cadence scales with the per-host gap
    // (gap * h): one fleet-wide probe per 5 arrivals at every h. A period
    // of 5 * gap would mean h/5 probe events per job — linear in h, which
    // is what sank the h = 32 control numbers in earlier baselines. RPC
    // constants are per-dispatch (already proportional to jobs) and stay
    // on the fleet gap.
    server.enable_control(tracked_control_config(gap, hosts));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const core::RunResult r = server.run(trace, /*seed=*/1);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(r.makespan);
  return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<ThroughputResult> run_throughput_suite(std::size_t jobs,
                                                   std::size_t reps) {
  const std::vector<std::string> policies = {
      "Random", "Round-Robin", "Shortest-Queue", "Least-Work-Left", "SITA-E"};
  const std::vector<std::size_t> host_counts = {2, 8, 32, 1024};
  const std::vector<Mode> modes = {Mode::kPlain, Mode::kFaults,
                                   Mode::kControl};
  std::vector<ThroughputResult> results;

  // The event-queue micro number first: the 2x-over-std::function gate.
  {
    constexpr std::size_t kN = 65536;
    dist::Rng rng(1);
    std::vector<double> times;
    times.reserve(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      times.push_back(rng.uniform01() * 1e6);
    }
    std::vector<double> samples;
    samples.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      sim::EventQueue q;
      q.reserve(kN);
      for (double t : times) q.schedule(t, sim::Event::timer());
      double last = 0.0;
      while (!q.empty()) last = q.pop().time;
      benchmark::DoNotOptimize(last);
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      samples.push_back(static_cast<double>(kN) / secs);
    }
    results.push_back(
        {"micro/event_queue_schedule_pop/65536", median_of(samples)});
  }

  for (std::size_t hosts : host_counts) {
    const workload::Trace trace = workload::make_trace(
        workload::find_workload("c90"), 0.7, hosts, /*seed=*/3, jobs);
    for (const std::string& name : policies) {
      const core::PolicyPtr policy = make_tracked_policy(name, trace, hosts);
      for (Mode mode : modes) {
        std::vector<double> samples;
        samples.reserve(reps);
        for (std::size_t rep = 0; rep < reps; ++rep) {
          const double secs = time_one_run(*policy, trace, hosts, mode);
          samples.push_back(static_cast<double>(jobs) / secs);
        }
        results.push_back({"e2e/" + name + "/h" + std::to_string(hosts) +
                               "/" + mode_name(mode),
                           median_of(samples)});
      }
    }
  }

  // The heterogeneous-elastic row: a 32-host fleet of 1x/2x/4x speed
  // classes under the hysteresis autoscaler — tracks the combined cost of
  // speed-scaled service times, power-state bookkeeping, and the
  // utilization sampling the elastic sweep leans on.
  {
    constexpr std::size_t kHosts = 32;
    const workload::Trace trace = workload::make_trace(
        workload::find_workload("c90"), 0.7, kHosts, /*seed=*/3, jobs);
    const double duration =
        trace.jobs().back().arrival - trace.jobs().front().arrival;
    const double gap = duration / static_cast<double>(trace.size() - 1);
    std::vector<double> speeds(kHosts);
    for (std::size_t h = 0; h < kHosts; ++h) {
      speeds[h] = static_cast<double>(1u << (h % 3));  // 1, 2, 4, 1, ...
    }
    sim::AutoscalerConfig scaler;
    scaler.enabled = true;
    scaler.check_period = 20.0 * gap * static_cast<double>(kHosts);
    scaler.warmup_delay = 5.0 * gap * static_cast<double>(kHosts);
    scaler.min_hosts = kHosts / 4;
    core::LeastWorkLeftPolicy policy;
    std::vector<double> samples;
    samples.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      core::DistributedServer server(kHosts, policy);
      server.set_host_speeds(speeds);
      server.enable_autoscaler(scaler);
      const auto t0 = std::chrono::steady_clock::now();
      const core::RunResult r = server.run(trace, /*seed=*/1);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(r.makespan);
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      samples.push_back(static_cast<double>(jobs) / secs);
    }
    results.push_back(
        {"e2e/Least-Work-Left/h32/hetero-elastic", median_of(samples)});
  }

  // The multi-dispatcher row: the tracked control config sharded across
  // four independently stale front-ends (hash sharding, so the RPC and
  // snapshot state spreads across four planes). Tracks the cost of the
  // per-dispatcher wheel/snapshot/slot-pool machinery beyond d = 1.
  {
    constexpr std::size_t kHosts = 8;
    const workload::Trace trace = workload::make_trace(
        workload::find_workload("c90"), 0.7, kHosts, /*seed=*/3, jobs);
    const double duration =
        trace.jobs().back().arrival - trace.jobs().front().arrival;
    const double gap = duration / static_cast<double>(trace.size() - 1);
    sim::ControlPlaneConfig control = tracked_control_config(gap, kHosts);
    control.dispatchers = 4;
    control.shard = sim::ShardMode::kHash;
    core::LeastWorkLeftPolicy policy;
    std::vector<double> samples;
    samples.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      core::DistributedServer server(kHosts, policy);
      server.enable_control(control);
      const auto t0 = std::chrono::steady_clock::now();
      const core::RunResult r = server.run(trace, /*seed=*/1);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(r.makespan);
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      samples.push_back(static_cast<double>(jobs) / secs);
    }
    results.push_back(
        {"e2e/Least-Work-Left/h8/multi-dispatcher", median_of(samples)});
  }
  return results;
}

void write_json(const std::string& path,
                const std::vector<ThroughputResult>& results,
                std::size_t jobs, std::size_t reps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"jobs\": %zu,\n  \"reps\": %zu,\n",
               jobs, reps);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"throughput\": %.1f}%s\n",
                 results[i].name.c_str(), results[i].throughput,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t jobs = 20000;
  std::size_t reps = 3;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = need_value("--json");
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::strtoull(
          need_value("--jobs"), nullptr, 10));
    } else if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::strtoull(
          need_value("--reps"), nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (jobs < 100 || reps < 1) {
    std::fprintf(stderr, "--jobs must be >= 100 and --reps >= 1\n");
    return 2;
  }
  if (!json_path.empty()) {
    const std::vector<ThroughputResult> results =
        run_throughput_suite(jobs, reps);
    write_json(json_path, results, jobs, reps);
    std::printf("wrote %zu benchmark results to %s\n", results.size(),
                json_path.c_str());
    return 0;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
