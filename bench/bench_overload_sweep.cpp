// Overload sweep — what protection buys past saturation.
//
// The paper analyses its policies at rho < 1; this sweep drives one policy
// through saturation (rho 0.9, 1.0, 1.2, 1.5 by default) under four
// protection configurations on the same fleet and trace:
//
//   * none          — overload protection installed but featureless
//                     (bit-identical to an unprotected run);
//   * shed          — bounded per-host queues, arrivals rejected at a full
//                     host;
//   * renege        — unbounded queues, queued jobs abandon once their
//                     patience expires;
//   * shed+migrate  — bounded queues plus queue evacuation off failed
//                     hosts.
//
// Every configuration shares a mild fail-stop process (so the migrate
// column has queues to evacuate; --mtbf overrides). Three panels over the
// load axis: goodput (completed jobs per unit time), p99 slowdown of the
// completed jobs, and the loss rate (shed + reneged, % of arrivals).
//
// Expected shape: on a finite trace every unprotected job does eventually
// complete, so the cost of no protection shows up as p99 slowdown growing
// without bound past rho = 1 (the backlog, and with it every waiting time,
// scales with the horizon), while shedding and reneging cap the tail at a
// visible, *measured* loss rate — the case for admission control over
// unbounded queueing.
//
// Extra flags: --hosts N (fleet size, 8), --loads a,b,c (system loads,
// 0.9,1,1.2,1.5) plus the common overload set (--queue-cap, --patience,
// ... ) which overrides the per-configuration defaults.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/math.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(
      argc, argv, "c90", {"hosts", "loads"},
      /*sweeps_probe_period=*/false, /*supports_elastic=*/false,
      /*supports_overload=*/true);
  const util::Cli cli(argc, argv);
  std::size_t hosts = 8;
  std::vector<double> loads;
  try {
    hosts = static_cast<std::size_t>(cli.get_int_in("hosts", 8, 2, 100000));
    for (const auto part :
         util::split(cli.get_string("loads", "0.9,1,1.2,1.5"), ',')) {
      const std::string token{util::trim(part)};
      if (token.empty()) continue;
      double rho = 0.0;
      std::size_t used = 0;
      try {
        rho = std::stod(token, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != token.size() || !(rho > 0.0) || !(rho <= 8.0)) {
        throw util::CliError("option --loads: '" + token +
                             "' is not a load in (0, 8]");
      }
      loads.push_back(rho);
    }
    if (loads.empty()) {
      throw util::CliError("option --loads: names no loads");
    }
  } catch (const util::CliError& e) {
    std::cerr << cli.program() << ": " << e.what() << "\n";
    return 2;
  }
  bench::print_header(
      "Overload sweep: goodput, p99 slowdown, and loss rate vs load, " +
          std::to_string(hosts) + " hosts through saturation",
      "Expected shape: unprotected p99 slowdown grows without bound past "
      "rho = 1; shedding and reneging cap it at a measured loss rate.",
      opts);

  // Caps and patience live on the service-time scale: default to a queue
  // of 8 jobs per host and patience of five mean jobs unless overridden.
  const workload::WorkloadSpec& spec = workload::find_workload(opts.workload);
  const std::vector<double> sizes =
      workload::make_sizes(spec, opts.seed, opts.jobs);
  const double mean_size =
      util::compensated_sum(sizes) / static_cast<double>(sizes.size());
  const std::uint32_t cap =
      opts.overload.queue_cap > 0 ? opts.overload.queue_cap : 8u;
  const double patience = opts.overload.patience_mean > 0.0
                              ? opts.overload.patience_mean
                              : 5.0 * mean_size;

  core::ExperimentConfig base = opts.experiment_config(hosts);
  if (!base.faults.enabled) {
    // A mild fail-stop process on every configuration: frequent enough
    // that the migrate column has queues to evacuate, rare enough that
    // availability stays high. --mtbf/--mttr override.
    base.faults.enabled = true;
    base.faults.mtbf = 500.0 * mean_size;
    base.faults.mttr = 10.0 * mean_size;
  }

  struct Protection {
    std::string name;
    sim::OverloadConfig overload;
  };
  std::vector<Protection> protections;
  {
    sim::OverloadConfig none = opts.overload;
    none.enabled = true;  // featureless: bit-identical to unprotected
    none.queue_cap = 0;
    none.backlog_cap = 0.0;
    none.admission = sim::AdmissionMode::kNone;
    none.patience_mean = 0.0;
    none.migrate_on_drain = none.migrate_on_fail = false;
    sim::OverloadConfig shed = none;
    shed.queue_cap = cap;
    shed.overflow = sim::OverflowAction::kReject;
    sim::OverloadConfig renege = none;
    renege.patience_mean = patience;
    sim::OverloadConfig shed_migrate = shed;
    shed_migrate.migrate_on_fail = true;
    protections = {{"none", none},
                   {"shed", shed},
                   {"renege", renege},
                   {"shed+migrate", shed_migrate}};
  }

  const core::PolicyKind policy =
      opts.policy_list("Least-Work-Left").front();
  std::cout << "policy: " << core::to_string(policy) << "\n";

  std::vector<bench::Series> goodput(protections.size());
  std::vector<bench::Series> p99(protections.size());
  std::vector<bench::Series> loss_pct(protections.size());
  for (std::size_t c = 0; c < protections.size(); ++c) {
    goodput[c].name = p99[c].name = loss_pct[c].name = protections[c].name;
  }

  try {
    for (const double rho : loads) {
      for (std::size_t c = 0; c < protections.size(); ++c) {
        core::ExperimentConfig cfg = base;
        cfg.overload = protections[c].overload;
        const core::Workbench bench_point(spec, cfg);
        const core::ExperimentPoint pt = bench_point.run_point(policy, rho);
        goodput[c].values.push_back(pt.summary.goodput);
        p99[c].values.push_back(pt.summary.p99_slowdown);
        loss_pct[c].values.push_back(
            100.0 * (pt.summary.shed_rate + pt.summary.renege_rate));
      }
    }
  } catch (const ContractViolation& e) {
    std::cerr << cli.program() << ": invalid overload configuration: "
              << e.what() << "\n";
    return 2;
  }

  bench::print_panel("Overload sweep: goodput (completed jobs / time)",
                     "rho", loads, goodput, opts.csv);
  bench::print_panel("Overload sweep: p99 slowdown, completed jobs",
                     "rho", loads, p99, opts.csv);
  bench::print_panel("Overload sweep: loss rate (shed + reneged, %)",
                     "rho", loads, loss_pct, opts.csv);
  return 0;
}
