// Scaling sweep — the h = 1k-10k regime the HostStateTable redesign makes
// first-class.
//
// For each host count h (default 32, 128, 1024, 4096) and each tracked
// policy, runs one trace at fixed system load and reports three panels:
//
//   * mean slowdown          — the paper's metric, sanity that large-h runs
//                              stay in the regime the policy analysis expects;
//   * run wall ns/job        — end-to-end simulation cost per job;
//   * dispatch ns/job        — time inside Policy::assign alone, measured by
//                              a timing shim around the policy. This is the
//                              number the O(log h) argmin indices bound: it
//                              should stay near-flat as h grows, where the
//                              old per-host virtual getter scans grew
//                              linearly. The shim's clock reads add a few
//                              tens of ns per job — constant across h, so
//                              the scaling shape is unaffected.
//
// Extra flags: --hosts a,b,c (host counts), --load R (system load, 0.7).
// SITA-E cutoffs are per-trace size quantiles (equal-count splits), as in
// the tracked throughput suite (bench_micro_simulator --json).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/random.hpp"
#include "core/policies/round_robin.hpp"
#include "core/policies/shortest_queue.hpp"
#include "core/policies/sita.hpp"
#include "core/server.hpp"
#include "workload/catalog.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace distserv;

/// Forwards to an inner policy, accumulating wall time spent in assign().
class TimedPolicy final : public core::Policy {
 public:
  explicit TimedPolicy(core::Policy& inner) : inner_(inner) {}

  void reset(std::size_t hosts, std::uint64_t seed) override {
    inner_.reset(hosts, seed);
  }
  std::optional<core::HostId> assign(const workload::Job& job,
                                     const core::ServerView& view) override {
    const auto t0 = std::chrono::steady_clock::now();
    const std::optional<core::HostId> r = inner_.assign(job, view);
    assign_ns_ += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return r;
  }
  std::size_t select_next(const std::deque<workload::Job>& held,
                          core::HostId host,
                          const core::ServerView& view) override {
    return inner_.select_next(held, host, view);
  }
  std::string name() const override { return inner_.name(); }
  core::DegradedInfo degraded_info() const override {
    return inner_.degraded_info();
  }

  [[nodiscard]] double assign_ns() const noexcept { return assign_ns_; }
  void clear() noexcept { assign_ns_ = 0.0; }

 private:
  core::Policy& inner_;
  double assign_ns_ = 0.0;
};

core::PolicyPtr make_policy(const std::string& name,
                            const workload::Trace& trace, std::size_t hosts) {
  if (name == "Random") return std::make_unique<core::RandomPolicy>();
  if (name == "Round-Robin") return std::make_unique<core::RoundRobinPolicy>();
  if (name == "Shortest-Queue") {
    return std::make_unique<core::ShortestQueuePolicy>();
  }
  if (name == "Least-Work-Left") {
    return std::make_unique<core::LeastWorkLeftPolicy>();
  }
  if (name == "SITA-E") {
    std::vector<double> sizes;
    sizes.reserve(trace.size());
    for (const workload::Job& j : trace.jobs()) sizes.push_back(j.size);
    std::sort(sizes.begin(), sizes.end());
    std::vector<double> cutoffs;
    cutoffs.reserve(hosts - 1);
    for (std::size_t i = 1; i < hosts; ++i) {
      cutoffs.push_back(sizes[i * sizes.size() / hosts]);
    }
    for (std::size_t i = 1; i < cutoffs.size(); ++i) {
      if (cutoffs[i] <= cutoffs[i - 1]) cutoffs[i] = cutoffs[i - 1] * 1.0001;
    }
    return std::make_unique<core::SitaPolicy>(cutoffs, "SITA-E");
  }
  std::cerr << "bench_scale_sweep: unknown policy '" << name
            << "' (Random | Round-Robin | Shortest-Queue | Least-Work-Left"
               " | SITA-E)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::BenchOptions::parse(argc, argv, "c90", {"hosts", "load"});
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double_in("load", 0.7, 0.01, 0.99);
  std::vector<double> host_counts;
  const std::string hosts_csv = cli.get_string("hosts", "32,128,1024,4096");
  for (const auto part : util::split(hosts_csv, ',')) {
    const std::string token{util::trim(part)};
    if (token.empty()) continue;
    char* end = nullptr;
    const unsigned long h = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || h < 2) {
      std::cerr << "bench_scale_sweep: --hosts entry '" << token
                << "' is not an integer >= 2\n";
      return 2;
    }
    host_counts.push_back(static_cast<double>(h));
  }
  std::vector<std::string> policies = {"Random", "Round-Robin",
                                       "Shortest-Queue", "Least-Work-Left",
                                       "SITA-E"};
  if (!opts.policies.empty()) {
    policies.clear();
    for (const auto part : util::split(opts.policies, ',')) {
      if (!util::trim(part).empty()) {
        policies.emplace_back(util::trim(part));
      }
    }
  }
  bench::print_header(
      "Scaling sweep: slowdown and dispatch cost vs host count at load " +
          util::format_sig(rho, 2),
      "Expected shape: dispatch ns/job near-flat in h for every policy "
      "(O(log h) argmin indices / O(1) bit tests), run ns/job dominated by "
      "event handling, slowdown per the policy analysis.",
      opts);

  std::vector<bench::Series> slowdown(policies.size());
  std::vector<bench::Series> run_ns(policies.size());
  std::vector<bench::Series> assign_ns(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    slowdown[p].name = run_ns[p].name = assign_ns[p].name = policies[p];
  }

  for (const double h_d : host_counts) {
    const auto hosts = static_cast<std::size_t>(h_d);
    const workload::Trace trace =
        workload::make_trace(workload::find_workload(opts.workload), rho,
                             hosts, opts.seed, opts.jobs);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const core::PolicyPtr policy = make_policy(policies[p], trace, hosts);
      double best_run_ns = 0.0, best_assign_ns = 0.0, mean_slowdown = 0.0;
      for (std::size_t rep = 0; rep < opts.reps; ++rep) {
        TimedPolicy timed(*policy);
        core::DistributedServer server(hosts, timed);
        const auto t0 = std::chrono::steady_clock::now();
        const core::RunResult r = server.run(trace, opts.seed);
        const double wall_ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        mean_slowdown = core::summarize(r).mean_slowdown;
        const double per_job = wall_ns / static_cast<double>(opts.jobs);
        if (rep == 0 || per_job < best_run_ns) best_run_ns = per_job;
        const double apj = timed.assign_ns() / static_cast<double>(opts.jobs);
        if (rep == 0 || apj < best_assign_ns) best_assign_ns = apj;
      }
      slowdown[p].values.push_back(mean_slowdown);
      run_ns[p].values.push_back(best_run_ns);
      assign_ns[p].values.push_back(best_assign_ns);
    }
  }

  bench::print_panel("Scale sweep: mean slowdown vs hosts", "hosts",
                     host_counts, slowdown, opts.csv);
  bench::print_panel("Scale sweep: run wall ns/job vs hosts", "hosts",
                     host_counts, run_ns, opts.csv);
  bench::print_panel("Scale sweep: dispatch (assign) ns/job vs hosts",
                     "hosts", host_counts, assign_ns, opts.csv);
  return 0;
}
