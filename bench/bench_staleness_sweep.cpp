// Staleness sweep — mean slowdown vs probe period per policy.
//
// Not a paper figure, but the paper's Fig. 6 argument restaged under
// degraded information: §4.3 shows the queue-length/work-left signal is
// what separates the dynamic policies from Random, so making that signal
// stale should collapse the separation. Each grid point runs the control
// plane (sim/control_plane.hpp) with a probe period T: policies read a
// snapshot refreshed per host every T time units instead of live state.
// T = 0 disables snapshots, so that column reproduces the
// perfect-information bench results exactly.
//
// The probe-period grid is expressed in multiples of the mean job size so
// one table reads across workloads: at T = 0.1x the snapshot is nearly
// live, while at T = 100x each host's entry is stale for ~dozens of
// arrivals between refreshes.
//
// Expected shape: Shortest-Queue and Least-Work-Left degrade toward (and
// past) Random as T grows — acting confidently on stale state is worse
// than ignoring state — while SITA-E is flat: its routing depends only on
// the job size and the static cutoffs, so probes change nothing. The
// misroute column reports how often a snapshot-driven choice disagrees
// with the live-state oracle for the same arrival, and the modal-share
// column how concentrated completions are on the single busiest host
// (1/hosts = balanced; rising toward 1 = herding).
//
// --dispatchers D (> 1) adds a second sweep: dispatcher counts 1,2,4,..,D
// at a fixed mid-grid probe period (10x mean size), each front-end holding
// its own independently stale snapshot. Independent snapshots agree on the
// same apparently-least-loaded victim until their probe phases diverge, so
// the modal-share panel against d is the herding plot EXPERIMENTS.md
// discusses.
//
// The sweep runs hardened (SweepOptions::isolate_failures), so a failed
// replication is reported and the remaining grid still completes.
#include <iostream>

#include "common.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(
      argc, argv, "c90", {"load", "hosts", "dispatchers"},
      /*sweeps_probe_period=*/true);
  const util::Cli cli(argc, argv);
  const double rho = cli.get_double_in("load", 0.7, 0.05, 0.95);
  const auto hosts =
      static_cast<std::size_t>(cli.get_int_in("hosts", 8, 2, 1024));
  const auto max_dispatchers =
      static_cast<std::size_t>(cli.get_int_in("dispatchers", 1, 1, 64));

  const workload::WorkloadSpec& spec =
      workload::find_workload(opts.workload);
  const double mean_size = spec.mean_size;

  bench::print_header(
      "Staleness sweep: mean slowdown vs probe period at load " +
          util::format_sig(rho, 2) + ", " + std::to_string(hosts) + " hosts",
      "Degraded-information extension (not a paper figure). Probe period "
      "in multiples of the mean job size (" +
          util::format_sig(mean_size, 3) +
          "); 0 = live state. State-blind policies should be flat.",
      opts);

  // Probe periods as multiples of the mean job size; 0 is the
  // perfect-information reference column.
  const std::vector<double> period_multiples = {0.0, 0.1, 1.0, 10.0,
                                                30.0, 100.0};
  const std::vector<core::PolicyKind> policies = opts.policy_list(
      "Random,Shortest-Queue,Least-Work-Left,SITA-E");
  const std::vector<double> load{rho};

  core::SweepOptions sweep = opts.sweep_options();
  sweep.isolate_failures = true;
  sweep.retry_failed_once = false;

  std::vector<bench::Series> slowdown_series;
  std::vector<bench::Series> misroute_series;
  std::vector<bench::Series> age_series;
  std::vector<bench::Series> modal_series;
  for (core::PolicyKind kind : policies) {
    slowdown_series.push_back({core::to_string(kind), {}});
    misroute_series.push_back({core::to_string(kind), {}});
    age_series.push_back({core::to_string(kind), {}});
    modal_series.push_back({core::to_string(kind), {}});
  }
  for (double mult : period_multiples) {
    core::ExperimentConfig cfg = opts.experiment_config(hosts);
    if (mult > 0.0) {
      cfg.control.enabled = true;
      cfg.control.probe_period = mult * mean_size;
      cfg.control.probe_loss = opts.probe_loss;
    } else {
      // Perfect information: control plane fully off so this column is
      // bit-identical to the plain bench results.
      cfg.control = sim::ControlPlaneConfig{};
    }
    core::Workbench wb(spec, cfg);
    const auto points = wb.sweep(policies, load, sweep);
    for (std::size_t k = 0; k < policies.size(); ++k) {
      slowdown_series[k].values.push_back(points[k].summary.mean_slowdown);
      misroute_series[k].values.push_back(points[k].summary.misroute_rate);
      age_series[k].values.push_back(points[k].summary.mean_snapshot_age);
      modal_series[k].values.push_back(points[k].summary.modal_host_share);
      for (const core::ReplicationFailure& f : points[k].failures) {
        std::cerr << "[failure] policy=" << core::to_string(policies[k])
                  << " period=" << mult << "x replication="
                  << (f.replication == core::ReplicationFailure::kPlanStep
                          ? std::string("plan")
                          : std::to_string(f.replication))
                  << " seed=" << f.seed << ": " << f.error << "\n";
      }
    }
  }
  bench::print_panel("Mean slowdown vs probe period (x mean job size)",
                     "period", period_multiples, slowdown_series, opts.csv);
  bench::print_panel(
      "Misroute rate vs live-state oracle (pure-assignment policies)",
      "period", period_multiples, misroute_series, opts.csv);
  bench::print_panel("Mean snapshot age at dispatch", "period",
                     period_multiples, age_series, opts.csv);
  bench::print_panel(
      "Modal-host completion share (1/hosts = balanced, 1 = herded)",
      "period", period_multiples, modal_series, opts.csv);

  if (max_dispatchers > 1) {
    // The herding axis: dispatcher counts 1,2,4,..,D at a fixed mid-grid
    // staleness (10x mean size). Each front-end probes on its own phase,
    // so its snapshot is stale independently of the others'.
    std::vector<double> dispatcher_counts;
    for (std::size_t d = 1; d <= max_dispatchers; d *= 2) {
      dispatcher_counts.push_back(static_cast<double>(d));
    }
    std::vector<bench::Series> d_slowdown;
    std::vector<bench::Series> d_modal;
    for (core::PolicyKind kind : policies) {
      d_slowdown.push_back({core::to_string(kind), {}});
      d_modal.push_back({core::to_string(kind), {}});
    }
    for (double d : dispatcher_counts) {
      core::ExperimentConfig cfg = opts.experiment_config(hosts);
      cfg.control.enabled = true;
      cfg.control.probe_period = 10.0 * mean_size;
      cfg.control.probe_loss = opts.probe_loss;
      cfg.control.dispatchers = static_cast<std::uint32_t>(d);
      cfg.control.shard = sim::ShardMode::kHash;
      core::Workbench wb(spec, cfg);
      const auto points = wb.sweep(policies, load, sweep);
      for (std::size_t k = 0; k < policies.size(); ++k) {
        d_slowdown[k].values.push_back(points[k].summary.mean_slowdown);
        d_modal[k].values.push_back(points[k].summary.modal_host_share);
        for (const core::ReplicationFailure& f : points[k].failures) {
          std::cerr << "[failure] policy=" << core::to_string(policies[k])
                    << " dispatchers=" << d << " seed=" << f.seed << ": "
                    << f.error << "\n";
        }
      }
    }
    bench::print_panel(
        "Mean slowdown vs dispatcher count (probe period 10x mean size)",
        "dispatchers", dispatcher_counts, d_slowdown, opts.csv);
    bench::print_panel(
        "Modal-host completion share vs dispatcher count (herding)",
        "dispatchers", dispatcher_counts, d_modal, opts.csv);
  }
  return 0;
}
