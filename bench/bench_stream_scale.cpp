// Streaming-scale demonstrator: bounded-memory runs of 10^7..10^9 jobs.
//
// Jobs are drawn on the fly (workload::SyntheticSource — one interarrival
// gap and one size per pull, no materialised trace) and folded into the
// streaming summary (core/stream_metrics.hpp) as they complete, so RSS is
// O(hosts + sketch) no matter how long the run is. With --swf PATH the jobs
// come from a chunked archive-log reader (workload::SwfStreamSource)
// instead. CI runs this with --rss-limit-mb as the memory-plateau gate.
//
// Flags:
//   --jobs N          synthetic jobs to stream (default 10000000)
//   --hosts H         host count (default 4)
//   --rho R           system load (default 0.7)
//   --policy NAME     Random | Round-Robin | Shortest-Queue |
//                     Least-Work-Left | Central-Queue (default LWL)
//   --workload W      c90 | j90 | ctc service distribution (default c90)
//   --seed S          master seed (default 1)
//   --eps E           quantile-sketch rank-error bound (default 1e-3)
//   --rss-limit-mb M  exit 1 if peak RSS exceeds M MB (0 = no check)
//   --swf PATH        replay an SWF archive log instead of synthesising

#include <sys/resource.h>

#include <chrono>
#include <iostream>
#include <memory>
#include <string>

#include "core/experiment.hpp"
#include "core/policies/central_queue.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/random.hpp"
#include "core/policies/round_robin.hpp"
#include "core/policies/shortest_queue.hpp"
#include "core/server.hpp"
#include "dist/rng.hpp"
#include "util/cli.hpp"
#include "workload/arrival.hpp"
#include "workload/catalog.hpp"
#include "workload/job_source.hpp"
#include "workload/swf_stream.hpp"

namespace {

using namespace distserv;

std::unique_ptr<core::Policy> make_policy(const std::string& name) {
  const auto kind = core::policy_from_string(name);
  if (kind) {
    switch (*kind) {
      case core::PolicyKind::kRandom:
        return std::make_unique<core::RandomPolicy>();
      case core::PolicyKind::kRoundRobin:
        return std::make_unique<core::RoundRobinPolicy>();
      case core::PolicyKind::kShortestQueue:
        return std::make_unique<core::ShortestQueuePolicy>();
      case core::PolicyKind::kLeastWorkLeft:
        return std::make_unique<core::LeastWorkLeftPolicy>();
      case core::PolicyKind::kCentralQueue:
        return std::make_unique<core::CentralQueuePolicy>();
      default:
        break;  // SITA flavors need cutoff derivation; not streamable here
    }
  }
  std::cerr << "--policy '" << name
            << "': expected Random | Round-Robin | Shortest-Queue | "
               "Least-Work-Left | Central-Queue\n";
  std::exit(2);
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB on Linux
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  std::uint64_t jobs = 0;
  std::size_t hosts = 0;
  double rho = 0.0, eps = 0.0, rss_limit = 0.0;
  std::uint64_t seed = 1;
  std::string policy_name, workload_name, swf_path;
  try {
    const std::string_view known[] = {"jobs", "hosts", "rho",  "policy",
                                      "workload", "seed", "eps",
                                      "rss-limit-mb", "swf"};
    cli.require_known(known);
    jobs = static_cast<std::uint64_t>(
        cli.get_int_in("jobs", 10000000, 1, 2000000000));
    hosts = static_cast<std::size_t>(cli.get_int_in("hosts", 4, 1, 4096));
    rho = cli.get_double_in("rho", 0.7, 0.01, 0.99);
    policy_name = cli.get_string("policy", "Least-Work-Left");
    workload_name = cli.get_string("workload", "c90");
    seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    eps = cli.get_double_in("eps", 1e-3, 1e-6, 0.4);
    rss_limit = cli.get_double_in("rss-limit-mb", 0.0, 0.0, 1e9);
    swf_path = cli.get_string("swf", "");
  } catch (const util::CliError& e) {
    std::cerr << cli.program() << ": " << e.what() << "\n";
    return 2;
  }

  const std::unique_ptr<core::Policy> policy = make_policy(policy_name);
  core::DistributedServer server(hosts, *policy);
  core::StreamOptions options;
  options.sketch_eps = eps;

  const workload::WorkloadSpec& spec = workload::find_workload(workload_name);
  const dist::BoundedParetoMixture& sizes = workload::service_distribution(spec);
  const double lambda = rho * static_cast<double>(hosts) / sizes.mean();
  workload::PoissonArrivals arrivals(lambda);
  dist::Rng rng = dist::Rng(seed).split(1);

  std::cout << "stream-scale: policy=" << policy_name << " hosts=" << hosts
            << " rho=" << rho << " eps=" << eps << " seed=" << seed;
  if (swf_path.empty()) {
    std::cout << " workload=" << spec.name << " jobs=" << jobs << "\n";
  } else {
    std::cout << " swf=" << swf_path << "\n";
  }

  const auto t0 = std::chrono::steady_clock::now();
  core::RunResult result;
  if (swf_path.empty()) {
    workload::SyntheticSource source(jobs, sizes, arrivals, rng);
    result = server.run_stream(source, seed, std::move(options));
  } else {
    workload::SwfStreamSource source(swf_path);
    result = server.run_stream(source, seed, std::move(options));
    std::cout << source.summary() << "\n";
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  const core::StreamSummary& s = *result.stream;
  const double rss = peak_rss_mb();
  std::cout.precision(6);
  std::cout << "jobs          " << s.jobs() << "\n"
            << "wall_s        " << wall << "\n"
            << "jobs_per_s    " << static_cast<double>(s.jobs()) / wall << "\n"
            << "makespan      " << result.makespan << "\n"
            << "mean_slowdown " << s.slowdown().mean() << "\n"
            << "p50_slowdown  " << s.slowdown_quantile(0.5) << "\n"
            << "p95_slowdown  " << s.slowdown_quantile(0.95) << "\n"
            << "p99_slowdown  " << s.slowdown_quantile(0.99) << "\n"
            << "peak_rss_mb   " << rss << "\n";
  if (rss_limit > 0.0 && rss > rss_limit) {
    std::cerr << "FAIL: peak RSS " << rss << " MB exceeds limit " << rss_limit
              << " MB\n";
    return 1;
  }
  return 0;
}
