// Table 1 — "Characteristics of the trace data."
//
// Prints, for each calibrated synthetic workload, the columns of the
// paper's Table 1 (duration, number of jobs, mean/min/max service
// requirement, squared coefficient of variation) measured on a generated
// trace, next to the calibration targets from the paper's prose. Also
// reports the heavy-tail load-concentration statistic the paper highlights
// (the fraction of largest jobs carrying half the load; 1.3% for the C90).
#include <iostream>

#include "common.hpp"
#include "stats/histogram.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Table 1: Characteristics of the trace data",
      "Synthetic traces calibrated to the paper's documented statistics; "
      "generated with Poisson arrivals at load 0.5 on 2 hosts.",
      opts);

  util::Table table({"trace", "period", "jobs", "mean(s)", "min(s)",
                     "max(s)", "C^2", "C^2 target", "top-jobs for 1/2 load"});
  for (const auto& spec : workload::workload_catalog()) {
    const workload::Trace trace =
        workload::make_trace(spec, 0.5, 2, opts.seed, opts.jobs);
    const workload::TraceStats s = trace.stats();
    table.add_row({spec.name, spec.period, std::to_string(s.job_count),
                   util::format_fixed(s.mean_size, 1),
                   util::format_fixed(s.min_size, 2),
                   util::format_fixed(s.max_size, 0),
                   util::format_fixed(s.scv_size, 1),
                   util::format_fixed(spec.scv_size, 1),
                   util::format_fixed(100.0 * s.half_load_tail_fraction, 2) +
                       "%"});
  }
  table.print(std::cout);

  std::cout << "\nPaper reference points: C90 C^2 = 43 (sec 3.3); biggest "
               "1.3% of jobs carry half the C90 load (sec 4.3);\n"
               "CTC capped at 12h = 43200s with considerably lower "
               "variance (sec 2.1).\n";

  std::cout << "\nC90 job-size histogram (log buckets):\n";
  const auto& spec = workload::find_workload(opts.workload);
  const workload::Trace trace =
      workload::make_trace(spec, 0.5, 2, opts.seed, opts.jobs);
  stats::LogHistogram hist(1.0, trace.stats().max_size * 1.01, 12);
  for (double x : trace.sizes()) hist.add(x);
  std::cout << hist.render(48);
  return 0;
}
