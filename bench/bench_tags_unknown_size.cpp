// Related-work baseline: TAGS (Harchol-Balter, ICDCS 2000 — the paper's
// reference [10]) against the SITA family and Least-Work-Left.
//
// TAGS needs *no* runtime information: every job starts on Host 1 and is
// killed-and-restarted upward when it exceeds the host's cutoff. The cost
// is wasted restart work. Expected shape (per [10] and this paper's sec 7
// discussion): TAGS lands between LWL and the size-aware SITA-U policies at
// low/moderate load, and degrades toward (and past) LWL as load grows and
// the restart waste stops fitting in the spare capacity.
#include <iostream>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/tags.hpp"
#include "queueing/cutoff_search.hpp"
#include "queueing/policy_analysis.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "TAGS vs SITA vs LWL, 2 hosts (simulation + analysis)",
      "TAGS assigns with UNKNOWN job sizes via kill-and-restart; expected: "
      "between LWL and SITA-U at moderate load, degrading at high load.",
      opts);

  const auto& d = workload::service_distribution(
      workload::find_workload(opts.workload));
  const queueing::MixtureSizeModel model(d);

  std::vector<double> loads;
  for (double rho : bench::paper_loads()) loads.push_back(rho);

  bench::Series lwl{"LWL (analytic)", {}}, sita{"SITA-U-opt (analytic)", {}},
      tags_a{"TAGS-opt (analytic)", {}}, tags_s{"TAGS-opt (simulated)", {}},
      waste{"TAGS wasted-work frac", {}};
  for (double rho : loads) {
    const double lambda = queueing::lambda_for_load(model, rho, 2);
    lwl.values.push_back(
        queueing::analyze_lwl(model, lambda, 2).mean_slowdown);
    sita.values.push_back(
        queueing::find_sita_u_opt(model, lambda).metrics.mean_slowdown);
    const core::TagsCutoffResult t = core::find_tags_opt(model, lambda);
    tags_a.values.push_back(t.feasible ? t.metrics.mean_slowdown : -1.0);
    waste.values.push_back(t.feasible ? t.metrics.wasted_work_fraction
                                      : -1.0);
    if (t.feasible) {
      dist::Rng rng = dist::Rng(opts.seed).split(
          static_cast<std::uint64_t>(rho * 1e6));
      const workload::Trace trace = workload::generate_trace_poisson(
          d, opts.jobs, rho, 2, rng);
      core::TagsServer server({t.cutoff});
      tags_s.values.push_back(
          core::summarize(server.run(trace)).mean_slowdown);
    } else {
      tags_s.values.push_back(-1.0);
    }
  }
  bench::print_panel(
      "Mean slowdown vs system load (-1 marks infeasible TAGS points)",
      "load", loads, {lwl, tags_a, tags_s, sita}, opts.csv);
  bench::print_panel("TAGS restart overhead", "load", loads, {waste},
                     opts.csv);
  return 0;
}
