// Shared plumbing for the figure-reproduction binaries.
//
// Every bench prints (a) a provenance header describing the paper artifact
// it regenerates, (b) aligned tables with one row per x-value (load, host
// count, ...) and one column per policy/series — the same series the paper
// plots — and (c) optionally machine-readable CSV via --csv.
//
// Common flags (all optional):
//   --workload c90|j90|ctc   workload (default per bench)
//   --jobs N                 total synthetic jobs (train+eval)
//   --reps N                 replications per point
//   --seed S                 master seed
//   --threads N              sweep worker threads (0 = all hardware threads)
//   --policies a,b,c         override the bench's policy list by display
//                            name (see core::registered_policies())
//   --csv                    also emit CSV to stdout
//   --audit                  run every replication under the audit layer
//                            (sim/audit.hpp); any violated queueing
//                            invariant aborts the bench with a report
//   --mtbf T                 mean time between host failures (0 = faults
//                            off, the default); enables the fail-stop model
//   --mttr T                 mean time to repair (required with --mtbf)
//   --recovery MODE          resubmit | requeue-front | abandon
//   --probe-period T         control-plane probe period (0 = policies read
//                            live state, the default); enables snapshots
//   --probe-loss P           probability a probe is lost (requires
//                            --probe-period > 0)
//   --rpc-timeout T          dispatch RPC timeout (0 = dispatch is a direct
//                            call, the default); enables the RPC model
//   --rpc-loss P             probability a dispatch request is lost
//                            (requires --rpc-timeout > 0)
//   --ack-loss P             probability a dispatch ack is lost (requires
//                            --rpc-timeout > 0)
//   --retries N              RPC retry budget before fallback escalation
//   --fallback MODE          chain | terminal | none
//   --stream                 bounded-memory replications: jobs pulled from
//                            a streaming source, metrics folded into a
//                            quantile sketch (no per-job records)
//
// Elastic-fleet flags (only benches that opt in via `supports_elastic`
// accept them; everywhere else they are rejected like any unknown flag):
//   --speeds a,b,c           per-host speed factors; the list is tiled
//                            cyclically across the fleet (--speeds 1,2,4 on
//                            h=6 gives 1,2,4,1,2,4); empty = homogeneous
//   --scale-up U             window-mean utilization above U powers hosts
//                            on; (0, 1]; enables the autoscaler
//   --scale-down D           utilization below D drains hosts; [0, U)
//                            (requires --scale-up)
//   --scale-period T         autoscaler sampling period (requires
//                            --scale-up; default 50)
//   --warmup T               power-on warm-up delay (requires --scale-up)
//   --min-hosts N            powered-fleet floor, >= 1 (requires
//                            --scale-up)
//
// Overload-protection flags (only benches that opt in via
// `supports_overload` accept them; everywhere else they are rejected like
// any unknown flag):
//   --queue-cap N            max jobs per host (queued + in service);
//                            0 = unbounded, the default
//   --backlog-cap T          max backlog-seconds per host; 0 = unbounded
//   --overflow MODE          reject | shed-smallest | shed-largest | bounce
//                            (requires a cap; default bounce)
//   --admission SPEC         none | token:<rate>[:<burst>] |
//                            util:<threshold>[:<shed-prob>]
//   --patience T             mean patience of queued jobs (exponential);
//                            0 = reneging off, the default
//   --migrate-on-drain       evacuate queued jobs off draining hosts
//   --migrate-on-fail        evacuate queued jobs off failed hosts
//
// Flags are validated strictly: an unknown flag, a malformed number, or an
// out-of-range value prints an error naming the flag and exits with status
// 2 — a typo never silently falls back to a default. Benches with extra
// flags list them via the `extra_known` argument of BenchOptions::parse.
//
// Policy lists are never built from enum literals here: benches state their
// defaults as display-name strings and resolve them through the registry
// (core::policy_from_string), the same path the --policies flag uses.
#pragma once

#include <initializer_list>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"
#include "util/cli.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"

namespace distserv::bench {

/// Resolves one display name via the registry; exits with the list of
/// known names on a typo so --policies failures are self-explanatory.
inline core::PolicyKind policy_named(const std::string& name) {
  const auto kind = core::policy_from_string(util::trim(name));
  if (!kind) {
    std::cerr << "unknown policy '" << name << "'; registered policies:\n";
    for (const std::string& p : core::registered_policies()) {
      std::cerr << "  " << p << "\n";
    }
    std::exit(2);
  }
  return *kind;
}

/// Parses a comma-separated list of policy display names.
inline std::vector<core::PolicyKind> parse_policies(const std::string& csv) {
  std::vector<core::PolicyKind> out;
  for (const auto part : util::split(csv, ',')) {
    if (util::trim(part).empty()) continue;
    out.push_back(policy_named(std::string(part)));
  }
  if (out.empty()) {
    std::cerr << "--policies '" << csv
              << "' names no policies; registered policies:\n";
    for (const std::string& p : core::registered_policies()) {
      std::cerr << "  " << p << "\n";
    }
    std::exit(2);
  }
  return out;
}

/// Parses a comma-separated list of per-host speed factors; every entry
/// must be a positive finite number. Exits with status 2 on a bad entry.
inline std::vector<double> parse_speeds(const std::string& csv) {
  std::vector<double> out;
  for (const auto part : util::split(csv, ',')) {
    const std::string token(util::trim(part));
    if (token.empty()) continue;
    double v = 0.0;
    std::size_t used = 0;
    try {
      v = std::stod(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != token.size() || !(v > 0.0) || !(v <= 1e6)) {
      std::cerr << "option --speeds: '" << token
                << "' is not a speed in (0, 1e6]\n";
      std::exit(2);
    }
    out.push_back(v);
  }
  if (out.empty()) {
    std::cerr << "option --speeds: '" << csv << "' names no speeds\n";
    std::exit(2);
  }
  return out;
}

/// Parses an --admission spec ("none", "token:<rate>[:<burst>]",
/// "util:<threshold>[:<shed-prob>]") into the admission fields of `cfg`.
/// Throws util::CliError naming the flag on any malformed or out-of-range
/// piece, matching the strict-CLI contract.
inline void parse_admission_spec(const std::string& spec,
                                 sim::OverloadConfig& cfg) {
  const auto bad = [&spec](const std::string& why) -> util::CliError {
    return util::CliError("option --admission: '" + spec + "': " + why);
  };
  const auto number_in = [&bad](std::string_view token, double lo, double hi,
                                const std::string& what) {
    const std::string text{util::trim(token)};
    double v = 0.0;
    std::size_t used = 0;
    try {
      v = std::stod(text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (text.empty() || used != text.size() || !(v >= lo) || !(v <= hi)) {
      throw bad(what + " '" + text + "' is not a number in [" +
                util::format_sig(lo, 3) + ", " + util::format_sig(hi, 3) +
                "]");
    }
    return v;
  };
  const std::vector<std::string_view> parts = util::split(spec, ':');
  const std::string mode{util::trim(parts.empty() ? "" : parts[0])};
  if (mode == "none") {
    if (parts.size() > 1) throw bad("'none' takes no parameters");
    cfg.admission = sim::AdmissionMode::kNone;
  } else if (mode == "token") {
    if (parts.size() < 2 || parts.size() > 3) {
      throw bad("expected token:<rate>[:<burst>]");
    }
    cfg.admission = sim::AdmissionMode::kTokenBucket;
    cfg.admission_rate = number_in(parts[1], 1e-12, 1e18, "rate");
    if (parts.size() == 3) {
      cfg.admission_burst = number_in(parts[2], 1.0, 1e9, "burst");
    }
  } else if (mode == "util") {
    if (parts.size() < 2 || parts.size() > 3) {
      throw bad("expected util:<threshold>[:<shed-prob>]");
    }
    cfg.admission = sim::AdmissionMode::kUtilizationGate;
    cfg.admission_threshold = number_in(parts[1], 0.0, 1.0, "threshold");
    if (parts.size() == 3) {
      cfg.admission_shed_prob =
          number_in(parts[2], 1e-12, 1.0, "shed probability");
    }
  } else {
    throw bad("unknown mode '" + mode +
              "' (none | token:<rate>[:<burst>] | "
              "util:<threshold>[:<shed-prob>])");
  }
}

/// Bench-wide configuration parsed from argv.
struct BenchOptions {
  std::string workload = "c90";
  std::size_t jobs = 40000;
  std::size_t reps = 3;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< 0 = one worker per hardware thread
  std::string policies;     ///< --policies override; empty = bench default
  bool csv = false;
  bool audit = false;       ///< --audit: full invariant checking per run
  double mtbf = 0.0;        ///< --mtbf: mean uptime; 0 = faults disabled
  double mttr = 0.0;        ///< --mttr: mean repair time
  core::RecoveryMode recovery = core::RecoveryMode::kResubmit;
  double probe_period = 0.0;  ///< --probe-period: 0 = live state
  double probe_loss = 0.0;    ///< --probe-loss
  double rpc_timeout = 0.0;   ///< --rpc-timeout: 0 = direct dispatch
  double rpc_loss = 0.0;      ///< --rpc-loss
  double ack_loss = 0.0;      ///< --ack-loss
  std::uint32_t retries = 3;  ///< --retries: RPC budget before escalation
  sim::FallbackMode fallback = sim::FallbackMode::kChain;
  bool stream = false;        ///< --stream: bounded-memory replications
  std::vector<double> speeds;  ///< --speeds: tiled across hosts; empty = 1x
  double scale_up = 0.0;       ///< --scale-up: 0 = autoscaler disabled
  double scale_down = 0.35;    ///< --scale-down: hysteresis floor
  double scale_period = 50.0;  ///< --scale-period: sampling period
  double warmup = 0.0;         ///< --warmup: power-on delay
  std::size_t min_hosts = 1;   ///< --min-hosts: powered-fleet floor
  /// Overload-protection knobs (--queue-cap, --backlog-cap, --overflow,
  /// --admission, --patience, --migrate-on-drain/-fail); any_feature()
  /// false = overload protection disabled, the default.
  sim::OverloadConfig overload;

  /// Parses and validates argv. `extra_known` lists bench-specific flags
  /// beyond the common set; anything else (or a malformed/out-of-range
  /// value) prints the error and exits with status 2. A bench that sweeps
  /// the probe period itself (so --probe-loss is meaningful without
  /// --probe-period) passes `sweeps_probe_period = true` to lift that
  /// coupling check. Only a bench that models elastic fleets passes
  /// `supports_elastic = true`; elsewhere the elastic flags are unknown.
  /// Likewise `supports_overload = true` enables the overload-protection
  /// flag group.
  static BenchOptions parse(
      int argc, const char* const* argv, std::string default_workload = "c90",
      std::initializer_list<std::string_view> extra_known = {},
      bool sweeps_probe_period = false, bool supports_elastic = false,
      bool supports_overload = false) {
    const util::Cli cli(argc, argv);
    BenchOptions o;
    try {
      std::vector<std::string_view> known = {
          "workload",     "jobs",       "reps",        "seed",
          "threads",      "policies",   "csv",         "audit",
          "mtbf",         "mttr",       "recovery",    "probe-period",
          "probe-loss",   "rpc-timeout", "rpc-loss",   "ack-loss",
          "retries",      "fallback",    "stream"};
      if (supports_elastic) {
        known.insert(known.end(), {"speeds", "scale-up", "scale-down",
                                   "scale-period", "warmup", "min-hosts"});
      }
      if (supports_overload) {
        known.insert(known.end(),
                     {"queue-cap", "backlog-cap", "overflow", "admission",
                      "patience", "migrate-on-drain", "migrate-on-fail"});
      }
      known.insert(known.end(), extra_known.begin(), extra_known.end());
      cli.require_known(known);
      o.workload = cli.get_string("workload", std::move(default_workload));
      o.jobs = static_cast<std::size_t>(
          cli.get_int_in("jobs", 40000, 1000, 100000000));
      o.reps = static_cast<std::size_t>(cli.get_int_in("reps", 3, 1, 10000));
      o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
      o.threads = static_cast<std::size_t>(
          cli.get_int_in("threads", 0, 0, 4096));
      o.policies = cli.get_string("policies", "");
      o.csv = cli.has("csv");
      o.audit = cli.has("audit");
      o.mtbf = cli.get_double_in("mtbf", 0.0, 0.0, 1e18);
      o.mttr = cli.get_double_in("mttr", 0.0, 0.0, 1e18);
      if (o.mtbf > 0.0 && o.mttr <= 0.0) {
        throw util::CliError("option --mtbf: requires --mttr > 0");
      }
      const std::string rec = cli.get_string("recovery", "resubmit");
      const auto mode = core::recovery_from_string(rec);
      if (!mode) {
        throw util::CliError("option --recovery: unknown mode '" + rec +
                             "' (resubmit | requeue-front | abandon)");
      }
      o.recovery = *mode;
      o.probe_period = cli.get_double_in("probe-period", 0.0, 0.0, 1e18);
      // Loss probabilities strictly below 1: a channel that never delivers
      // makes every run diverge (probes) or every chain escalate (RPCs).
      o.probe_loss =
          cli.get_double_in("probe-loss", 0.0, 0.0, 0.999999);
      if (o.probe_loss > 0.0 && o.probe_period <= 0.0 &&
          !sweeps_probe_period) {
        throw util::CliError(
            "option --probe-loss: requires --probe-period > 0");
      }
      o.rpc_timeout = cli.get_double_in("rpc-timeout", 0.0, 0.0, 1e18);
      o.rpc_loss = cli.get_double_in("rpc-loss", 0.0, 0.0, 0.999999);
      o.ack_loss = cli.get_double_in("ack-loss", 0.0, 0.0, 0.999999);
      if ((o.rpc_loss > 0.0 || o.ack_loss > 0.0) && o.rpc_timeout <= 0.0) {
        throw util::CliError(
            "option --rpc-loss/--ack-loss: requires --rpc-timeout > 0");
      }
      o.retries =
          static_cast<std::uint32_t>(cli.get_int_in("retries", 3, 0, 100));
      const std::string fb = cli.get_string("fallback", "chain");
      const auto fb_mode = sim::fallback_from_string(fb);
      if (!fb_mode) {
        throw util::CliError("option --fallback: unknown mode '" + fb +
                             "' (chain | terminal | none)");
      }
      o.fallback = *fb_mode;
      o.stream = cli.has("stream");
      if (supports_elastic) {
        const std::string speed_csv = cli.get_string("speeds", "");
        if (!speed_csv.empty()) o.speeds = parse_speeds(speed_csv);
        o.scale_up = cli.get_double_in("scale-up", 0.0, 0.0, 1.0);
        o.scale_down = cli.get_double_in("scale-down", 0.35, 0.0, 1.0);
        o.scale_period = cli.get_double_in("scale-period", 50.0, 1e-9, 1e18);
        o.warmup = cli.get_double_in("warmup", 0.0, 0.0, 1e18);
        o.min_hosts = static_cast<std::size_t>(
            cli.get_int_in("min-hosts", 1, 1, 1000000));
        if (o.scale_up <= 0.0 &&
            (cli.has("scale-down") || cli.has("scale-period") ||
             cli.has("warmup") || cli.has("min-hosts"))) {
          throw util::CliError(
              "option --scale-down/--scale-period/--warmup/--min-hosts: "
              "requires --scale-up > 0");
        }
        if (o.scale_up > 0.0 && o.scale_down >= o.scale_up) {
          throw util::CliError(
              "option --scale-down: must be strictly below --scale-up "
              "(the hysteresis band)");
        }
      }
      if (supports_overload) {
        o.overload.queue_cap = static_cast<std::uint32_t>(
            cli.get_int_in("queue-cap", 0, 0, 1000000000));
        o.overload.backlog_cap =
            cli.get_double_in("backlog-cap", 0.0, 0.0, 1e18);
        const std::string over = cli.get_string("overflow", "bounce");
        const auto action = sim::overflow_from_string(over);
        if (!action) {
          throw util::CliError(
              "option --overflow: unknown action '" + over +
              "' (reject | shed-smallest | shed-largest | bounce)");
        }
        o.overload.overflow = *action;
        if (cli.has("overflow") && o.overload.queue_cap == 0 &&
            o.overload.backlog_cap <= 0.0) {
          throw util::CliError(
              "option --overflow: requires --queue-cap or --backlog-cap");
        }
        parse_admission_spec(cli.get_string("admission", "none"), o.overload);
        o.overload.patience_mean =
            cli.get_double_in("patience", 0.0, 0.0, 1e18);
        o.overload.migrate_on_drain = cli.has("migrate-on-drain");
        o.overload.migrate_on_fail = cli.has("migrate-on-fail");
        if (o.overload.migrate_on_drain && !supports_elastic) {
          throw util::CliError(
              "option --migrate-on-drain: this bench has no autoscaler");
        }
        o.overload.enabled = o.overload.any_feature();
      }
    } catch (const util::CliError& e) {
      std::cerr << cli.program() << ": " << e.what() << "\n";
      std::exit(2);
    }
    return o;
  }

  [[nodiscard]] core::ExperimentConfig experiment_config(
      std::size_t hosts) const {
    core::ExperimentConfig cfg;
    cfg.hosts = hosts;
    cfg.n_jobs = jobs;
    cfg.seed = seed;
    cfg.replications = reps;
    cfg.audit.enabled = audit;
    if (mtbf > 0.0) {
      cfg.faults.enabled = true;
      cfg.faults.mtbf = mtbf;
      cfg.faults.mttr = mttr;
      cfg.recovery = recovery;
    }
    if (probe_period > 0.0 || rpc_timeout > 0.0) {
      cfg.control.enabled = true;
      cfg.control.probe_period = probe_period;
      cfg.control.probe_loss = probe_loss;
      cfg.control.rpc_timeout = rpc_timeout;
      cfg.control.rpc_loss = rpc_loss;
      cfg.control.ack_loss = ack_loss;
      cfg.control.max_retries = retries;
      cfg.control.backoff_base = rpc_timeout;  // first retry waits 2x timeout
      cfg.control.fallback = fallback;
    }
    cfg.stream = stream;
    if (!speeds.empty()) {
      cfg.host_speeds.reserve(hosts);
      for (std::size_t h = 0; h < hosts; ++h) {
        cfg.host_speeds.push_back(speeds[h % speeds.size()]);
      }
    }
    if (scale_up > 0.0) {
      cfg.autoscaler.enabled = true;
      cfg.autoscaler.check_period = scale_period;
      cfg.autoscaler.scale_up_threshold = scale_up;
      cfg.autoscaler.scale_down_threshold = scale_down;
      cfg.autoscaler.warmup_delay = warmup;
      cfg.autoscaler.min_hosts = min_hosts;
    }
    if (overload.any_feature()) {
      cfg.overload = overload;
      cfg.overload.enabled = true;
    }
    return cfg;
  }

  /// Sweep execution knobs (--threads).
  [[nodiscard]] core::SweepOptions sweep_options() const {
    core::SweepOptions opts;
    opts.threads = threads;
    return opts;
  }

  /// The bench's policy list: --policies if given, else `default_csv`
  /// (display names, resolved through the registry either way).
  [[nodiscard]] std::vector<core::PolicyKind> policy_list(
      const std::string& default_csv) const {
    return parse_policies(policies.empty() ? default_csv : policies);
  }
};

/// One named series over a common x-axis.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Projects a sweep result (row-major by load then policy, as returned by
/// Workbench::sweep) into one Series per policy via `value`.
template <typename ValueFn>
std::vector<Series> series_by_policy(
    const std::vector<core::ExperimentPoint>& points,
    const std::vector<core::PolicyKind>& policies, std::size_t n_loads,
    ValueFn&& value) {
  DS_EXPECTS(points.size() == policies.size() * n_loads);
  std::vector<Series> out;
  out.reserve(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    Series s{core::to_string(policies[p]), {}};
    s.values.reserve(n_loads);
    for (std::size_t l = 0; l < n_loads; ++l) {
      s.values.push_back(value(points[l * policies.size() + p]));
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Prints the provenance banner all benches share.
inline void print_header(const std::string& artifact,
                         const std::string& description,
                         const BenchOptions& o) {
  std::cout << "==============================================================\n"
            << artifact << "\n"
            << description << "\n"
            << "workload=" << o.workload << " jobs=" << o.jobs
            << " reps=" << o.reps << " seed=" << o.seed
            << " threads=" << o.threads
            << (o.audit ? " audit=on" : "")
            << (o.stream ? " stream=on" : "");
  if (o.mtbf > 0.0) {
    std::cout << " mtbf=" << o.mtbf << " mttr=" << o.mttr
              << " recovery=" << core::to_string(o.recovery);
  }
  if (o.probe_period > 0.0 || o.rpc_timeout > 0.0) {
    std::cout << " probe-period=" << o.probe_period
              << " probe-loss=" << o.probe_loss
              << " rpc-timeout=" << o.rpc_timeout
              << " rpc-loss=" << o.rpc_loss << " ack-loss=" << o.ack_loss
              << " retries=" << o.retries
              << " fallback=" << sim::to_string(o.fallback);
  }
  if (!o.speeds.empty()) {
    std::cout << " speeds=";
    for (std::size_t i = 0; i < o.speeds.size(); ++i) {
      std::cout << (i ? "," : "") << o.speeds[i];
    }
  }
  if (o.scale_up > 0.0) {
    std::cout << " scale-up=" << o.scale_up << " scale-down=" << o.scale_down
              << " scale-period=" << o.scale_period << " warmup=" << o.warmup
              << " min-hosts=" << o.min_hosts;
  }
  if (o.overload.any_feature()) {
    if (o.overload.queue_cap > 0) {
      std::cout << " queue-cap=" << o.overload.queue_cap;
    }
    if (o.overload.backlog_cap > 0.0) {
      std::cout << " backlog-cap=" << o.overload.backlog_cap;
    }
    if (o.overload.queue_cap > 0 || o.overload.backlog_cap > 0.0) {
      std::cout << " overflow=" << sim::to_string(o.overload.overflow);
    }
    if (o.overload.admission != sim::AdmissionMode::kNone) {
      std::cout << " admission=" << sim::to_string(o.overload.admission);
      if (o.overload.admission == sim::AdmissionMode::kTokenBucket) {
        std::cout << " rate=" << o.overload.admission_rate
                  << " burst=" << o.overload.admission_burst;
      } else {
        std::cout << " threshold=" << o.overload.admission_threshold
                  << " shed-prob=" << o.overload.admission_shed_prob;
      }
    }
    if (o.overload.patience_mean > 0.0) {
      std::cout << " patience=" << o.overload.patience_mean;
    }
    if (o.overload.migrate_on_drain) std::cout << " migrate-on-drain";
    if (o.overload.migrate_on_fail) std::cout << " migrate-on-fail";
  }
  std::cout << "\n"
            << "==============================================================\n";
}

/// Prints one figure panel: x column plus one column per series.
inline void print_panel(const std::string& title, const std::string& x_name,
                        const std::vector<double>& xs,
                        const std::vector<Series>& series, bool csv,
                        int sig_digits = 4) {
  std::cout << "\n--- " << title << " ---\n";
  std::vector<std::string> headers = {x_name};
  for (const Series& s : series) headers.push_back(s.name);
  util::Table table(headers);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> row;
    for (const Series& s : series) row.push_back(s.values[i]);
    table.add_numeric_row(util::format_sig(xs[i], 3), row, sig_digits);
  }
  table.print(std::cout);
  if (csv) {
    std::cout << "\n[csv] " << title << "\n";
    util::CsvWriter w(std::cout);
    w.header(headers);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      std::vector<double> row = {xs[i]};
      for (const Series& s : series) row.push_back(s.values[i]);
      w.row(row);
    }
  }
}

/// The load grid the paper plots (0.1 .. 0.8; §3.2 notes the discussion
/// extends to all loads < 1, but plots stop at 0.8 for readability).
inline std::vector<double> paper_loads() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
}

}  // namespace distserv::bench
