// Shared plumbing for the figure-reproduction binaries.
//
// Every bench prints (a) a provenance header describing the paper artifact
// it regenerates, (b) aligned tables with one row per x-value (load, host
// count, ...) and one column per policy/series — the same series the paper
// plots — and (c) optionally machine-readable CSV via --csv.
//
// Common flags (all optional):
//   --workload c90|j90|ctc   workload (default per bench)
//   --jobs N                 total synthetic jobs (train+eval)
//   --reps N                 replications per point
//   --seed S                 master seed
//   --csv                    also emit CSV to stdout
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"

namespace distserv::bench {

/// Bench-wide configuration parsed from argv.
struct BenchOptions {
  std::string workload = "c90";
  std::size_t jobs = 40000;
  std::size_t reps = 3;
  std::uint64_t seed = 1;
  bool csv = false;

  static BenchOptions parse(int argc, const char* const* argv,
                            std::string default_workload = "c90") {
    const util::Cli cli(argc, argv);
    BenchOptions o;
    o.workload = cli.get_string("workload", std::move(default_workload));
    o.jobs = static_cast<std::size_t>(cli.get_int("jobs", 40000));
    o.reps = static_cast<std::size_t>(cli.get_int("reps", 3));
    o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    o.csv = cli.has("csv");
    return o;
  }

  [[nodiscard]] core::ExperimentConfig experiment_config(
      std::size_t hosts) const {
    core::ExperimentConfig cfg;
    cfg.hosts = hosts;
    cfg.n_jobs = jobs;
    cfg.seed = seed;
    cfg.replications = reps;
    return cfg;
  }
};

/// One named series over a common x-axis.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Prints the provenance banner all benches share.
inline void print_header(const std::string& artifact,
                         const std::string& description,
                         const BenchOptions& o) {
  std::cout << "==============================================================\n"
            << artifact << "\n"
            << description << "\n"
            << "workload=" << o.workload << " jobs=" << o.jobs
            << " reps=" << o.reps << " seed=" << o.seed << "\n"
            << "==============================================================\n";
}

/// Prints one figure panel: x column plus one column per series.
inline void print_panel(const std::string& title, const std::string& x_name,
                        const std::vector<double>& xs,
                        const std::vector<Series>& series, bool csv,
                        int sig_digits = 4) {
  std::cout << "\n--- " << title << " ---\n";
  std::vector<std::string> headers = {x_name};
  for (const Series& s : series) headers.push_back(s.name);
  util::Table table(headers);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> row;
    for (const Series& s : series) row.push_back(s.values[i]);
    table.add_numeric_row(util::format_sig(xs[i], 3), row, sig_digits);
  }
  table.print(std::cout);
  if (csv) {
    std::cout << "\n[csv] " << title << "\n";
    util::CsvWriter w(std::cout);
    w.header(headers);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      std::vector<double> row = {xs[i]};
      for (const Series& s : series) row.push_back(s.values[i]);
      w.row(row);
    }
  }
}

/// The load grid the paper plots (0.1 .. 0.8; §3.2 notes the discussion
/// extends to all loads < 1, but plots stop at 0.8 for readability).
inline std::vector<double> paper_loads() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
}

}  // namespace distserv::bench
