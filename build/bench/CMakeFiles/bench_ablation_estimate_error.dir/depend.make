# Empty dependencies file for bench_ablation_estimate_error.
# This may be replaced when dependencies are built.
