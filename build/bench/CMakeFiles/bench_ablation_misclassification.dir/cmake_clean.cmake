file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_misclassification.dir/bench_ablation_misclassification.cpp.o"
  "CMakeFiles/bench_ablation_misclassification.dir/bench_ablation_misclassification.cpp.o.d"
  "bench_ablation_misclassification"
  "bench_ablation_misclassification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_misclassification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
