# Empty dependencies file for bench_ablation_misclassification.
# This may be replaced when dependencies are built.
