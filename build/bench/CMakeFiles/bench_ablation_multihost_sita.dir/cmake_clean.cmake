file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multihost_sita.dir/bench_ablation_multihost_sita.cpp.o"
  "CMakeFiles/bench_ablation_multihost_sita.dir/bench_ablation_multihost_sita.cpp.o.d"
  "bench_ablation_multihost_sita"
  "bench_ablation_multihost_sita.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multihost_sita.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
