# Empty compiler generated dependencies file for bench_ablation_multihost_sita.
# This may be replaced when dependencies are built.
