file(REMOVE_RECURSE
  "CMakeFiles/bench_fairness_profile.dir/bench_fairness_profile.cpp.o"
  "CMakeFiles/bench_fairness_profile.dir/bench_fairness_profile.cpp.o.d"
  "bench_fairness_profile"
  "bench_fairness_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fairness_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
