# Empty compiler generated dependencies file for bench_fairness_profile.
# This may be replaced when dependencies are built.
