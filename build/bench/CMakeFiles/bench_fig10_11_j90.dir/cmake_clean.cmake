file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_j90.dir/bench_fig10_11_j90.cpp.o"
  "CMakeFiles/bench_fig10_11_j90.dir/bench_fig10_11_j90.cpp.o.d"
  "bench_fig10_11_j90"
  "bench_fig10_11_j90.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_j90.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
