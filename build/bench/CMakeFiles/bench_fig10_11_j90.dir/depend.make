# Empty dependencies file for bench_fig10_11_j90.
# This may be replaced when dependencies are built.
