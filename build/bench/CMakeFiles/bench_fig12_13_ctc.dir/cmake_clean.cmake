file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_ctc.dir/bench_fig12_13_ctc.cpp.o"
  "CMakeFiles/bench_fig12_13_ctc.dir/bench_fig12_13_ctc.cpp.o.d"
  "bench_fig12_13_ctc"
  "bench_fig12_13_ctc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_ctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
