file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_balanced_2hosts.dir/bench_fig2_balanced_2hosts.cpp.o"
  "CMakeFiles/bench_fig2_balanced_2hosts.dir/bench_fig2_balanced_2hosts.cpp.o.d"
  "bench_fig2_balanced_2hosts"
  "bench_fig2_balanced_2hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_balanced_2hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
