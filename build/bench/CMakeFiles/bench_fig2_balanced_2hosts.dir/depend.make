# Empty dependencies file for bench_fig2_balanced_2hosts.
# This may be replaced when dependencies are built.
