file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_balanced_4hosts.dir/bench_fig3_balanced_4hosts.cpp.o"
  "CMakeFiles/bench_fig3_balanced_4hosts.dir/bench_fig3_balanced_4hosts.cpp.o.d"
  "bench_fig3_balanced_4hosts"
  "bench_fig3_balanced_4hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_balanced_4hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
