# Empty compiler generated dependencies file for bench_fig3_balanced_4hosts.
# This may be replaced when dependencies are built.
