file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sita_u_2hosts.dir/bench_fig4_sita_u_2hosts.cpp.o"
  "CMakeFiles/bench_fig4_sita_u_2hosts.dir/bench_fig4_sita_u_2hosts.cpp.o.d"
  "bench_fig4_sita_u_2hosts"
  "bench_fig4_sita_u_2hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sita_u_2hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
