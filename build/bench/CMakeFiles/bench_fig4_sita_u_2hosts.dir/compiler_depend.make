# Empty compiler generated dependencies file for bench_fig4_sita_u_2hosts.
# This may be replaced when dependencies are built.
