file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_many_hosts.dir/bench_fig6_many_hosts.cpp.o"
  "CMakeFiles/bench_fig6_many_hosts.dir/bench_fig6_many_hosts.cpp.o.d"
  "bench_fig6_many_hosts"
  "bench_fig6_many_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_many_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
