# Empty compiler generated dependencies file for bench_fig6_many_hosts.
# This may be replaced when dependencies are built.
