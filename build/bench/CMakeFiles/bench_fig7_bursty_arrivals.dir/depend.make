# Empty dependencies file for bench_fig7_bursty_arrivals.
# This may be replaced when dependencies are built.
