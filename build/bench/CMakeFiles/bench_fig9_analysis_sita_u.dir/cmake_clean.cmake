file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_analysis_sita_u.dir/bench_fig9_analysis_sita_u.cpp.o"
  "CMakeFiles/bench_fig9_analysis_sita_u.dir/bench_fig9_analysis_sita_u.cpp.o.d"
  "bench_fig9_analysis_sita_u"
  "bench_fig9_analysis_sita_u.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_analysis_sita_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
