# Empty compiler generated dependencies file for bench_fig9_analysis_sita_u.
# This may be replaced when dependencies are built.
