
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_traces.cpp" "bench/CMakeFiles/bench_table1_traces.dir/bench_table1_traces.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_traces.dir/bench_table1_traces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/distserv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/distserv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/distserv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/distserv_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/distserv_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/distserv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/distserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
