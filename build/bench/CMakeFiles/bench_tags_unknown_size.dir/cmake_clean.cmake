file(REMOVE_RECURSE
  "CMakeFiles/bench_tags_unknown_size.dir/bench_tags_unknown_size.cpp.o"
  "CMakeFiles/bench_tags_unknown_size.dir/bench_tags_unknown_size.cpp.o.d"
  "bench_tags_unknown_size"
  "bench_tags_unknown_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tags_unknown_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
