# Empty dependencies file for bench_tags_unknown_size.
# This may be replaced when dependencies are built.
