file(REMOVE_RECURSE
  "CMakeFiles/unknown_sizes.dir/unknown_sizes.cpp.o"
  "CMakeFiles/unknown_sizes.dir/unknown_sizes.cpp.o.d"
  "unknown_sizes"
  "unknown_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unknown_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
