# Empty compiler generated dependencies file for unknown_sizes.
# This may be replaced when dependencies are built.
