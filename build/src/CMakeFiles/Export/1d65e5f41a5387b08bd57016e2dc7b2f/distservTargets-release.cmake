#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "distserv::distserv_util" for configuration "Release"
set_property(TARGET distserv::distserv_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(distserv::distserv_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libdistserv_util.a"
  )

list(APPEND _cmake_import_check_targets distserv::distserv_util )
list(APPEND _cmake_import_check_files_for_distserv::distserv_util "${_IMPORT_PREFIX}/lib/libdistserv_util.a" )

# Import target "distserv::distserv_dist" for configuration "Release"
set_property(TARGET distserv::distserv_dist APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(distserv::distserv_dist PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libdistserv_dist.a"
  )

list(APPEND _cmake_import_check_targets distserv::distserv_dist )
list(APPEND _cmake_import_check_files_for_distserv::distserv_dist "${_IMPORT_PREFIX}/lib/libdistserv_dist.a" )

# Import target "distserv::distserv_stats" for configuration "Release"
set_property(TARGET distserv::distserv_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(distserv::distserv_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libdistserv_stats.a"
  )

list(APPEND _cmake_import_check_targets distserv::distserv_stats )
list(APPEND _cmake_import_check_files_for_distserv::distserv_stats "${_IMPORT_PREFIX}/lib/libdistserv_stats.a" )

# Import target "distserv::distserv_sim" for configuration "Release"
set_property(TARGET distserv::distserv_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(distserv::distserv_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libdistserv_sim.a"
  )

list(APPEND _cmake_import_check_targets distserv::distserv_sim )
list(APPEND _cmake_import_check_files_for_distserv::distserv_sim "${_IMPORT_PREFIX}/lib/libdistserv_sim.a" )

# Import target "distserv::distserv_workload" for configuration "Release"
set_property(TARGET distserv::distserv_workload APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(distserv::distserv_workload PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libdistserv_workload.a"
  )

list(APPEND _cmake_import_check_targets distserv::distserv_workload )
list(APPEND _cmake_import_check_files_for_distserv::distserv_workload "${_IMPORT_PREFIX}/lib/libdistserv_workload.a" )

# Import target "distserv::distserv_queueing" for configuration "Release"
set_property(TARGET distserv::distserv_queueing APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(distserv::distserv_queueing PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libdistserv_queueing.a"
  )

list(APPEND _cmake_import_check_targets distserv::distserv_queueing )
list(APPEND _cmake_import_check_files_for_distserv::distserv_queueing "${_IMPORT_PREFIX}/lib/libdistserv_queueing.a" )

# Import target "distserv::distserv_core" for configuration "Release"
set_property(TARGET distserv::distserv_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(distserv::distserv_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libdistserv_core.a"
  )

list(APPEND _cmake_import_check_targets distserv::distserv_core )
list(APPEND _cmake_import_check_files_for_distserv::distserv_core "${_IMPORT_PREFIX}/lib/libdistserv_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
