
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cutoffs.cpp" "src/core/CMakeFiles/distserv_core.dir/cutoffs.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/cutoffs.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/distserv_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/distserv_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/policies/central_queue.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/central_queue.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/central_queue.cpp.o.d"
  "/root/repo/src/core/policies/hybrid_sita_lwl.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/hybrid_sita_lwl.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/hybrid_sita_lwl.cpp.o.d"
  "/root/repo/src/core/policies/least_work_left.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/least_work_left.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/least_work_left.cpp.o.d"
  "/root/repo/src/core/policies/noisy_lwl.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/noisy_lwl.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/noisy_lwl.cpp.o.d"
  "/root/repo/src/core/policies/power_of_d.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/power_of_d.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/power_of_d.cpp.o.d"
  "/root/repo/src/core/policies/random.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/random.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/random.cpp.o.d"
  "/root/repo/src/core/policies/round_robin.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/round_robin.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/round_robin.cpp.o.d"
  "/root/repo/src/core/policies/shortest_queue.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/shortest_queue.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/shortest_queue.cpp.o.d"
  "/root/repo/src/core/policies/sita.cpp" "src/core/CMakeFiles/distserv_core.dir/policies/sita.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policies/sita.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/distserv_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/ps_server.cpp" "src/core/CMakeFiles/distserv_core.dir/ps_server.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/ps_server.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/distserv_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/server.cpp.o.d"
  "/root/repo/src/core/sim_cutoff_search.cpp" "src/core/CMakeFiles/distserv_core.dir/sim_cutoff_search.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/sim_cutoff_search.cpp.o.d"
  "/root/repo/src/core/tags.cpp" "src/core/CMakeFiles/distserv_core.dir/tags.cpp.o" "gcc" "src/core/CMakeFiles/distserv_core.dir/tags.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/distserv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/distserv_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/distserv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/distserv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/distserv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/distserv_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
