file(REMOVE_RECURSE
  "libdistserv_core.a"
)
