# Empty compiler generated dependencies file for distserv_core.
# This may be replaced when dependencies are built.
