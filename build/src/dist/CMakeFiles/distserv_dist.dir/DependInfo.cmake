
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/bounded_pareto.cpp" "src/dist/CMakeFiles/distserv_dist.dir/bounded_pareto.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/bounded_pareto.cpp.o.d"
  "/root/repo/src/dist/bp_mixture.cpp" "src/dist/CMakeFiles/distserv_dist.dir/bp_mixture.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/bp_mixture.cpp.o.d"
  "/root/repo/src/dist/deterministic.cpp" "src/dist/CMakeFiles/distserv_dist.dir/deterministic.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/deterministic.cpp.o.d"
  "/root/repo/src/dist/distribution.cpp" "src/dist/CMakeFiles/distserv_dist.dir/distribution.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/distribution.cpp.o.d"
  "/root/repo/src/dist/empirical.cpp" "src/dist/CMakeFiles/distserv_dist.dir/empirical.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/empirical.cpp.o.d"
  "/root/repo/src/dist/exponential.cpp" "src/dist/CMakeFiles/distserv_dist.dir/exponential.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/exponential.cpp.o.d"
  "/root/repo/src/dist/fit.cpp" "src/dist/CMakeFiles/distserv_dist.dir/fit.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/fit.cpp.o.d"
  "/root/repo/src/dist/hyperexp.cpp" "src/dist/CMakeFiles/distserv_dist.dir/hyperexp.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/hyperexp.cpp.o.d"
  "/root/repo/src/dist/lognormal.cpp" "src/dist/CMakeFiles/distserv_dist.dir/lognormal.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/lognormal.cpp.o.d"
  "/root/repo/src/dist/pareto.cpp" "src/dist/CMakeFiles/distserv_dist.dir/pareto.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/pareto.cpp.o.d"
  "/root/repo/src/dist/rng.cpp" "src/dist/CMakeFiles/distserv_dist.dir/rng.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/rng.cpp.o.d"
  "/root/repo/src/dist/uniform.cpp" "src/dist/CMakeFiles/distserv_dist.dir/uniform.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/uniform.cpp.o.d"
  "/root/repo/src/dist/weibull.cpp" "src/dist/CMakeFiles/distserv_dist.dir/weibull.cpp.o" "gcc" "src/dist/CMakeFiles/distserv_dist.dir/weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/distserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
