file(REMOVE_RECURSE
  "CMakeFiles/distserv_dist.dir/bounded_pareto.cpp.o"
  "CMakeFiles/distserv_dist.dir/bounded_pareto.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/bp_mixture.cpp.o"
  "CMakeFiles/distserv_dist.dir/bp_mixture.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/deterministic.cpp.o"
  "CMakeFiles/distserv_dist.dir/deterministic.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/distribution.cpp.o"
  "CMakeFiles/distserv_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/empirical.cpp.o"
  "CMakeFiles/distserv_dist.dir/empirical.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/exponential.cpp.o"
  "CMakeFiles/distserv_dist.dir/exponential.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/fit.cpp.o"
  "CMakeFiles/distserv_dist.dir/fit.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/hyperexp.cpp.o"
  "CMakeFiles/distserv_dist.dir/hyperexp.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/lognormal.cpp.o"
  "CMakeFiles/distserv_dist.dir/lognormal.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/pareto.cpp.o"
  "CMakeFiles/distserv_dist.dir/pareto.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/rng.cpp.o"
  "CMakeFiles/distserv_dist.dir/rng.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/uniform.cpp.o"
  "CMakeFiles/distserv_dist.dir/uniform.cpp.o.d"
  "CMakeFiles/distserv_dist.dir/weibull.cpp.o"
  "CMakeFiles/distserv_dist.dir/weibull.cpp.o.d"
  "libdistserv_dist.a"
  "libdistserv_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distserv_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
