file(REMOVE_RECURSE
  "libdistserv_dist.a"
)
