# Empty dependencies file for distserv_dist.
# This may be replaced when dependencies are built.
