include("${CMAKE_CURRENT_LIST_DIR}/distservTargets.cmake")
