
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/cutoff_search.cpp" "src/queueing/CMakeFiles/distserv_queueing.dir/cutoff_search.cpp.o" "gcc" "src/queueing/CMakeFiles/distserv_queueing.dir/cutoff_search.cpp.o.d"
  "/root/repo/src/queueing/mg1.cpp" "src/queueing/CMakeFiles/distserv_queueing.dir/mg1.cpp.o" "gcc" "src/queueing/CMakeFiles/distserv_queueing.dir/mg1.cpp.o.d"
  "/root/repo/src/queueing/mgh.cpp" "src/queueing/CMakeFiles/distserv_queueing.dir/mgh.cpp.o" "gcc" "src/queueing/CMakeFiles/distserv_queueing.dir/mgh.cpp.o.d"
  "/root/repo/src/queueing/mmh.cpp" "src/queueing/CMakeFiles/distserv_queueing.dir/mmh.cpp.o" "gcc" "src/queueing/CMakeFiles/distserv_queueing.dir/mmh.cpp.o.d"
  "/root/repo/src/queueing/policy_analysis.cpp" "src/queueing/CMakeFiles/distserv_queueing.dir/policy_analysis.cpp.o" "gcc" "src/queueing/CMakeFiles/distserv_queueing.dir/policy_analysis.cpp.o.d"
  "/root/repo/src/queueing/sita_analysis.cpp" "src/queueing/CMakeFiles/distserv_queueing.dir/sita_analysis.cpp.o" "gcc" "src/queueing/CMakeFiles/distserv_queueing.dir/sita_analysis.cpp.o.d"
  "/root/repo/src/queueing/size_model.cpp" "src/queueing/CMakeFiles/distserv_queueing.dir/size_model.cpp.o" "gcc" "src/queueing/CMakeFiles/distserv_queueing.dir/size_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/distserv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/distserv_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/distserv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
