file(REMOVE_RECURSE
  "CMakeFiles/distserv_queueing.dir/cutoff_search.cpp.o"
  "CMakeFiles/distserv_queueing.dir/cutoff_search.cpp.o.d"
  "CMakeFiles/distserv_queueing.dir/mg1.cpp.o"
  "CMakeFiles/distserv_queueing.dir/mg1.cpp.o.d"
  "CMakeFiles/distserv_queueing.dir/mgh.cpp.o"
  "CMakeFiles/distserv_queueing.dir/mgh.cpp.o.d"
  "CMakeFiles/distserv_queueing.dir/mmh.cpp.o"
  "CMakeFiles/distserv_queueing.dir/mmh.cpp.o.d"
  "CMakeFiles/distserv_queueing.dir/policy_analysis.cpp.o"
  "CMakeFiles/distserv_queueing.dir/policy_analysis.cpp.o.d"
  "CMakeFiles/distserv_queueing.dir/sita_analysis.cpp.o"
  "CMakeFiles/distserv_queueing.dir/sita_analysis.cpp.o.d"
  "CMakeFiles/distserv_queueing.dir/size_model.cpp.o"
  "CMakeFiles/distserv_queueing.dir/size_model.cpp.o.d"
  "libdistserv_queueing.a"
  "libdistserv_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distserv_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
