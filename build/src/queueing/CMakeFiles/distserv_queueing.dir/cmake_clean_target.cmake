file(REMOVE_RECURSE
  "libdistserv_queueing.a"
)
