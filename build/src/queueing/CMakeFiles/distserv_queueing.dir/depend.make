# Empty dependencies file for distserv_queueing.
# This may be replaced when dependencies are built.
