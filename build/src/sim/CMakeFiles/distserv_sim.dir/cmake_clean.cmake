file(REMOVE_RECURSE
  "CMakeFiles/distserv_sim.dir/event_queue.cpp.o"
  "CMakeFiles/distserv_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/distserv_sim.dir/simulator.cpp.o"
  "CMakeFiles/distserv_sim.dir/simulator.cpp.o.d"
  "libdistserv_sim.a"
  "libdistserv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distserv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
