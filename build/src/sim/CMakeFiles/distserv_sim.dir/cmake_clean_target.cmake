file(REMOVE_RECURSE
  "libdistserv_sim.a"
)
