# Empty dependencies file for distserv_sim.
# This may be replaced when dependencies are built.
