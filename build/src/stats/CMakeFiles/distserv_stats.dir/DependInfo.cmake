
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/distserv_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/distserv_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/distserv_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/distserv_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/distserv_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/distserv_stats.dir/ks_test.cpp.o.d"
  "/root/repo/src/stats/moments.cpp" "src/stats/CMakeFiles/distserv_stats.dir/moments.cpp.o" "gcc" "src/stats/CMakeFiles/distserv_stats.dir/moments.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/stats/CMakeFiles/distserv_stats.dir/quantile.cpp.o" "gcc" "src/stats/CMakeFiles/distserv_stats.dir/quantile.cpp.o.d"
  "/root/repo/src/stats/welford.cpp" "src/stats/CMakeFiles/distserv_stats.dir/welford.cpp.o" "gcc" "src/stats/CMakeFiles/distserv_stats.dir/welford.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/distserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
