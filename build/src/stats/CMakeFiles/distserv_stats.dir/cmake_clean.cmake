file(REMOVE_RECURSE
  "CMakeFiles/distserv_stats.dir/confidence.cpp.o"
  "CMakeFiles/distserv_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/distserv_stats.dir/histogram.cpp.o"
  "CMakeFiles/distserv_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/distserv_stats.dir/ks_test.cpp.o"
  "CMakeFiles/distserv_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/distserv_stats.dir/moments.cpp.o"
  "CMakeFiles/distserv_stats.dir/moments.cpp.o.d"
  "CMakeFiles/distserv_stats.dir/quantile.cpp.o"
  "CMakeFiles/distserv_stats.dir/quantile.cpp.o.d"
  "CMakeFiles/distserv_stats.dir/welford.cpp.o"
  "CMakeFiles/distserv_stats.dir/welford.cpp.o.d"
  "libdistserv_stats.a"
  "libdistserv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distserv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
