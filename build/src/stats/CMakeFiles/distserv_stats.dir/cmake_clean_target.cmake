file(REMOVE_RECURSE
  "libdistserv_stats.a"
)
