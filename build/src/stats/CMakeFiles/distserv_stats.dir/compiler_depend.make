# Empty compiler generated dependencies file for distserv_stats.
# This may be replaced when dependencies are built.
