file(REMOVE_RECURSE
  "CMakeFiles/distserv_util.dir/cli.cpp.o"
  "CMakeFiles/distserv_util.dir/cli.cpp.o.d"
  "CMakeFiles/distserv_util.dir/contracts.cpp.o"
  "CMakeFiles/distserv_util.dir/contracts.cpp.o.d"
  "CMakeFiles/distserv_util.dir/csv.cpp.o"
  "CMakeFiles/distserv_util.dir/csv.cpp.o.d"
  "CMakeFiles/distserv_util.dir/log.cpp.o"
  "CMakeFiles/distserv_util.dir/log.cpp.o.d"
  "CMakeFiles/distserv_util.dir/math.cpp.o"
  "CMakeFiles/distserv_util.dir/math.cpp.o.d"
  "CMakeFiles/distserv_util.dir/strings.cpp.o"
  "CMakeFiles/distserv_util.dir/strings.cpp.o.d"
  "CMakeFiles/distserv_util.dir/table.cpp.o"
  "CMakeFiles/distserv_util.dir/table.cpp.o.d"
  "libdistserv_util.a"
  "libdistserv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distserv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
