file(REMOVE_RECURSE
  "libdistserv_util.a"
)
