# Empty dependencies file for distserv_util.
# This may be replaced when dependencies are built.
