file(REMOVE_RECURSE
  "CMakeFiles/distserv_workload.dir/arrival.cpp.o"
  "CMakeFiles/distserv_workload.dir/arrival.cpp.o.d"
  "CMakeFiles/distserv_workload.dir/catalog.cpp.o"
  "CMakeFiles/distserv_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/distserv_workload.dir/job.cpp.o"
  "CMakeFiles/distserv_workload.dir/job.cpp.o.d"
  "CMakeFiles/distserv_workload.dir/swf.cpp.o"
  "CMakeFiles/distserv_workload.dir/swf.cpp.o.d"
  "CMakeFiles/distserv_workload.dir/synthetic.cpp.o"
  "CMakeFiles/distserv_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/distserv_workload.dir/trace.cpp.o"
  "CMakeFiles/distserv_workload.dir/trace.cpp.o.d"
  "libdistserv_workload.a"
  "libdistserv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distserv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
