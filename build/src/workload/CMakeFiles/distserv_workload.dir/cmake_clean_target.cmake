file(REMOVE_RECURSE
  "libdistserv_workload.a"
)
