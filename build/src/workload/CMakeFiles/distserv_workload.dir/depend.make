# Empty dependencies file for distserv_workload.
# This may be replaced when dependencies are built.
