
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/test_bounded_pareto.cpp" "tests/CMakeFiles/test_distributions.dir/dist/test_bounded_pareto.cpp.o" "gcc" "tests/CMakeFiles/test_distributions.dir/dist/test_bounded_pareto.cpp.o.d"
  "/root/repo/tests/dist/test_bp_mixture.cpp" "tests/CMakeFiles/test_distributions.dir/dist/test_bp_mixture.cpp.o" "gcc" "tests/CMakeFiles/test_distributions.dir/dist/test_bp_mixture.cpp.o.d"
  "/root/repo/tests/dist/test_distributions.cpp" "tests/CMakeFiles/test_distributions.dir/dist/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/test_distributions.dir/dist/test_distributions.cpp.o.d"
  "/root/repo/tests/dist/test_empirical.cpp" "tests/CMakeFiles/test_distributions.dir/dist/test_empirical.cpp.o" "gcc" "tests/CMakeFiles/test_distributions.dir/dist/test_empirical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/distserv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/distserv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/distserv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/distserv_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/distserv_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/distserv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/distserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
