file(REMOVE_RECURSE
  "CMakeFiles/test_ps_server.dir/core/test_ps_server.cpp.o"
  "CMakeFiles/test_ps_server.dir/core/test_ps_server.cpp.o.d"
  "test_ps_server"
  "test_ps_server.pdb"
  "test_ps_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ps_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
