
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/queueing/test_cutoff_search.cpp" "tests/CMakeFiles/test_queueing.dir/queueing/test_cutoff_search.cpp.o" "gcc" "tests/CMakeFiles/test_queueing.dir/queueing/test_cutoff_search.cpp.o.d"
  "/root/repo/tests/queueing/test_mg1.cpp" "tests/CMakeFiles/test_queueing.dir/queueing/test_mg1.cpp.o" "gcc" "tests/CMakeFiles/test_queueing.dir/queueing/test_mg1.cpp.o.d"
  "/root/repo/tests/queueing/test_mgh.cpp" "tests/CMakeFiles/test_queueing.dir/queueing/test_mgh.cpp.o" "gcc" "tests/CMakeFiles/test_queueing.dir/queueing/test_mgh.cpp.o.d"
  "/root/repo/tests/queueing/test_mmh.cpp" "tests/CMakeFiles/test_queueing.dir/queueing/test_mmh.cpp.o" "gcc" "tests/CMakeFiles/test_queueing.dir/queueing/test_mmh.cpp.o.d"
  "/root/repo/tests/queueing/test_policy_analysis.cpp" "tests/CMakeFiles/test_queueing.dir/queueing/test_policy_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_queueing.dir/queueing/test_policy_analysis.cpp.o.d"
  "/root/repo/tests/queueing/test_sita_analysis.cpp" "tests/CMakeFiles/test_queueing.dir/queueing/test_sita_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_queueing.dir/queueing/test_sita_analysis.cpp.o.d"
  "/root/repo/tests/queueing/test_size_model.cpp" "tests/CMakeFiles/test_queueing.dir/queueing/test_size_model.cpp.o" "gcc" "tests/CMakeFiles/test_queueing.dir/queueing/test_size_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/distserv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/distserv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/distserv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/distserv_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/distserv_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/distserv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/distserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
