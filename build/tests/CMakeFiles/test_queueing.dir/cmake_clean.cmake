file(REMOVE_RECURSE
  "CMakeFiles/test_queueing.dir/queueing/test_cutoff_search.cpp.o"
  "CMakeFiles/test_queueing.dir/queueing/test_cutoff_search.cpp.o.d"
  "CMakeFiles/test_queueing.dir/queueing/test_mg1.cpp.o"
  "CMakeFiles/test_queueing.dir/queueing/test_mg1.cpp.o.d"
  "CMakeFiles/test_queueing.dir/queueing/test_mgh.cpp.o"
  "CMakeFiles/test_queueing.dir/queueing/test_mgh.cpp.o.d"
  "CMakeFiles/test_queueing.dir/queueing/test_mmh.cpp.o"
  "CMakeFiles/test_queueing.dir/queueing/test_mmh.cpp.o.d"
  "CMakeFiles/test_queueing.dir/queueing/test_policy_analysis.cpp.o"
  "CMakeFiles/test_queueing.dir/queueing/test_policy_analysis.cpp.o.d"
  "CMakeFiles/test_queueing.dir/queueing/test_sita_analysis.cpp.o"
  "CMakeFiles/test_queueing.dir/queueing/test_sita_analysis.cpp.o.d"
  "CMakeFiles/test_queueing.dir/queueing/test_size_model.cpp.o"
  "CMakeFiles/test_queueing.dir/queueing/test_size_model.cpp.o.d"
  "test_queueing"
  "test_queueing.pdb"
  "test_queueing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
