file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_confidence.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_confidence.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_ks.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_ks.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_moments.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_moments.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_quantile.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_quantile.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_welford.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_welford.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
