file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_properties.dir/core/test_sweep_properties.cpp.o"
  "CMakeFiles/test_sweep_properties.dir/core/test_sweep_properties.cpp.o.d"
  "test_sweep_properties"
  "test_sweep_properties.pdb"
  "test_sweep_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
