# Empty compiler generated dependencies file for test_sweep_properties.
# This may be replaced when dependencies are built.
