
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_arrival.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_arrival.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_arrival.cpp.o.d"
  "/root/repo/tests/workload/test_catalog.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_catalog.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_catalog.cpp.o.d"
  "/root/repo/tests/workload/test_swf.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_swf.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_swf.cpp.o.d"
  "/root/repo/tests/workload/test_synthetic.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_synthetic.cpp.o.d"
  "/root/repo/tests/workload/test_trace.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/distserv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/distserv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/distserv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/distserv_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/distserv_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/distserv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/distserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
