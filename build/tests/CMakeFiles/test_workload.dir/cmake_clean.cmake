file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_arrival.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_arrival.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_catalog.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_catalog.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_swf.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_swf.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_synthetic.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_synthetic.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_trace.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_trace.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
