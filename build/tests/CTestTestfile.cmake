# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_distributions[1]_include.cmake")
include("/root/repo/build/tests/test_fit[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_queueing[1]_include.cmake")
include("/root/repo/build/tests/test_server[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_policy_properties[1]_include.cmake")
include("/root/repo/build/tests/test_tags[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_sweep_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ps_server[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
