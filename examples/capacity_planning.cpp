// Capacity planning: how many host machines does a supercomputing center
// need to keep mean slowdown under a target, and how much capacity does a
// smarter task assignment policy save?
//
//   $ ./capacity_planning --workload c90 --load 0.7 --target 50 [--threads N]
//
// For each candidate host count (keeping per-host system load fixed — i.e.
// the arrival rate grows with the pool), simulate Least-Work-Left and the
// grouped SITA-U-fair policy and report the smallest pool meeting the
// target. This is the scenario of the paper's section 5 turned into a
// procurement question. Policies are resolved by name through the registry
// (core::policy_from_string); replications run across --threads workers.
#include <cstdlib>
#include <iostream>

#include "distserv.hpp"

namespace {

distserv::core::PolicyKind policy_or_die(std::string_view name) {
  if (const auto kind = distserv::core::policy_from_string(name)) return *kind;
  std::cerr << "unknown policy '" << name << "'; registered policies:\n";
  for (const auto& known : distserv::core::registered_policies()) {
    std::cerr << "  " << known << "\n";
  }
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distserv;
  using core::PolicyKind;
  const util::Cli cli(argc, argv);
  const std::string workload = cli.get_string("workload", "c90");
  const double rho = cli.get_double("load", 0.7);
  const double target = cli.get_double("target", 50.0);

  core::SweepOptions sweep_opts;
  sweep_opts.threads = static_cast<std::size_t>(cli.get_int("threads", 0));

  std::cout << "Capacity planning on '" << workload << "': smallest host "
            << "pool with mean slowdown <= " << target << " at per-host load "
            << rho << "\n\n";

  const PolicyKind candidates[] = {policy_or_die("Least-Work-Left"),
                                   policy_or_die("SITA-U-fair+LWL")};
  const std::vector<double> load{rho};
  util::Table table({"policy", "hosts", "mean slowdown", "meets target"});
  std::size_t winner_hosts[2] = {0, 0};
  int idx = 0;
  for (PolicyKind kind : candidates) {
    const std::vector<PolicyKind> one{kind};
    bool found = false;
    for (std::size_t hosts : {2u, 4u, 8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
      core::ExperimentConfig cfg;
      cfg.hosts = hosts;
      cfg.n_jobs = static_cast<std::size_t>(cli.get_int("jobs", 30000));
      cfg.seed = 11;
      cfg.replications = 2;
      core::Workbench wb(workload::find_workload(workload), cfg);
      const auto p = wb.sweep(one, load, sweep_opts).front();
      const bool ok = p.summary.mean_slowdown <= target;
      table.add_row({core::to_string(kind), std::to_string(hosts),
                     util::format_sig(p.summary.mean_slowdown, 4),
                     ok ? "yes" : "no"});
      if (ok && !found) {
        winner_hosts[idx] = hosts;
        found = true;
        break;  // smallest pool found; stop growing
      }
    }
    ++idx;
  }
  table.print(std::cout);

  std::cout << "\n";
  if (winner_hosts[0] && winner_hosts[1]) {
    std::cout << "Least-Work-Left needs " << winner_hosts[0]
              << " hosts; SITA-U-fair+LWL needs " << winner_hosts[1]
              << " hosts";
    if (winner_hosts[1] < winner_hosts[0]) {
      std::cout << " — the unbalancing policy saves "
                << (winner_hosts[0] - winner_hosts[1])
                << " machines at identical service quality.";
    }
    std::cout << "\n";
  } else {
    std::cout << "Target not reachable within 64 hosts for at least one "
                 "policy; relax --target or lower --load.\n";
  }
  return 0;
}
