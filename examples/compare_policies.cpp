// Compare every task assignment policy on a chosen workload and host count
// across a range of system loads — a configurable version of the paper's
// Figures 2-4.
//
//   $ ./compare_policies --workload c90 --hosts 2 --jobs 30000
//       --loads 0.3,0.5,0.7 --reps 3 [--policies a,b,c] [--threads N]
//       [--bursty] [--csv]
//
// Policies are named by their display strings (see core::registered_policies
// or pass a bogus --policies value to list them); the sweep fans out over
// --threads worker threads (0 = all hardware threads) with results
// bit-identical to a single-threaded run.
#include <cstdlib>
#include <iostream>

#include "distserv.hpp"

namespace {

std::vector<double> parse_loads(const std::string& csv) {
  std::vector<double> out;
  for (const auto part : distserv::util::split(csv, ',')) {
    double v = 0.0;
    if (distserv::util::parse_double(part, v)) out.push_back(v);
  }
  return out;
}

distserv::core::PolicyKind policy_or_die(std::string_view name) {
  if (const auto kind = distserv::core::policy_from_string(name)) return *kind;
  std::cerr << "unknown policy '" << name << "'; registered policies:\n";
  for (const auto& known : distserv::core::registered_policies()) {
    std::cerr << "  " << known << "\n";
  }
  std::exit(2);
}

std::vector<distserv::core::PolicyKind> parse_policies(
    const std::string& csv) {
  std::vector<distserv::core::PolicyKind> out;
  for (const auto part : distserv::util::split(csv, ',')) {
    const auto trimmed = distserv::util::trim(part);
    if (!trimmed.empty()) out.push_back(policy_or_die(trimmed));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distserv;
  using core::PolicyKind;
  const util::Cli cli(argc, argv);
  const std::string workload = cli.get_string("workload", "c90");
  const auto hosts = static_cast<std::size_t>(cli.get_int("hosts", 2));
  const std::vector<double> loads =
      parse_loads(cli.get_string("loads", "0.3,0.5,0.7,0.8"));

  core::ExperimentConfig cfg;
  cfg.hosts = hosts;
  cfg.n_jobs = static_cast<std::size_t>(cli.get_int("jobs", 30000));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.replications = static_cast<std::size_t>(cli.get_int("reps", 3));
  if (cli.has("bursty")) cfg.arrivals = core::ArrivalKind::kBursty;

  std::vector<PolicyKind> policies;
  if (const std::string override = cli.get_string("policies", "");
      !override.empty()) {
    policies = parse_policies(override);
  } else {
    policies = parse_policies(
        "Random,Round-Robin,Shortest-Queue,Least-Work-Left,Central-Queue");
    const std::string sita =
        hosts == 2 ? "SITA-E,SITA-U-opt,SITA-U-fair,SITA-U-thumb"
                   : "SITA-E,SITA-E+LWL,SITA-U-opt+LWL,SITA-U-fair+LWL";
    for (PolicyKind kind : parse_policies(sita)) policies.push_back(kind);
  }

  core::SweepOptions sweep_opts;
  sweep_opts.threads = static_cast<std::size_t>(cli.get_int("threads", 0));

  std::cout << "Comparing " << policies.size() << " policies on '" << workload
            << "' with " << hosts << " hosts ("
            << (cfg.arrivals == core::ArrivalKind::kBursty ? "bursty MMPP"
                                                           : "Poisson")
            << " arrivals)\n\n";

  core::Workbench wb(workload::find_workload(workload), cfg);
  const auto points = wb.sweep(policies, loads, sweep_opts);
  // sweep orders points load-major: points[l * policies.size() + k].
  util::Table table({"policy", "load", "mean slowdown", "var slowdown",
                     "mean response", "p99 slowdown", "cutoff(s)"});
  for (std::size_t k = 0; k < policies.size(); ++k) {
    for (std::size_t l = 0; l < loads.size(); ++l) {
      const core::ExperimentPoint& p = points[l * policies.size() + k];
      table.add_row(
          {core::to_string(policies[k]), util::format_sig(loads[l], 2),
           util::format_sig(p.summary.mean_slowdown, 4),
           util::format_sig(p.summary.var_slowdown, 4),
           util::format_sig(p.summary.mean_response, 4),
           util::format_sig(p.summary.p99_slowdown, 4),
           p.has_cutoff ? util::format_sig(p.cutoff, 4) : "-"});
    }
  }
  table.print(std::cout);

  if (cli.has("csv")) {
    std::cout << "\n";
    util::CsvWriter w(std::cout);
    w.header({"policy", "load", "mean_slowdown", "var_slowdown"});
    for (std::size_t k = 0; k < policies.size(); ++k) {
      for (std::size_t l = 0; l < loads.size(); ++l) {
        const auto& p = points[l * policies.size() + k];
        w.row({core::to_string(policies[k]), util::format_sig(loads[l], 3),
               util::format_sig(p.summary.mean_slowdown, 6),
               util::format_sig(p.summary.var_slowdown, 6)});
      }
    }
  }
  return 0;
}
