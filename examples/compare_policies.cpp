// Compare every task assignment policy on a chosen workload and host count
// across a range of system loads — a configurable version of the paper's
// Figures 2-4.
//
//   $ ./compare_policies --workload c90 --hosts 2 --jobs 30000
//       --loads 0.3,0.5,0.7 --reps 3 [--bursty] [--csv]
#include <iostream>

#include "distserv.hpp"

namespace {

std::vector<double> parse_loads(const std::string& csv) {
  std::vector<double> out;
  for (const auto part : distserv::util::split(csv, ',')) {
    double v = 0.0;
    if (distserv::util::parse_double(part, v)) out.push_back(v);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distserv;
  using core::PolicyKind;
  const util::Cli cli(argc, argv);
  const std::string workload = cli.get_string("workload", "c90");
  const auto hosts = static_cast<std::size_t>(cli.get_int("hosts", 2));
  const std::vector<double> loads =
      parse_loads(cli.get_string("loads", "0.3,0.5,0.7,0.8"));

  core::ExperimentConfig cfg;
  cfg.hosts = hosts;
  cfg.n_jobs = static_cast<std::size_t>(cli.get_int("jobs", 30000));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.replications = static_cast<std::size_t>(cli.get_int("reps", 3));
  if (cli.has("bursty")) cfg.arrivals = core::ArrivalKind::kBursty;

  std::vector<PolicyKind> policies = {
      PolicyKind::kRandom,       PolicyKind::kRoundRobin,
      PolicyKind::kShortestQueue, PolicyKind::kLeastWorkLeft,
      PolicyKind::kCentralQueue};
  if (hosts == 2) {
    policies.insert(policies.end(),
                    {PolicyKind::kSitaE, PolicyKind::kSitaUOpt,
                     PolicyKind::kSitaUFair, PolicyKind::kSitaRuleOfThumb});
  } else {
    policies.insert(policies.end(),
                    {PolicyKind::kSitaE, PolicyKind::kHybridSitaE,
                     PolicyKind::kHybridSitaUOpt,
                     PolicyKind::kHybridSitaUFair});
  }

  std::cout << "Comparing " << policies.size() << " policies on '" << workload
            << "' with " << hosts << " hosts ("
            << (cfg.arrivals == core::ArrivalKind::kBursty ? "bursty MMPP"
                                                           : "Poisson")
            << " arrivals)\n\n";

  core::Workbench wb(workload::find_workload(workload), cfg);
  util::Table table({"policy", "load", "mean slowdown", "var slowdown",
                     "mean response", "p99 slowdown", "cutoff(s)"});
  for (PolicyKind kind : policies) {
    for (double rho : loads) {
      const core::ExperimentPoint p = wb.run_point(kind, rho);
      table.add_row(
          {core::to_string(kind), util::format_sig(rho, 2),
           util::format_sig(p.summary.mean_slowdown, 4),
           util::format_sig(p.summary.var_slowdown, 4),
           util::format_sig(p.summary.mean_response, 4),
           util::format_sig(p.summary.p99_slowdown, 4),
           p.has_cutoff ? util::format_sig(p.cutoff, 4) : "-"});
    }
  }
  table.print(std::cout);

  if (cli.has("csv")) {
    std::cout << "\n";
    util::CsvWriter w(std::cout);
    w.header({"policy", "load", "mean_slowdown", "var_slowdown"});
    for (PolicyKind kind : policies) {
      for (double rho : loads) {
        const auto p = wb.run_point(kind, rho);
        w.row({core::to_string(kind), util::format_sig(rho, 3),
               util::format_sig(p.summary.mean_slowdown, 6),
               util::format_sig(p.summary.var_slowdown, 6)});
      }
    }
  }
  return 0;
}
