// Cutoff tuning walkthrough: how the SITA-U cutoffs are derived, and what
// "fairness" means concretely — the per-size-class slowdown profile.
//
//   $ ./cutoff_tuning --workload c90 --load 0.7
//
// Shows: (1) the load-equalizing SITA-E cutoff; (2) the analytic search
// for SITA-U-opt and SITA-U-fair with per-host predictions; (3) a simulated
// fairness profile — mean slowdown per job-size class — under SITA-E vs
// SITA-U-fair, demonstrating that unbalancing equalizes the experience of
// short and long jobs instead of sacrificing one for the other.
#include <iostream>

#include "distserv.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const util::Cli cli(argc, argv);
  const std::string workload = cli.get_string("workload", "c90");
  const double rho = cli.get_double("load", 0.7);
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 40000));

  const workload::WorkloadSpec& spec = workload::find_workload(workload);
  const std::vector<double> sizes = workload::make_sizes(spec, 21, jobs);
  const std::size_t mid = sizes.size() / 2;
  const std::vector<double> train(
      sizes.begin(), sizes.begin() + static_cast<std::ptrdiff_t>(mid));
  const std::vector<double> eval(
      sizes.begin() + static_cast<std::ptrdiff_t>(mid), sizes.end());
  core::CutoffDeriver deriver(train);

  // 1. SITA-E.
  const double e_cutoff = deriver.sita_e(2).front();
  std::cout << "SITA-E cutoff (load-equalizing): " << e_cutoff << " s\n";

  // 2. SITA-U searches with per-host analytic predictions.
  for (const char* label : {"opt", "fair"}) {
    const queueing::CutoffSearchResult r =
        label == std::string("opt") ? deriver.sita_u_opt(rho)
                                    : deriver.sita_u_fair(rho);
    std::cout << "\nSITA-U-" << label << " @ load " << rho << ": cutoff = "
              << r.cutoff << " s, Host-1 load fraction = "
              << util::format_sig(r.host1_load_fraction, 3)
              << " (scanned " << r.candidates_scanned << " candidates)\n";
    for (std::size_t i = 0; i < r.metrics.hosts.size(); ++i) {
      const auto& h = r.metrics.hosts[i];
      std::cout << "  host " << i << ": jobs " << util::format_sig(
                       100.0 * h.job_fraction, 3)
                << "%, rho " << util::format_sig(h.mg1.rho, 3)
                << ", predicted E[S] "
                << util::format_sig(h.mg1.mean_slowdown, 4) << "\n";
    }
  }

  // 3. Simulated fairness profile.
  dist::Rng rng(31);
  const workload::Trace trace =
      workload::Trace::with_poisson_load(eval, rho, 2, rng);
  const auto fair = deriver.sita_u_fair(rho);
  core::SitaPolicy sita_e({e_cutoff}, "SITA-E");
  core::SitaPolicy sita_fair({fair.cutoff}, "SITA-U-fair");

  std::cout << "\nMean slowdown per job-size class (simulation):\n";
  util::Table table({"size class (s)", "jobs", "SITA-E", "SITA-U-fair"});
  const core::RunResult run_e = core::simulate(sita_e, trace, 2);
  const core::RunResult run_f = core::simulate(sita_fair, trace, 2);
  const auto classes_e = core::slowdown_by_size_class(run_e, 8);
  const auto classes_f = core::slowdown_by_size_class(run_f, 8);
  for (std::size_t i = 0; i < classes_e.size(); ++i) {
    table.add_row({util::format_sig(classes_e[i].size_lo, 2) + " - " +
                       util::format_sig(classes_e[i].size_hi, 2),
                   std::to_string(classes_e[i].jobs),
                   util::format_sig(classes_e[i].mean_slowdown, 4),
                   util::format_sig(classes_f[i].mean_slowdown, 4)});
  }
  table.print(std::cout);

  const auto fr_e = core::fairness_at_cutoff(run_e, fair.cutoff);
  const auto fr_f = core::fairness_at_cutoff(run_f, fair.cutoff);
  std::cout << "\nShort vs long mean slowdown:  SITA-E "
            << util::format_sig(fr_e.mean_slowdown_short, 4) << " / "
            << util::format_sig(fr_e.mean_slowdown_long, 4)
            << "   SITA-U-fair "
            << util::format_sig(fr_f.mean_slowdown_short, 4) << " / "
            << util::format_sig(fr_f.mean_slowdown_long, 4) << "\n"
            << "SITA-U-fair equalizes the two — that is the paper's "
               "fairness criterion.\n";
  return 0;
}
