// Quickstart: simulate a 2-host supercomputing server under three task
// assignment policies and print the metrics the paper compares.
//
//   $ ./quickstart
//
// Walks the core API end to end: pick a calibrated workload, generate a
// trace, derive SITA cutoffs from training data, run policies, summarize.
#include <iostream>

#include "distserv.hpp"

int main() {
  using namespace distserv;

  // 1. A workload calibrated to the paper's PSC Cray C90 trace.
  const workload::WorkloadSpec& spec = workload::find_workload("c90");
  std::cout << "Workload: " << spec.system << "\n"
            << "Service distribution: "
            << workload::service_distribution(spec).name() << "\n\n";

  // 2. A synthetic trace: 20,000 jobs, Poisson arrivals, system load 0.7
  //    on 2 hosts. The first half trains cutoffs; the second half is run.
  const workload::Trace full =
      workload::make_trace(spec, /*rho=*/0.7, /*hosts=*/2, /*seed=*/42,
                           /*n=*/20000);
  const auto [train, eval] = full.split_halves();

  // 3. Policies. SITA needs a short/long cutoff: SITA-E equalizes load,
  //    SITA-U-fair equalizes the expected slowdown of shorts and longs.
  core::CutoffDeriver deriver(train.sizes());
  core::LeastWorkLeftPolicy lwl;
  core::SitaPolicy sita_e(deriver.sita_e(2), "SITA-E");
  const auto fair_cutoff = deriver.sita_u_fair(/*rho=*/0.7);
  core::SitaPolicy sita_u_fair({fair_cutoff.cutoff}, "SITA-U-fair");

  std::cout << "SITA-E cutoff:      " << sita_e.cutoffs()[0] << " s\n"
            << "SITA-U-fair cutoff: " << fair_cutoff.cutoff
            << " s  (puts load fraction "
            << fair_cutoff.host1_load_fraction << " on the short host)\n\n";

  // 4. Run and compare.
  util::Table table({"policy", "mean slowdown", "var slowdown",
                     "mean response (s)", "p99 slowdown"});
  for (core::Policy* policy :
       {static_cast<core::Policy*>(&lwl),
        static_cast<core::Policy*>(&sita_e),
        static_cast<core::Policy*>(&sita_u_fair)}) {
    const core::RunResult run = core::simulate(*policy, eval, /*hosts=*/2);
    const core::MetricsSummary m = core::summarize(run);
    table.add_numeric_row(policy->name(),
                          {m.mean_slowdown, m.var_slowdown, m.mean_response,
                           m.p99_slowdown},
                          4);
  }
  table.print(std::cout);

  std::cout << "\nUnbalancing load (SITA-U-fair) beats the best balancing "
               "policy — the paper's headline result.\n";
  return 0;
}
