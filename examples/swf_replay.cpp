// Replay a Standard Workload Format (SWF) log from Feitelson's Parallel
// Workloads Archive through the distributed server.
//
//   $ ./swf_replay path/to/CTC-SP2-1996-3.1-cln.swf --procs 8 --hosts 2
//   $ ./swf_replay            # no file: generates and replays a demo log
//
// This is how the paper's CTC experiment works with the *real* trace: parse
// the archive log, keep the 8-processor jobs, scale the original (bursty)
// interarrival times to the desired system load, and compare policies.
#include <iostream>

#include "distserv.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const util::Cli cli(argc, argv);
  const auto hosts = static_cast<std::size_t>(cli.get_int("hosts", 2));
  const double rho = cli.get_double("load", 0.7);

  workload::Trace trace;
  if (!cli.positional().empty()) {
    workload::SwfFilter filter;
    if (cli.has("procs")) filter.processors = cli.get_int("procs", 8);
    const auto r = workload::read_swf_file(cli.positional()[0], filter);
    std::cout << "Read " << cli.positional()[0] << ": " << r.lines_parsed
              << " jobs parsed, " << r.lines_filtered << " filtered, "
              << r.lines_malformed << " malformed; kept " << r.trace.size()
              << "\n";
    trace = r.trace;
  } else {
    // Demo path: synthesize a CTC-like trace, write it as SWF, read it back
    // — exercising the full archive tooling round trip.
    std::cout << "No SWF file given; generating a CTC-like demo log.\n";
    const auto& spec = workload::find_workload("ctc");
    const workload::Trace synthetic =
        workload::make_trace(spec, rho, hosts, /*seed=*/5, 20000);
    const std::string path = "/tmp/distserv_demo.swf";
    workload::write_swf_file(path, synthetic, 8, "distserv demo trace");
    trace = workload::read_swf_file(path).trace;
    std::cout << "Round-tripped " << trace.size() << " jobs through " << path
              << "\n";
  }
  if (trace.size() < 100) {
    std::cerr << "Too few jobs to evaluate.\n";
    return 1;
  }

  // Scale the log's own interarrival times to the requested system load
  // (paper sec 6) and split train/eval.
  trace = trace.scaled_to_load(rho, hosts);
  const auto [train, eval] = trace.split_halves();
  std::cout << "Evaluation half: " << eval.size() << " jobs, offered load "
            << util::format_sig(eval.offered_load(hosts), 3) << ", size C^2 "
            << util::format_sig(eval.stats().scv_size, 3) << "\n\n";

  core::CutoffDeriver deriver(train.sizes());
  core::LeastWorkLeftPolicy lwl;
  core::SitaPolicy sita_e(deriver.sita_e(hosts), "SITA-E");
  const auto fair = deriver.sita_u_fair(std::min(rho, 0.95));

  util::Table table({"policy", "mean slowdown", "var slowdown",
                     "mean response (s)"});
  std::vector<core::Policy*> policies = {&lwl, &sita_e};
  std::optional<core::SitaPolicy> sita_fair;
  std::optional<core::HybridSitaLwlPolicy> hybrid_fair;
  if (fair.feasible) {
    if (hosts == 2) {
      sita_fair.emplace(std::vector<double>{fair.cutoff}, "SITA-U-fair");
      policies.push_back(&*sita_fair);
    } else {
      hybrid_fair.emplace(
          fair.cutoff,
          core::hybrid_short_group_size(hosts),
          "SITA-U-fair+LWL");
      policies.push_back(&*hybrid_fair);
    }
  }
  for (core::Policy* policy : policies) {
    const core::RunResult run = core::simulate(*policy, eval, hosts);
    const core::MetricsSummary m = core::summarize(run);
    table.add_numeric_row(
        policy->name(),
        {m.mean_slowdown, m.var_slowdown, m.mean_response}, 4);
  }
  table.print(std::cout);
  return 0;
}
