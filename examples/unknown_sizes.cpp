// What if nobody tells you the job sizes? TAGS vs the size-aware policies.
//
//   $ ./unknown_sizes --workload c90 --load 0.6
//
// SITA needs a short/long estimate per job; the paper's sec 7 discusses how
// users might supply it. TAGS (the paper's reference [10]) needs nothing:
// every job starts on Host 1 and is killed-and-restarted on Host 2 if it
// outlives the cutoff — the system *discovers* the size, paying in wasted
// work. This example derives the TAGS-optimal cutoff analytically, runs
// the kill-and-restart simulator, and places the result between LWL (no
// size use at all) and SITA-U-opt (perfect size knowledge).
#include <iostream>

#include "distserv.hpp"

int main(int argc, char** argv) {
  using namespace distserv;
  const util::Cli cli(argc, argv);
  const std::string workload = cli.get_string("workload", "c90");
  const double rho = cli.get_double("load", 0.6);
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 30000));

  const workload::WorkloadSpec& spec = workload::find_workload(workload);
  const auto& service = workload::service_distribution(spec);
  const queueing::MixtureSizeModel model(service);
  const double lambda = queueing::lambda_for_load(model, rho, 2);

  // 1. Derive the TAGS cutoff with no trace data at all — just the
  //    analytic workload model.
  const core::TagsCutoffResult tags = core::find_tags_opt(model, lambda);
  if (!tags.feasible) {
    std::cerr << "TAGS infeasible at load " << rho
              << " (restart waste exceeds spare capacity)\n";
    return 1;
  }
  std::cout << "TAGS cutoff: " << util::format_sig(tags.cutoff, 4)
            << " s; predicted E[S] = "
            << util::format_sig(tags.metrics.mean_slowdown, 4)
            << "; wasted work = "
            << util::format_sig(100.0 * tags.metrics.wasted_work_fraction, 3)
            << "%\n\n";

  // 2. Simulate TAGS and the references on a common trace.
  dist::Rng rng(77);
  const workload::Trace trace =
      workload::generate_trace_poisson(service, jobs, rho, 2, rng);

  core::TagsServer tags_server({tags.cutoff});
  const core::MetricsSummary m_tags =
      core::summarize(tags_server.run(trace));

  core::LeastWorkLeftPolicy lwl;
  const core::MetricsSummary m_lwl =
      core::summarize(core::simulate(lwl, trace, 2));

  const queueing::CutoffSearchResult opt =
      queueing::find_sita_u_opt(model, lambda);
  core::SitaPolicy sita({opt.cutoff}, "SITA-U-opt");
  const core::MetricsSummary m_sita =
      core::summarize(core::simulate(sita, trace, 2));

  util::Table table({"policy", "size info needed", "mean slowdown",
                     "var slowdown"});
  table.add_row({"Least-Work-Left", "none (remaining-work oracle)",
                 util::format_sig(m_lwl.mean_slowdown, 4),
                 util::format_sig(m_lwl.var_slowdown, 4)});
  table.add_row({"TAGS", "none (kill & restart)",
                 util::format_sig(m_tags.mean_slowdown, 4),
                 util::format_sig(m_tags.var_slowdown, 4)});
  table.add_row({"SITA-U-opt", "1 bit (short/long)",
                 util::format_sig(m_sita.mean_slowdown, 4),
                 util::format_sig(m_sita.var_slowdown, 4)});
  table.print(std::cout);

  std::cout << "\nTAGS recovers most of the unbalancing win without any "
               "size information — the paper's [10] in action.\n";
  return 0;
}
