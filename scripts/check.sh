#!/usr/bin/env bash
# The tier-1 gate plus a ThreadSanitizer pass over the parallel sweep engine.
#
#   1. Configure + build the default tree and run the full ctest suite.
#   2. Rerun the audit slice (`ctest -L audit`): the property-based harness
#      that drives seeded random scenarios through the queueing-invariant
#      auditor (sim/audit.hpp), isolated so a failure is obvious.
#   3. Rerun the faults slice (`ctest -L faults`): the host failure model
#      unit tests plus the fault-injected property/metamorphic harness
#      (~200 seeded failure scenarios under the extended audit).
#   4. Configure a second tree with -DDISTSERV_TSAN=ON (benches/examples
#      off), build the sweep-runner determinism tests and the fault fuzz
#      harness, and run every test carrying the `tsan` ctest label plus
#      the fault property suite under the race detector.
#
# Usage: scripts/check.sh [build-dir] [tsan-build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== tier 1: configure + build =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== tier 1: ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== audit: ctest -L audit =="
ctest --test-dir "$BUILD_DIR" -L audit --output-on-failure

echo "== faults: ctest -L faults =="
ctest --test-dir "$BUILD_DIR" -L faults --output-on-failure

echo "== tsan: configure + build (determinism + fault fuzz tests) =="
cmake -B "$TSAN_DIR" -S . \
  -DDISTSERV_TSAN=ON \
  -DDISTSERV_BUILD_BENCH=OFF \
  -DDISTSERV_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_DIR" -j "$(nproc)" \
  --target test_sweep_runner test_fault_property

echo "== tsan: ctest -L tsan =="
ctest --test-dir "$TSAN_DIR" -L tsan --output-on-failure

echo "== tsan: fault fuzz harness =="
"$TSAN_DIR"/tests/test_fault_property

echo "All checks passed."
