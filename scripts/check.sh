#!/usr/bin/env bash
# The tier-1 gate plus a ThreadSanitizer pass over the parallel sweep engine.
#
#   1. Configure + build the default tree and run the full ctest suite.
#   2. Rerun the audit slice (`ctest -L audit`): the property-based harness
#      that drives seeded random scenarios through the queueing-invariant
#      auditor (sim/audit.hpp), isolated so a failure is obvious.
#   3. Rerun the faults slice (`ctest -L faults`): the host failure model
#      unit tests plus the fault-injected property/metamorphic harness
#      (~200 seeded failure scenarios under the extended audit).
#   4. Rerun the control slice (`ctest -L control`): the degraded-
#      information control-plane unit tests, bench flag parsing, and the
#      control fuzz harness (>= 200 seeded stale-state/RPC-loss scenarios).
#   4b. Rerun the streaming slice (`ctest -L streaming`): the JobSource
#      contract/equivalence wall, SWF chunk fuzzing, sketch accuracy
#      properties, and the bounded-memory allocation plateau.
#   4c. Rerun the elastic slice (`ctest -L elastic`): heterogeneous-fleet
#      and autoscaler unit tests plus the 224-seed elastic fuzz harness
#      (speed classes x hysteresis scaling x faults under the audit layer).
#   4d. Rerun the overload slice (`ctest -L overload`): bounded queues,
#      admission control, reneging, queue migration, the golden
#      bit-identity contract, and the 224-seed overload fuzz harness.
#   5. Configure a second tree with -DDISTSERV_TSAN=ON (benches/examples
#      off), build the sweep-runner determinism tests and the fault/
#      elastic/overload fuzz harnesses, and run every test carrying the
#      `tsan` ctest label plus the property suites under the race detector.
#   6. Configure a third tree with -DDISTSERV_UBSAN=ON and run the faults,
#      control, streaming, elastic, and overload slices under
#      UndefinedBehaviorSanitizer — the fault, control, power, and
#      overload planes are the code most exposed to time arithmetic on
#      degenerate configs (zero periods, unbounded backoff caps, warm-up
#      races, zero-patience deadlines).
#
# With --labels <regex> the script becomes a single-slice iteration loop:
# every tree (default, TSan, UBSan) still builds, but each ctest pass runs
# only the tests whose label matches the regex — e.g.
#
#   scripts/check.sh --labels control          # one slice, all three trees
#   scripts/check.sh --labels 'control|audit'  # two slices
#
# instead of re-running the full tier-1 suite in every sanitizer tree.
#
# Usage: scripts/check.sh [--labels <regex>] [build-dir] [tsan-build-dir] [ubsan-build-dir]
set -euo pipefail

LABELS=""
if [[ "${1:-}" == "--labels" ]]; then
  if [[ $# -lt 2 ]]; then
    echo "check.sh: --labels requires a ctest label regex" >&2
    exit 2
  fi
  LABELS="$2"
  shift 2
fi

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
UBSAN_DIR="${3:-build-ubsan}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== tier 1: configure + build =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ -n "$LABELS" ]]; then
  echo "== tier 1: ctest -L '$LABELS' =="
  ctest --test-dir "$BUILD_DIR" -L "$LABELS" --no-tests=error \
    --output-on-failure -j "$(nproc)"
else
  echo "== tier 1: ctest =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

  echo "== audit: ctest -L audit =="
  ctest --test-dir "$BUILD_DIR" -L audit --output-on-failure

  echo "== faults: ctest -L faults =="
  ctest --test-dir "$BUILD_DIR" -L faults --output-on-failure

  echo "== control: ctest -L control =="
  ctest --test-dir "$BUILD_DIR" -L control --output-on-failure

  echo "== streaming: ctest -L streaming =="
  ctest --test-dir "$BUILD_DIR" -L streaming --output-on-failure

  echo "== elastic: ctest -L elastic =="
  ctest --test-dir "$BUILD_DIR" -L elastic --output-on-failure

  echo "== overload: ctest -L overload =="
  ctest --test-dir "$BUILD_DIR" -L overload --output-on-failure
fi

echo "== tsan: configure + build (determinism + fuzz harnesses) =="
cmake -B "$TSAN_DIR" -S . \
  -DDISTSERV_TSAN=ON \
  -DDISTSERV_BUILD_BENCH=OFF \
  -DDISTSERV_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_DIR" -j "$(nproc)" \
  --target test_sweep_runner test_fault_property test_elastic_property \
  test_overload_property

if [[ -n "$LABELS" ]]; then
  echo "== tsan: ctest -L '$LABELS' =="
  # A slice with no tests in this tree is fine (e.g. --labels control):
  # the TSan tree only builds the tsan/faults/elastic/overload targets.
  ctest --test-dir "$TSAN_DIR" -L "$LABELS" --output-on-failure
else
  echo "== tsan: ctest -L tsan =="
  ctest --test-dir "$TSAN_DIR" -L tsan --output-on-failure

  echo "== tsan: fault fuzz harness =="
  "$TSAN_DIR"/tests/test_fault_property

  echo "== tsan: elastic fuzz harness =="
  "$TSAN_DIR"/tests/test_elastic_property

  echo "== tsan: overload fuzz harness =="
  "$TSAN_DIR"/tests/test_overload_property
fi

echo "== ubsan: configure + build (fault + control planes) =="
cmake -B "$UBSAN_DIR" -S . \
  -DDISTSERV_UBSAN=ON \
  -DDISTSERV_BUILD_BENCH=OFF \
  -DDISTSERV_BUILD_EXAMPLES=OFF
cmake --build "$UBSAN_DIR" -j "$(nproc)" \
  --target test_faults test_fault_property test_control \
  test_control_property test_probe_batching test_bench_flags \
  test_streaming test_stream_alloc \
  test_autoscaler test_elastic_property test_overload \
  test_overload_property

if [[ -n "$LABELS" ]]; then
  echo "== ubsan: ctest -L '$LABELS' =="
  ctest --test-dir "$UBSAN_DIR" -L "$LABELS" --output-on-failure
else
  echo "== ubsan: ctest -L 'faults|control|streaming|elastic|overload' =="
  ctest --test-dir "$UBSAN_DIR" \
    -L 'faults|control|streaming|elastic|overload' --output-on-failure
fi

echo "All checks passed."
