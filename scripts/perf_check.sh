#!/usr/bin/env bash
# Performance regression gate.
#
# Runs the bench_micro_simulator throughput suite (--json mode: end-to-end
# jobs/sec per policy at h in {2,8,32,1024} with faults/control off and on,
# a heterogeneous-elastic row — a 1x/2x/4x 32-host fleet under the
# hysteresis autoscaler — a multi-dispatcher control row (the tracked
# control config hash-sharded across four front-ends), plus the
# event-queue schedule+pop rate) and
# compares every benchmark against the checked-in baseline
# BENCH_simulator.json:
#
#   ratio = fresh_throughput / baseline_throughput
#   ratio <  FAIL_RATIO (default 0.70, a >30% regression)  -> fail
#   ratio <  WARN_RATIO (default 0.90, a 10-30% regression) -> warn
#
# Beyond the per-benchmark gate, the e2e rows are also checked for per-h
# SCALING regressions: for each (policy, mode), the fresh/baseline ratio at
# the largest h is compared against the ratio at the smallest h. Uniform
# machine slowdown cancels in that comparison, so a drop below SCALE_RATIO
# (default 0.75) means dispatch cost grew with h relative to the baseline —
# exactly the h-superlinearity the HostStateTable indices exist to prevent.
# Scaling drift warns; it fails only the per-benchmark gate if absolute
# throughput also fell.
#
# The fresh run uses the job count and repetition count recorded in the
# baseline, so the comparison is always like-for-like. Each tracked number
# is the MEDIAN of the reps (not the best): one lucky rep cannot mask a
# regression and one noisy-neighbor rep cannot fail the gate. The reps of
# one suite run are back-to-back, though, so a noisy-neighbor window that
# outlasts all three reps of a row still dents its median; as a flake
# guard the suite therefore reruns (up to PERF_ATTEMPTS times, default 3)
# whenever the fail gate trips, keeping the per-row MAX across attempts —
# contention windows wander between attempts, so a transient dip recovers,
# while a real regression fails every attempt identically. Baselines are
# machine-relative (per-row best observed = attainable throughput): after
# an intentional perf change (or on a new reference machine) regenerate
# with
#
#   bench_micro_simulator --json BENCH_simulator.json
#
# Under GitHub Actions ($GITHUB_STEP_SUMMARY set) the fresh-vs-baseline
# table is also appended to the job summary as markdown, and every
# offending row gets a ::warning/::error annotation naming the benchmark.
#
# Usage: scripts/perf_check.sh [bench-binary] [baseline.json] [fresh.json]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH_BIN="${1:-$ROOT/build/bench/bench_micro_simulator}"
BASELINE="${2:-$ROOT/BENCH_simulator.json}"
FRESH="${3:-$ROOT/build/BENCH_simulator_fresh.json}"
FAIL_RATIO="${FAIL_RATIO:-0.70}"
WARN_RATIO="${WARN_RATIO:-0.90}"
SCALE_RATIO="${SCALE_RATIO:-0.75}"

if [[ ! -x "$BENCH_BIN" ]]; then
  echo "perf_check: bench binary not found at $BENCH_BIN" >&2
  echo "perf_check: build it with: cmake --build build --target bench_micro_simulator" >&2
  exit 2
fi
if [[ ! -f "$BASELINE" ]]; then
  echo "perf_check: baseline not found at $BASELINE" >&2
  exit 2
fi

PYTHON="${PYTHON:-python3}"

read -r JOBS REPS < <("$PYTHON" - "$BASELINE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    base = json.load(f)
print(base.get("jobs", 20000), base.get("reps", 3))
EOF
)

ATTEMPTS="${PERF_ATTEMPTS:-3}"

# Run the suite, merging per-row max across attempts; retry only while the
# fail gate (a row below FAIL_RATIO, or missing) is tripped.
for (( attempt = 1; attempt <= ATTEMPTS; attempt++ )); do
  echo "perf_check: running throughput suite (jobs=$JOBS reps=$REPS, attempt $attempt/$ATTEMPTS)"
  ATTEMPT_JSON="$FRESH.attempt"
  "$BENCH_BIN" --json "$ATTEMPT_JSON" --jobs "$JOBS" --reps "$REPS"
  if (( attempt == 1 )); then
    mv "$ATTEMPT_JSON" "$FRESH"
  else
    "$PYTHON" - "$FRESH" "$ATTEMPT_JSON" <<'EOF'
import json, sys
merged_path, attempt_path = sys.argv[1:3]
with open(merged_path) as f:
    merged = json.load(f)
with open(attempt_path) as f:
    attempt = json.load(f)
best = {b["name"]: b for b in merged["benchmarks"]}
for b in attempt["benchmarks"]:
    prev = best.get(b["name"])
    if prev is None or float(b["throughput"]) > float(prev["throughput"]):
        best[b["name"]] = b
merged["benchmarks"] = [best[b["name"]] for b in attempt["benchmarks"]]
with open(merged_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
EOF
    rm -f "$ATTEMPT_JSON"
  fi
  if "$PYTHON" - "$BASELINE" "$FRESH" "$FAIL_RATIO" <<'EOF'
import json, sys
baseline_path, fresh_path, fail_ratio = sys.argv[1:4]
fail_ratio = float(fail_ratio)
def load(path):
    with open(path) as f:
        return {b["name"]: float(b["throughput"]) for b in json.load(f)["benchmarks"]}
base, fresh = load(baseline_path), load(fresh_path)
ok = all(
    name in fresh and (b <= 0 or fresh[name] / b >= fail_ratio)
    for name, b in base.items()
)
sys.exit(0 if ok else 1)
EOF
  then
    break
  fi
  if (( attempt < ATTEMPTS )); then
    echo "perf_check: fail gate tripped, retrying (merging per-row max)"
  fi
done

"$PYTHON" - "$BASELINE" "$FRESH" "$FAIL_RATIO" "$WARN_RATIO" "$SCALE_RATIO" <<'EOF'
import json
import os
import re
import sys

baseline_path, fresh_path, fail_ratio, warn_ratio, scale_ratio = sys.argv[1:6]
fail_ratio = float(fail_ratio)
warn_ratio = float(warn_ratio)
scale_ratio = float(scale_ratio)

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: float(b["throughput"]) for b in doc["benchmarks"]}

base = load(baseline_path)
fresh = load(fresh_path)

missing = sorted(set(base) - set(fresh))
extra = sorted(set(fresh) - set(base))
failures = []
warnings = []
rows = []  # (name, baseline, fresh, ratio, status) for the step summary

width = max(len(n) for n in base) if base else 0
print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  ratio")
for name in sorted(base):
    if name not in fresh:
        continue
    b, f = base[name], fresh[name]
    ratio = f / b if b > 0 else float("inf")
    mark = ""
    status = "ok"
    if ratio < fail_ratio:
        mark = "  << FAIL"
        status = "FAIL"
        failures.append((name, ratio))
    elif ratio < warn_ratio:
        mark = "  <- warn"
        status = "warn"
        warnings.append((name, ratio))
    rows.append((name, b, f, ratio, status))
    print(f"{name:<{width}}  {b:>12.0f}  {f:>12.0f}  {ratio:5.2f}x{mark}")

for name in missing:
    failures.append((name, 0.0))
    rows.append((name, base[name], 0.0, 0.0, "MISSING"))
    print(f"{name:<{width}}  missing from fresh run  << FAIL")
for name in extra:
    rows.append((name, 0.0, fresh[name], 0.0, "new"))
    print(f"{name:<{width}}  (new benchmark, no baseline entry)")

# GitHub Actions job summary: the same table as markdown, offenders first.
summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
if summary_path:
    order = {"FAIL": 0, "MISSING": 0, "warn": 1, "new": 2, "ok": 3}
    with open(summary_path, "a") as out:
        out.write("## perf_check: fresh vs baseline (median of reps)\n\n")
        out.write(
            f"Gates: fail < {fail_ratio:.2f}x, warn < {warn_ratio:.2f}x, "
            f"per-h scaling < {scale_ratio:.2f}x\n\n"
        )
        out.write("| benchmark | baseline | fresh | ratio | status |\n")
        out.write("|---|---:|---:|---:|---|\n")
        for name, b, f, ratio, status in sorted(
            rows, key=lambda r: (order[r[4]], r[0])
        ):
            icon = {"FAIL": "❌", "MISSING": "❌", "warn": "⚠️",
                    "new": "🆕", "ok": "✅"}[status]
            out.write(
                f"| `{name}` | {b:.0f} | {f:.0f} | {ratio:.2f}x "
                f"| {icon} {status} |\n"
            )
        out.write("\n")

# Per-h scaling check: normalized ratios cancel uniform machine drift, so
# small-h vs large-h divergence isolates h-dependent cost growth.
series = {}  # (policy, mode) -> {h: fresh/base}
for name in base:
    m = re.fullmatch(r"e2e/(.+)/h(\d+)/(\w+)", name)
    if not m or name not in fresh or base[name] <= 0:
        continue
    series.setdefault((m.group(1), m.group(3)), {})[int(m.group(2))] = (
        fresh[name] / base[name]
    )
scale_warnings = []
for (policy, mode), by_h in sorted(series.items()):
    if len(by_h) < 2:
        continue
    h_lo, h_hi = min(by_h), max(by_h)
    rel = by_h[h_hi] / by_h[h_lo]
    if rel < scale_ratio:
        scale_warnings.append((policy, mode, h_lo, h_hi, rel))
for policy, mode, h_lo, h_hi, rel in scale_warnings:
    print(
        f"::warning title=per-h scaling regression::e2e/{policy}/{mode}: "
        f"h{h_hi} ratio is {rel:.2f}x the h{h_lo} ratio "
        f"(dispatch cost growing with h vs baseline)"
    )

if warnings:
    for name, ratio in warnings:
        # GitHub Actions annotation; plain text anywhere else.
        print(f"::warning title=perf regression 10-30%::{name} at {ratio:.2f}x baseline")
if failures:
    for name, ratio in failures:
        print(f"::error title=perf regression >30%::{name} at {ratio:.2f}x baseline")
    print(f"perf_check: FAILED ({len(failures)} benchmark(s) below {fail_ratio:.2f}x)")
    sys.exit(1)
print(
    f"perf_check: OK ({len(base)} benchmarks, {len(warnings)} warning(s), "
    f"{len(scale_warnings)} scaling warning(s))"
)
EOF
