#!/usr/bin/env bash
# Reproduce everything: build, test, regenerate every paper table/figure.
#
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== configure =="
cmake -B "$BUILD_DIR" -G Ninja

echo "== build =="
cmake --build "$BUILD_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

echo "== benches (paper tables & figures) =="
: > bench_output.txt
for b in "$BUILD_DIR"/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

echo "== examples =="
for e in quickstart compare_policies capacity_planning cutoff_tuning \
         swf_replay unknown_sizes; do
  echo "===== $e ====="
  "$BUILD_DIR/examples/$e"
  echo
done

echo "Done. See test_output.txt and bench_output.txt."
