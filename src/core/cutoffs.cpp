#include "core/cutoffs.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

CutoffDeriver::CutoffDeriver(std::span<const double> training_sizes)
    : model_(training_sizes) {}

std::vector<double> CutoffDeriver::sita_e(std::size_t hosts) const {
  return queueing::sita_e_cutoffs(model_, hosts);
}

std::vector<double> CutoffDeriver::sita_class(
    std::span<const double> shares) const {
  DS_EXPECTS(shares.size() >= 2);
  double total = 0.0;
  for (double share : shares) {
    DS_EXPECTS(share > 0.0);
    total += share;
  }
  std::vector<double> cutoffs;
  cutoffs.reserve(shares.size() - 1);
  double cumulative = 0.0;
  for (std::size_t k = 0; k + 1 < shares.size(); ++k) {
    cumulative += shares[k];
    cutoffs.push_back(model_.load_quantile(cumulative / total));
  }
  return cutoffs;
}

queueing::CutoffSearchResult CutoffDeriver::sita_u_opt(
    double rho, std::size_t grid) const {
  DS_EXPECTS(rho > 0.0 && rho < 1.0);
  return queueing::find_sita_u_opt(model_, lambda_for(rho, 2), grid);
}

queueing::CutoffSearchResult CutoffDeriver::sita_u_fair(
    double rho, std::size_t grid) const {
  DS_EXPECTS(rho > 0.0 && rho < 1.0);
  return queueing::find_sita_u_fair(model_, lambda_for(rho, 2), grid);
}

queueing::MultiCutoffResult CutoffDeriver::sita_u_opt_multi(
    double rho, std::size_t hosts) const {
  DS_EXPECTS(rho > 0.0 && rho < 1.0);
  return queueing::find_sita_u_opt_multi(model_, lambda_for(rho, hosts),
                                         hosts);
}

queueing::MultiCutoffResult CutoffDeriver::sita_u_fair_multi(
    double rho, std::size_t hosts) const {
  DS_EXPECTS(rho > 0.0 && rho < 1.0);
  return queueing::find_sita_u_fair_multi(model_, lambda_for(rho, hosts),
                                          hosts);
}

double CutoffDeriver::rule_of_thumb(double rho) const {
  return queueing::rule_of_thumb_cutoff(model_, rho);
}

double CutoffDeriver::lambda_for(double rho, std::size_t hosts) const {
  return queueing::lambda_for_load(model_, rho, hosts);
}

}  // namespace distserv::core
