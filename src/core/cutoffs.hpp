// Cutoff derivation following the paper's methodology (§4.1): cutoffs are
// computed from the *training half* of the trace — analytically, by scoring
// candidate cutoffs with the per-host M/G/1 model — and then used to run the
// policy on the evaluation half. This class owns the training-data size
// model and exposes one derivation per SITA flavor.
#pragma once

#include <span>
#include <vector>

#include "queueing/cutoff_search.hpp"
#include "queueing/size_model.hpp"

namespace distserv::core {

/// Derives SITA cutoffs from training job sizes.
class CutoffDeriver {
 public:
  /// Copies the training sizes into an empirical size model.
  explicit CutoffDeriver(std::span<const double> training_sizes);

  /// Load-equalizing cutoffs for `hosts` hosts (SITA-E). Requires hosts>=2.
  [[nodiscard]] std::vector<double> sita_e(std::size_t hosts) const;

  /// Capacity-proportional between-class cutoffs for a heterogeneous fleet
  /// (SITA-class, core/policies/class_sita.hpp): class k receives the size
  /// band carrying a load share proportional to shares[k] — typically the
  /// summed speed of its hosts. Returns shares.size() - 1 cutoffs at the
  /// cumulative load-share quantiles; equal shares reproduce sita_e.
  /// Requires >= 2 positive shares.
  [[nodiscard]] std::vector<double> sita_class(
      std::span<const double> shares) const;

  /// Slowdown-optimal 2-host cutoff at system load `rho` (SITA-U-opt).
  [[nodiscard]] queueing::CutoffSearchResult sita_u_opt(
      double rho, std::size_t grid = 400) const;

  /// Fairness 2-host cutoff at system load `rho` (SITA-U-fair).
  [[nodiscard]] queueing::CutoffSearchResult sita_u_fair(
      double rho, std::size_t grid = 400) const;

  /// Full multi-cutoff SITA-U-opt for `hosts` hosts at system load `rho`
  /// (extension; see queueing::find_sita_u_opt_multi).
  [[nodiscard]] queueing::MultiCutoffResult sita_u_opt_multi(
      double rho, std::size_t hosts) const;

  /// Full multi-cutoff SITA-U-fair (exact nested construction).
  [[nodiscard]] queueing::MultiCutoffResult sita_u_fair_multi(
      double rho, std::size_t hosts) const;

  /// Paper §4.4 rule of thumb: cutoff putting load fraction rho/2 on Host 1.
  [[nodiscard]] double rule_of_thumb(double rho) const;

  /// The arrival rate implied by system load `rho` on `hosts` hosts.
  [[nodiscard]] double lambda_for(double rho, std::size_t hosts) const;

  [[nodiscard]] const queueing::EmpiricalSizeModel& model() const noexcept {
    return model_;
  }

 private:
  queueing::EmpiricalSizeModel model_;
};

}  // namespace distserv::core
