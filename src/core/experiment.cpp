#include "core/experiment.hpp"

#include <array>
#include <cmath>

#include "core/policies/central_queue.hpp"
#include "core/policies/class_sita.hpp"
#include "core/policies/hybrid_sita_lwl.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/power_of_d.hpp"
#include "core/policies/random.hpp"
#include "core/policies/round_robin.hpp"
#include "core/policies/shortest_queue.hpp"
#include "core/policies/sita.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"
#include "workload/arrival.hpp"
#include "workload/synthetic.hpp"

namespace distserv::core {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandom: return "Random";
    case PolicyKind::kRoundRobin: return "Round-Robin";
    case PolicyKind::kShortestQueue: return "Shortest-Queue";
    case PolicyKind::kLeastWorkLeft: return "Least-Work-Left";
    case PolicyKind::kCentralQueue: return "Central-Queue";
    case PolicyKind::kSitaE: return "SITA-E";
    case PolicyKind::kSitaUOpt: return "SITA-U-opt";
    case PolicyKind::kSitaUFair: return "SITA-U-fair";
    case PolicyKind::kSitaRuleOfThumb: return "SITA-U-thumb";
    case PolicyKind::kHybridSitaE: return "SITA-E+LWL";
    case PolicyKind::kHybridSitaUOpt: return "SITA-U-opt+LWL";
    case PolicyKind::kHybridSitaUFair: return "SITA-U-fair+LWL";
    case PolicyKind::kSitaUOptMulti: return "SITA-U-opt-multi";
    case PolicyKind::kSitaUFairMulti: return "SITA-U-fair-multi";
    case PolicyKind::kLeastLoaded2: return "Least-Loaded-2";
    case PolicyKind::kSitaClass: return "SITA-class";
  }
  return "?";
}

namespace {

constexpr std::array kAllPolicyKinds = {
    PolicyKind::kRandom,          PolicyKind::kRoundRobin,
    PolicyKind::kShortestQueue,   PolicyKind::kLeastWorkLeft,
    PolicyKind::kCentralQueue,    PolicyKind::kSitaE,
    PolicyKind::kSitaUOpt,        PolicyKind::kSitaUFair,
    PolicyKind::kSitaRuleOfThumb, PolicyKind::kHybridSitaE,
    PolicyKind::kHybridSitaUOpt,  PolicyKind::kHybridSitaUFair,
    PolicyKind::kSitaUOptMulti,   PolicyKind::kSitaUFairMulti,
    PolicyKind::kLeastLoaded2,    PolicyKind::kSitaClass,
};

}  // namespace

std::span<const PolicyKind> all_policy_kinds() noexcept {
  return kAllPolicyKinds;
}

std::optional<PolicyKind> policy_from_string(std::string_view name) {
  for (PolicyKind kind : kAllPolicyKinds) {
    if (util::iequals(to_string(kind), name)) return kind;
  }
  return std::nullopt;
}

std::vector<std::string> registered_policies() {
  std::vector<std::string> names;
  names.reserve(kAllPolicyKinds.size());
  for (PolicyKind kind : kAllPolicyKinds) names.push_back(to_string(kind));
  return names;
}

namespace {

std::vector<double> split_train(const std::vector<double>& sizes) {
  return {sizes.begin(),
          sizes.begin() + static_cast<std::ptrdiff_t>(sizes.size() / 2)};
}

std::vector<double> split_eval(const std::vector<double>& sizes) {
  return {sizes.begin() + static_cast<std::ptrdiff_t>(sizes.size() / 2),
          sizes.end()};
}

std::uint64_t point_stream(double rho, std::size_t replication) {
  // Deterministic substream id per (load, replication). Keyed by the load
  // value, not the point's position in a sweep, so run_point and sweep (at
  // any thread count) draw identical arrival streams.
  const auto rho_key =
      static_cast<std::uint64_t>(std::llround(rho * 1e9));
  return rho_key * 1000003ULL + replication;
}

}  // namespace

Workbench::Workbench(const workload::WorkloadSpec& spec,
                     ExperimentConfig config)
    : spec_(spec),
      config_(config),
      train_sizes_(split_train(
          workload::make_sizes(spec, config.seed, config.n_jobs))),
      eval_sizes_(split_eval(
          workload::make_sizes(spec, config.seed, config.n_jobs))),
      deriver_(train_sizes_) {
  DS_EXPECTS(config_.hosts >= 1);
  DS_EXPECTS(config_.replications >= 1);
  DS_EXPECTS(train_sizes_.size() >= 100);  // cutoffs need substance
}

workload::Trace Workbench::make_eval_trace(double rho,
                                           std::size_t replication) const {
  return make_eval_trace(rho, replication, {});
}

workload::Trace Workbench::make_eval_trace(
    double rho, std::size_t replication,
    std::vector<workload::Job>&& buffer) const {
  dist::Rng rng =
      dist::Rng(config_.seed).split(point_stream(rho, replication));
  const auto arrivals = make_arrival_process(eval_lambda(rho));
  return workload::Trace::with_arrivals(eval_sizes_, *arrivals, rng,
                                        std::move(buffer));
}

double Workbench::eval_lambda(double rho) const {
  const double mean = util::compensated_sum(eval_sizes_) /
                      static_cast<double>(eval_sizes_.size());
  return rho * static_cast<double>(config_.hosts) / mean;
}

std::unique_ptr<workload::ArrivalProcess> Workbench::make_arrival_process(
    double lambda) const {
  switch (config_.arrivals) {
    case ArrivalKind::kPoisson:
      return std::make_unique<workload::PoissonArrivals>(lambda);
    case ArrivalKind::kBursty:
      return std::make_unique<workload::Mmpp2Arrivals>(
          workload::Mmpp2Arrivals::with_burstiness(
              lambda, config_.burst_ratio, config_.burst_time_fraction,
              config_.mean_cycle_arrivals));
    case ArrivalKind::kDiurnal:
      return std::make_unique<workload::DiurnalArrivals>(
          lambda, config_.diurnal_amplitude, config_.diurnal_period);
  }
  DS_ASSERT(false && "unhandled ArrivalKind");
  return std::make_unique<workload::PoissonArrivals>(lambda);
}

Workbench::PointPlan Workbench::plan_point(PolicyKind kind, double rho) const {
  // The paper's analysis lives at rho < 1. Past saturation queues grow
  // without bound, so rho >= 1 is only meaningful when overload protection
  // bounds the system; 8x saturation caps the trace horizon. Policies whose
  // cutoffs come from the M/G/1 analysis still require a stable rho in
  // their own derivations below.
  DS_EXPECTS(rho > 0.0 &&
             (rho < 1.0 || (config_.overload.enabled && rho <= 8.0)));
  PointPlan plan;
  plan.point.policy = kind;
  plan.point.rho = rho;
  const std::size_t h = config_.hosts;
  const double err = config_.sita_error_rate;
  switch (kind) {
    case PolicyKind::kRandom:
      plan.make_policy = [] { return std::make_unique<RandomPolicy>(); };
      return plan;
    case PolicyKind::kRoundRobin:
      plan.make_policy = [] { return std::make_unique<RoundRobinPolicy>(); };
      return plan;
    case PolicyKind::kShortestQueue:
      plan.make_policy = [] {
        return std::make_unique<ShortestQueuePolicy>();
      };
      return plan;
    case PolicyKind::kLeastWorkLeft:
      plan.make_policy = [] {
        return std::make_unique<LeastWorkLeftPolicy>();
      };
      return plan;
    case PolicyKind::kCentralQueue:
      plan.make_policy = [] { return std::make_unique<CentralQueuePolicy>(); };
      return plan;
    case PolicyKind::kSitaE: {
      std::vector<double> cutoffs = deriver_.sita_e(h);
      plan.point.has_cutoff = true;
      plan.point.cutoff = cutoffs.front();
      plan.point.host1_load_fraction = 1.0 / static_cast<double>(h);
      plan.make_policy = [cutoffs = std::move(cutoffs), err] {
        return std::make_unique<SitaPolicy>(cutoffs, "SITA-E", err);
      };
      return plan;
    }
    case PolicyKind::kSitaUOpt:
    case PolicyKind::kSitaUFair: {
      DS_EXPECTS(h == 2 &&
                 "SITA-U flavors use the 2-host cutoff; use the hybrid "
                 "grouped variants for more hosts");
      const queueing::CutoffSearchResult r =
          kind == PolicyKind::kSitaUOpt
              ? deriver_.sita_u_opt(rho, config_.cutoff_grid)
              : deriver_.sita_u_fair(rho, config_.cutoff_grid);
      plan.point.has_cutoff = true;
      plan.point.feasible = r.feasible;
      plan.point.cutoff = r.cutoff;
      plan.point.host1_load_fraction = r.host1_load_fraction;
      DS_EXPECTS(r.feasible);
      plan.make_policy = [cutoff = r.cutoff, label = to_string(kind), err] {
        return std::make_unique<SitaPolicy>(std::vector<double>{cutoff},
                                            label, err);
      };
      return plan;
    }
    case PolicyKind::kSitaRuleOfThumb: {
      DS_EXPECTS(h == 2);
      const double cutoff = deriver_.rule_of_thumb(rho);
      plan.point.has_cutoff = true;
      plan.point.cutoff = cutoff;
      plan.point.host1_load_fraction =
          deriver_.model().load_fraction_below(cutoff);
      plan.make_policy = [cutoff, label = to_string(kind), err] {
        return std::make_unique<SitaPolicy>(std::vector<double>{cutoff},
                                            label, err);
      };
      return plan;
    }
    case PolicyKind::kSitaUOptMulti:
    case PolicyKind::kSitaUFairMulti: {
      queueing::MultiCutoffResult r =
          kind == PolicyKind::kSitaUOptMulti
              ? deriver_.sita_u_opt_multi(rho, h)
              : deriver_.sita_u_fair_multi(rho, h);
      plan.point.has_cutoff = true;
      plan.point.feasible = r.feasible;
      DS_EXPECTS(r.feasible);
      plan.point.cutoff = r.cutoffs.front();
      plan.point.host1_load_fraction = r.host_load_fractions.front();
      plan.make_policy = [cutoffs = std::move(r.cutoffs),
                          label = to_string(kind), err] {
        return std::make_unique<SitaPolicy>(cutoffs, label, err);
      };
      return plan;
    }
    case PolicyKind::kHybridSitaE:
    case PolicyKind::kHybridSitaUOpt:
    case PolicyKind::kHybridSitaUFair: {
      DS_EXPECTS(h >= 2);
      double cutoff = 0.0;
      double f = 0.5;
      if (kind == PolicyKind::kHybridSitaE) {
        cutoff = deriver_.sita_e(2).front();
      } else {
        const queueing::CutoffSearchResult r =
            kind == PolicyKind::kHybridSitaUOpt
                ? deriver_.sita_u_opt(rho, config_.cutoff_grid)
                : deriver_.sita_u_fair(rho, config_.cutoff_grid);
        DS_EXPECTS(r.feasible);
        cutoff = r.cutoff;
        f = r.host1_load_fraction;
      }
      plan.point.has_cutoff = true;
      plan.point.cutoff = cutoff;
      plan.point.host1_load_fraction = f;
      // Equal groups (paper §5): preserves the 2-host per-host loads.
      const std::size_t g = hybrid_short_group_size(h);
      plan.make_policy = [cutoff, g, label = to_string(kind)] {
        return std::make_unique<HybridSitaLwlPolicy>(cutoff, g, label);
      };
      return plan;
    }
    case PolicyKind::kLeastLoaded2:
      plan.make_policy = [] {
        return std::make_unique<PowerOfDPolicy>(
            2, PowerOfDPolicy::Criterion::kLeastLoaded);
      };
      return plan;
    case PolicyKind::kSitaClass: {
      // Capacity classes are the maximal runs of equal speed in host_speeds;
      // each class receives a load share proportional to its summed speed, so
      // a class of four 2x hosts absorbs twice the work of four 1x hosts.
      DS_EXPECTS(config_.host_speeds.size() == h &&
                 "SITA-class needs per-host speeds grouped into >= 2 classes");
      std::vector<std::size_t> class_sizes;
      std::vector<double> shares;
      for (std::size_t i = 0; i < h; ++i) {
        if (i == 0 || config_.host_speeds[i] != config_.host_speeds[i - 1]) {
          class_sizes.push_back(0);
          shares.push_back(0.0);
        }
        ++class_sizes.back();
        shares.back() += config_.host_speeds[i];
      }
      DS_EXPECTS(class_sizes.size() >= 2 &&
                 "SITA-class is degenerate with a single capacity class");
      std::vector<double> cutoffs = deriver_.sita_class(shares);
      const double total =
          util::compensated_sum(shares);
      plan.point.has_cutoff = true;
      plan.point.cutoff = cutoffs.front();
      plan.point.host1_load_fraction = shares.front() / total;
      plan.make_policy = [cutoffs = std::move(cutoffs),
                          class_sizes = std::move(class_sizes)] {
        return std::make_unique<ClassSitaPolicy>(cutoffs, class_sizes);
      };
      return plan;
    }
  }
  DS_ASSERT(false && "unhandled PolicyKind");
  return plan;
}

MetricsSummary Workbench::run_replication(const PointPlan& plan,
                                          std::size_t replication) const {
  return run_replication(plan, replication, replication);
}

MetricsSummary Workbench::run_replication(const PointPlan& plan,
                                          std::size_t replication,
                                          std::size_t seed_index) const {
  ReplicationWorkspace workspace;
  return run_replication(plan, replication, seed_index, workspace);
}

MetricsSummary Workbench::run_replication(const PointPlan& plan,
                                          std::size_t replication,
                                          std::size_t seed_index,
                                          ReplicationWorkspace& ws) const {
  DS_EXPECTS(replication < config_.replications);
  DS_EXPECTS(plan.make_policy != nullptr);
  const std::uint64_t seed = replication_seed(seed_index);
  if (config_.replication_probe) {
    config_.replication_probe(plan.point.policy, plan.point.rho, replication,
                              seed);
  }
  const PolicyPtr policy = plan.make_policy();
  DistributedServer server(config_.hosts, *policy);
  if (!config_.host_speeds.empty()) {
    server.set_host_speeds(config_.host_speeds);
  }
  if (config_.faults.enabled) {
    server.enable_faults(config_.faults, config_.recovery);
  }
  if (config_.control.enabled) {
    server.enable_control(config_.control);
  }
  if (config_.autoscaler.enabled) {
    server.enable_autoscaler(config_.autoscaler);
  }
  if (config_.overload.enabled) {
    server.enable_overload(config_.overload);
  }
  if (config_.audit.enabled) {
    // A streaming replication must not hoard per-job shadows in the audit
    // layer; bounded mode keeps the map O(jobs in flight).
    sim::AuditConfig audit = config_.audit;
    if (config_.stream) audit.bounded_shadow = true;
    server.enable_audit(audit);
    // SITA routing is a pure function of job size when classification is
    // perfect — unless faults, the control plane, the autoscaler, or
    // overload protection are on: a dead, drained, or full interval's jobs
    // get remapped to live neighbors (or a fallback level reroutes them)
    // and the pure-size oracle no longer holds.
    if (const auto* sita = dynamic_cast<const SitaPolicy*>(policy.get());
        sita != nullptr && sita->classification_error() == 0.0 &&
        !config_.faults.enabled && !config_.control.enabled &&
        !config_.autoscaler.enabled && !config_.overload.enabled) {
      server.auditor()->set_expected_route(
          [sita](double size) { return sita->interval_of(size); });
    }
  }
  RunResult result;
  if (config_.stream) {
    // Same (seed, load, replication)-keyed rng and the same one-gap-per-job
    // draw order as make_eval_trace, so the streaming run is bit-identical
    // to the materialised one — no trace is ever built.
    dist::Rng rng = dist::Rng(config_.seed)
                        .split(point_stream(plan.point.rho, seed_index));
    const auto arrivals = make_arrival_process(eval_lambda(plan.point.rho));
    workload::GeneratedSource source(eval_sizes_, *arrivals, rng);
    StreamOptions options;
    options.sketch_eps = config_.sketch_eps;
    result = server.run_stream(source, seed, std::move(options));
  } else {
    workload::Trace trace = make_eval_trace(plan.point.rho, seed_index,
                                            std::move(ws.job_buffer));
    result = server.run(trace, seed);
    ws.job_buffer = std::move(trace).take_jobs();  // recycle for later calls
  }
  if (config_.audit.enabled) sim::throw_if_failed(*result.audit);
  return summarize(result);
}

ExperimentPoint Workbench::finalize_point(
    const PointPlan& plan, std::vector<MetricsSummary> replication_summaries) {
  return finalize_point(plan, std::move(replication_summaries), {});
}

ExperimentPoint Workbench::finalize_point(
    const PointPlan& plan, std::vector<MetricsSummary> replication_summaries,
    std::vector<ReplicationFailure> failures) {
  ExperimentPoint point = plan.point;
  point.replication_summaries = std::move(replication_summaries);
  point.failures = std::move(failures);
  if (point.replication_summaries.empty()) {
    // Every replication failed (hardened sweep): nothing to average.
    point.slowdown_ci = {};
    return point;
  }
  point.summary = average_summaries(point.replication_summaries);
  if (point.replication_summaries.size() >= 2) {
    std::vector<double> means;
    means.reserve(point.replication_summaries.size());
    for (const MetricsSummary& s : point.replication_summaries) {
      means.push_back(s.mean_slowdown);
    }
    point.slowdown_ci = stats::t_interval(means);
  } else {
    point.slowdown_ci.mean = point.summary.mean_slowdown;
    point.slowdown_ci.lo = point.slowdown_ci.hi = point.slowdown_ci.mean;
  }
  return point;
}

ExperimentPoint Workbench::run_point(PolicyKind kind, double rho) const {
  const PointPlan plan = plan_point(kind, rho);
  std::vector<MetricsSummary> summaries;
  summaries.reserve(config_.replications);
  ReplicationWorkspace workspace;  // trace storage shared across reps
  for (std::size_t rep = 0; rep < config_.replications; ++rep) {
    summaries.push_back(run_replication(plan, rep, rep, workspace));
  }
  return finalize_point(plan, std::move(summaries));
}

std::vector<ExperimentPoint> Workbench::sweep(
    std::span<const PolicyKind> policies, std::span<const double> loads) const {
  std::vector<ExperimentPoint> out;
  out.reserve(policies.size() * loads.size());
  for (double rho : loads) {
    for (PolicyKind kind : policies) {
      out.push_back(run_point(kind, rho));
    }
  }
  return out;
}

// The parallel overload lives in core/sweep_runner.cpp.

}  // namespace distserv::core
