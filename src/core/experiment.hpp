// The experiment harness used by every figure-reproduction binary.
//
// A Workbench fixes a workload (sizes generated once from the calibrated
// distribution), splits it into a training half (cutoff derivation) and an
// evaluation half (policy runs), and then produces one ExperimentPoint per
// (policy, system load): build arrivals at that load, run the policy over
// `replications` independent arrival seeds, and summarize. This mirrors the
// paper's methodology (§2.2, §4.1) with the addition of replications for
// confidence intervals.
//
// Thread-safety contract: after construction a Workbench is immutable, and
// every const member (run_point, plan_point, run_replication, sweep, the
// accessors) may be called concurrently from any number of threads. Each
// call derives its randomness from (seed, load, replication) alone — never
// from shared mutable state — so results are independent of calling order
// and of the number of threads. Policy and ServerView objects stay strictly
// per-run: plan_point returns a *factory* and every replication constructs
// its own Policy instance from it.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/cutoffs.hpp"
#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "core/recovery.hpp"
#include "sim/audit.hpp"
#include "sim/autoscaler.hpp"
#include "sim/control_plane.hpp"
#include "sim/faults.hpp"
#include "sim/overload.hpp"
#include "stats/confidence.hpp"
#include "workload/catalog.hpp"

namespace distserv::core {

/// Every policy the library ships.
enum class PolicyKind {
  kRandom,
  kRoundRobin,
  kShortestQueue,
  kLeastWorkLeft,
  kCentralQueue,
  kSitaE,
  kSitaUOpt,
  kSitaUFair,
  kSitaRuleOfThumb,   ///< SITA with the rho/2 rule-of-thumb cutoff
  kHybridSitaE,       ///< §5 grouped SITA-E + LWL (many hosts)
  kHybridSitaUOpt,
  kHybridSitaUFair,
  kSitaUOptMulti,     ///< extension: true (h-1)-cutoff SITA-U-opt
  kSitaUFairMulti,    ///< extension: true (h-1)-cutoff SITA-U-fair
  kLeastLoaded2,      ///< power-of-2 on normalized load (heterogeneity-aware)
  kSitaClass,         ///< per-class SITA over speed classes (heterogeneous)
};

/// Display name, e.g. "SITA-U-fair".
[[nodiscard]] std::string to_string(PolicyKind kind);

// The string-keyed policy registry. Benches, examples, and CLI flags name
// policies by their display string and resolve them here, so the library's
// policy list has exactly one source of truth (the enum + to_string).

/// Every PolicyKind, in declaration order.
[[nodiscard]] std::span<const PolicyKind> all_policy_kinds() noexcept;

/// Inverse of to_string: resolves a display name (case-insensitively) to
/// its PolicyKind. Returns nullopt for unknown names.
[[nodiscard]] std::optional<PolicyKind> policy_from_string(
    std::string_view name);

/// Display names of every registered policy, in declaration order — the
/// round trip policy_from_string(registered_policies()[i]) always succeeds.
[[nodiscard]] std::vector<std::string> registered_policies();

/// Arrival process used for the evaluation trace.
enum class ArrivalKind {
  kPoisson,  ///< the paper's default (§2.2)
  kBursty,   ///< MMPP2 stand-in for scaled trace arrivals (§6)
  kDiurnal,  ///< sinusoidal daily-cycle NHPP (workload-realism studies)
};

/// Knobs for a Workbench.
struct ExperimentConfig {
  std::size_t hosts = 2;
  std::size_t n_jobs = 0;  ///< total sizes generated; 0 = workload default
  std::uint64_t seed = 1;
  std::size_t replications = 3;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  /// SITA classification-error rate (paper §7 ablation). 0 = perfect.
  double sita_error_rate = 0.0;
  std::size_t cutoff_grid = 400;
  // MMPP2 shape for ArrivalKind::kBursty. Calibrated so that, like the
  // paper's scaled trace arrivals, SITA-U beats LWL through load ~0.9 but
  // LWL wins above ~0.95 (arrival burstiness dominates there).
  double burst_ratio = 30.0;
  double burst_time_fraction = 0.05;
  double mean_cycle_arrivals = 400.0;
  // Diurnal NHPP shape for ArrivalKind::kDiurnal.
  double diurnal_amplitude = 0.8;
  double diurnal_period = 86400.0;
  /// Streaming replications: pull jobs from a workload::GeneratedSource
  /// instead of materialising the evaluation trace, and summarize from the
  /// streaming accumulators (DistributedServer::run_stream) — O(hosts +
  /// sketch) memory per replication. Completion times, means, and variances
  /// are bit-identical to the materialised path (the source replays the
  /// exact draw sequence of Trace::with_arrivals); slowdown quantiles are
  /// ε-approximate. When the audit layer is also enabled it runs in
  /// bounded-shadow mode (sim::AuditConfig::bounded_shadow).
  bool stream = false;
  /// Rank-error bound for the streaming slowdown-quantile sketch.
  double sketch_eps = 1e-3;
  /// Audit layer (sim/audit.hpp). When enabled, every replication runs
  /// under full invariant checking — a SITA expected-route oracle is
  /// attached automatically when the policy's routing is deterministic
  /// (and faults are off; remapping breaks the pure-size oracle) — and a
  /// violated invariant throws sim::AuditFailure.
  sim::AuditConfig audit;
  /// Host failure model (sim/faults.hpp). Disabled by default; when
  /// faults.enabled is false every run is bit-identical to a build without
  /// the failure model.
  sim::FaultConfig faults;
  /// What happens to a job in service when its host fails.
  RecoveryMode recovery = RecoveryMode::kResubmit;
  /// Degraded-information control plane (sim/control_plane.hpp). Disabled
  /// by default; when control.enabled is false every run is bit-identical
  /// to a build without the control plane.
  sim::ControlPlaneConfig control;
  /// Per-host speed factors (service time = size / speed). Empty (the
  /// default) or all-1.0 fleets are bit-identical to a build without
  /// heterogeneity. PolicyKind::kSitaClass requires the speeds to form at
  /// least two contiguous equal-speed classes.
  std::vector<double> host_speeds;
  /// Elastic-fleet autoscaler (sim/autoscaler.hpp). Disabled by default;
  /// when autoscaler.enabled is false every run is bit-identical to a
  /// build without the subsystem.
  sim::AutoscalerConfig autoscaler;
  /// Overload protection (sim/overload.hpp): bounded queues, admission
  /// control, deadline reneging, queue migration. Disabled by default; when
  /// overload.enabled is false every run is bit-identical to a build
  /// without the subsystem.
  sim::OverloadConfig overload;
  /// Test seam: invoked at the top of every run_replication with
  /// (policy, rho, replication, seed) — `seed` is the simulation seed the
  /// replication will run under (it differs from replication_seed(r) on a
  /// retried replication, see SweepOptions::retry_seed_offset). A throw
  /// here behaves exactly like a replication failing mid-run — used to
  /// exercise sweep failure isolation. Leave empty in real experiments.
  std::function<void(PolicyKind, double, std::size_t, std::uint64_t)>
      replication_probe;
};

/// One replication (or plan step) that threw during a hardened sweep
/// (SweepOptions::isolate_failures). The failure is recorded instead of
/// propagated so sibling replications and points still complete.
struct ReplicationFailure {
  /// Sentinel `replication` value: the point's plan_point call itself
  /// threw, so no replication ran at all for this point.
  static constexpr std::size_t kPlanStep = static_cast<std::size_t>(-1);
  std::size_t replication = 0;  ///< index, or kPlanStep
  std::uint64_t seed = 0;       ///< simulation seed the replication used
  std::string error;            ///< what() of the first failure
  bool retried = false;         ///< a retry was attempted
  bool recovered = false;       ///< the retry succeeded
  /// Simulation seed the retry ran under (0 when no retry was attempted).
  /// Differs from `seed` unless SweepOptions::retry_seed_offset is 0.
  std::uint64_t retry_seed = 0;
};

/// One (policy, load) measurement.
struct ExperimentPoint {
  PolicyKind policy{};
  double rho = 0.0;
  MetricsSummary summary;  ///< averaged over replications
  std::vector<MetricsSummary> replication_summaries;
  /// 95% t-interval on mean slowdown over replications (defined when
  /// replications >= 2; zero-width otherwise).
  stats::Interval slowdown_ci;
  // SITA metadata (has_cutoff == true for SITA flavors).
  bool has_cutoff = false;
  double cutoff = 0.0;
  double host1_load_fraction = 0.0;
  bool feasible = true;  ///< false if no stable cutoff existed
  /// Replications that failed under SweepOptions::isolate_failures (empty
  /// in the default rethrow mode and for clean points). Failed replications
  /// are absent from replication_summaries; `summary` averages the
  /// survivors.
  std::vector<ReplicationFailure> failures;
};

/// Execution knobs for Workbench::sweep (see core/sweep_runner.hpp for the
/// engine). Results are bit-identical for every `threads` value.
struct SweepOptions {
  /// Worker threads; 0 = one per hardware thread, 1 = run inline.
  std::size_t threads = 0;
  /// Invoked after each completed (point, replication) task with
  /// (completed, total). Called from worker threads under a lock; keep it
  /// cheap. Completion *order* is scheduling-dependent even though results
  /// are not.
  std::function<void(std::size_t completed, std::size_t total)> progress;
  /// Hardened mode: a throwing replication (including sim::AuditFailure)
  /// is recorded in its point's ExperimentPoint::failures — with the seed
  /// it ran under and the error text — instead of aborting the sweep.
  /// Sibling replications and points are unaffected. Default off: the
  /// first exception propagates, as the inline sweep does.
  bool isolate_failures = false;
  /// With isolate_failures: rerun a failed replication once before
  /// recording it. A recovered retry contributes its summary normally and
  /// is still logged (retried + recovered) for the experiment record.
  bool retry_failed_once = false;
  /// Replication-index offset the retry runs under: the rerun uses
  /// replication index r + retry_seed_offset, giving it a fresh simulation
  /// seed AND a fresh arrival stream. A bitwise-identical rerun cannot
  /// recover from a deterministic failure, so the offset must be nonzero to
  /// make retry_failed_once meaningful; it must also exceed the replication
  /// count so retry indices never collide with sibling replications. 0
  /// restores the historical same-seed retry (useful only against
  /// environmental flakes such as OOM).
  std::size_t retry_seed_offset = 1000000;
};

/// Fixture binding a workload to the experiment methodology.
class Workbench {
 public:
  Workbench(const workload::WorkloadSpec& spec, ExperimentConfig config);

  /// The cutoff work for one (policy, load) point, done once, plus a
  /// factory that builds fresh Policy instances from it. The factory is
  /// const and safe to invoke concurrently; each replication must use its
  /// own instance (policies are stateful during a run).
  struct PointPlan {
    /// policy/rho/cutoff metadata filled; summaries left empty.
    ExperimentPoint point;
    std::function<PolicyPtr()> make_policy;
  };

  /// Reusable per-caller scratch storage for run_replication. One
  /// workspace per thread (NOT shared across threads) turns the
  /// per-replication trace build into a zero-allocation refill once its
  /// buffer is warm. Passing a fresh workspace is always correct — reuse
  /// is purely an allocation optimization; results are bit-identical.
  struct ReplicationWorkspace {
    std::vector<workload::Job> job_buffer;
  };

  /// Runs one policy at one system load (all replications, inline).
  /// Requires 0 < rho < 1 — except with overload protection enabled, which
  /// makes past-saturation loads well-defined (rho <= 8 then).
  [[nodiscard]] ExperimentPoint run_point(PolicyKind kind, double rho) const;

  /// Derives the cutoffs/metadata for a point without running anything.
  [[nodiscard]] PointPlan plan_point(PolicyKind kind, double rho) const;

  /// Runs replication `replication` in [0, config().replications) of a
  /// planned point. Deterministic in (seed, rho, replication) only.
  [[nodiscard]] MetricsSummary run_replication(const PointPlan& plan,
                                               std::size_t replication) const;

  /// Retry seam: like run_replication, but derives the simulation seed and
  /// the arrival stream from `seed_index` instead of `replication` (the
  /// sweep runner passes r + SweepOptions::retry_seed_offset so a retry is
  /// a genuinely different draw, not a bitwise-identical rerun).
  /// `replication` must still be a valid replication index.
  [[nodiscard]] MetricsSummary run_replication(const PointPlan& plan,
                                               std::size_t replication,
                                               std::size_t seed_index) const;

  /// Allocation-lean variant: recycles `workspace` buffers across calls
  /// from the same thread. Bit-identical to the overloads above.
  [[nodiscard]] MetricsSummary run_replication(
      const PointPlan& plan, std::size_t replication, std::size_t seed_index,
      ReplicationWorkspace& workspace) const;

  /// Assembles the point from its per-replication summaries (averaging +
  /// t-interval), exactly as run_point does.
  [[nodiscard]] static ExperimentPoint finalize_point(
      const PointPlan& plan, std::vector<MetricsSummary> replication_summaries);

  /// Hardened-sweep variant: also attaches the failure records, and
  /// tolerates an empty summary list (every replication failed) by leaving
  /// the averaged summary zeroed instead of asserting.
  [[nodiscard]] static ExperimentPoint finalize_point(
      const PointPlan& plan, std::vector<MetricsSummary> replication_summaries,
      std::vector<ReplicationFailure> failures);

  /// The simulation seed replication `replication` of any point runs
  /// under. Deterministic: config().seed + replication.
  [[nodiscard]] std::uint64_t replication_seed(
      std::size_t replication) const noexcept {
    return config_.seed + replication;
  }

  /// Full cross product, row-major by load then policy. Equivalent to
  /// concatenating run_point results; runs inline on the calling thread.
  [[nodiscard]] std::vector<ExperimentPoint> sweep(
      std::span<const PolicyKind> policies, std::span<const double> loads) const;

  /// Same cross product fanned out across `options.threads` workers
  /// (core/sweep_runner.cpp). Output is bit-identical to the inline
  /// overload for every thread count.
  [[nodiscard]] std::vector<ExperimentPoint> sweep(
      std::span<const PolicyKind> policies, std::span<const double> loads,
      const SweepOptions& options) const;

  /// Cutoff machinery over the training half (for inspection / figures).
  [[nodiscard]] const CutoffDeriver& deriver() const noexcept {
    return deriver_;
  }

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// The evaluation-half sizes (arrivals are attached per point).
  [[nodiscard]] const std::vector<double>& eval_sizes() const noexcept {
    return eval_sizes_;
  }

 private:
  /// Evaluation trace for one replication at one load.
  [[nodiscard]] workload::Trace make_eval_trace(double rho,
                                                std::size_t replication) const;

  /// As above, recycling `buffer` for the job vector.
  [[nodiscard]] workload::Trace make_eval_trace(
      double rho, std::size_t replication,
      std::vector<workload::Job>&& buffer) const;

  /// Arrival rate lambda giving system load `rho` over the eval sizes.
  [[nodiscard]] double eval_lambda(double rho) const;

  /// Builds the configured arrival process at rate `lambda` — the single
  /// construction point shared by the materialised and streaming paths.
  [[nodiscard]] std::unique_ptr<workload::ArrivalProcess>
  make_arrival_process(double lambda) const;

  workload::WorkloadSpec spec_;
  ExperimentConfig config_;
  std::vector<double> train_sizes_;
  std::vector<double> eval_sizes_;
  CutoffDeriver deriver_;
};

}  // namespace distserv::core
