// The experiment harness used by every figure-reproduction binary.
//
// A Workbench fixes a workload (sizes generated once from the calibrated
// distribution), splits it into a training half (cutoff derivation) and an
// evaluation half (policy runs), and then produces one ExperimentPoint per
// (policy, system load): build arrivals at that load, run the policy over
// `replications` independent arrival seeds, and summarize. This mirrors the
// paper's methodology (§2.2, §4.1) with the addition of replications for
// confidence intervals.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/cutoffs.hpp"
#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "stats/confidence.hpp"
#include "workload/catalog.hpp"

namespace distserv::core {

/// Every policy the library ships.
enum class PolicyKind {
  kRandom,
  kRoundRobin,
  kShortestQueue,
  kLeastWorkLeft,
  kCentralQueue,
  kSitaE,
  kSitaUOpt,
  kSitaUFair,
  kSitaRuleOfThumb,   ///< SITA with the rho/2 rule-of-thumb cutoff
  kHybridSitaE,       ///< §5 grouped SITA-E + LWL (many hosts)
  kHybridSitaUOpt,
  kHybridSitaUFair,
  kSitaUOptMulti,     ///< extension: true (h-1)-cutoff SITA-U-opt
  kSitaUFairMulti,    ///< extension: true (h-1)-cutoff SITA-U-fair
};

/// Display name, e.g. "SITA-U-fair".
[[nodiscard]] std::string to_string(PolicyKind kind);

/// Arrival process used for the evaluation trace.
enum class ArrivalKind {
  kPoisson,  ///< the paper's default (§2.2)
  kBursty,   ///< MMPP2 stand-in for scaled trace arrivals (§6)
  kDiurnal,  ///< sinusoidal daily-cycle NHPP (workload-realism studies)
};

/// Knobs for a Workbench.
struct ExperimentConfig {
  std::size_t hosts = 2;
  std::size_t n_jobs = 0;  ///< total sizes generated; 0 = workload default
  std::uint64_t seed = 1;
  std::size_t replications = 3;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  /// SITA classification-error rate (paper §7 ablation). 0 = perfect.
  double sita_error_rate = 0.0;
  std::size_t cutoff_grid = 400;
  // MMPP2 shape for ArrivalKind::kBursty. Calibrated so that, like the
  // paper's scaled trace arrivals, SITA-U beats LWL through load ~0.9 but
  // LWL wins above ~0.95 (arrival burstiness dominates there).
  double burst_ratio = 30.0;
  double burst_time_fraction = 0.05;
  double mean_cycle_arrivals = 400.0;
  // Diurnal NHPP shape for ArrivalKind::kDiurnal.
  double diurnal_amplitude = 0.8;
  double diurnal_period = 86400.0;
};

/// One (policy, load) measurement.
struct ExperimentPoint {
  PolicyKind policy{};
  double rho = 0.0;
  MetricsSummary summary;  ///< averaged over replications
  std::vector<MetricsSummary> replication_summaries;
  /// 95% t-interval on mean slowdown over replications (defined when
  /// replications >= 2; zero-width otherwise).
  stats::Interval slowdown_ci;
  // SITA metadata (has_cutoff == true for SITA flavors).
  bool has_cutoff = false;
  double cutoff = 0.0;
  double host1_load_fraction = 0.0;
  bool feasible = true;  ///< false if no stable cutoff existed
};

/// Fixture binding a workload to the experiment methodology.
class Workbench {
 public:
  Workbench(const workload::WorkloadSpec& spec, ExperimentConfig config);

  /// Runs one policy at one system load.
  [[nodiscard]] ExperimentPoint run_point(PolicyKind kind, double rho);

  /// Full cross product, row-major by load then policy.
  [[nodiscard]] std::vector<ExperimentPoint> sweep(
      std::span<const PolicyKind> policies, std::span<const double> loads);

  /// Cutoff machinery over the training half (for inspection / figures).
  [[nodiscard]] const CutoffDeriver& deriver() const noexcept {
    return deriver_;
  }

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// The evaluation-half sizes (arrivals are attached per point).
  [[nodiscard]] const std::vector<double>& eval_sizes() const noexcept {
    return eval_sizes_;
  }

 private:
  /// Builds the policy for a point; fills cutoff metadata into `point`.
  [[nodiscard]] PolicyPtr make_policy(PolicyKind kind, double rho,
                                      ExperimentPoint& point) const;

  /// Evaluation trace for one replication at one load.
  [[nodiscard]] workload::Trace make_eval_trace(double rho,
                                                std::size_t replication) const;

  workload::WorkloadSpec spec_;
  ExperimentConfig config_;
  std::vector<double> train_sizes_;
  std::vector<double> eval_sizes_;
  CutoffDeriver deriver_;
};

}  // namespace distserv::core
