#include "core/host_state.hpp"

#include <bit>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::core {

namespace {

/// Lowest set bit index of a non-zero word.
inline std::uint32_t ctz64(std::uint64_t word) {
  return static_cast<std::uint32_t>(std::countr_zero(word));
}

inline std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

}  // namespace

// --- HostBitset ---

void HostBitset::reset(std::size_t n, bool value) {
  n_ = n;
  const std::size_t w = words_for(n);
  words_.assign(w, value ? ~std::uint64_t{0} : 0);
  if (value && (n & 63) != 0) {
    // Clear the tail bits past n so count/first_set never see ghosts.
    words_.back() = (std::uint64_t{1} << (n & 63)) - 1;
  }
  summary_.assign(words_for(w), 0);
  if (value) {
    for (std::size_t i = 0; i < w; ++i) {
      summary_[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
  }
  count_ = value ? n : 0;
}

void HostBitset::set(std::size_t i, bool value) {
  DS_EXPECTS(i < n_);
  const std::size_t w = i >> 6;
  const std::uint64_t mask = std::uint64_t{1} << (i & 63);
  const bool old = (words_[w] & mask) != 0;
  if (old == value) return;
  if (value) {
    words_[w] |= mask;
    summary_[w >> 6] |= std::uint64_t{1} << (w & 63);
    ++count_;
  } else {
    words_[w] &= ~mask;
    if (words_[w] == 0) summary_[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
    --count_;
  }
}

std::optional<std::uint32_t> HostBitset::first_set() const {
  for (std::size_t s = 0; s < summary_.size(); ++s) {
    if (summary_[s] == 0) continue;
    const std::size_t w = (s << 6) + ctz64(summary_[s]);
    return static_cast<std::uint32_t>((w << 6) + ctz64(words_[w]));
  }
  return std::nullopt;
}

std::optional<std::uint32_t> HostBitset::first_set_in(std::uint32_t lo,
                                                      std::uint32_t hi) const {
  if (lo >= hi || lo >= n_) return std::nullopt;
  // Partial first word, then summary-guided jump to the next set word.
  std::size_t w = lo >> 6;
  std::uint64_t bits = words_[w] & ~((std::uint64_t{1} << (lo & 63)) - 1);
  if (bits == 0) {
    std::size_t s = (w + 1) >> 6;
    if (s >= summary_.size()) return std::nullopt;
    std::uint64_t rest =
        summary_[s] & ~((std::uint64_t{1} << ((w + 1) & 63)) - 1);
    while (rest == 0) {
      if (++s >= summary_.size()) return std::nullopt;
      rest = summary_[s];
    }
    w = (s << 6) + ctz64(rest);
    bits = words_[w];
  }
  const auto idx = static_cast<std::uint32_t>((w << 6) + ctz64(bits));
  return idx < hi ? std::optional<std::uint32_t>{idx} : std::nullopt;
}

std::uint32_t HostBitset::select(std::size_t k) const {
  DS_EXPECTS(k < count_);
  for (std::size_t w = 0;; ++w) {
    const auto pop =
        static_cast<std::size_t>(std::popcount(words_[w]));
    if (k >= pop) {
      k -= pop;
      continue;
    }
    std::uint64_t bits = words_[w];
    while (k > 0) {
      bits &= bits - 1;  // drop the lowest set bit
      --k;
    }
    return static_cast<std::uint32_t>((w << 6) + ctz64(bits));
  }
}

// --- ArgminTree ---

void ArgminTree::reset(std::size_t n) {
  n_ = n;
  base_ = 1;
  while (base_ < n_) base_ <<= 1;
  nodes_.assign(2 * base_, Node{});
  for (std::size_t i = 0; i < base_; ++i) {
    nodes_[base_ + i].idx = static_cast<std::uint32_t>(i);
  }
  // All keys are kAbsent, so internal nodes resolve to their lower-index
  // child; seed them so the idx invariant holds from the start.
  for (std::size_t i = base_ - 1; i >= 1; --i) {
    nodes_[i] = nodes_[2 * i];
  }
}

void ArgminTree::set(std::size_t i, double key) {
  DS_EXPECTS(i < n_);
  std::size_t node = base_ + i;
  if (nodes_[node].key == key) return;
  nodes_[node].key = key;
  for (node >>= 1; node >= 1; node >>= 1) {
    const Node& l = nodes_[2 * node];
    const Node& r = nodes_[2 * node + 1];
    nodes_[node] = wins(l, r) ? l : r;
  }
}

std::optional<std::uint32_t> ArgminTree::argmin() const {
  if (n_ == 0 || nodes_[1].key == kAbsent) return std::nullopt;
  return nodes_[1].idx;
}

std::optional<std::uint32_t> ArgminTree::argmin_in(std::uint32_t lo,
                                                   std::uint32_t hi) const {
  if (hi > n_) hi = static_cast<std::uint32_t>(n_);
  if (lo >= hi) return std::nullopt;
  // Standard bottom-up range fold; the (key, idx) lexicographic comparator
  // makes the fold order irrelevant, so ties still break to lowest index.
  Node best{kAbsent, std::numeric_limits<std::uint32_t>::max()};
  std::size_t l = base_ + lo;
  std::size_t r = base_ + hi;
  while (l < r) {
    if (l & 1) {
      if (wins(nodes_[l], best)) best = nodes_[l];
      ++l;
    }
    if (r & 1) {
      --r;
      if (wins(nodes_[r], best)) best = nodes_[r];
    }
    l >>= 1;
    r >>= 1;
  }
  if (best.key == kAbsent) return std::nullopt;
  return best.idx;
}

// --- HostStateTable ---

void HostStateTable::reset(std::size_t hosts, Semantics semantics, double t0) {
  DS_EXPECTS(hosts >= 1);
  semantics_ = semantics;
  heterogeneous_ = false;
  queue_cap_ = 0;
  backlog_cap_ = 0.0;
  queue_len_.assign(hosts, 0);
  speed_.assign(hosts, 1.0);
  class_id_.assign(hosts, 0);
  obs_jitter_.assign(hosts, 0.0);
  work_ref_.assign(hosts, 0.0);
  work_amt_.assign(hosts, 0.0);
  busy_.assign(hosts, 0);
  idle_.assign(hosts, 1);
  observed_time_.assign(hosts, t0);
  up_.reset(hosts, true);
  idle_up_.reset(hosts, true);
  dirty_.clear();
  dirty_.reserve(hosts);  // dedup bounds the list at one entry per host
  dirty_flag_.assign(hosts, 0);
  queue_tree_.reset(hosts);
  work_tree_.reset(hosts);
  observed_at_.reset(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    queue_tree_.set(h, 0.0);
    if (semantics_ == Semantics::kObserved) {
      work_tree_.set(h, 0.0);  // every up host ranks by its frozen value
      observed_at_.set(h, t0);
    }
    // kLive: idle hosts are resolved through the idle-bitset, not the work
    // tree (their zero cannot live in the absolute-key space), so the work
    // tree starts empty.
  }
}

void HostStateTable::set_live(HostId h, bool busy, double completion,
                              double queued_work, std::uint32_t queue_len) {
  DS_EXPECTS(semantics_ == Semantics::kLive);
  DS_EXPECTS(h < size());
  busy_[h] = busy ? 1 : 0;
  work_ref_[h] = busy ? completion : 0.0;
  work_amt_[h] = queued_work;
  queue_len_[h] = queue_len;
  idle_[h] = (!busy && queue_len == 0) ? 1 : 0;
  mark_dirty(h);
}

void HostStateTable::set_observation(HostId h, std::uint32_t queue_len,
                                     double work_left, bool idle, double at,
                                     double jitter) {
  DS_EXPECTS(semantics_ == Semantics::kObserved);
  DS_EXPECTS(h < size());
  DS_EXPECTS(jitter >= 0.0 && jitter < 1.0);
  busy_[h] = idle ? 0 : 1;
  work_ref_[h] = 0.0;
  work_amt_[h] = work_left;
  queue_len_[h] = queue_len;
  idle_[h] = idle ? 1 : 0;
  observed_time_[h] = at;
  obs_jitter_[h] = jitter;
  mark_dirty(h);
}

void HostStateTable::set_up(HostId h, bool up) {
  DS_EXPECTS(h < size());
  up_.set(h, up);
  mark_dirty(h);
}

void HostStateTable::set_speed(HostId h, double speed,
                               std::uint32_t capacity_class) {
  DS_EXPECTS(h < size());
  DS_EXPECTS(speed > 0.0);
  speed_[h] = speed;
  class_id_[h] = capacity_class;
  if (speed != 1.0) heterogeneous_ = true;
  mark_dirty(h);
}

double HostStateTable::max_age(double t) const {
  flush();
  const std::optional<std::uint32_t> oldest = observed_at_.argmin();
  if (!oldest) return 0.0;
  // max over hosts of (t - observed_at_i) equals t - min observed_at_i
  // exactly: correctly-rounded subtraction is monotone in its subtrahend.
  const double age = t - observed_at_.key(*oldest);
  return age > 0.0 ? age : 0.0;
}

void HostStateTable::mark_dirty(HostId h) {
  if (dirty_flag_[h] != 0) return;
  dirty_flag_[h] = 1;
  dirty_.push_back(h);
}

void HostStateTable::flush() const {
  for (const std::uint32_t h : dirty_) {
    refresh_idle(h);
    refresh_queue_key(h);
    refresh_work_key(h);
    if (semantics_ == Semantics::kObserved) {
      observed_at_.set(h, observed_time_[h]);
    }
    dirty_flag_[h] = 0;
  }
  dirty_.clear();
}

void HostStateTable::refresh_idle(HostId h) const {
  idle_up_.set(h, idle_[h] != 0 && up_.test(h));
}

void HostStateTable::refresh_queue_key(HostId h) const {
  if (!up_.test(h)) {
    queue_tree_.set(h, ArgminTree::kAbsent);
    return;
  }
  // Speed-scaled Shortest-Queue: a 2x host with 4 jobs looks like 2. The
  // jitter term (kObserved only, < 1) re-randomizes snapshot ties without
  // reordering distinct queue lengths. Both default to the identity
  // (q + 0.0 == q, x / 1.0 == x), so homogeneous runs keep bitwise keys.
  queue_tree_.set(h, (static_cast<double>(queue_len_[h]) + obs_jitter_[h]) /
                         speed_[h]);
}

void HostStateTable::refresh_work_key(HostId h) const {
  if (!up_.test(h)) {
    work_tree_.set(h, ArgminTree::kAbsent);
    return;
  }
  if (semantics_ == Semantics::kObserved) {
    // Frozen values rank directly (the raw stored value, matching what a
    // per-host scan of the snapshot would have compared). The jitter term
    // is a relative-epsilon nudge that re-randomizes exact-tie ranking
    // (snapshot herding) and vanishes bitwise at jitter 0 (w + 0.0 == w).
    work_tree_.set(h, work_amt_[h] +
                          obs_jitter_[h] *
                              (std::abs(work_amt_[h]) * 1e-9 + 1e-12));
    return;
  }
  // kLive: only busy hosts carry a time-invariant absolute key — the
  // instant their whole backlog clears. Idle hosts (work 0) are resolved
  // via the idle-bitset at query time; a host that is neither (up, not
  // busy, jobs queued) exists only transiently inside event processing and
  // is never policy-visible, so it carries no key either.
  work_tree_.set(h, busy_[h] != 0
                        ? work_ref_[h] +
                              (work_amt_[h] > 0.0 ? work_amt_[h] : 0.0)
                        : ArgminTree::kAbsent);
}

std::optional<HostId> HostStateTable::resolve_work_argmin(
    std::optional<std::uint32_t> idle_cand,
    std::optional<std::uint32_t> tree_cand, double now) const {
  if (semantics_ == Semantics::kObserved) return tree_cand;
  if (!idle_cand) return tree_cand;
  if (!tree_cand) return idle_cand;
  // An idle host observes work 0, the minimum. A busy host ties only when
  // its backlog clears exactly at `now` — re-evaluate with the original
  // read formula and apply the scan's lowest-index rule; otherwise the
  // idle host wins outright (0 < any positive work).
  if (work_left(*tree_cand, now) == 0.0) {
    return std::min(*idle_cand, *tree_cand);
  }
  return idle_cand;
}

}  // namespace distserv::core
