// Structure-of-arrays host state with O(log h) argmin indices — the
// policy-facing view of the fleet, designed so h in the thousands is a
// first-class regime.
//
// Before this table existed, every state-sensitive policy (Shortest-Queue,
// Least-Work-Left, ...) scanned all h hosts through per-host virtual
// getters on ServerView — O(h) virtual calls per arrival, which is why the
// committed throughput baseline sagged h2 -> h8 -> h32 and h = 1024 was
// unusable. HostStateTable keeps the observable state in contiguous arrays
// (queue lengths, work backlogs, an up-bitset) and maintains two tournament
// (segment-tree) indices — argmin queue length over up hosts, and argmin
// work left over up hosts — incrementally, O(log h) amortized per enqueue,
// departure, or fault transition. Dispatch for the argmin policies is then
// O(log h) per arrival; liveness checks for Random/Round-Robin/SITA/
// Power-of-d are O(1) bit tests on the up-bitset.
//
// Index maintenance is LAZY: a mutation records the host on a dirty list
// (O(1), deduplicated) and the next tournament query repairs the affected
// leaves before answering. Policies that never consult a tournament
// (Random, Round-Robin, SITA, Power-of-d) therefore pay nothing for the
// indices; argmin policies pay the same O(log h) per mutation they would
// under eager maintenance, just deferred to their next query. The bitsets
// and raw arrays are always current — only the trees defer. Consequence:
// const queries repair shared index state, so a table must not be queried
// from multiple threads concurrently (each simulation owns its table and
// is single-threaded; sweeps parallelize over whole simulations).
//
// Two semantics for "work left", selected at reset():
//
//   * kLive — the table mirrors a running DistributedServer. A busy host's
//     remaining work decays continuously with the clock, so the table
//     stores the *absolute* backlog-clearing key (completion time of the
//     running job plus queued work) which is time-invariant between events,
//     and work_left(h, now) subtracts `now` on read. The work tournament
//     ranks busy hosts by that absolute key; idle hosts (work 0, the
//     minimum) are resolved through the idle-bitset at query time, so the
//     argmin matches the classical linear scan — lowest index on ties —
//     exactly (see argmin_work()).
//
//   * kObserved — the table holds frozen per-host observations (a control
//     plane's probe-refreshed snapshot, a test stub's scripted state). Work
//     values do not decay; work_left(h, now) returns the stored value
//     verbatim and the work tournament ranks the values directly. The table
//     also tracks each observation's timestamp with an incremental
//     min-index, so snapshot staleness (max_age) is O(1) per query instead
//     of an O(h) rescan per routing decision.
//
// Determinism: every query reproduces the decision the replaced O(h) scans
// made, including lowest-index tie-breaks, which the golden-record fixtures
// pin bit-exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace distserv::core {

/// Fixed-size bitset over hosts with a one-level summary for fast
/// first-set queries and a maintained popcount. The summary word i marks
/// which 64-bit payload words are non-zero, so first_set() touches
/// O(h/4096) summary words plus two payload words.
class HostBitset {
 public:
  void reset(std::size_t n, bool value);
  void set(std::size_t i, bool value);
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Number of set bits (maintained incrementally, O(1)).
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool any() const noexcept { return count_ > 0; }

  /// Lowest set index, or nullopt when empty.
  [[nodiscard]] std::optional<std::uint32_t> first_set() const;
  /// Lowest set index in [lo, hi), or nullopt.
  [[nodiscard]] std::optional<std::uint32_t> first_set_in(
      std::uint32_t lo, std::uint32_t hi) const;
  /// The k-th set index (0-based, k < count()), by prefix popcount.
  [[nodiscard]] std::uint32_t select(std::size_t k) const;

  /// Raw payload words, low bit = host 0 (bulk consumers, tests).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

 private:
  std::size_t n_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> summary_;  ///< bit i = words_[i] != 0
};

/// Tournament (segment) tree over doubles: point update and argmin query in
/// O(log n), with deterministic lowest-index tie-breaks. Absent entries
/// (down hosts, idle hosts in live mode) carry +infinity and never win.
class ArgminTree {
 public:
  static constexpr double kAbsent = std::numeric_limits<double>::infinity();

  void reset(std::size_t n);
  /// Sets leaf `i` to `key` (kAbsent removes it) and repairs the path to
  /// the root. No-op when the key is unchanged.
  void set(std::size_t i, double key);
  [[nodiscard]] double key(std::size_t i) const { return nodes_[base_ + i].key; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Index of the minimum key (lowest index on ties), or nullopt when every
  /// leaf is absent. O(1): the root holds the answer.
  [[nodiscard]] std::optional<std::uint32_t> argmin() const;
  /// argmin restricted to [lo, hi), O(log n).
  [[nodiscard]] std::optional<std::uint32_t> argmin_in(std::uint32_t lo,
                                                       std::uint32_t hi) const;

 private:
  struct Node {
    double key = kAbsent;
    std::uint32_t idx = 0;
  };
  /// True when `a` beats `b` (smaller key, or equal key and lower index).
  [[nodiscard]] static bool wins(const Node& a, const Node& b) noexcept {
    return a.key < b.key || (a.key == b.key && a.idx < b.idx);
  }

  std::size_t n_ = 0;
  std::size_t base_ = 1;          ///< leaves live at [base_, base_ + n_)
  std::vector<Node> nodes_;       ///< 2 * base_ slots, heap layout
};

/// The SoA host-state table described at the top of this file.
class HostStateTable {
 public:
  enum class Semantics {
    kLive,      ///< mirrors a running server; work decays with the clock
    kObserved,  ///< frozen observations (snapshots, test stubs)
  };

  /// Re-initializes for `hosts` hosts: all up, idle, zero work, zero queue,
  /// observation timestamps at `t0`. Allocates only on growth; a table
  /// reset to the same size is allocation-free (steady-state runs reuse it).
  void reset(std::size_t hosts, Semantics semantics, double t0 = 0.0);

  [[nodiscard]] std::size_t size() const noexcept { return queue_len_.size(); }
  [[nodiscard]] Semantics semantics() const noexcept { return semantics_; }

  // --- mutators (each marks the host dirty; the indices repair lazily,
  //     O(log h) amortized, at the next tournament query) ---

  /// Publishes a live host's scheduling state: `busy` with the running
  /// job's absolute completion time `completion` plus `queued_work` behind
  /// it, and `queue_len` jobs in system (running included). kLive only.
  void set_live(HostId h, bool busy, double completion, double queued_work,
                std::uint32_t queue_len);
  /// Publishes one frozen observation of host `h` taken at time `at`.
  /// `jitter` is an optional tie-break perturbation in [0, 1): the queue
  /// key becomes queue_len + jitter (integer ordering preserved, ties
  /// re-randomized) and the work key gets a relative-epsilon nudge. The
  /// default 0.0 leaves both keys bitwise unchanged. kObserved only.
  void set_observation(HostId h, std::uint32_t queue_len, double work_left,
                       bool idle, double at, double jitter = 0.0);
  /// Up/down transition (fault model, probe-observed liveness).
  void set_up(HostId h, bool up);
  /// Sets host `h`'s speed factor (service time = size / speed) and its
  /// capacity class. Speed participates in the queue-tree key
  /// (queue_len / speed — speed-scaled Shortest-Queue), so speed 1.0
  /// leaves keys bitwise unchanged (x / 1.0 == x).
  void set_speed(HostId h, double speed, std::uint32_t capacity_class = 0);
  /// Installs the overload model's per-host capacity limits: at most
  /// `queue_cap` jobs in system (running included) and/or `backlog_cap`
  /// time units of remaining work. 0 = unbounded (the default; reset()
  /// restores it), in which case at_capacity() is identically false and
  /// capacity-aware routing collapses to the unbounded decisions.
  void set_caps(std::uint32_t queue_cap, double backlog_cap) noexcept {
    queue_cap_ = queue_cap;
    backlog_cap_ = backlog_cap;
  }

  // --- per-host reads (O(1)) ---

  [[nodiscard]] std::uint32_t queue_length(HostId h) const {
    return queue_len_[h];
  }
  /// Remaining work observable at `now` — live: residual of the running
  /// job plus queued sizes (clamped against accumulator drift); observed:
  /// the stored value (a snapshot does not decay, that is the staleness
  /// being modeled).
  [[nodiscard]] double work_left(HostId h, double now) const {
    // A frozen observation is returned verbatim — raw, unclamped — so that
    // snapshot-driven decisions compare exactly the values that were
    // published, as the old SnapshotView did.
    if (semantics_ == Semantics::kObserved) return work_amt_[h];
    if (busy_[h] != 0) {
      const double residual = work_ref_[h] - now;
      return (residual > 0.0 ? residual : 0.0) +
             (work_amt_[h] > 0.0 ? work_amt_[h] : 0.0);
    }
    return work_amt_[h] > 0.0 ? work_amt_[h] : 0.0;
  }
  [[nodiscard]] bool up(HostId h) const { return up_.test(h); }
  [[nodiscard]] bool idle(HostId h) const { return idle_[h] != 0; }
  [[nodiscard]] bool busy(HostId h) const { return busy_[h] != 0; }
  /// Speed factor (1.0 unless set_speed was called).
  [[nodiscard]] double speed(HostId h) const { return speed_[h]; }
  [[nodiscard]] std::uint32_t capacity_class(HostId h) const {
    return class_id_[h];
  }
  /// True when any host's speed differs from 1.0.
  [[nodiscard]] bool heterogeneous() const noexcept { return heterogeneous_; }
  /// True when host `h` has no room for one more queued job under the caps
  /// installed by set_caps() (false whenever both caps are 0). Capacity-
  /// aware policies skip full hosts; the dispatcher applies the overflow
  /// action when a delivery lands on one anyway.
  [[nodiscard]] bool at_capacity(HostId h, double now) const {
    if (queue_cap_ > 0 && queue_len_[h] >= queue_cap_) return true;
    return backlog_cap_ > 0.0 && work_left(h, now) >= backlog_cap_;
  }

  // --- bulk accessors (span-style, for vectorizable policy scans) ---

  [[nodiscard]] std::span<const std::uint32_t> queue_lengths() const noexcept {
    return queue_len_;
  }
  [[nodiscard]] const HostBitset& up_bits() const noexcept { return up_; }
  [[nodiscard]] std::size_t up_count() const noexcept { return up_.count(); }
  [[nodiscard]] bool all_up() const noexcept { return up_.count() == size(); }
  /// The k-th up host by index (0-based, k < up_count()) — Random's
  /// degraded path draws below(up_count()) and selects, reproducing the
  /// old rebuild-a-live-vector draws exactly without the O(h) rebuild.
  [[nodiscard]] HostId kth_up(std::size_t k) const { return up_.select(k); }

  // --- tournament queries ---

  /// Host with the fewest jobs in system among up hosts (lowest index on
  /// ties), or nullopt when every host is down. O(1).
  [[nodiscard]] std::optional<HostId> argmin_queue_len() const {
    flush();
    return queue_tree_.argmin();
  }
  /// argmin_queue_len restricted to hosts [lo, hi). O(log h).
  [[nodiscard]] std::optional<HostId> argmin_queue_len_in(HostId lo,
                                                          HostId hi) const {
    flush();
    return queue_tree_.argmin_in(lo, hi);
  }
  /// Host with the least remaining work among up hosts at `now` (lowest
  /// index on ties), or nullopt when every host is down. O(log h) —
  /// bit-identical to the linear scan it replaces: in live mode idle hosts
  /// (work 0) win over busy hosts unless a busy host's backlog clears
  /// exactly at `now`, in which case the lowest index wins the tie.
  [[nodiscard]] std::optional<HostId> argmin_work(double now) const {
    flush();
    return resolve_work_argmin(idle_up_.first_set(), work_tree_.argmin(), now);
  }
  /// argmin_work restricted to hosts [lo, hi). O(log h).
  [[nodiscard]] std::optional<HostId> argmin_work_in(HostId lo, HostId hi,
                                                     double now) const {
    flush();
    return resolve_work_argmin(idle_up_.first_set_in(lo, hi),
                               work_tree_.argmin_in(lo, hi), now);
  }
  /// Lowest-index host that is idle and up (the central-queue pull and
  /// direct-start scan), or nullopt. O(h/4096).
  [[nodiscard]] std::optional<HostId> first_idle_up() const {
    flush();
    return idle_up_.first_set();
  }

  // --- observation age (kObserved; the snapshot-staleness index) ---

  /// Age of the oldest per-host observation at time `t` — one unprobed
  /// host is enough to mislead an argmin policy, so staleness is the max
  /// over hosts. O(1) via the min-timestamp tournament.
  [[nodiscard]] double max_age(double t) const;

 private:
  void mark_dirty(HostId h);
  /// Repairs every dirty host's tree keys; called by tournament queries.
  void flush() const;
  void refresh_work_key(HostId h) const;
  void refresh_queue_key(HostId h) const;
  void refresh_idle(HostId h) const;
  [[nodiscard]] std::optional<HostId> resolve_work_argmin(
      std::optional<std::uint32_t> idle_cand,
      std::optional<std::uint32_t> tree_cand, double now) const;

  Semantics semantics_ = Semantics::kObserved;
  bool heterogeneous_ = false;
  /// Overload-model capacity limits (0 = unbounded; see set_caps()).
  std::uint32_t queue_cap_ = 0;
  double backlog_cap_ = 0.0;
  std::vector<std::uint32_t> queue_len_;
  /// Per-host speed factor (all 1.0 unless set_speed was called).
  std::vector<double> speed_;
  /// Per-host capacity class (contiguous ranges in class-SITA fleets).
  std::vector<std::uint32_t> class_id_;
  /// Per-host observation tie-break jitter (kObserved; 0.0 unless set).
  std::vector<double> obs_jitter_;
  /// Live busy hosts: absolute completion time of the running job.
  /// Otherwise 0 (unused).
  std::vector<double> work_ref_;
  /// Live: sum of queued sizes behind the running job (an add/subtract
  /// accumulator — reads clamp its tiny negative drift). Observed: the
  /// frozen work-left value.
  std::vector<double> work_amt_;
  std::vector<std::uint8_t> busy_;
  std::vector<std::uint8_t> idle_;
  /// Raw per-host observation timestamps (kObserved; feeds observed_at_).
  std::vector<double> observed_time_;
  HostBitset up_;
  // Lazily-repaired index state (see flush()); mutable because const
  // tournament queries complete the deferred repairs.
  /// idle AND up (live-mode work argmin, central pulls). Lazy like the
  /// trees: every reader flushes first.
  mutable HostBitset idle_up_;
  mutable std::vector<std::uint32_t> dirty_;      ///< hosts awaiting repair
  mutable std::vector<std::uint8_t> dirty_flag_;  ///< dedup for dirty_
  mutable ArgminTree queue_tree_;  ///< key: queue length, over up hosts
  mutable ArgminTree work_tree_;   ///< key: see refresh_work_key(), up hosts
  mutable ArgminTree observed_at_; ///< key: observation timestamp (kObserved)
};

}  // namespace distserv::core
