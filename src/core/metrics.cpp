#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/quantile.hpp"
#include "stats/tolerance.hpp"
#include "stats/welford.hpp"
#include "util/contracts.hpp"

namespace distserv::core {

namespace {
void fill_control_telemetry(MetricsSummary& m, const RunResult& result) {
  if (!result.control) return;
  const sim::ControlStats& c = *result.control;
  m.mean_snapshot_age = c.mean_snapshot_age();
  m.max_snapshot_age = c.snapshot_age_max;
  m.rpc_retries = c.retries;
  m.rpc_timeouts = c.timeouts;
  m.fallback_activations = c.fallback_activations();
  m.misroute_rate = c.misroute_rate();
}

void fill_scaling_telemetry(MetricsSummary& m, const RunResult& result) {
  if (!result.scaling) return;
  const sim::ScalingStats& s = *result.scaling;
  m.host_hours_powered = s.host_time_powered;
  m.host_hours_total = s.host_time_total;
  m.bounced_dispatches = s.bounced_dispatches;
}

/// Overload counters plus the loss rates over all arrivals. Requires
/// m.jobs and m.jobs_failed to be filled in already (arrivals = their sum).
void fill_overload_telemetry(MetricsSummary& m, const RunResult& result) {
  if (!result.overload) return;
  const sim::OverloadStats& o = *result.overload;
  m.jobs_shed = o.shed();
  m.jobs_reneged = o.reneged;
  m.migrations = o.migrated();
  const double arrivals = static_cast<double>(m.jobs + m.jobs_failed);
  if (arrivals > 0.0) {
    m.shed_rate = static_cast<double>(o.shed()) / arrivals;
    m.renege_rate = static_cast<double>(o.reneged) / arrivals;
  }
}

/// Speed of `host` per RunResult::host_speeds (1.0 on a homogeneous fleet
/// or for an out-of-range host — range errors are reported separately).
double speed_of(const RunResult& result, std::uint32_t host) {
  if (host < result.host_speeds.size()) return result.host_speeds[host];
  return 1.0;
}

/// Modal-host completion share from the per-host tallies (works for both
/// the record-keeping and the streaming paths — HostStats are maintained
/// online either way).
void fill_herding_telemetry(MetricsSummary& m, const RunResult& result) {
  std::uint64_t total = 0;
  std::uint64_t modal = 0;
  for (const HostStats& h : result.host_stats) {
    total += h.jobs_completed;
    modal = std::max(modal, h.jobs_completed);
  }
  if (total > 0) {
    m.modal_host_share =
        static_cast<double>(modal) / static_cast<double>(total);
  }
}
}  // namespace

MetricsSummary summarize(const RunResult& result) {
  if (result.stream) {
    // Streaming run: the per-record fold below already happened online, in
    // completion order, into the same Welford accumulators — means and
    // variances are identical to the exact path; quantiles come from the
    // GK sketch with its ±ε rank guarantee.
    const StreamSummary& s = *result.stream;
    MetricsSummary m;
    m.jobs = s.jobs();
    m.jobs_failed = s.jobs_failed();
    fill_control_telemetry(m, result);
    fill_scaling_telemetry(m, result);
    fill_overload_telemetry(m, result);
    fill_herding_telemetry(m, result);
    if (result.makespan > 0.0) {
      m.goodput = static_cast<double>(m.jobs) / result.makespan;
    }
    if (s.jobs() == 0) return m;  // every job failed
    m.mean_slowdown = s.slowdown().mean();
    m.var_slowdown = s.slowdown().variance_sample();
    m.mean_response = s.response().mean();
    m.var_response = s.response().variance_sample();
    m.mean_waiting = s.waiting().mean();
    m.var_waiting = s.waiting().variance_sample();
    m.max_slowdown = s.slowdown().max();
    m.p50_slowdown = s.slowdown_quantile(0.5);
    m.p95_slowdown = s.slowdown_quantile(0.95);
    m.p99_slowdown = s.slowdown_quantile(0.99);
    return m;
  }
  DS_EXPECTS(!result.records.empty());
  stats::Welford slowdown, response, waiting;
  std::vector<double> slowdowns;
  slowdowns.reserve(result.records.size());
  MetricsSummary m;
  for (const JobRecord& r : result.records) {
    if (r.failed) {
      ++m.jobs_failed;  // abandoned: no completion, so no statistics
      continue;
    }
    const double s = r.slowdown();
    slowdown.add(s);
    response.add(r.response());
    waiting.add(r.waiting());
    slowdowns.push_back(s);
  }
  m.jobs = slowdown.count();
  fill_control_telemetry(m, result);
  fill_scaling_telemetry(m, result);
  fill_overload_telemetry(m, result);
  fill_herding_telemetry(m, result);
  if (result.makespan > 0.0) {
    m.goodput = static_cast<double>(m.jobs) / result.makespan;
  }
  if (slowdowns.empty()) return m;  // every job failed
  m.mean_slowdown = slowdown.mean();
  m.var_slowdown = slowdown.variance_sample();
  m.mean_response = response.mean();
  m.var_response = response.variance_sample();
  m.mean_waiting = waiting.mean();
  m.var_waiting = waiting.variance_sample();
  m.max_slowdown = slowdown.max();
  const double qs[] = {0.5, 0.95, 0.99};
  const auto quants = stats::quantiles(slowdowns, qs);
  m.p50_slowdown = quants[0];
  m.p95_slowdown = quants[1];
  m.p99_slowdown = quants[2];
  return m;
}

FairnessReport fairness_at_cutoff(const RunResult& result, double cutoff) {
  DS_EXPECTS(!result.records.empty());
  DS_EXPECTS(cutoff > 0.0);
  stats::Welford all, shorts, longs;
  for (const JobRecord& r : result.records) {
    const double s = r.slowdown();
    all.add(s);
    if (r.size <= cutoff) {
      shorts.add(s);
    } else {
      longs.add(s);
    }
  }
  FairnessReport f;
  f.cutoff = cutoff;
  f.short_jobs = shorts.count();
  f.long_jobs = longs.count();
  f.mean_slowdown_short = shorts.count() ? shorts.mean() : 0.0;
  f.mean_slowdown_long = longs.count() ? longs.mean() : 0.0;
  f.gap = all.mean() > 0.0
              ? std::abs(f.mean_slowdown_short - f.mean_slowdown_long) /
                    all.mean()
              : 0.0;
  return f;
}

std::vector<SizeClassSlowdown> slowdown_by_size_class(const RunResult& result,
                                                      std::size_t classes) {
  DS_EXPECTS(!result.records.empty());
  DS_EXPECTS(classes >= 1);
  double lo = result.records.front().size;
  double hi = lo;
  for (const JobRecord& r : result.records) {
    lo = std::min(lo, r.size);
    hi = std::max(hi, r.size);
  }
  // Widen slightly so the max lands in the last bucket.
  hi *= 1.0 + 1e-12;
  const double log_lo = std::log(lo);
  const double log_step =
      (std::log(hi) - log_lo) / static_cast<double>(classes);
  std::vector<stats::Welford> acc(classes);
  for (const JobRecord& r : result.records) {
    auto idx = static_cast<std::size_t>((std::log(r.size) - log_lo) /
                                        log_step);
    idx = std::min(idx, classes - 1);
    acc[idx].add(r.slowdown());
  }
  std::vector<SizeClassSlowdown> out;
  out.reserve(classes);
  for (std::size_t i = 0; i < classes; ++i) {
    SizeClassSlowdown c;
    c.size_lo = std::exp(log_lo + log_step * static_cast<double>(i));
    c.size_hi = std::exp(log_lo + log_step * static_cast<double>(i + 1));
    c.jobs = acc[i].count();
    c.mean_slowdown = acc[i].count() ? acc[i].mean() : 0.0;
    out.push_back(c);
  }
  return out;
}

std::vector<std::string> validate_run(const RunResult& result, double rtol) {
  DS_EXPECTS(rtol >= 0.0);
  std::vector<std::string> problems;
  const auto complain = [&problems](const std::string& what) {
    problems.push_back(what);
  };
  double max_completion = 0.0;
  std::uint64_t failed_records = 0;
  std::uint64_t total_restarts = 0;
  std::vector<std::vector<const JobRecord*>> by_host(result.hosts);
  if (result.hosts > 0) {
    // Balanced policies land ~records/hosts per host; double it so even a
    // heavily skewed assignment (SITA short-host) rarely reallocates.
    const std::size_t expect = 2 * result.records.size() / result.hosts + 1;
    for (auto& v : by_host) v.reserve(expect);
  }
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const JobRecord& r = result.records[i];
    std::ostringstream tag;
    tag << "record " << i << " (job " << r.id << "): ";
    if (r.id != i) complain(tag.str() + "id does not match its index");
    if (!(r.size > 0.0)) complain(tag.str() + "non-positive size");
    if (r.start + rtol * std::abs(r.start) < r.arrival) {
      complain(tag.str() + "started before it arrived");
    }
    // Host-local service duration: size scaled by the serving host's speed
    // (identically size on a homogeneous fleet, host_speeds empty).
    const double service = r.size / speed_of(result, r.host);
    const bool loss_marker =
        r.outcome == JobOutcome::kShed || r.outcome == JobOutcome::kReneged;
    if (r.failed != (r.outcome != JobOutcome::kCompleted)) {
      complain(tag.str() + "failed flag disagrees with the outcome");
    }
    if (r.failed) {
      ++failed_records;
      if (loss_marker) {
        // Shed and reneged jobs never received service: the record is a
        // zero-length marker at the loss time.
        if (!stats::close(r.start, r.completion, rtol, rtol)) {
          complain(tag.str() + "shed/reneged but shows a service interval");
        }
      } else {
        // Abandoned after a failure: completion is the abandonment time,
        // somewhere within the service interval it never finished.
        if (r.completion + rtol * std::abs(r.completion) < r.start) {
          complain(tag.str() + "abandoned before it started");
        }
        if (r.completion > (r.start + service) * (1.0 + rtol)) {
          complain(tag.str() + "abandoned after it would have completed");
        }
      }
    } else if (!stats::close(r.completion, r.start + service, rtol)) {
      complain(tag.str() + "completion != start + size / speed");
    }
    total_restarts += r.restarts;
    if (r.host >= result.hosts) {
      complain(tag.str() + "out-of-range host");
      continue;
    }
    max_completion = std::max(max_completion, r.completion);
    // Loss markers carry no service interval: including them in the
    // per-host overlap scan would flag a zero-length point inside another
    // job's lawful service window.
    if (loss_marker) continue;
    by_host[r.host].push_back(&r);
  }
  if (result.records.empty() && result.stream) {
    // Streaming runs materialise no records; the summary's failure count
    // stands in for the per-record tally.
    if (result.stream->jobs_failed() != result.jobs_failed) {
      complain("jobs_failed does not match the streamed failure count");
    }
  } else if (failed_records != result.jobs_failed) {
    complain("jobs_failed does not match the failed records");
  }
  if (total_restarts != result.interruptions) {
    complain("interruptions does not match the summed record restarts");
  }
  if (!result.records.empty() &&
      !stats::close(result.makespan, max_completion, rtol)) {
    complain("makespan does not equal the last completion time");
  }
  for (std::size_t host = 0; host < by_host.size(); ++host) {
    auto& records = by_host[host];
    std::sort(records.begin(), records.end(),
              [](const JobRecord* a, const JobRecord* b) {
                return a->start < b->start;
              });
    const double speed = speed_of(result, static_cast<std::uint32_t>(host));
    double work = 0.0;
    std::size_t completed = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (!records[i]->failed) {
        work += records[i]->size / speed;
        ++completed;
      }
      // Final service intervals ([start, completion], abandonment included)
      // must not overlap on a host. Partial service of jobs later restarted
      // elsewhere is not visible in the records and cannot conflict here.
      if (i > 0 && records[i]->start + rtol * records[i]->start <
                       records[i - 1]->completion) {
        std::ostringstream what;
        what << "host " << host << ": jobs " << records[i - 1]->id << " and "
             << records[i]->id << " overlap in service";
        complain(what.str());
      }
    }
    if (host < result.host_stats.size()) {
      const HostStats& hs = result.host_stats[host];
      std::ostringstream tag;
      tag << "host " << host << " stats: ";
      // Streaming runs keep per-host stats but materialise no records, so
      // the record-derived cross-checks have nothing to compare against.
      const bool have_records = !result.records.empty() || !result.stream;
      if (have_records && hs.jobs_completed != completed) {
        complain(tag.str() + "jobs_completed disagrees with the records");
      }
      if (have_records && !stats::close(hs.work_done, work, rtol, rtol)) {
        complain(tag.str() + "work_done disagrees with the records");
      }
      // Busy time covers completed service plus partial service the
      // failure model discarded (fail-stop loses completed work).
      if (have_records &&
          !stats::close(hs.busy_time, work + hs.wasted_work, rtol, rtol)) {
        complain(tag.str() +
                 "busy_time disagrees with completed + wasted work");
      }
      if (hs.wasted_work < 0.0 || hs.down_time < 0.0) {
        complain(tag.str() + "negative failure accounting");
      }
      if (hs.wasted_work > 0.0 && hs.jobs_interrupted == 0) {
        complain(tag.str() + "wasted work without any interrupted job");
      }
      const double util =
          result.makespan > 0.0 ? hs.busy_time / result.makespan : 0.0;
      if (!stats::close(hs.utilization, util, rtol, rtol)) {
        complain(tag.str() + "utilization disagrees with busy_time/makespan");
      }
    }
  }
  std::uint64_t interrupted_sum = 0;
  for (const HostStats& hs : result.host_stats) {
    interrupted_sum += hs.jobs_interrupted;
  }
  if (interrupted_sum != result.interruptions) {
    complain("interruptions does not match the per-host interrupted counts");
  }
  if (result.host_stats.size() != result.hosts) {
    complain("host_stats size does not match the host count");
  }
  if (result.control) {
    // Control-plane counter identities: retries reconcile with the RPC
    // loss draws, and every loss is accounted for by a timeout, a chain
    // cancellation, or a chain still outstanding at the end of the run.
    const sim::ControlStats& c = *result.control;
    const auto tag = std::string("control stats: ");
    if (c.probes_lost > c.probes_sent) {
      complain(tag + "more probes lost than sent");
    }
    if (c.requests_sent != c.rpc_dispatches + c.retries) {
      complain(tag + "requests_sent != rpc_dispatches + retries");
    }
    if (c.requests_lost + c.acks_lost !=
        c.timeouts + c.cancelled + c.chains_outstanding) {
      complain(tag +
               "losses do not reconcile with timeouts + cancelled + "
               "outstanding chains");
    }
    if (c.timeouts != c.retries + c.reconciled + c.escalations_exhausted +
                          c.forced_placements) {
      complain(tag +
               "timeouts do not reconcile with retries + reconciled + "
               "escalations + forced placements");
    }
    if (c.misrouted > c.oracle_comparisons) {
      complain(tag + "more misroutes than oracle comparisons");
    }
    if (c.duplicates_suppressed + c.requests_lost > c.requests_sent) {
      complain(tag + "more RPC outcomes than sends");
    }
    if (c.snapshot_age_sum < 0.0 || c.snapshot_age_max < 0.0) {
      complain(tag + "negative snapshot age accounting");
    }
  }
  if (result.overload) {
    // Overload counter identities: every loss counter is backed by exactly
    // that many records, and every arrival passed the admission gate or
    // was shed by it.
    const sim::OverloadStats& o = *result.overload;
    const auto tag = std::string("overload stats: ");
    if (!result.records.empty()) {
      std::uint64_t shed_records = 0;
      std::uint64_t reneged_records = 0;
      for (const JobRecord& r : result.records) {
        if (r.outcome == JobOutcome::kShed) ++shed_records;
        if (r.outcome == JobOutcome::kReneged) ++reneged_records;
      }
      if (shed_records != o.shed()) {
        complain(tag + "shed records disagree with the shed counters");
      }
      if (reneged_records != o.reneged) {
        complain(tag + "reneged records disagree with the renege counter");
      }
      if (o.admitted + o.shed_admission != result.records.size()) {
        complain(tag + "admitted + admission sheds != arrivals");
      }
    }
    if (result.stream) {
      if (result.stream->jobs_shed() != o.shed()) {
        complain(tag + "streamed shed count disagrees with the counters");
      }
      if (result.stream->jobs_reneged() != o.reneged) {
        complain(tag + "streamed renege count disagrees with the counter");
      }
    }
  }
  if (!result.host_speeds.empty()) {
    const auto tag = std::string("host speeds: ");
    if (result.host_speeds.size() != result.hosts) {
      complain(tag + "size does not match the host count");
    }
    for (double s : result.host_speeds) {
      if (!(s > 0.0) || !std::isfinite(s)) {
        complain(tag + "non-positive or non-finite speed");
        break;
      }
    }
  }
  if (result.scaling) {
    // Autoscaler counter identities: powered time fits inside total host
    // time, watermarks are ordered, and every warm-up / drain start is
    // accounted for by its completions (or is still pending at run end).
    const sim::ScalingStats& s = *result.scaling;
    const auto tag = std::string("scaling stats: ");
    if (s.host_time_powered > s.host_time_total * (1.0 + rtol)) {
      complain(tag + "powered host-time exceeds total host-time");
    }
    if (s.min_powered > s.max_powered) {
      complain(tag + "min_powered exceeds max_powered");
    }
    if (s.warmups_completed + s.warmups_cancelled > s.hosts_powered_on) {
      complain(tag + "more warm-up outcomes than warm-up starts");
    }
    if (s.drains_completed + s.drains_reclaimed > s.hosts_drained) {
      complain(tag + "more drain outcomes than drain starts");
    }
  }
  return problems;
}

MetricsSummary average_summaries(const std::vector<MetricsSummary>& reps) {
  DS_EXPECTS(!reps.empty());
  MetricsSummary avg;
  const double n = static_cast<double>(reps.size());
  for (const MetricsSummary& r : reps) {
    avg.jobs += r.jobs;
    avg.jobs_failed += r.jobs_failed;
    avg.mean_slowdown += r.mean_slowdown / n;
    avg.var_slowdown += r.var_slowdown / n;
    avg.mean_response += r.mean_response / n;
    avg.var_response += r.var_response / n;
    avg.mean_waiting += r.mean_waiting / n;
    avg.var_waiting += r.var_waiting / n;
    avg.max_slowdown = std::max(avg.max_slowdown, r.max_slowdown);
    avg.p50_slowdown += r.p50_slowdown / n;
    avg.p95_slowdown += r.p95_slowdown / n;
    avg.p99_slowdown += r.p99_slowdown / n;
    avg.mean_snapshot_age += r.mean_snapshot_age / n;
    avg.max_snapshot_age = std::max(avg.max_snapshot_age, r.max_snapshot_age);
    avg.rpc_retries += r.rpc_retries;
    avg.rpc_timeouts += r.rpc_timeouts;
    avg.fallback_activations += r.fallback_activations;
    avg.misroute_rate += r.misroute_rate / n;
    avg.modal_host_share += r.modal_host_share / n;
    avg.host_hours_powered += r.host_hours_powered / n;
    avg.host_hours_total += r.host_hours_total / n;
    avg.bounced_dispatches += r.bounced_dispatches;
    avg.goodput += r.goodput / n;
    avg.jobs_shed += r.jobs_shed;
    avg.jobs_reneged += r.jobs_reneged;
    avg.migrations += r.migrations;
    avg.shed_rate += r.shed_rate / n;
    avg.renege_rate += r.renege_rate / n;
  }
  return avg;
}

}  // namespace distserv::core
