// Turning per-job records into the metrics the paper reports: mean and
// variance of slowdown (the headline plots), mean/variance of response and
// waiting time, quantiles, and fairness breakdowns by job size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/server.hpp"

namespace distserv::core {

/// Scalar summary of one run. Jobs abandoned after a host failure are
/// excluded from every slowdown/response/waiting statistic (they have no
/// completion) and counted in jobs_failed instead.
struct MetricsSummary {
  std::uint64_t jobs = 0;        ///< completed jobs summarized
  std::uint64_t jobs_failed = 0; ///< abandoned jobs (failure model)
  double mean_slowdown = 0.0;
  double var_slowdown = 0.0;
  double mean_response = 0.0;
  double var_response = 0.0;
  double mean_waiting = 0.0;
  double var_waiting = 0.0;
  double max_slowdown = 0.0;
  double p50_slowdown = 0.0;
  double p95_slowdown = 0.0;
  double p99_slowdown = 0.0;
  // Control-plane telemetry (all zero when the control plane is off).
  double mean_snapshot_age = 0.0;  ///< dispatch-weighted snapshot staleness
  double max_snapshot_age = 0.0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t fallback_activations = 0;  ///< stale + exhausted + forced
  double misroute_rate = 0.0;  ///< vs the perfect-information oracle
  /// Fraction of completed jobs that landed on the single busiest host —
  /// 1/h on a perfectly balanced fleet, approaching 1 when dispatchers
  /// herd onto one apparently-least-loaded host. The multi-dispatcher
  /// staleness sweep plots this against the dispatcher count: independent
  /// stale snapshots agree on the same victim until their probes diverge.
  double modal_host_share = 0.0;
  // Elastic-fleet telemetry (all zero when the autoscaler is off). The
  // powered/total ratio is the cost-of-capacity axis of the elastic sweep.
  double host_hours_powered = 0.0;  ///< integral of non-Off hosts over time
  double host_hours_total = 0.0;    ///< hosts * makespan
  std::uint64_t bounced_dispatches = 0;  ///< dispatches that raced scaling
  /// Completed jobs per unit time — the throughput the system actually
  /// delivered. Under overload protection this is the headline axis: sheds
  /// and reneges trade individual losses for goodput of the admitted work.
  double goodput = 0.0;
  // Overload-protection telemetry (all zero when overload protection is
  // off; see sim/overload.hpp).
  std::uint64_t jobs_shed = 0;     ///< admission + bounded-queue drops
  std::uint64_t jobs_reneged = 0;  ///< patience expirations while waiting
  std::uint64_t migrations = 0;    ///< queued jobs evacuated (drain + fault)
  double shed_rate = 0.0;    ///< jobs_shed / arrivals
  double renege_rate = 0.0;  ///< jobs_reneged / arrivals
};

/// Computes the summary over all records of a run.
[[nodiscard]] MetricsSummary summarize(const RunResult& result);

/// Fairness in the paper's sense: do short jobs and long jobs experience the
/// same expected slowdown?
struct FairnessReport {
  double cutoff = 0.0;
  std::uint64_t short_jobs = 0;
  std::uint64_t long_jobs = 0;
  double mean_slowdown_short = 0.0;
  double mean_slowdown_long = 0.0;
  /// |short - long| / overall mean; 0 = perfectly fair.
  double gap = 0.0;
};

/// Splits jobs at `cutoff` and compares expected slowdowns.
[[nodiscard]] FairnessReport fairness_at_cutoff(const RunResult& result,
                                                double cutoff);

/// Mean slowdown per size class (geometric size buckets), for slowdown-vs-
/// size fairness profiles.
struct SizeClassSlowdown {
  double size_lo = 0.0;
  double size_hi = 0.0;
  std::uint64_t jobs = 0;
  double mean_slowdown = 0.0;
};

/// `classes` >= 1 geometric buckets between the smallest and largest size.
[[nodiscard]] std::vector<SizeClassSlowdown> slowdown_by_size_class(
    const RunResult& result, std::size_t classes);

/// Averages summaries across replications (seeds), field-wise.
[[nodiscard]] MetricsSummary average_summaries(
    const std::vector<MetricsSummary>& reps);

/// Offline record-level audit, complementing the online audit layer
/// (sim/audit.hpp): checks every per-job record (positive size, start >=
/// arrival, completion == start + size / speed(host), where speed comes
/// from RunResult::host_speeds and is 1 on a homogeneous fleet; failed
/// records instead satisfy start <= completion <= start + size / speed),
/// that service intervals never
/// overlap on a host, and that HostStats agree with the records they
/// summarize — including the failure accounting (busy_time == work_done +
/// wasted_work, interruption/abandonment tallies matching the records).
/// Returns one human-readable line per problem; empty = clean.
[[nodiscard]] std::vector<std::string> validate_run(const RunResult& result,
                                                    double rtol = 1e-9);

}  // namespace distserv::core
