#include "core/policies/central_queue.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

std::optional<HostId> CentralQueuePolicy::assign(const workload::Job& /*job*/,
                                                 const ServerView& /*view*/) {
  return std::nullopt;
}

std::size_t CentralQueuePolicy::select_next(
    const std::deque<workload::Job>& held, HostId /*host*/,
    const ServerView& /*view*/) {
  DS_EXPECTS(!held.empty());
  return 0;
}

}  // namespace distserv::core
