// Central-Queue task assignment: all jobs wait in one FCFS queue at the
// dispatcher; a host pulls the head of the queue the moment it goes idle.
// Equivalent to Least-Work-Left in per-job completion times for every job
// sequence — the classical M/G/h organization.
#pragma once

#include "core/policy.hpp"

namespace distserv::core {

class CentralQueuePolicy final : public Policy {
 public:
  CentralQueuePolicy() = default;

  /// Never assigns on arrival; the server model starts the job immediately
  /// if a host is idle, otherwise holds it centrally.
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;

  /// FCFS pull (index 0) — inherited default, restated for clarity.
  [[nodiscard]] std::size_t select_next(const std::deque<workload::Job>& held,
                                        HostId host,
                                        const ServerView& view) override;

  [[nodiscard]] std::string name() const override { return "Central-Queue"; }

  /// Holds jobs instead of routing them, so there is nothing to degrade:
  /// the empty chain sends an exhausted dispatch straight to forced
  /// placement (which cannot happen — assign never names a host).
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{false, true, {}};
  }
};

}  // namespace distserv::core
