#include "core/policies/class_sita.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace distserv::core {

ClassSitaPolicy::ClassSitaPolicy(std::vector<double> cutoffs,
                                 std::vector<std::size_t> class_sizes,
                                 std::string label)
    : cutoffs_(std::move(cutoffs)),
      class_sizes_(std::move(class_sizes)),
      label_(std::move(label)) {
  DS_EXPECTS(!cutoffs_.empty());
  DS_EXPECTS(cutoffs_.front() > 0.0);
  for (std::size_t i = 1; i < cutoffs_.size(); ++i) {
    DS_EXPECTS(cutoffs_[i - 1] < cutoffs_[i]);
  }
  DS_EXPECTS(class_sizes_.size() == cutoffs_.size() + 1);
  class_begin_.reserve(class_sizes_.size() + 1);
  HostId offset = 0;
  class_begin_.push_back(offset);
  for (std::size_t size : class_sizes_) {
    DS_EXPECTS(size >= 1);
    offset += static_cast<HostId>(size);
    class_begin_.push_back(offset);
  }
}

void ClassSitaPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  DS_EXPECTS(hosts == class_begin_.back());
}

std::uint32_t ClassSitaPolicy::class_of(double size) const noexcept {
  const auto it = std::lower_bound(cutoffs_.begin(), cutoffs_.end(), size);
  return static_cast<std::uint32_t>(it - cutoffs_.begin());
}

std::optional<HostId> ClassSitaPolicy::argmin_in_class(
    std::uint32_t k, const ServerView& view) const {
  return view.hosts().argmin_work_in(class_begin_[k], class_begin_[k + 1],
                                     view.now());
}

std::optional<HostId> ClassSitaPolicy::assign(const workload::Job& job,
                                              const ServerView& view) {
  const std::uint32_t k = class_of(job.size);
  const HostStateTable& table = view.hosts();
  const double now = view.now();
  const auto classes = static_cast<std::uint32_t>(class_sizes_.size());
  // Walk classes outward from the owner (down = whole class failed, full =
  // no queue headroom under bounded queues), ties preferring the
  // smaller-size side — the class-granularity version of
  // SitaPolicy::nearest_up. Caps unset makes at_capacity constant-false,
  // so the walk is byte-for-byte the historical down-class remap. The
  // first up-but-full answer is kept: when every live class is saturated
  // the dispatch goes there and the configured overflow action resolves
  // the conflict, instead of the policy spinning for room that does not
  // exist.
  std::optional<HostId> saturated;
  const auto probe = [&](std::uint32_t c) -> std::optional<HostId> {
    const auto host = argmin_in_class(c, view);
    if (!host) return std::nullopt;  // class entirely down
    if (!table.at_capacity(*host, now)) return host;
    if (!saturated) saturated = host;
    return std::nullopt;
  };
  if (auto host = probe(k)) return host;
  for (std::uint32_t delta = 1; delta < classes; ++delta) {
    if (k >= delta) {
      if (auto host = probe(k - delta)) return host;
    }
    if (k + delta < classes) {
      if (auto host = probe(k + delta)) return host;
    }
  }
  // Every up host is at capacity (overflow resolves at delivery), or every
  // host is down (nullopt: hold centrally).
  return saturated;
}

}  // namespace distserv::core
