#include "core/policies/class_sita.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace distserv::core {

ClassSitaPolicy::ClassSitaPolicy(std::vector<double> cutoffs,
                                 std::vector<std::size_t> class_sizes,
                                 std::string label)
    : cutoffs_(std::move(cutoffs)),
      class_sizes_(std::move(class_sizes)),
      label_(std::move(label)) {
  DS_EXPECTS(!cutoffs_.empty());
  DS_EXPECTS(cutoffs_.front() > 0.0);
  for (std::size_t i = 1; i < cutoffs_.size(); ++i) {
    DS_EXPECTS(cutoffs_[i - 1] < cutoffs_[i]);
  }
  DS_EXPECTS(class_sizes_.size() == cutoffs_.size() + 1);
  class_begin_.reserve(class_sizes_.size() + 1);
  HostId offset = 0;
  class_begin_.push_back(offset);
  for (std::size_t size : class_sizes_) {
    DS_EXPECTS(size >= 1);
    offset += static_cast<HostId>(size);
    class_begin_.push_back(offset);
  }
}

void ClassSitaPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  DS_EXPECTS(hosts == class_begin_.back());
}

std::uint32_t ClassSitaPolicy::class_of(double size) const noexcept {
  const auto it = std::lower_bound(cutoffs_.begin(), cutoffs_.end(), size);
  return static_cast<std::uint32_t>(it - cutoffs_.begin());
}

std::optional<HostId> ClassSitaPolicy::argmin_in_class(
    std::uint32_t k, const ServerView& view) const {
  return view.hosts().argmin_work_in(class_begin_[k], class_begin_[k + 1],
                                     view.now());
}

std::optional<HostId> ClassSitaPolicy::assign(const workload::Job& job,
                                              const ServerView& view) {
  const std::uint32_t k = class_of(job.size);
  if (auto host = argmin_in_class(k, view)) return host;
  // The whole owning class is down: remap to the nearest class with an up
  // host, ties preferring the smaller-size side — the class-granularity
  // version of SitaPolicy::nearest_up.
  const auto classes = static_cast<std::uint32_t>(class_sizes_.size());
  for (std::uint32_t delta = 1; delta < classes; ++delta) {
    if (k >= delta) {
      if (auto host = argmin_in_class(k - delta, view)) return host;
    }
    if (k + delta < classes) {
      if (auto host = argmin_in_class(k + delta, view)) return host;
    }
  }
  return std::nullopt;  // every host is down: hold centrally
}

}  // namespace distserv::core
