// SITA-class — size-interval assignment for heterogeneous fleets.
//
// Classic SITA (core/policies/sita.hpp) assumes one host per size interval:
// cutoffs.size() + 1 hosts, each owning one band. On a fleet with speed/
// capacity classes the natural unit is the *class*, not the host: class k
// (a contiguous index range of equal-speed hosts) owns the size band
// (c_{k-1}, c_k], with the between-class cutoffs derived so each class
// receives a load share proportional to its aggregate capacity
// (CutoffDeriver::sita_class). Within the owning class the job goes to the
// least-loaded member — argmin work-left over the class's index range,
// O(log h) via the host-state table's range tournament query.
//
// Dead ranges degrade like classic SITA: when every host of the owning
// class is down, the job is remapped to the nearest class (by class index,
// ties preferring the smaller-size side) that still has an up host, keeping
// it as close to its size band as the fleet allows. Routing consumes no
// RNG and is a pure function of (job, view).
#pragma once

#include <vector>

#include "core/policy.hpp"

namespace distserv::core {

class ClassSitaPolicy final : public Policy {
 public:
  /// `cutoffs` must be strictly increasing and positive; `class_sizes`
  /// gives the host count of each class in index order, so classes are
  /// contiguous host ranges and class_sizes.size() == cutoffs.size() + 1.
  /// The sizes must sum to the fleet's host count (enforced at reset()).
  ClassSitaPolicy(std::vector<double> cutoffs,
                  std::vector<std::size_t> class_sizes,
                  std::string label = "SITA-class");

  void reset(std::size_t hosts, std::uint64_t seed) override;
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] const std::vector<double>& cutoffs() const noexcept {
    return cutoffs_;
  }

  /// The class index owning `size` (no dead-range remap).
  [[nodiscard]] std::uint32_t class_of(double size) const noexcept;

  /// Reads work-left within the owning class, so a stale snapshot can
  /// mislead the within-class argmin; draws no RNG (oracle-safe). Degrades
  /// to a random host near the failed target, staying close to the class.
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{true, true, {FallbackKind::kRandomInRange}};
  }

 private:
  /// Least-loaded up host of class `k`, or nullopt when the whole class is
  /// down.
  [[nodiscard]] std::optional<HostId> argmin_in_class(std::uint32_t k,
                                                      const ServerView& view)
      const;

  std::vector<double> cutoffs_;
  std::vector<std::size_t> class_sizes_;
  std::vector<HostId> class_begin_;  ///< prefix offsets, size classes + 1
  std::string label_;
};

}  // namespace distserv::core
