#include "core/policies/hybrid_sita_lwl.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::core {

HybridSitaLwlPolicy::HybridSitaLwlPolicy(double cutoff,
                                         std::size_t short_hosts,
                                         std::string label)
    : cutoff_(cutoff), short_hosts_(short_hosts), label_(std::move(label)) {
  DS_EXPECTS(cutoff > 0.0);
  DS_EXPECTS(short_hosts >= 1);
}

void HybridSitaLwlPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  DS_EXPECTS(hosts >= 2);
  DS_EXPECTS(short_hosts_ <= hosts - 1);
}

std::optional<HostId> HybridSitaLwlPolicy::assign(const workload::Job& job,
                                                  const ServerView& view) {
  // LWL restricted to the job's group via the work-left index's range
  // argmin — O(log h) replacing the O(group) scan; ties break to the
  // lowest index as before.
  const HostStateTable& hosts = view.hosts();
  const double now = view.now();
  const bool is_short = job.size <= cutoff_;
  const HostId lo = is_short ? 0 : static_cast<HostId>(short_hosts_);
  const HostId hi = is_short ? static_cast<HostId>(short_hosts_)
                             : static_cast<HostId>(hosts.size());
  std::optional<HostId> best = hosts.argmin_work_in(lo, hi, now);
  // If the job's whole group is down, fall back to LWL over every up host
  // (the other group absorbs the range), else hold centrally.
  if (!best) best = hosts.argmin_work(now);
  return best;
}

std::size_t hybrid_short_group_size(std::size_t hosts) {
  DS_EXPECTS(hosts >= 2);
  return std::max<std::size_t>(1, hosts / 2);
}

}  // namespace distserv::core
