#include "core/policies/hybrid_sita_lwl.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::core {

HybridSitaLwlPolicy::HybridSitaLwlPolicy(double cutoff,
                                         std::size_t short_hosts,
                                         std::string label)
    : cutoff_(cutoff), short_hosts_(short_hosts), label_(std::move(label)) {
  DS_EXPECTS(cutoff > 0.0);
  DS_EXPECTS(short_hosts >= 1);
}

void HybridSitaLwlPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  DS_EXPECTS(hosts >= 2);
  DS_EXPECTS(short_hosts_ <= hosts - 1);
}

std::optional<HostId> HybridSitaLwlPolicy::assign(const workload::Job& job,
                                                  const ServerView& view) {
  // LWL restricted to the up hosts of a range; nullopt if none are up.
  const auto lwl_over = [&view](HostId lo, HostId hi) {
    std::optional<HostId> best;
    double best_work = 0.0;
    for (HostId h = lo; h < hi; ++h) {
      if (!view.host_up(h)) continue;
      const double work = view.work_left(h);
      if (!best || work < best_work) {
        best = h;
        best_work = work;
      }
    }
    return best;
  };
  const bool is_short = job.size <= cutoff_;
  const HostId lo = is_short ? 0 : static_cast<HostId>(short_hosts_);
  const HostId hi = is_short ? static_cast<HostId>(short_hosts_)
                             : static_cast<HostId>(view.host_count());
  std::optional<HostId> best = lwl_over(lo, hi);
  // If the job's whole group is down, fall back to LWL over every up host
  // (the other group absorbs the range), else hold centrally.
  if (!best) best = lwl_over(0, static_cast<HostId>(view.host_count()));
  return best;
}

std::size_t hybrid_short_group_size(std::size_t hosts) {
  DS_EXPECTS(hosts >= 2);
  return std::max<std::size_t>(1, hosts / 2);
}

}  // namespace distserv::core
