#include "core/policies/hybrid_sita_lwl.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::core {

HybridSitaLwlPolicy::HybridSitaLwlPolicy(double cutoff,
                                         std::size_t short_hosts,
                                         std::string label)
    : cutoff_(cutoff), short_hosts_(short_hosts), label_(std::move(label)) {
  DS_EXPECTS(cutoff > 0.0);
  DS_EXPECTS(short_hosts >= 1);
}

void HybridSitaLwlPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  DS_EXPECTS(hosts >= 2);
  DS_EXPECTS(short_hosts_ <= hosts - 1);
}

std::optional<HostId> HybridSitaLwlPolicy::assign(const workload::Job& job,
                                                  const ServerView& view) {
  const bool is_short = job.size <= cutoff_;
  const HostId lo = is_short ? 0 : static_cast<HostId>(short_hosts_);
  const HostId hi = is_short ? static_cast<HostId>(short_hosts_)
                             : static_cast<HostId>(view.host_count());
  HostId best = lo;
  double best_work = view.work_left(lo);
  for (HostId h = lo + 1; h < hi; ++h) {
    const double work = view.work_left(h);
    if (work < best_work) {
      best = h;
      best_work = work;
    }
  }
  return best;
}

std::size_t hybrid_short_group_size(std::size_t hosts) {
  DS_EXPECTS(hosts >= 2);
  return std::max<std::size_t>(1, hosts / 2);
}

}  // namespace distserv::core
