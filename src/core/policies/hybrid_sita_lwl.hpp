// Grouped SITA + Least-Work-Left — the paper's §5 modification for systems
// with many hosts.
//
// The hosts are split into a short-job group and a long-job group. A single
// cutoff (the policy's previously derived 2-host cutoff) decides which group
// an arriving job belongs to; within the group the job goes to the host with
// the least remaining work. This keeps the variance-reduction benefit of
// SITA without requiring h-1 precise cutoffs, and adds LWL's ability to
// exploit idle hosts.
#pragma once

#include <string>

#include "core/policy.hpp"

namespace distserv::core {

class HybridSitaLwlPolicy final : public Policy {
 public:
  /// `cutoff` > 0 splits short/long; `short_hosts` in [1, h-1] is the size
  /// of the short group (validated at reset). `label` e.g. "SITA-U-fair+LWL".
  HybridSitaLwlPolicy(double cutoff, std::size_t short_hosts,
                      std::string label);

  void reset(std::size_t hosts, std::uint64_t seed) override;
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] double cutoff() const noexcept { return cutoff_; }

  /// LWL within the group: state-sensitive, pure in (job, view), and
  /// degrades like LWL through Power-of-2 to Random.
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{
        true, true, {FallbackKind::kPowerOfTwo, FallbackKind::kRandom}};
  }
  [[nodiscard]] std::size_t short_hosts() const noexcept {
    return short_hosts_;
  }

 private:
  double cutoff_;
  std::size_t short_hosts_;
  std::string label_;
};

/// Group-size rule used by the experiments (paper §5): split the hosts into
/// two *equal* groups, g = max(1, h/2). With equal groups, the per-host
/// load of each group is exactly what the 2-host cutoff was designed for
/// (short side 2·rho·f, long side 2·rho·(1-f)), so the SITA-U unbalancing
/// carries over unchanged; sizing groups proportionally to the load split
/// would re-balance the load and forfeit the benefit.
[[nodiscard]] std::size_t hybrid_short_group_size(std::size_t hosts);

}  // namespace distserv::core
