#include "core/policies/least_work_left.hpp"

namespace distserv::core {

std::optional<HostId> LeastWorkLeftPolicy::assign(const workload::Job& /*job*/,
                                                  const ServerView& view) {
  // Argmin over the up hosts via the incrementally maintained work-left
  // index — O(log h) replacing the O(h) per-arrival scan. Ties still break
  // to the lowest index; nullopt when every host is down (hold centrally).
  return view.hosts().argmin_work(view.now());
}

}  // namespace distserv::core
