#include "core/policies/least_work_left.hpp"

namespace distserv::core {

std::optional<HostId> LeastWorkLeftPolicy::assign(const workload::Job& /*job*/,
                                                  const ServerView& view) {
  HostId best = 0;
  double best_work = view.work_left(0);
  for (HostId h = 1; h < view.host_count(); ++h) {
    const double work = view.work_left(h);
    if (work < best_work) {
      best = h;
      best_work = work;
    }
  }
  return best;
}

}  // namespace distserv::core
