#include "core/policies/least_work_left.hpp"

namespace distserv::core {

std::optional<HostId> LeastWorkLeftPolicy::assign(const workload::Job& /*job*/,
                                                  const ServerView& view) {
  // Argmin over the up hosts; ties break to the lowest index as before.
  std::optional<HostId> best;
  double best_work = 0.0;
  for (HostId h = 0; h < view.host_count(); ++h) {
    if (!view.host_up(h)) continue;
    const double work = view.work_left(h);
    if (!best || work < best_work) {
      best = h;
      best_work = work;
    }
  }
  return best;  // nullopt when every host is down: hold centrally
}

}  // namespace distserv::core
