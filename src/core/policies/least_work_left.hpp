// Least-Work-Left task assignment: route to the host with the least
// remaining work (residual of the running job plus queued sizes); ties break
// to the lowest host index. The closest a dispatch-on-arrival policy gets to
// instantaneous load balance, and provably equivalent to Central-Queue for
// any job sequence (see [11] and tests/core/test_policy_properties.cpp).
#pragma once

#include "core/policy.hpp"

namespace distserv::core {

class LeastWorkLeftPolicy final : public Policy {
 public:
  LeastWorkLeftPolicy() = default;

  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override { return "Least-Work-Left"; }

  /// Work-left argmin: misled by stale work estimates, pure in (job, view),
  /// and degrades naturally through Power-of-2 to Random.
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{
        true, true, {FallbackKind::kPowerOfTwo, FallbackKind::kRandom}};
  }
};

}  // namespace distserv::core
