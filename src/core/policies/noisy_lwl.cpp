#include "core/policies/noisy_lwl.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::core {

NoisyLeastWorkLeftPolicy::NoisyLeastWorkLeftPolicy(double sigma)
    : sigma_(sigma) {
  DS_EXPECTS(sigma >= 0.0);
}

void NoisyLeastWorkLeftPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  rng_ = dist::Rng(seed ^ 0x4e4f495359ULL);  // "NOISY" tag
}

std::optional<HostId> NoisyLeastWorkLeftPolicy::assign(
    const workload::Job& /*job*/, const ServerView& view) {
  std::optional<HostId> best;
  double best_observed = 0.0;
  for (HostId h = 0; h < view.host_count(); ++h) {
    if (!view.host_up(h)) continue;  // down hosts are observably down
    const double truth = view.work_left(h);
    // Idle hosts are observably idle regardless of estimate quality.
    const double observed =
        (truth == 0.0 || sigma_ == 0.0)
            ? truth
            : truth * std::exp(sigma_ * rng_.normal());
    if (!best || observed < best_observed) {
      best = h;
      best_observed = observed;
    }
  }
  return best;  // nullopt when every host is down: hold centrally
}

std::string NoisyLeastWorkLeftPolicy::name() const {
  return "Noisy-LWL(sigma=" + util::format_sig(sigma_, 3) + ")";
}

}  // namespace distserv::core
