#include "core/policies/noisy_lwl.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::core {

NoisyLeastWorkLeftPolicy::NoisyLeastWorkLeftPolicy(double sigma)
    : sigma_(sigma) {
  DS_EXPECTS(sigma >= 0.0);
}

void NoisyLeastWorkLeftPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  rng_ = dist::Rng(seed ^ 0x4e4f495359ULL);  // "NOISY" tag
}

std::optional<HostId> NoisyLeastWorkLeftPolicy::assign(
    const workload::Job& /*job*/, const ServerView& view) {
  const HostStateTable& hosts = view.hosts();
  const double now = view.now();
  // sigma = 0 is exact LWL: no noise draw per host, so the O(log h) argmin
  // index applies directly.
  if (sigma_ == 0.0) return hosts.argmin_work(now);
  // With noise, each up host with non-zero truth consumes one normal draw
  // in index order — the draw sequence is part of the determinism
  // contract, so this stays a bulk scan over the table (contiguous reads,
  // no virtual calls), not an index query.
  std::optional<HostId> best;
  double best_observed = 0.0;
  for (HostId h = 0; h < hosts.size(); ++h) {
    if (!hosts.up(h)) continue;  // down hosts are observably down
    const double truth = hosts.work_left(h, now);
    // Idle hosts are observably idle regardless of estimate quality.
    const double observed =
        truth == 0.0 ? truth : truth * std::exp(sigma_ * rng_.normal());
    if (!best || observed < best_observed) {
      best = h;
      best_observed = observed;
    }
  }
  return best;  // nullopt when every host is down: hold centrally
}

std::string NoisyLeastWorkLeftPolicy::name() const {
  return "Noisy-LWL(sigma=" + util::format_sig(sigma_, 3) + ")";
}

}  // namespace distserv::core
