// Least-Work-Left with imperfect runtime estimates.
//
// In practice (paper §1.2) users implement LWL by summing the *estimated*
// runtimes of queued jobs, and real estimates are poor (§7). This policy
// models that: each per-host work-left observation is multiplied by an
// independent lognormal factor with unit median and the configured spread,
// so ranking errors occur exactly when hosts are close — the realistic
// failure mode. With sigma = 0 it is exact LWL.
//
// Contrast with SITA, which needs only one bit of size information; the
// bench bench_ablation_estimate_error.cpp quantifies the difference.
#pragma once

#include "core/policy.hpp"
#include "dist/rng.hpp"

namespace distserv::core {

class NoisyLeastWorkLeftPolicy final : public Policy {
 public:
  /// `sigma` >= 0 is the standard deviation of log-observation noise
  /// (sigma ~ 1.0 corresponds to typical order-of-magnitude user estimates).
  explicit NoisyLeastWorkLeftPolicy(double sigma);

  void reset(std::size_t hosts, std::uint64_t seed) override;
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  /// Ranks hosts by (noisy) work left — state-sensitive — and draws its
  /// noise factors from its own RNG, so the oracle must not re-run it.
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{
        true, false, {FallbackKind::kPowerOfTwo, FallbackKind::kRandom}};
  }

 private:
  double sigma_;
  dist::Rng rng_{0};
};

}  // namespace distserv::core
