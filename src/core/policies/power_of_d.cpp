#include "core/policies/power_of_d.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace distserv::core {

PowerOfDPolicy::PowerOfDPolicy(std::size_t d, Criterion criterion)
    : d_(d), criterion_(criterion) {
  DS_EXPECTS(d >= 1);
}

void PowerOfDPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  rng_ = dist::Rng(seed ^ 0x504f5744ULL);  // "POWD" tag
  scratch_.clear();
  scratch_.reserve(std::min(d_, hosts));
}

std::optional<HostId> PowerOfDPolicy::assign(const workload::Job& job,
                                             const ServerView& view) {
  const HostStateTable& hosts = view.hosts();
  const std::size_t h = hosts.size();
  const double now = view.now();
  const std::size_t up = hosts.up_count();  // maintained count, O(1)
  if (up == 0) return std::nullopt;  // every host is down: hold centrally
  const std::size_t probes = std::min(d_, up);
  // Sample `probes` distinct up hosts by rejection over indices. With all
  // hosts up the rejection condition never triggers on host state, so the
  // draws are identical to the fault-free implementation.
  scratch_.clear();
  for (std::size_t i = 0; i < probes; ++i) {
    while (true) {
      const auto candidate = static_cast<HostId>(rng_.below(h));
      if (hosts.up(candidate) &&
          std::find(scratch_.begin(), scratch_.end(), candidate) ==
              scratch_.end()) {
        scratch_.push_back(candidate);
        break;
      }
    }
  }
  HostId best = scratch_.front();
  double best_score = 0.0;
  bool first = true;
  for (HostId candidate : scratch_) {
    double score;
    switch (criterion_) {
      case Criterion::kWorkLeft:
        score = hosts.work_left(candidate, now);
        break;
      case Criterion::kQueueLength:
        score = static_cast<double>(hosts.queue_length(candidate));
        break;
      case Criterion::kLeastLoaded:
        // When would the job finish here? Backlog (already in host-local
        // time units) plus this job's service time on this host.
        score = hosts.work_left(candidate, now) +
                job.size / hosts.speed(candidate);
        break;
    }
    if (first || score < best_score ||
        (score == best_score && candidate < best)) {
      best = candidate;
      best_score = score;
      first = false;
    }
  }
  return best;
}

std::string PowerOfDPolicy::name() const {
  switch (criterion_) {
    case Criterion::kQueueLength:
      return "Power-of-" + std::to_string(d_) + "(queue)";
    case Criterion::kLeastLoaded:
      return "Least-Loaded-" + std::to_string(d_);
    case Criterion::kWorkLeft:
      break;
  }
  return "Power-of-" + std::to_string(d_) + "(work)";
}

}  // namespace distserv::core
