// Power-of-d-choices assignment (Mitzenmacher/Vvedenskaya): probe d random
// hosts, send the job to the probed host with the least remaining work (or
// the shortest queue). The standard low-overhead middle ground between
// Random (d = 1) and full Least-Work-Left (d = h); included so downstream
// users can place it on the paper's policy spectrum.
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "dist/rng.hpp"

namespace distserv::core {

class PowerOfDPolicy final : public Policy {
 public:
  /// What the probe observes at a host. kLeastLoaded is the
  /// heterogeneity-aware variant: it ranks candidates by when the arriving
  /// job would *finish* there — work_left + size / speed — so a fast host
  /// with a deeper queue can beat a slow idle one. With all speeds 1 the
  /// job's size shifts every candidate equally and the ranking collapses
  /// to kWorkLeft exactly.
  enum class Criterion { kWorkLeft, kQueueLength, kLeastLoaded };

  /// Requires d >= 1 (validated against the host count at reset; d is
  /// clamped to h there).
  explicit PowerOfDPolicy(std::size_t d,
                          Criterion criterion = Criterion::kWorkLeft);

  void reset(std::size_t hosts, std::uint64_t seed) override;
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t d() const noexcept { return d_; }

  /// Probes read queue/work state (stale snapshots mislead it) and the
  /// probe set is drawn from its own RNG (not oracle-safe).
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{true, false, {FallbackKind::kRandom}};
  }

 private:
  std::size_t d_;
  Criterion criterion_;
  dist::Rng rng_{0};
  std::vector<HostId> scratch_;  // sampled-without-replacement probe set
};

}  // namespace distserv::core
