#include "core/policies/random.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

void RandomPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  hosts_ = hosts;
  rng_ = dist::Rng(seed ^ 0x52414e444f4dULL);  // "RANDOM" tag decorrelates
}

std::optional<HostId> RandomPolicy::assign(const workload::Job& /*job*/,
                                           const ServerView& view) {
  DS_EXPECTS(hosts_ >= 1);
  const HostStateTable& hosts = view.hosts();
  // Healthy path: one draw over all hosts, exactly as without faults.
  if (hosts.all_up()) return static_cast<HostId>(rng_.below(hosts_));
  // Degraded path: uniform over the up hosts only — draw a rank below the
  // up-count and select it from the bitset, consuming the same stream as
  // the old rebuild-a-live-vector code (below(live), not rejection
  // sampling, so "last host down forever" matches an (h-1)-host run,
  // which the metamorphic law exploits) without its O(h) rebuild.
  const std::size_t live = hosts.up_count();
  if (live == 0) return std::nullopt;  // hold centrally
  return hosts.kth_up(rng_.below(live));
}

}  // namespace distserv::core
