#include "core/policies/random.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

void RandomPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  hosts_ = hosts;
  rng_ = dist::Rng(seed ^ 0x52414e444f4dULL);  // "RANDOM" tag decorrelates
}

std::optional<HostId> RandomPolicy::assign(const workload::Job& /*job*/,
                                           const ServerView& /*view*/) {
  DS_EXPECTS(hosts_ >= 1);
  return static_cast<HostId>(rng_.below(hosts_));
}

}  // namespace distserv::core
