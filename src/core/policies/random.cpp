#include "core/policies/random.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

void RandomPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  hosts_ = hosts;
  rng_ = dist::Rng(seed ^ 0x52414e444f4dULL);  // "RANDOM" tag decorrelates
}

std::optional<HostId> RandomPolicy::assign(const workload::Job& /*job*/,
                                           const ServerView& view) {
  DS_EXPECTS(hosts_ >= 1);
  bool all_up = true;
  for (HostId h = 0; h < hosts_; ++h) {
    if (!view.host_up(h)) {
      all_up = false;
      break;
    }
  }
  // Healthy path: one draw over all hosts, exactly as without faults.
  if (all_up) return static_cast<HostId>(rng_.below(hosts_));
  // Degraded path: uniform over the up hosts only. Drawing below(live) —
  // not rejection sampling — makes "last host down forever" consume the
  // same stream as an (h-1)-host run, which the metamorphic law exploits.
  live_.clear();
  for (HostId h = 0; h < hosts_; ++h) {
    if (view.host_up(h)) live_.push_back(h);
  }
  if (live_.empty()) return std::nullopt;  // hold centrally
  return live_[rng_.below(live_.size())];
}

}  // namespace distserv::core
