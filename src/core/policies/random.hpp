// Random task assignment: each job goes to a uniformly random host
// (Bernoulli splitting). Equalizes the *expected* number of jobs per host
// and nothing else — the paper's weakest baseline.
#pragma once

#include "core/policy.hpp"
#include "dist/rng.hpp"

namespace distserv::core {

class RandomPolicy final : public Policy {
 public:
  RandomPolicy() = default;

  void reset(std::size_t hosts, std::uint64_t seed) override;
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

  /// State-free (no snapshot can mislead it) but draws its own RNG, so the
  /// oracle must not re-run assign(). Fallback is Random itself.
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{false, false, {FallbackKind::kRandom}};
  }

 private:
  dist::Rng rng_{0};
  std::size_t hosts_ = 0;
};

}  // namespace distserv::core
