#include "core/policies/round_robin.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

void RoundRobinPolicy::reset(std::size_t hosts, std::uint64_t /*seed*/) {
  DS_EXPECTS(hosts >= 1);
  hosts_ = hosts;
  next_ = 0;
}

std::optional<HostId> RoundRobinPolicy::assign(const workload::Job& /*job*/,
                                               const ServerView& view) {
  DS_EXPECTS(hosts_ >= 1);
  // Advance the wheel past down hosts; the emitted sequence over the up
  // hosts is the plain round-robin order on them.
  for (std::size_t probe = 0; probe < hosts_; ++probe) {
    const HostId host = static_cast<HostId>(next_);
    next_ = (next_ + 1) % hosts_;
    if (view.host_up(host)) return host;
  }
  return std::nullopt;  // every host is down: hold centrally
}

}  // namespace distserv::core
