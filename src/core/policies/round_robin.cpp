#include "core/policies/round_robin.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

void RoundRobinPolicy::reset(std::size_t hosts, std::uint64_t /*seed*/) {
  DS_EXPECTS(hosts >= 1);
  hosts_ = hosts;
  last_ = hosts - 1;  // the first scan starts at host 0
}

std::optional<HostId> RoundRobinPolicy::assign(const workload::Job& /*job*/,
                                               const ServerView& view) {
  DS_EXPECTS(hosts_ >= 1);
  // Scan from the successor of the last dispatched host, skipping down
  // hosts (an O(1) bit test each; with all hosts up the first probe hits).
  // Anchoring on the last *dispatch* (instead of free-running a counter)
  // keeps the rotation fair across failures: a host that was skipped while
  // down re-enters at its normal place in the wheel once it recovers, with
  // no permanent skew toward low-index hosts.
  const HostBitset& up = view.hosts().up_bits();
  for (std::size_t probe = 1; probe <= hosts_; ++probe) {
    const std::size_t slot = (last_ + probe) % hosts_;
    if (up.test(slot)) {
      last_ = slot;
      return static_cast<HostId>(slot);
    }
  }
  return std::nullopt;  // every host is down: hold centrally
}

}  // namespace distserv::core
