#include "core/policies/round_robin.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

void RoundRobinPolicy::reset(std::size_t hosts, std::uint64_t /*seed*/) {
  DS_EXPECTS(hosts >= 1);
  hosts_ = hosts;
  next_ = 0;
}

std::optional<HostId> RoundRobinPolicy::assign(const workload::Job& /*job*/,
                                               const ServerView& /*view*/) {
  DS_EXPECTS(hosts_ >= 1);
  const HostId host = static_cast<HostId>(next_);
  next_ = (next_ + 1) % hosts_;
  return host;
}

}  // namespace distserv::core
