// Round-Robin task assignment: job i goes to host i mod h. Same expected
// split as Random but with Erlang-h (less variable) interarrivals per host.
#pragma once

#include "core/policy.hpp"

namespace distserv::core {

class RoundRobinPolicy final : public Policy {
 public:
  RoundRobinPolicy() = default;

  void reset(std::size_t hosts, std::uint64_t seed) override;
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override { return "Round-Robin"; }

 private:
  std::size_t hosts_ = 0;
  std::size_t next_ = 0;
};

}  // namespace distserv::core
