// Round-Robin task assignment: job i goes to host i mod h. Same expected
// split as Random but with Erlang-h (less variable) interarrivals per host.
#pragma once

#include "core/policy.hpp"

namespace distserv::core {

class RoundRobinPolicy final : public Policy {
 public:
  RoundRobinPolicy() = default;

  void reset(std::size_t hosts, std::uint64_t seed) override;
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override { return "Round-Robin"; }

  /// Counter-based, so stale queue state cannot mislead it; assign advances
  /// the counter (not pure). Falls back to Random.
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{false, false, {FallbackKind::kRandom}};
  }

 private:
  std::size_t hosts_ = 0;
  /// The host the previous job was sent to; the rotation resumes scanning
  /// at last_ + 1, so a host that was down and recovered slots back into
  /// its fair turn instead of being skipped forever.
  std::size_t last_ = 0;
};

}  // namespace distserv::core
