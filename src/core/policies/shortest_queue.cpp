#include "core/policies/shortest_queue.hpp"

namespace distserv::core {

std::optional<HostId> ShortestQueuePolicy::assign(const workload::Job& /*job*/,
                                                  const ServerView& view) {
  // Argmin over the up hosts; ties break to the lowest index as before.
  std::optional<HostId> best;
  std::size_t best_len = 0;
  for (HostId h = 0; h < view.host_count(); ++h) {
    if (!view.host_up(h)) continue;
    const std::size_t len = view.queue_length(h);
    if (!best || len < best_len) {
      best = h;
      best_len = len;
    }
  }
  return best;  // nullopt when every host is down: hold centrally
}

}  // namespace distserv::core
