#include "core/policies/shortest_queue.hpp"

namespace distserv::core {

std::optional<HostId> ShortestQueuePolicy::assign(const workload::Job& /*job*/,
                                                  const ServerView& view) {
  // Argmin over the up hosts via the incrementally maintained queue-length
  // index — replaces the O(h) per-arrival scan. Ties still break to the
  // lowest index; nullopt when every host is down (hold centrally).
  return view.hosts().argmin_queue_len();
}

}  // namespace distserv::core
