#include "core/policies/shortest_queue.hpp"

namespace distserv::core {

std::optional<HostId> ShortestQueuePolicy::assign(const workload::Job& /*job*/,
                                                  const ServerView& view) {
  HostId best = 0;
  std::size_t best_len = view.queue_length(0);
  for (HostId h = 1; h < view.host_count(); ++h) {
    const std::size_t len = view.queue_length(h);
    if (len < best_len) {
      best = h;
      best_len = len;
    }
  }
  return best;
}

}  // namespace distserv::core
