// Shortest-Queue task assignment: route to the host with the fewest jobs in
// system (running + queued); ties broken by lowest host index. Balances the
// instantaneous job count but is blind to job sizes.
#pragma once

#include "core/policy.hpp"

namespace distserv::core {

class ShortestQueuePolicy final : public Policy {
 public:
  ShortestQueuePolicy() = default;

  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override { return "Shortest-Queue"; }

  /// Queue-count argmin: misled by stale counts, pure in (job, view), and
  /// degrades naturally through Power-of-2 to Random.
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{
        true, true, {FallbackKind::kPowerOfTwo, FallbackKind::kRandom}};
  }
};

}  // namespace distserv::core
