#include "core/policies/sita.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace distserv::core {

SitaPolicy::SitaPolicy(std::vector<double> cutoffs, std::string label,
                       double classification_error, ErrorModel error_model)
    : cutoffs_(std::move(cutoffs)),
      label_(std::move(label)),
      error_rate_(classification_error),
      error_model_(error_model) {
  DS_EXPECTS(!cutoffs_.empty());
  DS_EXPECTS(std::is_sorted(cutoffs_.begin(), cutoffs_.end()));
  for (std::size_t i = 1; i < cutoffs_.size(); ++i) {
    DS_EXPECTS(cutoffs_[i - 1] < cutoffs_[i]);
  }
  DS_EXPECTS(cutoffs_.front() > 0.0);
  DS_EXPECTS(error_rate_ >= 0.0 && error_rate_ <= 1.0);
}

void SitaPolicy::reset(std::size_t hosts, std::uint64_t seed) {
  Policy::reset(hosts, seed);
  DS_EXPECTS(hosts == cutoffs_.size() + 1);
  rng_ = dist::Rng(seed ^ 0x53495441ULL);  // "SITA" tag
}

HostId SitaPolicy::interval_of(double size) const noexcept {
  const auto it = std::lower_bound(cutoffs_.begin(), cutoffs_.end(), size);
  return static_cast<HostId>(it - cutoffs_.begin());
}

std::optional<HostId> SitaPolicy::nearest_up(HostId host,
                                             const ServerView& view) {
  const HostStateTable& table = view.hosts();
  const HostBitset& up = table.up_bits();
  if (!up.any()) return std::nullopt;  // every host is down: hold centrally
  const double now = view.now();
  const auto h = static_cast<HostId>(up.size());
  // Nearest by interval index: the adjacent size ranges are the closest in
  // job-size terms. Ties prefer the smaller-size side (lower index).
  //
  // With bounded queues the walk first looks for an up host with queue
  // headroom (caps unset makes at_capacity constant-false, so this pass is
  // byte-for-byte the historical behavior). When every up band is full it
  // escalates to the plain nearest-up answer and the configured overflow
  // action resolves the conflict there — the policy never spins hunting
  // for room that does not exist.
  const auto open = [&](HostId c) {
    return up.test(c) && !table.at_capacity(c, now);
  };
  if (open(host)) return host;
  for (HostId delta = 1; delta < h; ++delta) {
    if (host >= delta && open(host - delta)) return host - delta;
    if (host + delta < h && open(host + delta)) return host + delta;
  }
  if (up.test(host)) return host;
  for (HostId delta = 1; delta < h; ++delta) {
    if (host >= delta && up.test(host - delta)) return host - delta;
    if (host + delta < h && up.test(host + delta)) return host + delta;
  }
  return std::nullopt;
}

std::optional<HostId> SitaPolicy::assign(const workload::Job& job,
                                         const ServerView& view) {
  HostId host = interval_of(job.size);
  if (error_rate_ > 0.0 && rng_.bernoulli(error_rate_)) {
    const std::size_t h = view.hosts().size();
    if (error_model_ == ErrorModel::kUniform) {
      // Misclassification: a uniformly random *other* interval.
      const auto offset = 1 + rng_.below(h - 1);
      host = static_cast<HostId>((host + offset) % h);
    } else {
      // Borderline model: flip across the nearest cutoff, but only when the
      // size is within a factor of kBorderlineBandFactor of it.
      const double below =
          host > 0 ? job.size / cutoffs_[host - 1]
                   : std::numeric_limits<double>::infinity();
      const double above =
          host < cutoffs_.size() ? cutoffs_[host] / job.size
                                 : std::numeric_limits<double>::infinity();
      if (below <= above && below <= kBorderlineBandFactor) {
        host = static_cast<HostId>(host - 1);
      } else if (above < below && above <= kBorderlineBandFactor) {
        host = static_cast<HostId>(host + 1);
      }
      // Otherwise the size is unambiguous and even a careless user gets it
      // right: no flip.
    }
  }
  // A dead host's size range is remapped to its nearest live neighbor
  // (applied after the error flip: misrouted jobs get remapped too).
  return nearest_up(host, view);
}

}  // namespace distserv::core
