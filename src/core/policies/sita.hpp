// SITA — Size Interval Task Assignment (paper §1.2, §4).
//
// Host i receives exactly the jobs whose size falls in (c_{i-1}, c_i], where
// c_0 = 0 and c_h = infinity. The cutoff vector determines the flavor:
//   * SITA-E      — cutoffs equalize the load across hosts;
//   * SITA-U-opt  — cutoff minimizes mean slowdown (load unbalanced);
//   * SITA-U-fair — cutoff equalizes expected slowdown of shorts and longs.
// Cutoff derivation lives in core/cutoffs.hpp and queueing/cutoff_search.hpp;
// this class is the routing mechanism, parameterized by the cutoffs and a
// display name.
//
// An optional classification-error rate models imperfect user runtime
// estimates (paper §7). Two error models:
//   * kUniform    — with probability eps a job lands in a uniformly random
//                   wrong interval. Harsh: even the rare huge jobs can be
//                   dumped on the short host.
//   * kBorderline — only jobs within a factor-of-4 band around a cutoff
//                   can flip across it (with probability eps). This is the
//                   paper's scenario: users judge "short vs long" and err
//                   near the boundary, not by orders of magnitude.
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "dist/rng.hpp"

namespace distserv::core {

class SitaPolicy final : public Policy {
 public:
  enum class ErrorModel { kUniform, kBorderline };

  /// `cutoffs` must be strictly increasing; a system of cutoffs.size()+1
  /// hosts is implied and enforced at reset(). `label` names the flavor
  /// (e.g. "SITA-E"). `classification_error` in [0,1).
  SitaPolicy(std::vector<double> cutoffs, std::string label,
             double classification_error = 0.0,
             ErrorModel error_model = ErrorModel::kUniform);

  void reset(std::size_t hosts, std::uint64_t seed) override;
  [[nodiscard]] std::optional<HostId> assign(const workload::Job& job,
                                             const ServerView& view) override;
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] const std::vector<double>& cutoffs() const noexcept {
    return cutoffs_;
  }

  /// The configured misclassification rate (0 = deterministic routing).
  [[nodiscard]] double classification_error() const noexcept {
    return error_rate_;
  }

  /// The size interval index for a given size (no classification error).
  [[nodiscard]] HostId interval_of(double size) const noexcept;

  /// Size-based, so stale queue state cannot mislead it; pure only without
  /// classification error (the error draw consumes RNG). Falls back to a
  /// random host *near the failed interval*, keeping the job close to its
  /// size class.
  [[nodiscard]] DegradedInfo degraded_info() const override {
    return DegradedInfo{
        false, error_rate_ == 0.0, {FallbackKind::kRandomInRange}};
  }

 private:
  /// The up host nearest to `host` by interval index (ties prefer the
  /// smaller-size side), or nullopt when every host is down. Used to remap
  /// a dead interval's jobs to the closest live size range.
  [[nodiscard]] static std::optional<HostId> nearest_up(
      HostId host, const ServerView& view);

  std::vector<double> cutoffs_;
  std::string label_;
  double error_rate_;
  ErrorModel error_model_;
  dist::Rng rng_{0};

  /// Log-space half-width of the borderline band around each cutoff.
  static constexpr double kBorderlineBandFactor = 4.0;
};

}  // namespace distserv::core
