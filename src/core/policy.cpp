#include "core/policy.hpp"

#include "util/contracts.hpp"

namespace distserv::core {

void Policy::reset(std::size_t hosts, std::uint64_t /*seed*/) {
  DS_EXPECTS(hosts >= 1);
}

std::size_t Policy::select_next(const std::deque<workload::Job>& held,
                                HostId /*host*/, const ServerView& /*view*/) {
  DS_EXPECTS(!held.empty());
  return 0;  // FCFS
}

}  // namespace distserv::core
