// The task assignment policy interface — the paper's central object of
// study. A policy sees an arriving job and the observable server state and
// either names a host (immediate dispatch, the common case) or declines,
// leaving the job in the dispatcher's central queue to be pulled when a host
// frees up (the Central-Queue policy).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/host_state.hpp"
#include "core/types.hpp"
#include "workload/job.hpp"

namespace distserv::core {

/// One level of a policy's fallback chain: the cheap routing rule the
/// dispatcher substitutes when it cannot execute the policy proper (dispatch
/// retry budget exhausted, or snapshot staleness past the configured bound).
/// Fallbacks route on *live* liveness only — they are what a dispatcher can
/// do without trusting its state cache.
enum class FallbackKind {
  /// Sample two distinct up hosts, take the one with less remaining work.
  kPowerOfTwo,
  /// Uniform over up hosts.
  kRandom,
  /// Uniform over up hosts adjacent (by index) to the failed target — the
  /// natural degradation for range-partitioned policies like SITA, which
  /// keeps the job near its size class.
  kRandomInRange,
};

/// What the control plane (sim/control_plane.hpp) needs to know about a
/// policy to degrade it gracefully.
struct DegradedInfo {
  /// True if assign() reads queue lengths or work left, so a stale snapshot
  /// can mislead it (Shortest-Queue, LWL, ...). Size- or counter-based
  /// policies (SITA, Round-Robin, Random) are insensitive and never hit the
  /// staleness bound.
  bool state_sensitive = false;
  /// True if assign() is a pure function of (job, view) — no internal state
  /// advanced, no RNG drawn — so the misrouting oracle may re-evaluate it
  /// against live state without perturbing the run.
  bool assign_pure = false;
  /// Escalation levels after the policy itself, cheapest last. Empty means
  /// no degraded routing exists (Central-Queue: jobs are held, not routed)
  /// and exhausted dispatches go straight to forced placement.
  std::vector<FallbackKind> fallback_chain;
};

/// Read-only view of the server state exposed to policies. Everything a
/// real dispatcher could know: queue lengths, remaining work (assuming
/// perfect runtime estimates, as the paper does), idleness, liveness, and
/// the clock — all carried by one structure-of-arrays HostStateTable with
/// incrementally maintained argmin indices, so state-sensitive policies
/// dispatch in O(log h) instead of scanning h virtual getters per arrival.
class ServerView {
 public:
  virtual ~ServerView() = default;

  /// The host-state table (see core/host_state.hpp): bulk span accessors,
  /// the up-bitset, and the argmin queue-length / argmin work-left indices.
  [[nodiscard]] virtual const HostStateTable& hosts() const = 0;
  /// Current simulation time.
  [[nodiscard]] virtual double now() const = 0;

  // --- Deprecated per-host adapter shims -------------------------------
  // The pre-HostStateTable API: one virtual call per host per read, which
  // made every argmin policy O(h) per arrival. Kept for one release as
  // thin non-virtual adapters so out-of-tree policies keep compiling;
  // every in-tree caller now reads hosts() directly. Scheduled for
  // removal — migrate to hosts().

  [[deprecated("use hosts().size()")]] [[nodiscard]] std::size_t host_count()
      const {
    return hosts().size();
  }
  /// Jobs at the host, including the one in service.
  [[deprecated("use hosts().queue_length(host)")]] [[nodiscard]] std::size_t
  queue_length(HostId host) const {
    return hosts().queue_length(host);
  }
  /// Remaining work at the host: residual of the running job plus the sizes
  /// of all queued jobs.
  [[deprecated("use hosts().work_left(host, now())")]] [[nodiscard]] double
  work_left(HostId host) const {
    return hosts().work_left(host, now());
  }
  /// True if the host is neither serving nor holding any job.
  [[deprecated("use hosts().idle(host)")]] [[nodiscard]] bool host_idle(
      HostId host) const {
    return hosts().idle(host);
  }
  /// True if the host is operational. Policies must never route to a down
  /// host.
  [[deprecated("use hosts().up(host)")]] [[nodiscard]] bool host_up(
      HostId host) const {
    return hosts().up(host);
  }
};

/// A task assignment rule.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Called once before each run with the host count and a run seed.
  /// Stateful policies (Round-Robin counter, Random's RNG) reset here.
  virtual void reset(std::size_t hosts, std::uint64_t seed);

  /// Routes an arriving job. Returning nullopt holds the job centrally.
  [[nodiscard]] virtual std::optional<HostId> assign(const workload::Job& job,
                                                     const ServerView& view) = 0;

  /// When a host idles and jobs are held centrally, picks the index (into
  /// `held`, ordered by arrival) of the job to start. Default: 0 (FCFS).
  [[nodiscard]] virtual std::size_t select_next(
      const std::deque<workload::Job>& held, HostId host,
      const ServerView& view);

  /// Stable identifier, e.g. "SITA-E".
  [[nodiscard]] virtual std::string name() const = 0;

  /// How the control plane should degrade this policy. The default is the
  /// most conservative stateless description: not state-sensitive, not
  /// provably pure, fall back to Random.
  [[nodiscard]] virtual DegradedInfo degraded_info() const {
    return DegradedInfo{false, false, {FallbackKind::kRandom}};
  }
};

using PolicyPtr = std::unique_ptr<Policy>;

}  // namespace distserv::core
