// The task assignment policy interface — the paper's central object of
// study. A policy sees an arriving job and the observable server state and
// either names a host (immediate dispatch, the common case) or declines,
// leaving the job in the dispatcher's central queue to be pulled when a host
// frees up (the Central-Queue policy).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "core/types.hpp"
#include "workload/job.hpp"

namespace distserv::core {

/// Read-only view of the server state exposed to policies. Everything a
/// real dispatcher could know: queue lengths, remaining work (assuming
/// perfect runtime estimates, as the paper does), idleness, and the clock.
class ServerView {
 public:
  virtual ~ServerView() = default;

  [[nodiscard]] virtual std::size_t host_count() const = 0;
  /// Jobs at the host, including the one in service.
  [[nodiscard]] virtual std::size_t queue_length(HostId host) const = 0;
  /// Remaining work at the host: residual of the running job plus the sizes
  /// of all queued jobs.
  [[nodiscard]] virtual double work_left(HostId host) const = 0;
  /// True if the host is neither serving nor holding any job.
  [[nodiscard]] virtual bool host_idle(HostId host) const = 0;
  /// True if the host is operational. Defaults to true: only views backed
  /// by a failure model (sim/faults.hpp via DistributedServer) override
  /// this. Policies must never route to a down host.
  [[nodiscard]] virtual bool host_up(HostId /*host*/) const { return true; }
  /// Current simulation time.
  [[nodiscard]] virtual double now() const = 0;
};

/// A task assignment rule.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Called once before each run with the host count and a run seed.
  /// Stateful policies (Round-Robin counter, Random's RNG) reset here.
  virtual void reset(std::size_t hosts, std::uint64_t seed);

  /// Routes an arriving job. Returning nullopt holds the job centrally.
  [[nodiscard]] virtual std::optional<HostId> assign(const workload::Job& job,
                                                     const ServerView& view) = 0;

  /// When a host idles and jobs are held centrally, picks the index (into
  /// `held`, ordered by arrival) of the job to start. Default: 0 (FCFS).
  [[nodiscard]] virtual std::size_t select_next(
      const std::deque<workload::Job>& held, HostId host,
      const ServerView& view);

  /// Stable identifier, e.g. "SITA-E".
  [[nodiscard]] virtual std::string name() const = 0;
};

using PolicyPtr = std::unique_ptr<Policy>;

}  // namespace distserv::core
