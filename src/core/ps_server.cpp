#include "core/ps_server.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace distserv::core {

PsServer::PsServer(std::size_t hosts, Policy& policy)
    : hosts_count_(hosts), policy_(&policy) {
  DS_EXPECTS(hosts >= 1);
}

double PsServer::host_work_left(HostId host, double t) const {
  DS_EXPECTS(host < hosts_.size());
  const Host& h = hosts_[host];
  // Remaining work as of last_update, minus what was shared out since.
  double total = 0.0;
  for (const Active& a : h.active) total += a.remaining;
  const double elapsed = t - h.last_update;
  return std::max(total - elapsed, 0.0);
}

const HostStateTable& PsServer::hosts() const {
  const double t = sim_.now();
  if (table_time_ != t || table_version_ != version_) {
    for (HostId h = 0; h < hosts_count_; ++h) {
      table_.set_observation(
          h, static_cast<std::uint32_t>(hosts_[h].active.size()),
          host_work_left(h, t), hosts_[h].active.empty(), t);
    }
    table_time_ = t;
    table_version_ = version_;
  }
  return table_;
}

double PsServer::now() const { return sim_.now(); }

void PsServer::age(HostId host) {
  Host& h = hosts_[host];
  const double elapsed = sim_.now() - h.last_update;
  h.last_update = sim_.now();
  if (h.active.empty() || elapsed <= 0.0) return;
  const double share = elapsed / static_cast<double>(h.active.size());
  for (Active& a : h.active) {
    a.remaining = std::max(a.remaining - share, 0.0);
  }
  h.stats.busy_time += elapsed;  // PS host works whenever non-empty
}

void PsServer::schedule_departure(HostId host) {
  Host& h = hosts_[host];
  ++h.epoch;  // invalidate any previously scheduled departure
  if (h.active.empty()) return;
  const auto next = std::min_element(
      h.active.begin(), h.active.end(),
      [](const Active& a, const Active& b) { return a.remaining < b.remaining; });
  const double dt =
      next->remaining * static_cast<double>(h.active.size());
  sim_.schedule_in(dt, sim::Event::departure(host, /*job=*/0, h.epoch));
}

void PsServer::on_departure(HostId host, std::uint64_t epoch) {
  Host& hh = hosts_[host];
  if (hh.epoch != epoch) return;  // superseded by a later arrival
  age(host);
  const auto it = std::min_element(
      hh.active.begin(), hh.active.end(),
      [](const Active& a, const Active& b) {
        return a.remaining < b.remaining;
      });
  DS_ASSERT(it != hh.active.end());
  // The scheduled completer's residual is zero up to accumulated aging
  // round-off (proportional to how much work the host processed).
  DS_ASSERT(it->remaining <= 1e-3 + 1e-9 * sim_.now());
  JobRecord& rec = records_[it->id];
  rec.completion = sim_.now();
  hh.stats.jobs_completed += 1;
  hh.stats.work_done += rec.size;
  hh.active.erase(it);
  ++version_;
  schedule_departure(host);
}

void PsServer::on_event(const sim::Event& event) {
  switch (event.kind) {
    case sim::EventKind::kArrival: {
      const workload::Job job = (*trace_jobs_)[next_arrival_index_++];
      schedule_next_arrival();
      on_arrival(job);
      return;
    }
    case sim::EventKind::kDeparture:
      on_departure(event.host, event.epoch);
      return;
    default:
      DS_ASSERT(false && "unexpected event kind");
  }
}

void PsServer::schedule_next_arrival() {
  if (next_arrival_index_ >= trace_jobs_->size()) return;
  const workload::Job& next = (*trace_jobs_)[next_arrival_index_];
  sim_.schedule_at(next.arrival, sim::Event::arrival());
}

void PsServer::on_arrival(const workload::Job& job) {
  const std::optional<HostId> choice = policy_->assign(job, *this);
  DS_EXPECTS(choice.has_value() &&
             "PS hosts need immediate dispatch (no central queue)");
  DS_ASSERT(*choice < hosts_count_);
  age(*choice);
  Host& h = hosts_[*choice];
  h.active.push_back(Active{job.id, job.size});
  ++version_;
  JobRecord& rec = records_[job.id];
  rec.id = job.id;
  rec.arrival = job.arrival;
  rec.size = job.size;
  rec.host = *choice;
  rec.start = job.arrival;  // service begins immediately under PS
  schedule_departure(*choice);
}

RunResult PsServer::run(const workload::Trace& trace, std::uint64_t seed) {
  DS_EXPECTS(!trace.empty());
  sim_ = sim::Simulator();
  hosts_.assign(hosts_count_, Host{});
  table_.reset(hosts_count_, HostStateTable::Semantics::kObserved);
  version_ = 0;
  table_time_ = 0.0;
  table_version_ = 0;
  records_.assign(trace.size(), JobRecord{});
  trace_jobs_ = &trace.jobs();
  next_arrival_index_ = 0;
  policy_->reset(hosts_count_, seed);

  sim_.reserve(hosts_count_ + 8);
  schedule_next_arrival();
  sim_.run(*this);

  RunResult result;
  result.hosts = hosts_count_;
  double makespan = 0.0;
  for (const JobRecord& r : records_) {
    DS_ASSERT(r.completion > 0.0);
    makespan = std::max(makespan, r.completion);
  }
  result.makespan = makespan;
  for (Host& h : hosts_) {
    DS_ASSERT(h.active.empty());
    h.stats.utilization = makespan > 0.0 ? h.stats.busy_time / makespan : 0.0;
    result.host_stats.push_back(h.stats);
  }
  result.records = std::move(records_);
  result.events_executed = sim_.executed();
  trace_jobs_ = nullptr;
  return result;
}

}  // namespace distserv::core
