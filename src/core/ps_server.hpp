// Processor-Sharing hosts — the paper's fairness gold standard.
//
// Footnote 1 of the paper: "Processor-Sharing (which requires
// infinitely-many preemptions) is ultimately fair in that every job
// experiences the same expected slowdown." The run-to-completion model
// forbids PS in practice (§1.1: huge memory, no coordinated preemption),
// but it is the natural reference point for SITA-U-fair: how close does a
// non-preemptive policy get to the preemptive ideal?
//
// PsServer simulates h hosts each running egalitarian processor sharing
// (all n active jobs progress at rate 1/n), with jobs routed on arrival by
// any immediate-dispatch Policy. For a single host this is the M/G/1-PS
// queue with its classical insensitivity property E[S | X = x] = 1/(1-rho)
// for every x — which the tests verify against the simulator.
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "core/server.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace distserv::core {

/// Distributed server whose hosts are processor-sharing instead of FCFS.
class PsServer final : public ServerView, private sim::EventHandler {
 public:
  /// `policy` must dispatch immediately (central queue is meaningless under
  /// PS — there is no "idle until free" state to wait for).
  PsServer(std::size_t hosts, Policy& policy);

  /// Simulates the trace to completion. JobRecord::start is the arrival
  /// time (service begins immediately under PS); waiting() is therefore 0
  /// and slowdown captures the sharing dilation.
  [[nodiscard]] RunResult run(const workload::Trace& trace,
                              std::uint64_t seed = 1);

  // ServerView interface. Unlike the FCFS server's incrementally maintained
  // live table, a PS host's remaining work decays continuously (shared among
  // its active jobs), so hosts() lazily rebuilds an observed-semantics table
  // at the current instant, cached by (time, mutation count) — policies that
  // read the view several times in one decision pay for one rebuild.
  [[nodiscard]] const HostStateTable& hosts() const override;
  [[nodiscard]] double now() const override;

 private:
  struct Active {
    workload::JobId id;
    double remaining;
  };
  struct Host {
    std::vector<Active> active;
    double last_update = 0.0;   ///< when `remaining`s were last aged
    std::uint64_t epoch = 0;    ///< invalidates stale departure events
    HostStats stats;
  };

  /// Typed event dispatch (arrivals and epoch-fenced departures).
  void on_event(const sim::Event& event) override;

  /// Remaining work at `host` as of time `t` (sum of remainders at
  /// last_update minus what was shared out since, clamped at 0).
  [[nodiscard]] double host_work_left(HostId host, double t) const;
  /// Ages all remaining times at `host` to the current instant.
  void age(HostId host);
  /// (Re)schedules the host's next departure event.
  void schedule_departure(HostId host);
  void schedule_next_arrival();
  void on_arrival(const workload::Job& job);
  void on_departure(HostId host, std::uint64_t epoch);

  std::size_t hosts_count_;
  Policy* policy_;
  sim::Simulator sim_;
  std::vector<Host> hosts_;
  std::vector<JobRecord> records_;
  const std::vector<workload::Job>* trace_jobs_ = nullptr;
  std::size_t next_arrival_index_ = 0;
  std::uint64_t version_ = 0;  ///< bumped on every active-set mutation
  // hosts() rebuild cache (see the ServerView comment above).
  mutable HostStateTable table_;
  mutable double table_time_ = 0.0;
  mutable std::uint64_t table_version_ = 0;
};

}  // namespace distserv::core
