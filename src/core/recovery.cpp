#include "core/recovery.hpp"

#include <array>

#include "util/strings.hpp"

namespace distserv::core {

namespace {

constexpr std::array kAllRecoveryModes = {
    RecoveryMode::kResubmit,
    RecoveryMode::kRequeueFront,
    RecoveryMode::kAbandon,
};

}  // namespace

std::string to_string(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kResubmit: return "resubmit";
    case RecoveryMode::kRequeueFront: return "requeue-front";
    case RecoveryMode::kAbandon: return "abandon";
  }
  return "?";
}

std::optional<RecoveryMode> recovery_from_string(std::string_view name) {
  for (RecoveryMode mode : kAllRecoveryModes) {
    if (util::iequals(to_string(mode), name)) return mode;
  }
  return std::nullopt;
}

std::span<const RecoveryMode> all_recovery_modes() noexcept {
  return kAllRecoveryModes;
}

std::vector<std::string> registered_recovery_modes() {
  std::vector<std::string> names;
  names.reserve(kAllRecoveryModes.size());
  for (RecoveryMode mode : kAllRecoveryModes) {
    names.push_back(to_string(mode));
  }
  return names;
}

}  // namespace distserv::core
