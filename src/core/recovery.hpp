// What happens to a job whose host fails mid-service (fail-stop model,
// sim/faults.hpp). Queued jobs are unaffected by a failure — they keep their
// place and resume competing for the host after repair — so the recovery
// mode governs only the interrupted in-service job. All completed work on
// that job is lost in every mode (fail-stop, no checkpointing).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace distserv::core {

/// Disposition of the in-service job when its host goes down.
enum class RecoveryMode {
  /// The job returns to the dispatcher and is routed again by the policy,
  /// exactly like a fresh arrival (it may land on a different host).
  kResubmit,
  /// The job is pushed back onto the *front* of the failed host's queue and
  /// restarts there once the host is repaired.
  kRequeueFront,
  /// The job is dropped: its JobRecord carries failed = true and it never
  /// completes (conservation counts it separately).
  kAbandon,
};

/// Display name, e.g. "requeue-front".
[[nodiscard]] std::string to_string(RecoveryMode mode);

/// Inverse of to_string (case-insensitive); nullopt for unknown names.
[[nodiscard]] std::optional<RecoveryMode> recovery_from_string(
    std::string_view name);

/// Every RecoveryMode, in declaration order.
[[nodiscard]] std::span<const RecoveryMode> all_recovery_modes() noexcept;

/// Display names of every recovery mode, in declaration order.
[[nodiscard]] std::vector<std::string> registered_recovery_modes();

}  // namespace distserv::core
