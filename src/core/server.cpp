#include "core/server.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace distserv::core {

DistributedServer::DistributedServer(std::size_t hosts, Policy& policy)
    : hosts_count_(hosts), policy_(&policy) {
  DS_EXPECTS(hosts >= 1);
}

std::size_t DistributedServer::host_count() const { return hosts_count_; }

std::size_t DistributedServer::queue_length(HostId host) const {
  DS_EXPECTS(host < hosts_.size());
  const Host& h = hosts_[host];
  return h.queue.size() + (h.busy ? 1 : 0);
}

double DistributedServer::work_left(HostId host) const {
  DS_EXPECTS(host < hosts_.size());
  const Host& h = hosts_[host];
  const double residual = h.busy ? (h.current_completion - sim_.now()) : 0.0;
  DS_ASSERT(residual >= -1e-9);
  // queued_work is an add/subtract accumulator; clamp the tiny negative
  // drift it can pick up so policies never observe negative work.
  return std::max(residual, 0.0) + std::max(h.queued_work, 0.0);
}

bool DistributedServer::host_idle(HostId host) const {
  DS_EXPECTS(host < hosts_.size());
  const Host& h = hosts_[host];
  return !h.busy && h.queue.empty();
}

double DistributedServer::now() const { return sim_.now(); }

void DistributedServer::enable_audit(const sim::AuditConfig& config) {
  if (config.enabled) {
    auditor_ = std::make_unique<sim::QueueingAuditor>(config);
  } else {
    auditor_.reset();
  }
}

RunResult DistributedServer::run(const workload::Trace& trace,
                                 std::uint64_t seed) {
  DS_EXPECTS(!trace.empty());
  sim_ = sim::Simulator();
  if (auditor_) {
    auditor_->begin_run(hosts_count_);
    sim_.set_observer(
        [audit = auditor_.get()](sim::Time t) { audit->on_event(t); });
  }
  hosts_.assign(hosts_count_, Host{});
  central_queue_.clear();
  records_.assign(trace.size(), JobRecord{});
  trace_jobs_ = &trace.jobs();
  next_arrival_index_ = 0;
  policy_->reset(hosts_count_, seed);

  // Arrivals are scheduled lazily — one pending arrival event at a time —
  // so the event list stays O(hosts) instead of O(trace).
  schedule_next_arrival();
  sim_.run();

  RunResult result;
  result.records = std::move(records_);
  result.hosts = hosts_count_;
  result.host_stats.reserve(hosts_.size());
  double makespan = 0.0;
  for (const JobRecord& r : result.records) {
    makespan = std::max(makespan, r.completion);
  }
  result.makespan = makespan;
  for (Host& h : hosts_) {
    DS_ASSERT(!h.busy && h.queue.empty());  // every job must complete
    h.stats.utilization = makespan > 0.0 ? h.stats.busy_time / makespan : 0.0;
    result.host_stats.push_back(h.stats);
  }
  DS_ASSERT(central_queue_.empty());
  result.events_executed = sim_.executed();
  result.events_pending = sim_.pending();
  if (auditor_) result.audit = auditor_->finalize(sim_.now());
  records_.clear();
  trace_jobs_ = nullptr;
  return result;
}

void DistributedServer::schedule_next_arrival() {
  if (next_arrival_index_ >= trace_jobs_->size()) return;
  const workload::Job& next = (*trace_jobs_)[next_arrival_index_];
  sim_.schedule_at(next.arrival, [this] {
    const workload::Job job = (*trace_jobs_)[next_arrival_index_++];
    schedule_next_arrival();
    on_arrival(job);
  });
}

void DistributedServer::on_arrival(const workload::Job& job) {
  if (auditor_) auditor_->on_arrival(job.id, sim_.now(), job.size);
  const std::optional<HostId> choice = policy_->assign(job, *this);
  if (choice) {
    DS_ASSERT(*choice < hosts_count_);
    if (auditor_) auditor_->on_dispatch(job.id, *choice);
    dispatch_to_host(*choice, job);
    return;
  }
  // Central queue: start immediately if some host is idle, else hold.
  for (HostId h = 0; h < hosts_count_; ++h) {
    if (host_idle(h)) {
      start_service(h, job, sim::QueueingAuditor::StartSource::kDirect);
      return;
    }
  }
  if (auditor_) auditor_->on_hold(job.id);
  central_queue_.push_back(job);
}

void DistributedServer::dispatch_to_host(HostId host, const workload::Job& job) {
  Host& h = hosts_[host];
  if (!h.busy) {
    DS_ASSERT(h.queue.empty());
    start_service(host, job, sim::QueueingAuditor::StartSource::kDirect);
  } else {
    if (auditor_) auditor_->on_enqueue(job.id, host);
    h.queue.push_back(job);
    h.queued_work += job.size;
  }
}

void DistributedServer::start_service(HostId host, const workload::Job& job,
                                      sim::QueueingAuditor::StartSource source) {
  Host& h = hosts_[host];
  DS_ASSERT(!h.busy);
  if (auditor_) {
    auditor_->on_start(job.id, host, sim_.now(), job.size, source);
  }
  h.busy = true;
  const double start = sim_.now();
  const double completion = start + job.size;
  h.current_completion = completion;
  JobRecord& rec = records_[job.id];
  rec.id = job.id;
  rec.arrival = job.arrival;
  rec.size = job.size;
  rec.host = host;
  rec.start = start;
  rec.completion = completion;
  const workload::JobId id = job.id;
  sim_.schedule_at(completion, [this, host, id] { on_completion(host, id); });
}

void DistributedServer::on_completion(HostId host, workload::JobId id) {
  Host& h = hosts_[host];
  DS_ASSERT(h.busy);
  if (auditor_) auditor_->on_complete(id, host, sim_.now());
  h.busy = false;
  const JobRecord& rec = records_[id];
  h.stats.jobs_completed += 1;
  h.stats.busy_time += rec.size;
  h.stats.work_done += rec.size;
  feed_idle_host(host);
}

void DistributedServer::feed_idle_host(HostId host) {
  Host& h = hosts_[host];
  if (!h.queue.empty()) {
    const workload::Job next = h.queue.front();
    h.queue.pop_front();
    h.queued_work -= next.size;
    if (h.queue.empty()) h.queued_work = 0.0;  // kill accumulator drift
    start_service(host, next, sim::QueueingAuditor::StartSource::kHostQueue);
    return;
  }
  if (!central_queue_.empty()) {
    const std::size_t pick =
        policy_->select_next(central_queue_, host, *this);
    DS_ASSERT(pick < central_queue_.size());
    const workload::Job job = central_queue_[pick];
    central_queue_.erase(central_queue_.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    start_service(host, job, sim::QueueingAuditor::StartSource::kCentralQueue);
  }
}

RunResult simulate(Policy& policy, const workload::Trace& trace,
                   std::size_t hosts, std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  return server.run(trace, seed);
}

RunResult simulate_audited(Policy& policy, const workload::Trace& trace,
                           std::size_t hosts, const sim::AuditConfig& audit,
                           std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  server.enable_audit(audit);
  return server.run(trace, seed);
}

}  // namespace distserv::core
