#include "core/server.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace distserv::core {

DistributedServer::DistributedServer(std::size_t hosts, Policy& policy)
    : hosts_count_(hosts), policy_(&policy) {
  DS_EXPECTS(hosts >= 1);
}

std::size_t DistributedServer::host_count() const { return hosts_count_; }

std::size_t DistributedServer::queue_length(HostId host) const {
  DS_EXPECTS(host < hosts_.size());
  const Host& h = hosts_[host];
  return h.queue.size() + (h.busy ? 1 : 0);
}

double DistributedServer::work_left(HostId host) const {
  DS_EXPECTS(host < hosts_.size());
  const Host& h = hosts_[host];
  const double residual = h.busy ? (h.current_completion - sim_.now()) : 0.0;
  DS_ASSERT(residual >= -1e-9);
  // queued_work is an add/subtract accumulator; clamp the tiny negative
  // drift it can pick up so policies never observe negative work.
  return std::max(residual, 0.0) + std::max(h.queued_work, 0.0);
}

bool DistributedServer::host_idle(HostId host) const {
  DS_EXPECTS(host < hosts_.size());
  const Host& h = hosts_[host];
  return !h.busy && h.queue.empty();
}

bool DistributedServer::host_up(HostId host) const {
  DS_EXPECTS(host < hosts_.size());
  return hosts_[host].up;
}

double DistributedServer::now() const { return sim_.now(); }

void DistributedServer::enable_audit(const sim::AuditConfig& config) {
  if (config.enabled) {
    auditor_ = std::make_unique<sim::QueueingAuditor>(config);
  } else {
    auditor_.reset();
  }
}

void DistributedServer::enable_faults(const sim::FaultConfig& config,
                                      RecoveryMode recovery) {
  faults_enabled_ = config.enabled;
  fault_config_ = config;
  recovery_ = recovery;
}

RunResult DistributedServer::run(const workload::Trace& trace,
                                 std::uint64_t seed) {
  DS_EXPECTS(!trace.empty());
  sim_ = sim::Simulator();
  if (auditor_) {
    auditor_->begin_run(hosts_count_);
    sim_.set_observer(
        [audit = auditor_.get()](sim::Time t) { audit->on_event(t); });
  }
  hosts_.assign(hosts_count_, Host{});
  central_queue_.clear();
  records_.assign(trace.size(), JobRecord{});
  trace_jobs_ = &trace.jobs();
  next_arrival_index_ = 0;
  jobs_done_ = 0;
  interruptions_ = 0;
  policy_->reset(hosts_count_, seed);

  // Fault events are scheduled before the first arrival so a t=0 outage
  // precedes any t=0 arrival in the (time, sequence)-ordered event list.
  if (faults_enabled_) begin_faults(seed);
  // Arrivals are scheduled lazily — one pending arrival event at a time —
  // so the event list stays O(hosts) instead of O(trace).
  schedule_next_arrival();
  sim_.run();

  RunResult result;
  result.records = std::move(records_);
  result.hosts = hosts_count_;
  result.host_stats.reserve(hosts_.size());
  double makespan = 0.0;
  for (const JobRecord& r : result.records) {
    makespan = std::max(makespan, r.completion);
    if (r.failed) ++result.jobs_failed;
  }
  result.makespan = makespan;
  result.interruptions = interruptions_;
  for (Host& h : hosts_) {
    DS_ASSERT(!h.busy && h.queue.empty());  // every job must be resolved
    // Close the down-time integral of hosts still down at the end.
    if (h.down_depth > 0) h.stats.down_time += sim_.now() - h.down_since;
    h.stats.utilization = makespan > 0.0 ? h.stats.busy_time / makespan : 0.0;
    result.host_stats.push_back(h.stats);
  }
  DS_ASSERT(central_queue_.empty());
  result.events_executed = sim_.executed();
  result.events_pending = sim_.pending();
  if (auditor_) result.audit = auditor_->finalize(sim_.now());
  records_.clear();
  trace_jobs_ = nullptr;
  return result;
}

void DistributedServer::schedule_next_arrival() {
  if (next_arrival_index_ >= trace_jobs_->size()) return;
  const workload::Job& next = (*trace_jobs_)[next_arrival_index_];
  sim_.schedule_at(next.arrival, [this] {
    const workload::Job job = (*trace_jobs_)[next_arrival_index_++];
    schedule_next_arrival();
    on_arrival(job);
  });
}

void DistributedServer::on_arrival(const workload::Job& job) {
  if (auditor_) auditor_->on_arrival(job.id, sim_.now(), job.size);
  route(job);
}

void DistributedServer::route(const workload::Job& job) {
  const std::optional<HostId> choice = policy_->assign(job, *this);
  if (choice) {
    DS_ASSERT(*choice < hosts_count_);
    if (auditor_) auditor_->on_dispatch(job.id, *choice);
    dispatch_to_host(*choice, job);
    return;
  }
  // Central queue: start immediately if some host is idle and up, else hold
  // (when every host is down, all jobs wait here until a repair).
  for (HostId h = 0; h < hosts_count_; ++h) {
    if (host_idle(h) && hosts_[h].up) {
      start_service(h, job, sim::QueueingAuditor::StartSource::kDirect);
      return;
    }
  }
  if (auditor_) auditor_->on_hold(job.id);
  central_queue_.push_back(job);
}

void DistributedServer::dispatch_to_host(HostId host, const workload::Job& job) {
  Host& h = hosts_[host];
  if (!h.busy && h.up) {
    DS_ASSERT(h.queue.empty());
    start_service(host, job, sim::QueueingAuditor::StartSource::kDirect);
  } else {
    // Busy host, or a down host a non-masking policy routed to anyway: the
    // job queues and waits for the completion/repair.
    if (auditor_) auditor_->on_enqueue(job.id, host);
    h.queue.push_back(job);
    h.queued_work += job.size;
  }
}

void DistributedServer::start_service(HostId host, const workload::Job& job,
                                      sim::QueueingAuditor::StartSource source) {
  Host& h = hosts_[host];
  DS_ASSERT(!h.busy);
  DS_ASSERT(h.up);
  if (auditor_) {
    auditor_->on_start(job.id, host, sim_.now(), job.size, source);
  }
  h.busy = true;
  const double start = sim_.now();
  const double completion = start + job.size;
  h.current_completion = completion;
  h.running = job.id;
  h.service_start = start;
  ++h.service_epoch;
  JobRecord& rec = records_[job.id];
  rec.id = job.id;
  rec.arrival = job.arrival;
  rec.size = job.size;
  rec.host = host;
  rec.start = start;
  rec.completion = completion;
  const workload::JobId id = job.id;
  const std::uint64_t epoch = h.service_epoch;
  sim_.schedule_at(completion,
                   [this, host, id, epoch] { on_completion(host, id, epoch); });
}

void DistributedServer::on_completion(HostId host, workload::JobId id,
                                      std::uint64_t epoch) {
  Host& h = hosts_[host];
  // A failure interrupted this service: the completion event is stale (the
  // kernel has no cancellation, so epochs invalidate orphaned events).
  if (!h.busy || h.service_epoch != epoch) return;
  DS_ASSERT(h.running == id);
  if (auditor_) auditor_->on_complete(id, host, sim_.now());
  h.busy = false;
  const JobRecord& rec = records_[id];
  h.stats.jobs_completed += 1;
  h.stats.busy_time += rec.size;
  h.stats.work_done += rec.size;
  note_job_done();
  feed_idle_host(host);
}

void DistributedServer::feed_idle_host(HostId host) {
  Host& h = hosts_[host];
  if (!h.up) return;  // a down host starts nothing; repair re-feeds it
  if (!h.queue.empty()) {
    const workload::Job next = h.queue.front();
    h.queue.pop_front();
    h.queued_work -= next.size;
    if (h.queue.empty()) h.queued_work = 0.0;  // kill accumulator drift
    start_service(host, next, sim::QueueingAuditor::StartSource::kHostQueue);
    return;
  }
  if (!central_queue_.empty()) {
    const std::size_t pick =
        policy_->select_next(central_queue_, host, *this);
    DS_ASSERT(pick < central_queue_.size());
    const workload::Job job = central_queue_[pick];
    central_queue_.erase(central_queue_.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    start_service(host, job, sim::QueueingAuditor::StartSource::kCentralQueue);
  }
}

void DistributedServer::note_job_done() {
  ++jobs_done_;
  // Under faults the event list can hold failure/repair events far beyond
  // the last job; stop as soon as every job is resolved instead of
  // simulating an empty system through them.
  if (faults_enabled_ && all_jobs_done()) sim_.stop();
}

void DistributedServer::begin_faults(std::uint64_t seed) {
  fault_process_ = sim::FaultProcess(fault_config_, hosts_count_, seed);
  for (const sim::HostOutage& outage : fault_config_.outages) {
    const HostId host = outage.host;
    const double duration = outage.duration;
    sim_.schedule_at(outage.at, [this, host, duration] {
      fault_down(host, duration, /*renewal=*/false);
    });
  }
  if (fault_process_.renewal_enabled()) {
    for (HostId h = 0; h < hosts_count_; ++h) {
      schedule_failure(h, fault_process_.next_uptime(h));
    }
  }
}

void DistributedServer::schedule_failure(HostId host, double delay) {
  sim_.schedule_in(delay, [this, host] {
    fault_down(host, fault_process_.next_downtime(host), /*renewal=*/true);
  });
}

void DistributedServer::fault_down(HostId host, double duration, bool renewal) {
  if (all_jobs_done()) return;  // run is winding down
  Host& h = hosts_[host];
  ++h.down_depth;
  if (h.down_depth == 1) {
    h.up = false;
    h.down_since = sim_.now();
    h.stats.failures += 1;
    if (auditor_) auditor_->on_host_down(host, sim_.now());
    if (h.busy) interrupt_running(host);
  }
  sim_.schedule_in(duration, [this, host, renewal] { fault_up(host, renewal); });
}

void DistributedServer::fault_up(HostId host, bool renewal) {
  Host& h = hosts_[host];
  DS_ASSERT(h.down_depth > 0);
  --h.down_depth;
  if (h.down_depth == 0) {
    h.up = true;
    h.stats.down_time += sim_.now() - h.down_since;
    if (auditor_) auditor_->on_host_up(host, sim_.now());
    feed_idle_host(host);
  }
  // The renewal chain restarts from the end of the repair.
  if (renewal && !all_jobs_done()) {
    schedule_failure(host, fault_process_.next_uptime(host));
  }
}

void DistributedServer::interrupt_running(HostId host) {
  Host& h = hosts_[host];
  DS_ASSERT(h.busy);
  const workload::JobId id = h.running;
  JobRecord& rec = records_[id];
  const double t = sim_.now();
  const double partial = t - h.service_start;
  h.stats.busy_time += partial;
  h.stats.wasted_work += partial;
  h.stats.jobs_interrupted += 1;
  ++interruptions_;
  rec.restarts += 1;
  ++h.service_epoch;  // orphan the pending completion event
  h.busy = false;
  const workload::Job job{id, rec.arrival, rec.size};
  switch (recovery_) {
    case RecoveryMode::kRequeueFront:
      if (auditor_) {
        auditor_->on_interrupt(
            id, host, t, sim::QueueingAuditor::InterruptResolution::kRequeuedFront);
      }
      h.queue.push_front(job);
      h.queued_work += job.size;
      break;
    case RecoveryMode::kResubmit:
      if (auditor_) {
        auditor_->on_interrupt(
            id, host, t, sim::QueueingAuditor::InterruptResolution::kResubmitted);
      }
      // Back through the dispatcher like a fresh arrival (the policy sees
      // this host as down and routes elsewhere or holds centrally).
      route(job);
      break;
    case RecoveryMode::kAbandon:
      if (auditor_) {
        auditor_->on_interrupt(
            id, host, t, sim::QueueingAuditor::InterruptResolution::kAbandoned);
      }
      rec.failed = true;
      rec.completion = t;
      note_job_done();
      break;
  }
}

RunResult simulate(Policy& policy, const workload::Trace& trace,
                   std::size_t hosts, std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  return server.run(trace, seed);
}

RunResult simulate_audited(Policy& policy, const workload::Trace& trace,
                           std::size_t hosts, const sim::AuditConfig& audit,
                           std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  server.enable_audit(audit);
  return server.run(trace, seed);
}

RunResult simulate_with_faults(Policy& policy, const workload::Trace& trace,
                               std::size_t hosts,
                               const sim::FaultConfig& faults,
                               RecoveryMode recovery, std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  server.enable_faults(faults, recovery);
  return server.run(trace, seed);
}

}  // namespace distserv::core
