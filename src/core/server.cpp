#include "core/server.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::core {

DistributedServer::DistributedServer(std::size_t hosts, Policy& policy)
    : hosts_count_(hosts), policy_(&policy) {
  DS_EXPECTS(hosts >= 1);
  speeds_.assign(hosts, 1.0);
  class_ids_.assign(hosts, 0);
  drain_speed_menu_.assign(1, 1.0);
}

void DistributedServer::set_host_speeds(std::vector<double> speeds) {
  if (speeds.empty()) {
    speeds_.assign(hosts_count_, 1.0);
    class_ids_.assign(hosts_count_, 0);
    drain_speed_menu_.assign(1, 1.0);
    heterogeneous_ = false;
    return;
  }
  DS_EXPECTS(speeds.size() == hosts_count_);
  heterogeneous_ = false;
  for (const double s : speeds) {
    DS_EXPECTS(s > 0.0 && std::isfinite(s));
    if (s != 1.0) heterogeneous_ = true;
  }
  speeds_ = std::move(speeds);
  // Capacity classes: equal speeds share a class, numbered in order of
  // first appearance (fleets built class-by-class get contiguous ranges).
  class_ids_.assign(hosts_count_, 0);
  std::vector<double> seen;
  for (std::size_t h = 0; h < hosts_count_; ++h) {
    std::size_t cls = seen.size();
    for (std::size_t c = 0; c < seen.size(); ++c) {
      if (seen[c] == speeds_[h]) {
        cls = c;
        break;
      }
    }
    if (cls == seen.size()) seen.push_back(speeds_[h]);
    class_ids_[h] = static_cast<std::uint32_t>(cls);
  }
  // Scale-down visits speeds ascending (slowest class drains first); a
  // homogeneous fleet has a one-entry menu and keeps the historical order.
  drain_speed_menu_ = std::move(seen);
  std::sort(drain_speed_menu_.begin(), drain_speed_menu_.end());
}

double DistributedServer::now() const { return sim_.now(); }

void DistributedServer::publish_host(HostId host) {
  const Host& h = hosts_[host];
  live_table_.set_live(
      host, h.busy, h.current_completion, h.queued_work,
      static_cast<std::uint32_t>(h.queue.size() + (h.busy ? 1 : 0)));
}

const HostStateTable& DistributedServer::SnapshotView::hosts() const {
  return server_->active_snapshot();
}

const HostStateTable& DistributedServer::snapshot_table(
    std::uint32_t dispatcher) const {
  DS_EXPECTS(dispatcher < dispatchers_.size());
  return dispatchers_[dispatcher].snapshot;
}

std::uint32_t DistributedServer::dispatcher_of(
    workload::JobId id) const noexcept {
  const std::uint32_t d = control_config_.dispatchers;
  if (d <= 1) return 0;
  // Job ids are assigned sequentially at arrival, so the modulus IS a
  // round-robin; the hash mode avalanches the id first (uneven shards).
  if (control_config_.shard == sim::ShardMode::kHash) {
    return static_cast<std::uint32_t>(util::mix64(id) % d);
  }
  return static_cast<std::uint32_t>(id % d);
}

double DistributedServer::SnapshotView::now() const { return server_->now(); }

void DistributedServer::enable_audit(const sim::AuditConfig& config) {
  if (config.enabled) {
    auditor_ = std::make_unique<sim::QueueingAuditor>(config);
  } else {
    auditor_.reset();
  }
}

void DistributedServer::enable_faults(const sim::FaultConfig& config,
                                      RecoveryMode recovery) {
  faults_enabled_ = config.enabled;
  fault_config_ = config;
  recovery_ = recovery;
}

void DistributedServer::enable_control(const sim::ControlPlaneConfig& config) {
  control_enabled_ = config.enabled;
  control_config_ = config;
}

void DistributedServer::enable_autoscaler(const sim::AutoscalerConfig& config) {
  scaling_enabled_ = config.enabled;
  scaler_config_ = config;
}

void DistributedServer::enable_overload(const sim::OverloadConfig& config) {
  overload_enabled_ = config.enabled;
  overload_config_ = config;
}

RunResult DistributedServer::run(const workload::Trace& trace,
                                 std::uint64_t seed) {
  DS_EXPECTS(!trace.empty());
  workload::TraceSource source(trace);
  return run_source(source, seed, nullptr);
}

RunResult DistributedServer::run(workload::JobSource& source,
                                 std::uint64_t seed) {
  return run_source(source, seed, nullptr);
}

RunResult DistributedServer::run_stream(workload::JobSource& source,
                                        std::uint64_t seed,
                                        StreamOptions options) {
  return run_source(source, seed, &options);
}

RunResult DistributedServer::run_source(workload::JobSource& source,
                                        std::uint64_t seed,
                                        const StreamOptions* stream) {
  sim_ = sim::Simulator();
  if (auditor_) {
    auditor_->begin_run(hosts_count_);
    sim_.set_observer(
        [audit = auditor_.get()](sim::Time t) { audit->on_event(t); });
  }
  hosts_.assign(hosts_count_, Host{});
  live_table_.reset(hosts_count_, HostStateTable::Semantics::kLive);
  if (heterogeneous_) {
    for (HostId h = 0; h < hosts_count_; ++h) {
      live_table_.set_speed(h, speeds_[h], class_ids_[h]);
    }
  }
  central_queue_.clear();
  record_mode_ = (stream == nullptr);
  stream_options_ = stream;
  records_.clear();
  if (record_mode_) {
    if (const auto hint = source.size_hint()) records_.reserve(*hint);
  } else {
    stream_summary_ = StreamSummary(stream->sketch_eps);
  }
  source_ = &source;
  have_pending_arrival_ = false;
  jobs_arrived_ = 0;
  restarts_.clear();
  max_completion_ = 0.0;
  jobs_failed_ = 0;
  jobs_done_ = 0;
  interruptions_ = 0;
  policy_->reset(hosts_count_, seed);

  // The event list holds at most one arrival plus, per host, a pending
  // completion, failure, and repair, plus in-flight RPC timeouts; batched
  // probes add one wheel event per dispatcher, the legacy probe path one
  // event per (dispatcher, host). Pre-sizing keeps the steady-state loop
  // allocation-free.
  std::size_t probe_slots = 0;
  if (control_enabled_ && control_config_.snapshots_enabled() &&
      !control_config_.batch_probes) {
    probe_slots = control_config_.dispatchers * hosts_count_;
  }
  sim_.reserve(4 * hosts_count_ + 16 + probe_slots);

  // Fault events are scheduled before the first arrival so a t=0 outage
  // precedes any t=0 arrival in the (time, sequence)-ordered event list;
  // probe events follow faults so a t=0 probe observes the t=0 outage.
  if (faults_enabled_) begin_faults(seed);
  if (control_enabled_) begin_control(seed);
  if (scaling_enabled_) begin_scaling(seed);
  if (overload_enabled_) begin_overload(seed);
  // Arrivals are scheduled lazily — one pending arrival event at a time —
  // so the event list stays O(hosts) instead of O(stream).
  schedule_next_arrival();
  DS_EXPECTS(have_pending_arrival_);  // the source must yield >= 1 job
  sim_.run(*this);

  RunResult result;
  result.records = std::move(records_);
  result.hosts = hosts_count_;
  result.host_stats.reserve(hosts_.size());
  const double makespan = max_completion_;
  result.makespan = makespan;
  result.jobs_failed = jobs_failed_;
  result.interruptions = interruptions_;
  for (Host& h : hosts_) {
    DS_ASSERT(!h.busy && h.queue.empty());  // every job must be resolved
    // Close the down-time integral of hosts still down at the end.
    if (h.down_depth > 0) h.stats.down_time += sim_.now() - h.down_since;
    h.stats.utilization = makespan > 0.0 ? h.stats.busy_time / makespan : 0.0;
    result.host_stats.push_back(h.stats);
  }
  DS_ASSERT(central_queue_.empty());
  result.events_executed = sim_.executed();
  result.events_pending = sim_.pending();
  if (control_enabled_) {
    // A chain can outlive its job only through ack losses — the job itself
    // was placed (and resolved); an unplaced job would still be running the
    // simulation through its retry timeouts.
    pending_.for_each([]([[maybe_unused]] workload::JobId id,
                         [[maybe_unused]] const PendingDispatch& p) {
      DS_ASSERT(p.enqueued);
    });
    control_stats_.chains_outstanding = pending_.size();
    result.control = control_stats_;
  }
  if (scaling_enabled_) {
    // Close the host-time integrals at the clock the run stopped on, and
    // charge a fixed fleet the same horizon — the powered/total ratio is
    // the host-hours saved axis of the elastic sweep.
    accrue_integrals(sim_.now());
    scaling_stats_.host_time_powered = powered_integral_;
    scaling_stats_.host_time_total =
        static_cast<double>(hosts_count_) * sim_.now();
    result.scaling = scaling_stats_;
  }
  if (overload_enabled_) result.overload = overload_stats_;
  if (heterogeneous_) result.host_speeds = speeds_;
  if (!record_mode_) result.stream = std::move(stream_summary_);
  if (auditor_) result.audit = auditor_->finalize(sim_.now());
  records_.clear();
  source_ = nullptr;
  stream_options_ = nullptr;
  return result;
}

void DistributedServer::on_event(const sim::Event& event) {
  switch (event.kind) {
    case sim::EventKind::kArrival: {
      const workload::Job job = pending_arrival_;
      have_pending_arrival_ = false;
      DS_ASSERT(job.id == jobs_arrived_);  // sources emit sequential ids
      ++jobs_arrived_;
      if (record_mode_) records_.emplace_back();
      schedule_next_arrival();
      on_arrival(job);
      return;
    }
    case sim::EventKind::kDeparture:
      on_completion(event.host, event.id, event.epoch);
      return;
    case sim::EventKind::kHostFail:
      // Renewal failures draw their repair duration at fire time (keeping
      // the per-host fault stream aligned); scheduled outages carry theirs.
      if (event.flag) {
        fault_down(event.host, fault_process_.next_downtime(event.host),
                   /*renewal=*/true);
      } else {
        fault_down(event.host, event.value, /*renewal=*/false);
      }
      return;
    case sim::EventKind::kHostRepair:
      fault_up(event.host, event.flag);
      return;
    case sim::EventKind::kProbe:
      // The encoding is fixed per run by batch_probes: a wheel event
      // carries the dispatcher in `host`; a legacy per-host probe carries
      // the host in `host` and the dispatcher in `id`.
      if (control_config_.batch_probes) {
        wheel_fired(static_cast<std::uint32_t>(event.host));
      } else {
        probe_fired(static_cast<std::uint32_t>(event.id), event.host);
      }
      return;
    case sim::EventKind::kRpcTimeout:
      rpc_timeout_fired(event.id, event.epoch);
      return;
    case sim::EventKind::kScaleEval:
      scale_eval_fired();
      return;
    case sim::EventKind::kWarmup:
      warmup_fired(event.host, event.epoch);
      return;
    case sim::EventKind::kRenege:
      renege_fired(event.id);
      return;
    case sim::EventKind::kTimer:
      break;
  }
  DS_ASSERT(false && "unexpected event kind");
}

void DistributedServer::schedule_next_arrival() {
  const std::optional<workload::Job> next = source_->next();
  if (!next) return;
  // The JobSource contract, cheap enough to check per pull: nondecreasing
  // arrivals (now() is the previous arrival time while this runs inside the
  // arrival event) and a positive finite size.
  DS_ASSERT(next->arrival >= sim_.now() && next->size > 0.0);
  pending_arrival_ = *next;
  have_pending_arrival_ = true;
  sim_.schedule_at(next->arrival, sim::Event::arrival());
}

void DistributedServer::on_arrival(const workload::Job& job) {
  if (auditor_) auditor_->on_arrival(job.id, sim_.now(), job.size);
  if (overload_enabled_) {
    if (!admit_arrival(job)) return;
    if (overload_config_.patience_mean > 0.0) {
      // The deadline is fixed at arrival and follows the job through
      // requeues and migrations; the event no-ops unless the job is still
      // waiting in some queue when it fires.
      sim_.schedule_in(admission_.draw_patience(), sim::Event::renege(job.id));
    }
  }
  route(job);
}

void DistributedServer::route(const workload::Job& job) {
  if (!control_enabled_) {
    // Perfect-information fast path: byte-for-byte the pre-control-plane
    // behavior (the determinism contract depends on it).
    const std::optional<HostId> choice = policy_->assign(job, *this);
    if (choice) {
      DS_ASSERT(*choice < hosts_count_);
      deliver_or_bounce(job, *choice);
      return;
    }
    hold_centrally(job);
    return;
  }
  // Every control-path decision for this job runs under its owner
  // dispatcher: that dispatcher's snapshot staleness, probe state, and RPC
  // streams. The owner is a pure function of the id, so resubmissions and
  // migrations land back on the same front-end.
  active_dispatcher_ = dispatcher_of(job.id);
  // Degraded information: a state-sensitive policy is never fed a snapshot
  // older than the configured bound — escalate to its first fallback
  // instead of routing on state that stale.
  std::uint32_t level = 0;
  if (control_config_.snapshots_enabled() &&
      control_config_.staleness_bound > 0.0 && degraded_.state_sensitive &&
      !degraded_.fallback_chain.empty() &&
      active_snapshot().max_age(sim_.now()) > control_config_.staleness_bound) {
    ++control_stats_.escalations_stale;
    if (auditor_) {
      auditor_->on_fallback(job.id, 0, 1,
                            sim::QueueingAuditor::FallbackReason::kStale,
                            sim_.now());
    }
    level = 1;
  }
  route_at_level(job, level, std::nullopt);
}

void DistributedServer::route_at_level(const workload::Job& job,
                                       std::uint32_t level,
                                       std::optional<HostId> hint) {
  const double now = sim_.now();
  double age = 0.0;
  if (control_config_.snapshots_enabled()) {
    age = active_snapshot().max_age(now);
    ++control_stats_.routed;
    control_stats_.snapshot_age_sum += age;
    control_stats_.snapshot_age_max =
        std::max(control_stats_.snapshot_age_max, age);
  }
  if (auditor_) {
    auditor_->on_control_route(job.id, now, age,
                               control_config_.staleness_bound,
                               degraded_.state_sensitive, level,
                               active_dispatcher_);
  }
  std::optional<HostId> choice;
  if (level == 0) {
    choice = policy_->assign(job, policy_view());
    // Misrouting oracle: for pure policies, re-evaluating on live state is
    // side-effect free and tells us whether staleness changed the decision.
    if (choice && control_config_.snapshots_enabled() &&
        control_config_.misroute_oracle && degraded_.assign_pure) {
      ++control_stats_.oracle_comparisons;
      if (auditor_) auditor_->on_oracle(job.id, now);
      const std::optional<HostId> live = policy_->assign(job, *this);
      if (!live || *live != *choice) ++control_stats_.misrouted;
    }
  } else {
    const std::optional<FallbackKind> kind = fallback_for_level(level);
    DS_ASSERT(kind.has_value());
    choice = assign_fallback(*kind, hint);
  }
  if (choice) {
    DS_ASSERT(*choice < hosts_count_);
    commit_route(job, *choice, level);
    return;
  }
  // The policy declined (Central-Queue) or no up host exists at this
  // fallback level: the dispatcher keeps the job.
  pending_.erase(job.id);
  hold_centrally(job);
}

const ServerView& DistributedServer::policy_view() const {
  if (control_config_.snapshots_enabled()) return snapshot_view_;
  return *this;
}

std::optional<FallbackKind> DistributedServer::fallback_for_level(
    std::uint32_t level) const {
  DS_EXPECTS(level >= 1);
  const std::vector<FallbackKind>& chain = degraded_.fallback_chain;
  switch (control_config_.fallback) {
    case sim::FallbackMode::kChain:
      if (level - 1 < chain.size()) return chain[level - 1];
      return std::nullopt;
    case sim::FallbackMode::kTerminal:
      if (level == 1 && !chain.empty()) return chain.back();
      return std::nullopt;
    case sim::FallbackMode::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<HostId> DistributedServer::assign_fallback(
    FallbackKind kind, std::optional<HostId> hint) {
  // Fallbacks route on *live* liveness: they model what the dispatcher can
  // do without trusting its (stale, possibly wrong) state cache. Draws are
  // rank-based (below(up_count) then k-th up host), which consumes the
  // control stream exactly as the old build-a-candidate-vector code did,
  // without the O(h) rebuild per fallback.
  const HostBitset& up = live_table_.up_bits();
  dist::Rng& rng = active_plane().fallback_rng();
  if (kind == FallbackKind::kRandomInRange && hint) {
    // The candidate window is at most three hosts around the failed
    // target; gather it directly off the bitset (falls through to the
    // all-hosts draw when the whole window is down).
    const std::size_t lo = *hint > 0 ? *hint - 1 : 0;
    const std::size_t hi = std::min<std::size_t>(*hint + 2, hosts_count_);
    HostId window[3];
    std::size_t count = 0;
    for (std::size_t h = lo; h < hi; ++h) {
      if (up.test(h)) window[count++] = static_cast<HostId>(h);
    }
    if (count > 0) return window[rng.below(count)];
  }
  const std::size_t live = up.count();
  if (live == 0) return std::nullopt;
  switch (kind) {
    case FallbackKind::kPowerOfTwo: {
      if (live == 1) return live_table_.kth_up(0);
      const std::size_t i = rng.below(live);
      std::size_t j = rng.below(live - 1);
      if (j >= i) ++j;
      const HostId a = live_table_.kth_up(i);
      const HostId b = live_table_.kth_up(j);
      const double now = sim_.now();
      const double wa = live_table_.work_left(a, now);
      const double wb = live_table_.work_left(b, now);
      if (wa < wb) return a;
      if (wb < wa) return b;
      return std::min(a, b);  // tie: lower index, order-independent
    }
    case FallbackKind::kRandom:
    case FallbackKind::kRandomInRange:
      return live_table_.kth_up(rng.below(live));
  }
  return std::nullopt;
}

void DistributedServer::commit_route(const workload::Job& job, HostId target,
                                     std::uint32_t level) {
  if (!control_config_.rpc_enabled()) {
    deliver_or_bounce(job, target);
    return;
  }
  ++control_stats_.rpc_dispatches;
  // Fresh chains insert; escalated chains overwrite their own entry. Either
  // way the job cannot already be placed (escalation requires !enqueued,
  // and a resubmission cancelled its old chain first).
  PendingDispatch& p = pending_.upsert(job.id);
  DS_ASSERT(!p.enqueued);
  p = PendingDispatch{job, target, 0, level, false, ++rpc_epoch_};
  send_dispatch(job.id);
}

void DistributedServer::send_dispatch(workload::JobId id) {
  PendingDispatch* const slot = pending_.find(id);
  DS_ASSERT(slot != nullptr);
  PendingDispatch& p = *slot;
  const double now = sim_.now();
  ++control_stats_.requests_sent;
  if (auditor_) {
    auditor_->on_rpc_send(id, p.target, p.attempt, now, active_dispatcher_);
  }
  bool lost = active_plane().request_lost();
  // A down host has no receiver: the request is lost regardless of the
  // draw (the draw is still consumed, keeping the stream aligned).
  if (!hosts_[p.target].up) lost = true;
  // A non-serving host (stale snapshot lagging a scaling decision) refuses
  // the dispatch; the timeout/retry/fallback chain re-routes, never drops.
  if (scaling_enabled_ && hosts_[p.target].power != sim::PowerState::kUp) {
    ++scaling_stats_.rpc_rejects;
    lost = true;
  }
  // Under kBounce a full host refuses the dispatch the same way: the chain
  // retries and then escalates through the fallback levels, so overload at
  // one host spreads the work instead of dropping it. The destructive
  // overflow actions resolve at delivery below instead.
  if (overload_config_.overflow == sim::OverflowAction::kBounce &&
      host_full_for(p.target)) {
    ++overload_stats_.rpc_full_rejects;
    lost = true;
  }
  if (lost) {
    ++control_stats_.requests_lost;
    if (auditor_) {
      auditor_->on_rpc_outcome(id, sim::QueueingAuditor::RpcOutcome::kRequestLost,
                               now);
    }
    schedule_rpc_timeout(id);
    return;
  }
  if (p.enqueued) {
    // The job id is the idempotency key: a re-delivered dispatch for an
    // already placed job must not enqueue it twice.
    ++control_stats_.duplicates_suppressed;
    if (auditor_) {
      auditor_->on_rpc_outcome(id, sim::QueueingAuditor::RpcOutcome::kDuplicate,
                               now);
    }
  } else {
    p.enqueued = true;
    if (host_full_for(p.target)) {
      // The host took the RPC but its queue is full: the request counts as
      // delivered (kBounce refused it above), then the overflow action
      // (kReject / kShed*) resolves the conflict.
      if (auditor_) {
        auditor_->on_rpc_outcome(
            id, sim::QueueingAuditor::RpcOutcome::kDelivered, now);
      }
      overflow_at_host(p.job, p.target);
    } else {
      if (auditor_) auditor_->on_dispatch(id, p.target);
      dispatch_to_host(p.target, p.job);
      if (auditor_) {
        auditor_->on_rpc_outcome(
            id, sim::QueueingAuditor::RpcOutcome::kDelivered, now);
      }
    }
  }
  if (active_plane().ack_lost()) {
    ++control_stats_.acks_lost;
    if (auditor_) {
      auditor_->on_rpc_outcome(id, sim::QueueingAuditor::RpcOutcome::kAckLost,
                               now);
    }
    schedule_rpc_timeout(id);
    return;
  }
  pending_.erase(id);  // acked: the chain is resolved
}

void DistributedServer::schedule_rpc_timeout(workload::JobId id) {
  const PendingDispatch* const p = pending_.find(id);
  DS_ASSERT(p != nullptr);
  const double delay =
      control_config_.rpc_timeout + active_plane().backoff(p->attempt);
  sim_.schedule_in(delay, sim::Event::rpc_timeout(id, p->epoch));
}

void DistributedServer::rpc_timeout_fired(workload::JobId id,
                                          std::uint64_t epoch) {
  PendingDispatch* const slot = pending_.find(id);
  // A mismatched epoch marks a cancelled chain (the job was interrupted
  // and resubmitted; its new chain has a fresh epoch).
  if (slot == nullptr || slot->epoch != epoch) return;
  // Retries and escalations run under the chain's owner dispatcher (a pure
  // function of the id, so no owner field is needed).
  active_dispatcher_ = dispatcher_of(id);
  const double now = sim_.now();
  ++control_stats_.timeouts;
  if (auditor_) {
    auditor_->on_rpc_outcome(id, sim::QueueingAuditor::RpcOutcome::kTimeout,
                             now);
  }
  PendingDispatch& p = *slot;
  if (p.attempt < control_config_.max_retries) {
    ++p.attempt;
    ++control_stats_.retries;
    send_dispatch(id);
    return;
  }
  // Retry budget exhausted.
  if (p.enqueued) {
    // Only acks were lost; the idempotency key proves the job is placed.
    ++control_stats_.reconciled;
    pending_.erase(id);
    return;
  }
  const std::uint32_t next_level = p.level + 1;
  if (fallback_for_level(next_level)) {
    ++control_stats_.escalations_exhausted;
    if (auditor_) {
      auditor_->on_fallback(id, p.level, next_level,
                            sim::QueueingAuditor::FallbackReason::kExhausted,
                            now);
    }
    const workload::Job job = p.job;
    const HostId failed = p.target;
    route_at_level(job, next_level, failed);
    return;
  }
  ++control_stats_.forced_placements;
  if (auditor_) {
    auditor_->on_fallback(id, p.level, next_level,
                          sim::QueueingAuditor::FallbackReason::kForced, now);
  }
  const workload::Job job = p.job;
  pending_.erase(id);
  force_place(job);
}

void DistributedServer::force_place(const workload::Job& job) {
  // The reliable last resort (an operator walking to the machine): place on
  // a uniformly random live up host, or hold centrally when none is up.
  const std::optional<HostId> pick =
      assign_fallback(FallbackKind::kRandom, std::nullopt);
  if (pick) {
    deliver_or_bounce(job, *pick);
    return;
  }
  hold_centrally(job);
}

bool DistributedServer::deliver_or_bounce(const workload::Job& job,
                                          HostId target) {
  if (scaling_enabled_ &&
      hosts_[target].power != sim::PowerState::kUp) {
    // The route raced a scaling decision (stale snapshot, forced place):
    // never park a job behind a host that is warming, draining, or off —
    // the dispatcher takes it back. The audit never sees a dispatch here,
    // so its no-enqueue-to-non-Up-host invariant stays sharp.
    ++scaling_stats_.bounced_dispatches;
    hold_centrally(job);
    return false;
  }
  if (host_full_for(target)) {
    if (overload_config_.overflow == sim::OverflowAction::kBounce) {
      // The full host refuses the delivery and the dispatcher takes the job
      // back, exactly like the scaling bounce above; some host completing
      // work will pull it from the central queue.
      ++overload_stats_.bounced_full;
      hold_centrally(job);
      return false;
    }
    overflow_at_host(job, target);
    return true;
  }
  if (auditor_) auditor_->on_dispatch(job.id, target);
  dispatch_to_host(target, job);
  return true;
}

void DistributedServer::hold_centrally(const workload::Job& job) {
  // Central queue: start immediately if some host is idle and up (lowest
  // index, via the idle∧up bitset instead of an O(h) scan), else hold
  // (when every host is down, all jobs wait here until a repair).
  if (const std::optional<HostId> h = live_table_.first_idle_up()) {
    start_service(*h, job, sim::QueueingAuditor::StartSource::kDirect);
    return;
  }
  if (auditor_) auditor_->on_hold(job.id);
  if (reneging_enabled()) waiting_at_[job.id] = -1;
  central_queue_.push_back(job);
}

void DistributedServer::dispatch_to_host(HostId host, const workload::Job& job) {
  Host& h = hosts_[host];
  // deliver_or_bounce / send_dispatch filtered non-serving targets already.
  DS_ASSERT(h.power == sim::PowerState::kUp);
  if (!h.busy && h.up) {
    DS_ASSERT(h.queue.empty());
    start_service(host, job, sim::QueueingAuditor::StartSource::kDirect);
  } else {
    // Busy host, or a down host a non-masking policy routed to anyway: the
    // job queues and waits for the completion/repair.
    if (auditor_) auditor_->on_enqueue(job.id, host);
    if (reneging_enabled()) {
      waiting_at_[job.id] = static_cast<std::int64_t>(host);
    }
    h.queue.push_back(job);
    h.queued_work += service_time_of(job, host);
    publish_host(host);
  }
}

void DistributedServer::start_service(HostId host, const workload::Job& job,
                                      sim::QueueingAuditor::StartSource source) {
  Host& h = hosts_[host];
  DS_ASSERT(!h.busy);
  DS_ASSERT(h.up);
  // In-service jobs never renege: entering service discharges the deadline.
  if (reneging_enabled()) waiting_at_.erase(job.id);
  const double service = service_time_of(job, host);
  if (auditor_) {
    auditor_->on_start(job.id, host, sim_.now(), job.size, source, service);
  }
  note_busy_change(+1);
  h.busy = true;
  const double start = sim_.now();
  const double completion = start + service;
  h.current_completion = completion;
  h.running_job = job;
  h.service_start = start;
  ++h.service_epoch;
  if (record_mode_) {
    JobRecord& rec = records_[job.id];
    rec.id = job.id;
    rec.arrival = job.arrival;
    rec.size = job.size;
    rec.host = host;
    rec.start = start;
    rec.completion = completion;
  }
  publish_host(host);
  sim_.schedule_at(completion,
                   sim::Event::departure(host, job.id, h.service_epoch));
}

void DistributedServer::on_completion(HostId host, workload::JobId id,
                                      std::uint64_t epoch) {
  Host& h = hosts_[host];
  // A failure interrupted this service: the completion event is stale (the
  // kernel has no cancellation, so epochs invalidate orphaned events).
  if (!h.busy || h.service_epoch != epoch) return;
  DS_ASSERT(h.running_job.id == id);
  const double t = sim_.now();
  if (auditor_) auditor_->on_complete(id, host, t);
  note_busy_change(-1);
  h.busy = false;
  publish_host(host);
  const double size = h.running_job.size;
  // Host accounting is in *time* units: a 2x host finishing a size-10 job
  // was busy 5. Identical to size on a homogeneous fleet (x / 1.0 == x).
  const double service = service_time_of(h.running_job, host);
  h.stats.jobs_completed += 1;
  h.stats.busy_time += service;
  h.stats.work_done += service;
  // The departure event fires at exactly the scheduled completion time, so
  // this matches the record-mode rec.completion bit for bit.
  max_completion_ = std::max(max_completion_, t);
  if (!record_mode_) {
    JobRecord rec;
    rec.id = id;
    rec.arrival = h.running_job.arrival;
    rec.size = size;
    rec.host = host;
    rec.start = h.service_start;
    rec.completion = t;
    if (!restarts_.empty()) {
      if (const auto it = restarts_.find(id); it != restarts_.end()) {
        rec.restarts = it->second;
        restarts_.erase(it);
      }
    }
    stream_summary_.add(rec);
    if (stream_options_->record_sink) stream_options_->record_sink(rec);
  }
  note_job_done();
  feed_idle_host(host);
}

void DistributedServer::feed_idle_host(HostId host) {
  Host& h = hosts_[host];
  if (!h.up) return;  // a down host starts nothing; repair re-feeds it
  if (h.busy) return;  // a reclaimed draining host may still be serving
  if (h.power == sim::PowerState::kOff ||
      h.power == sim::PowerState::kWarmingUp) {
    return;  // powered-down hosts hold no work; warm-up completion re-feeds
  }
  if (!h.queue.empty()) {
    const workload::Job next = h.queue.front();
    h.queue.pop_front();
    h.queued_work -= service_time_of(next, host);
    if (h.queue.empty()) h.queued_work = 0.0;  // kill accumulator drift
    // start_service publishes the final state; no intermediate publish —
    // no policy or auditor read happens between the pop and the start.
    // A Draining host keeps working through its own backlog here.
    start_service(host, next, sim::QueueingAuditor::StartSource::kHostQueue);
    return;
  }
  if (h.power == sim::PowerState::kDraining) {
    // Backlog finished and a draining host never pulls central work: the
    // drain is complete and the host powers off.
    complete_drain(host);
    return;
  }
  if (!central_queue_.empty()) {
    const std::size_t pick =
        policy_->select_next(central_queue_, host, *this);
    DS_ASSERT(pick < central_queue_.size());
    const workload::Job job = central_queue_[pick];
    central_queue_.erase(central_queue_.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    start_service(host, job, sim::QueueingAuditor::StartSource::kCentralQueue);
  }
}

void DistributedServer::note_job_done() {
  ++jobs_done_;
  // Under faults or the control plane the event list can hold
  // failure/repair/probe/timeout events far beyond the last job; stop as
  // soon as every job is resolved instead of simulating an empty system
  // through them.
  if ((faults_enabled_ || control_enabled_ || scaling_enabled_ ||
       overload_enabled_) &&
      all_jobs_done()) {
    sim_.stop();
  }
}

void DistributedServer::begin_control(std::uint64_t seed) {
  control_stats_ = sim::ControlStats{};
  pending_.clear();
  pending_.reserve(64);  // grows once if a loss storm piles up more chains
  rpc_epoch_ = 0;
  active_dispatcher_ = 0;
  degraded_ = policy_->degraded_info();
  const std::uint32_t d = control_config_.dispatchers;
  dispatchers_.clear();
  dispatchers_.resize(d);
  for (std::uint32_t k = 0; k < d; ++k) {
    DispatcherState& ds = dispatchers_[k];
    // Dispatcher 0 is seeded exactly as the single-dispatcher plane was,
    // so d = 1 consumes identical draws and stays bit-identical; siblings
    // get salted, decorrelated streams.
    ds.plane = sim::ControlPlane(
        control_config_, hosts_count_,
        sim::ControlPlane::dispatcher_seed(seed, k));
    // Each dispatcher starts with a fresh t=0 observation of the empty
    // system (it booted the hosts; it knows they are empty).
    ds.snapshot.reset(hosts_count_, HostStateTable::Semantics::kObserved);
    if (heterogeneous_) {
      for (HostId h = 0; h < hosts_count_; ++h) {
        ds.snapshot.set_speed(h, speeds_[h], class_ids_[h]);
      }
    }
    if (!control_config_.snapshots_enabled()) continue;
    if (control_config_.batch_probes) {
      // Probe wheel: per-host due-times start at the jittered phases; the
      // sweep order is fixed once — every host advances by the same
      // period, so the (due, host) order never changes. One timer event
      // per distinct due-time replaces h heap events.
      ds.probe_due.resize(hosts_count_);
      ds.probe_order.resize(hosts_count_);
      for (HostId h = 0; h < hosts_count_; ++h) {
        ds.probe_due[h] = ds.plane.first_probe_at(h);
        ds.probe_order[h] = h;
      }
      std::sort(ds.probe_order.begin(), ds.probe_order.end(),
                [&ds](HostId a, HostId b) {
                  if (ds.probe_due[a] != ds.probe_due[b]) {
                    return ds.probe_due[a] < ds.probe_due[b];
                  }
                  return a < b;
                });
      ds.probe_cursor = 0;
      // The wheel event carries the dispatcher index in the host field.
      sim_.schedule_at(ds.probe_due[ds.probe_order[0]],
                       sim::Event::probe(k));
    } else {
      for (HostId h = 0; h < hosts_count_; ++h) {
        sim::Event probe = sim::Event::probe(h);
        probe.id = k;  // legacy encoding: dispatcher rides in the id field
        sim_.schedule_at(ds.plane.first_probe_at(h), probe);
      }
    }
  }
}

void DistributedServer::probe_host(std::uint32_t dispatcher, HostId host) {
  DispatcherState& ds = dispatchers_[dispatcher];
  const double t = sim_.now();
  ++control_stats_.probes_sent;
  const bool lost = ds.plane.probe_lost(host);
  if (lost) {
    ++control_stats_.probes_lost;  // the old observation stays in place
  } else {
    // Incremental snapshot maintenance: patch exactly one row of the
    // owner's kObserved table; the argmin trees go dirty per-row and
    // flush lazily at the next policy read (PR-6 machinery).
    ds.snapshot.set_up(host, live_table_.up(host));
    ds.snapshot.set_observation(host, live_table_.queue_length(host),
                                live_table_.work_left(host, t),
                                live_table_.idle(host), t,
                                ds.plane.snapshot_jitter(host));
  }
  if (auditor_) auditor_->on_probe(host, t, lost, dispatcher);
}

void DistributedServer::probe_fired(std::uint32_t dispatcher, HostId host) {
  if (all_jobs_done()) return;  // run is winding down; stop the probe chain
  probe_host(dispatcher, host);
  sim::Event probe = sim::Event::probe(host);
  probe.id = dispatcher;
  sim_.schedule_in(control_config_.probe_period, probe);
}

void DistributedServer::wheel_fired(std::uint32_t dispatcher) {
  if (all_jobs_done()) return;  // run is winding down; stop the wheel
  DispatcherState& ds = dispatchers_[dispatcher];
  const double t = sim_.now();
  const std::size_t n = ds.probe_order.size();
  // Sweep every host due exactly now, in the fixed (due, host) order — the
  // same order the per-host path fires them (equal-time events fire in
  // scheduling order, which is host-ascending by induction). Advancing by
  // `+= period` reproduces the per-host path's schedule_in(now + period)
  // accumulation bit for bit.
  std::size_t cursor = ds.probe_cursor;
  do {
    const HostId host = ds.probe_order[cursor];
    if (ds.probe_due[host] != t) break;
    probe_host(dispatcher, host);
    ds.probe_due[host] += control_config_.probe_period;
    cursor = cursor + 1 < n ? cursor + 1 : 0;
  } while (cursor != ds.probe_cursor);
  ds.probe_cursor = cursor;
  sim_.schedule_at(ds.probe_due[ds.probe_order[cursor]],
                   sim::Event::probe(dispatcher));
}

void DistributedServer::begin_faults(std::uint64_t seed) {
  fault_process_ = sim::FaultProcess(fault_config_, hosts_count_, seed);
  for (const sim::HostOutage& outage : fault_config_.outages) {
    sim_.schedule_at(
        outage.at,
        sim::Event::host_fail(outage.host, outage.duration, /*renewal=*/false));
  }
  if (fault_process_.renewal_enabled()) {
    for (HostId h = 0; h < hosts_count_; ++h) {
      schedule_failure(h, fault_process_.next_uptime(h));
    }
  }
}

void DistributedServer::schedule_failure(HostId host, double delay) {
  sim_.schedule_in(delay,
                   sim::Event::host_fail(host, 0.0, /*renewal=*/true));
}

void DistributedServer::fault_down(HostId host, double duration, bool renewal) {
  if (all_jobs_done()) return;  // run is winding down
  Host& h = hosts_[host];
  ++h.down_depth;
  if (h.down_depth == 1) {
    if (scaling_enabled_ && h.power == sim::PowerState::kUp) {
      accrue_integrals(sim_.now());
      --serviceable_count_;
    }
    h.up = false;
    // Published before the interruption: a resubmitted job re-enters the
    // policy, which must already see this host as down.
    live_table_.set_up(host, false);
    h.down_since = sim_.now();
    h.stats.failures += 1;
    if (auditor_) auditor_->on_host_down(host, sim_.now());
    // Queued work leaves a failed host before its in-service job is
    // resolved: kRequeueFront then parks the interrupted job at the front
    // of a now-empty queue, so it rides out the outage with the host (per
    // RecoveryMode) while the rest of the backlog re-routes.
    if (overload_enabled_ && overload_config_.migrate_on_fail) {
      migrate_queue(host, /*drain=*/false);
    }
    if (h.busy) interrupt_running(host);
  }
  sim_.schedule_in(duration, sim::Event::host_repair(host, renewal));
}

void DistributedServer::fault_up(HostId host, bool renewal) {
  Host& h = hosts_[host];
  DS_ASSERT(h.down_depth > 0);
  --h.down_depth;
  if (h.down_depth == 0) {
    if (scaling_enabled_ && h.power == sim::PowerState::kUp) {
      accrue_integrals(sim_.now());
      ++serviceable_count_;
    }
    h.up = true;
    refresh_accepting(host);
    h.stats.down_time += sim_.now() - h.down_since;
    if (auditor_) auditor_->on_host_up(host, sim_.now());
    feed_idle_host(host);
  }
  // The renewal chain restarts from the end of the repair.
  if (renewal && !all_jobs_done()) {
    schedule_failure(host, fault_process_.next_uptime(host));
  }
}

void DistributedServer::interrupt_running(HostId host) {
  Host& h = hosts_[host];
  DS_ASSERT(h.busy);
  const workload::Job job = h.running_job;
  const workload::JobId id = job.id;
  const double t = sim_.now();
  const double partial = t - h.service_start;
  h.stats.busy_time += partial;
  h.stats.wasted_work += partial;
  h.stats.jobs_interrupted += 1;
  ++interruptions_;
  if (record_mode_) {
    records_[id].restarts += 1;
  } else {
    ++restarts_[id];
  }
  ++h.service_epoch;  // orphan the pending completion event
  note_busy_change(-1);
  h.busy = false;
  publish_host(host);  // before kResubmit's route(): the policy reads it
  switch (recovery_) {
    case RecoveryMode::kRequeueFront:
      if (auditor_) {
        auditor_->on_interrupt(
            id, host, t, sim::QueueingAuditor::InterruptResolution::kRequeuedFront);
      }
      h.queue.push_front(job);
      if (reneging_enabled()) {
        waiting_at_[id] = static_cast<std::int64_t>(host);
      }
      h.queued_work += service_time_of(job, host);
      publish_host(host);
      break;
    case RecoveryMode::kResubmit:
      // A live RPC chain for this job (an ack-loss retry still in flight)
      // is moot once the job leaves the host: cancel it so the resubmission
      // opens a fresh chain. The orphaned timeout event is epoch-fenced.
      if (control_enabled_ && pending_.erase(id)) {
        ++control_stats_.cancelled;
        if (auditor_) {
          auditor_->on_rpc_outcome(
              id, sim::QueueingAuditor::RpcOutcome::kCancelled, t);
        }
      }
      if (auditor_) {
        auditor_->on_interrupt(
            id, host, t, sim::QueueingAuditor::InterruptResolution::kResubmitted);
      }
      // Back through the dispatcher like a fresh arrival (the policy sees
      // this host as down and routes elsewhere or holds centrally).
      route(job);
      break;
    case RecoveryMode::kAbandon:
      if (auditor_) {
        auditor_->on_interrupt(
            id, host, t, sim::QueueingAuditor::InterruptResolution::kAbandoned);
      }
      ++jobs_failed_;
      max_completion_ = std::max(max_completion_, t);
      if (record_mode_) {
        JobRecord& rec = records_[id];
        rec.failed = true;
        rec.outcome = JobOutcome::kAbandoned;
        rec.completion = t;
      } else {
        JobRecord rec;
        rec.id = id;
        rec.arrival = job.arrival;
        rec.size = job.size;
        rec.host = host;
        rec.start = h.service_start;
        rec.completion = t;
        rec.failed = true;
        rec.outcome = JobOutcome::kAbandoned;
        const auto it = restarts_.find(id);  // inserted above, so present
        rec.restarts = it->second;
        restarts_.erase(it);
        stream_summary_.add(rec);
        if (stream_options_->record_sink) stream_options_->record_sink(rec);
      }
      note_job_done();
      break;
  }
  // A draining host whose interrupted job left it (kResubmit / kAbandon
  // with an empty queue) has nothing left to finish: the drain completes
  // even while fault-down — power and faults are orthogonal axes.
  if (scaling_enabled_ && h.power == sim::PowerState::kDraining && !h.busy &&
      h.queue.empty()) {
    complete_drain(host);
  }
}

// --- overload protection ---

void DistributedServer::begin_overload(std::uint64_t seed) {
  admission_ = sim::AdmissionController(overload_config_, seed);
  overload_stats_ = sim::OverloadStats{};
  waiting_at_.clear();
  // begin_scaling already zeroed the count when scaling is on; a util-gate
  // without scaling maintains it on its own (note_busy_change).
  if (!scaling_enabled_) busy_count_ = 0;
  // Caps live on the state tables so capacity-aware policies (SITA-E,
  // ClassSita) can steer around full hosts; reset() cleared them.
  live_table_.set_caps(overload_config_.queue_cap, overload_config_.backlog_cap);
  if (control_enabled_) {
    for (DispatcherState& ds : dispatchers_) {
      ds.snapshot.set_caps(overload_config_.queue_cap,
                           overload_config_.backlog_cap);
    }
  }
}

bool DistributedServer::admit_arrival(const workload::Job& job) {
  double utilization = 0.0;
  if (overload_config_.admission == sim::AdmissionMode::kUtilizationGate) {
    utilization =
        static_cast<double>(busy_count_) / static_cast<double>(hosts_count_);
  }
  if (admission_.admit(sim_.now(), utilization)) {
    ++overload_stats_.admitted;
    return true;
  }
  ++overload_stats_.shed_admission;
  if (auditor_) auditor_->on_shed(job.id, sim_.now());
  resolve_loss(job, /*host=*/0, JobOutcome::kShed);
  return false;
}

bool DistributedServer::host_full_for(HostId target) const {
  if (!overload_enabled_) return false;
  const Host& h = hosts_[target];
  // Only a delivery that would *queue* can overflow; an idle up host
  // starts the job immediately and needs no queue slot.
  if (!h.busy && h.up) return false;
  return live_table_.at_capacity(target, sim_.now());
}

void DistributedServer::overflow_at_host(const workload::Job& job,
                                         HostId target) {
  Host& h = hosts_[target];
  const sim::OverflowAction action = overload_config_.overflow;
  if (action == sim::OverflowAction::kReject || h.queue.empty()) {
    // Plain rejection, or nothing queued to trade against (the in-service
    // job is never shed): the arriving job is dropped.
    ++overload_stats_.shed_overflow;
    if (auditor_) auditor_->on_shed(job.id, sim_.now());
    resolve_loss(job, target, JobOutcome::kShed);
    return;
  }
  // Shed the extreme-size job among {queued jobs, arriving job}. Scans
  // take the first extreme (deterministic), and on an exact size tie with
  // the arrival the queued job loses — the newcomer carries fresher
  // patience and keeps the queue from ossifying.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < h.queue.size(); ++i) {
    const bool more_extreme =
        action == sim::OverflowAction::kShedSmallest
            ? h.queue[i].size < h.queue[victim].size
            : h.queue[i].size > h.queue[victim].size;
    if (more_extreme) victim = i;
  }
  const bool arriving_loses =
      action == sim::OverflowAction::kShedSmallest
          ? job.size < h.queue[victim].size
          : job.size > h.queue[victim].size;
  if (arriving_loses) {
    ++overload_stats_.shed_overflow;
    if (auditor_) auditor_->on_shed(job.id, sim_.now());
    resolve_loss(job, target, JobOutcome::kShed);
    return;
  }
  const workload::Job shed = h.queue[victim];
  h.queue.erase(h.queue.begin() + static_cast<std::ptrdiff_t>(victim));
  h.queued_work -= service_time_of(shed, target);
  if (h.queue.empty()) h.queued_work = 0.0;
  publish_host(target);
  if (reneging_enabled()) waiting_at_.erase(shed.id);
  ++overload_stats_.shed_overflow;
  if (auditor_) auditor_->on_shed(shed.id, sim_.now());
  resolve_loss(shed, target, JobOutcome::kShed);
  // The freed slot takes the newcomer.
  if (auditor_) auditor_->on_dispatch(job.id, target);
  dispatch_to_host(target, job);
}

void DistributedServer::renege_fired(workload::JobId id) {
  const auto it = waiting_at_.find(id);
  // Absent means the job started service, already resolved, or is mid RPC
  // flight at its deadline: only *queued* work reneges.
  if (it == waiting_at_.end()) return;
  const std::int64_t where = it->second;
  waiting_at_.erase(it);
  const double t = sim_.now();
  workload::Job job{};
  bool found = false;
  HostId record_host = 0;
  if (where < 0) {
    for (auto q = central_queue_.begin(); q != central_queue_.end(); ++q) {
      if (q->id == id) {
        job = *q;
        found = true;
        central_queue_.erase(q);
        break;
      }
    }
  } else {
    const HostId host = static_cast<HostId>(where);
    record_host = host;
    Host& h = hosts_[host];
    for (auto q = h.queue.begin(); q != h.queue.end(); ++q) {
      if (q->id == id) {
        job = *q;
        found = true;
        h.queue.erase(q);
        h.queued_work -= service_time_of(job, host);
        if (h.queue.empty()) h.queued_work = 0.0;
        break;
      }
    }
    publish_host(host);
    // The renege may have emptied a draining host's backlog.
    if (scaling_enabled_ && h.power == sim::PowerState::kDraining &&
        !h.busy && h.queue.empty()) {
      complete_drain(host);
    }
  }
  DS_ASSERT(found);  // the waiting map always matches a queue entry
  ++overload_stats_.reneged;
  if (auditor_) auditor_->on_renege(id, t);
  resolve_loss(job, record_host, JobOutcome::kReneged);
}

void DistributedServer::migrate_queue(HostId host, bool drain) {
  Host& h = hosts_[host];
  if (h.queue.empty()) return;
  const double t = sim_.now();
  migrate_buffer_.assign(h.queue.begin(), h.queue.end());
  h.queue.clear();
  h.queued_work = 0.0;
  // Published before the re-routes: the policy must see the emptied (and
  // already non-accepting) host before it places the evacuated work.
  publish_host(host);
  for (const workload::Job& job : migrate_buffer_) {
    if (drain) {
      ++overload_stats_.migrated_drain;
    } else {
      ++overload_stats_.migrated_fault;
    }
    if (reneging_enabled()) waiting_at_.erase(job.id);
    // A live RPC chain (an ack-loss retry still in flight) for a migrated
    // job is moot: the re-route opens a fresh chain, so cancel the old one
    // (its orphaned timeout event is epoch-fenced by the erase).
    if (control_enabled_ && pending_.erase(job.id)) {
      ++control_stats_.cancelled;
      if (auditor_) {
        auditor_->on_rpc_outcome(
            job.id, sim::QueueingAuditor::RpcOutcome::kCancelled, t);
      }
    }
    if (auditor_) auditor_->on_migrate(job.id, host, t);
    // Back through the dispatcher like a fresh arrival; the patience
    // deadline (if any) re-attaches when the job queues again.
    route(job);
  }
  migrate_buffer_.clear();
}

void DistributedServer::resolve_loss(const workload::Job& job, HostId host,
                                     JobOutcome outcome) {
  const double t = sim_.now();
  ++jobs_failed_;
  max_completion_ = std::max(max_completion_, t);
  if (record_mode_) {
    JobRecord& rec = records_[job.id];
    rec.id = job.id;
    rec.arrival = job.arrival;
    rec.size = job.size;
    rec.host = host;
    rec.start = t;  // never served: start == completion == the loss time
    rec.completion = t;
    rec.failed = true;
    rec.outcome = outcome;
  } else {
    JobRecord rec;
    rec.id = job.id;
    rec.arrival = job.arrival;
    rec.size = job.size;
    rec.host = host;
    rec.start = t;
    rec.completion = t;
    rec.failed = true;
    rec.outcome = outcome;
    if (!restarts_.empty()) {
      if (const auto it = restarts_.find(job.id); it != restarts_.end()) {
        rec.restarts = it->second;
        restarts_.erase(it);
      }
    }
    stream_summary_.add(rec);
    if (stream_options_->record_sink) stream_options_->record_sink(rec);
  }
  note_job_done();
}

// --- autoscaler ---

void DistributedServer::begin_scaling(std::uint64_t seed) {
  scaler_ = sim::Autoscaler(scaler_config_, hosts_count_, seed);
  scaling_stats_ = sim::ScalingStats{};
  // Every host starts powered and serving; the first low-utilization
  // window sheds what the workload does not need.
  integral_mark_ = 0.0;
  busy_integral_ = serviceable_integral_ = powered_integral_ = 0.0;
  eval_busy_mark_ = eval_serviceable_mark_ = 0.0;
  busy_count_ = 0;
  serviceable_count_ = hosts_count_;  // faults schedule later than t=0 setup
  powered_count_ = hosts_count_;
  scaling_stats_.min_powered = hosts_count_;
  scaling_stats_.max_powered = hosts_count_;
  sim_.schedule_at(scaler_.first_eval_at(0.0), sim::Event::scale_eval());
}

void DistributedServer::accrue_integrals(double t) {
  const double dt = t - integral_mark_;
  if (dt <= 0.0) return;
  busy_integral_ += dt * static_cast<double>(busy_count_);
  serviceable_integral_ += dt * static_cast<double>(serviceable_count_);
  powered_integral_ += dt * static_cast<double>(powered_count_);
  integral_mark_ = t;
}

void DistributedServer::note_busy_change(int delta) {
  if (scaling_enabled_) {
    accrue_integrals(sim_.now());
  } else if (!overload_enabled_ ||
             overload_config_.admission !=
                 sim::AdmissionMode::kUtilizationGate) {
    // Plain runs skip all busy bookkeeping; the utilization admission gate
    // needs the instantaneous count but not the time integrals.
    return;
  }
  busy_count_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(busy_count_) + delta);
}

void DistributedServer::refresh_accepting(HostId host) {
  const Host& h = hosts_[host];
  live_table_.set_up(host,
                     h.up && h.power == sim::PowerState::kUp);
}

void DistributedServer::set_power(HostId host, sim::PowerState next) {
  Host& h = hosts_[host];
  const sim::PowerState prev = h.power;
  if (prev == next) return;
  accrue_integrals(sim_.now());
  if (prev == sim::PowerState::kOff) ++powered_count_;
  if (next == sim::PowerState::kOff) --powered_count_;
  if (h.up) {
    if (prev == sim::PowerState::kUp) --serviceable_count_;
    if (next == sim::PowerState::kUp) ++serviceable_count_;
  }
  h.power = next;
  refresh_accepting(host);
  scaling_stats_.min_powered =
      std::min(scaling_stats_.min_powered, powered_count_);
  scaling_stats_.max_powered =
      std::max(scaling_stats_.max_powered, powered_count_);
  if (auditor_) auditor_->on_power_state(host, next, sim_.now());
}

void DistributedServer::complete_drain(HostId host) {
  [[maybe_unused]] const Host& h = hosts_[host];
  DS_ASSERT(h.power == sim::PowerState::kDraining);
  DS_ASSERT(!h.busy && h.queue.empty());
  ++scaling_stats_.drains_completed;
  set_power(host, sim::PowerState::kOff);
}

void DistributedServer::scale_eval_fired() {
  if (all_jobs_done()) return;  // run is winding down; stop the eval chain
  const double t = sim_.now();
  accrue_integrals(t);
  ++scaling_stats_.evals;
  // Utilization over the period since the previous sample: busy host-time
  // per serviceable host-time. With no serviceable capacity all period
  // (floor host fault-down), backlog counts as full pressure.
  const double busy_dt = busy_integral_ - eval_busy_mark_;
  const double serviceable_dt =
      serviceable_integral_ - eval_serviceable_mark_;
  eval_busy_mark_ = busy_integral_;
  eval_serviceable_mark_ = serviceable_integral_;
  double sample;
  if (serviceable_dt > 0.0) {
    // Busy counts draining hosts still burning down backlog, so the raw
    // ratio can exceed 1 — that pressure is real, but the sample space is
    // [0, 1].
    sample = busy_dt / serviceable_dt;
    if (sample > 1.0) sample = 1.0;
    if (sample < 0.0) sample = 0.0;
  } else {
    sample = (jobs_arrived_ > jobs_done_) ? 1.0 : 0.0;
  }
  scaler_.add_sample(sample);
  switch (scaler_.decide()) {
    case sim::ScaleDecision::kUp:
      ++scaling_stats_.scale_up_decisions;
      apply_scale_up(scaler_config_.scale_step);
      scaler_.clear_window();
      break;
    case sim::ScaleDecision::kDown:
      ++scaling_stats_.scale_down_decisions;
      apply_scale_down(scaler_config_.scale_step);
      scaler_.clear_window();
      break;
    case sim::ScaleDecision::kNone:
      break;
  }
  sim_.schedule_in(scaler_config_.check_period, sim::Event::scale_eval());
}

void DistributedServer::apply_scale_up(std::size_t step) {
  // Reclaim draining hosts first (lowest index, mirroring the classical
  // lowest-index tie-breaks): they are warm and often mid-backlog, so
  // flipping them back to Up is free capacity.
  std::size_t remaining = step;
  for (HostId h = 0; h < hosts_count_ && remaining > 0; ++h) {
    if (hosts_[h].power != sim::PowerState::kDraining) continue;
    set_power(h, sim::PowerState::kUp);
    ++scaling_stats_.drains_reclaimed;
    --remaining;
    feed_idle_host(h);  // an idle reclaimed host can pull central work
  }
  // Then cold-start powered-off hosts through the warm-up delay.
  for (HostId h = 0; h < hosts_count_ && remaining > 0; ++h) {
    Host& host = hosts_[h];
    if (host.power != sim::PowerState::kOff) continue;
    set_power(h, sim::PowerState::kWarmingUp);
    ++scaling_stats_.hosts_powered_on;
    --remaining;
    ++host.power_epoch;
    sim_.schedule_in(scaler_config_.warmup_delay,
                     sim::Event::warmup(h, host.power_epoch));
  }
}

void DistributedServer::apply_scale_down(std::size_t step) {
  // The floor counts hosts that serve now or will shortly (Up + Warming);
  // draining hosts are already leaving and do not protect the floor.
  std::size_t serving = 0;
  for (const Host& h : hosts_) {
    if (h.power == sim::PowerState::kUp ||
        h.power == sim::PowerState::kWarmingUp) {
      ++serving;
    }
  }
  if (serving <= scaler_config_.min_hosts) return;
  std::size_t remaining =
      std::min(step, serving - scaler_config_.min_hosts);
  // Cancel warm-ups first (highest index — the mirror image of scale-up's
  // lowest-index preference, so the stable core of the fleet is the low
  // indices): nothing is invested in them yet.
  for (HostId h = static_cast<HostId>(hosts_count_);
       h-- > 0 && remaining > 0;) {
    Host& host = hosts_[h];
    if (host.power != sim::PowerState::kWarmingUp) continue;
    ++host.power_epoch;  // fence the pending warm-up event
    set_power(h, sim::PowerState::kOff);
    ++scaling_stats_.warmups_cancelled;
    --remaining;
  }
  // Then drain serving hosts: no new work, finish the backlog, power off.
  // Class-aware order on heterogeneous fleets: the slowest speed class
  // drains first (a slow host sheds the least capacity), highest index
  // within a class. A homogeneous fleet has a one-entry speed menu, so
  // this degenerates to exactly the historical highest-index-first pass.
  for (const double speed : drain_speed_menu_) {
    for (HostId h = static_cast<HostId>(hosts_count_);
         h-- > 0 && remaining > 0;) {
      Host& host = hosts_[h];
      if (host.power != sim::PowerState::kUp) continue;
      if (speeds_[h] != speed) continue;
      set_power(h, sim::PowerState::kDraining);
      ++scaling_stats_.hosts_drained;
      --remaining;
      // Under migration the backlog re-routes instead of pinning the host
      // up until it burns down; only the in-service job still holds it.
      if (overload_enabled_ && overload_config_.migrate_on_drain) {
        migrate_queue(h, /*drain=*/true);
      }
      // An already-idle host has nothing to drain: straight to Off.
      if (!host.busy && host.queue.empty()) complete_drain(h);
    }
    if (remaining == 0) break;
  }
}

void DistributedServer::warmup_fired(HostId host, std::uint64_t epoch) {
  Host& h = hosts_[host];
  // A cancelled warm-up bumped the epoch; the orphaned event no-ops.
  if (h.power != sim::PowerState::kWarmingUp || h.power_epoch != epoch) {
    return;
  }
  ++scaling_stats_.warmups_completed;
  set_power(host, sim::PowerState::kUp);
  // If the host is fault-down the repair will re-feed it; otherwise it can
  // pull central backlog immediately.
  feed_idle_host(host);
}

RunResult simulate(Policy& policy, const workload::Trace& trace,
                   std::size_t hosts, std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  return server.run(trace, seed);
}

RunResult simulate_audited(Policy& policy, const workload::Trace& trace,
                           std::size_t hosts, const sim::AuditConfig& audit,
                           std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  server.enable_audit(audit);
  return server.run(trace, seed);
}

RunResult simulate_with_faults(Policy& policy, const workload::Trace& trace,
                               std::size_t hosts,
                               const sim::FaultConfig& faults,
                               RecoveryMode recovery, std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  server.enable_faults(faults, recovery);
  return server.run(trace, seed);
}

RunResult simulate_with_control(Policy& policy, const workload::Trace& trace,
                                std::size_t hosts,
                                const sim::ControlPlaneConfig& control,
                                std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  server.enable_control(control);
  return server.run(trace, seed);
}

RunResult simulate_with_autoscaler(Policy& policy,
                                   const workload::Trace& trace,
                                   std::size_t hosts,
                                   const sim::AutoscalerConfig& scaler,
                                   std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  server.enable_autoscaler(scaler);
  return server.run(trace, seed);
}

RunResult simulate_with_overload(Policy& policy, const workload::Trace& trace,
                                 std::size_t hosts,
                                 const sim::OverloadConfig& overload,
                                 std::uint64_t seed) {
  DistributedServer server(hosts, policy);
  server.enable_overload(overload);
  return server.run(trace, seed);
}

}  // namespace distserv::core
