// The distributed-server simulator (paper §1.1/§2.2).
//
// h identical hosts fed by one job stream. On arrival a job is routed by the
// task assignment policy — immediately to a host's FCFS queue, or into the
// dispatcher's central queue if the policy declines. Hosts serve one job at
// a time, run-to-completion, no preemption; an idle host pulls from the
// central queue. Built on the discrete-event kernel in src/sim.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include <cstdint>
#include <unordered_map>

#include "core/policy.hpp"
#include "core/recovery.hpp"
#include "core/stream_metrics.hpp"
#include "core/types.hpp"
#include "sim/audit.hpp"
#include "sim/autoscaler.hpp"
#include "sim/control_plane.hpp"
#include "sim/faults.hpp"
#include "sim/overload.hpp"
#include "sim/simulator.hpp"
#include "util/slot_map.hpp"
#include "workload/job_source.hpp"
#include "workload/trace.hpp"

namespace distserv::core {

/// Everything a run produces.
struct RunResult {
  /// Per-job records, indexed by job id (same order as the input trace).
  /// Empty for streaming runs (run_stream), which fill `stream` instead.
  std::vector<JobRecord> records;
  std::vector<HostStats> host_stats;
  std::size_t hosts = 0;
  double makespan = 0.0;  ///< completion time of the last job
  std::uint64_t events_executed = 0;
  /// Events still pending when the run returned; 0 for a drained run
  /// without faults or a control plane. With either enabled the run stops
  /// at the last job outcome and pending failure/repair/probe/RPC-timeout
  /// events beyond it remain here.
  std::uint64_t events_pending = 0;
  // Failure tallies (zero when the fault model is disabled).
  std::uint64_t jobs_failed = 0;    ///< records with failed == true
  std::uint64_t interruptions = 0;  ///< in-service jobs cut by failures
  /// Filled when the run was audited (see DistributedServer::enable_audit).
  std::optional<sim::AuditReport> audit;
  /// Filled when the degraded-information control plane was enabled (see
  /// DistributedServer::enable_control).
  std::optional<sim::ControlStats> control;
  /// Filled when the autoscaler ran (see enable_autoscaler).
  std::optional<sim::ScalingStats> scaling;
  /// Filled when the overload model was enabled (see enable_overload):
  /// admission/overflow shed counts, reneges, and queue migrations.
  std::optional<sim::OverloadStats> overload;
  /// Per-host speed factors when the fleet is heterogeneous; empty means
  /// all hosts run at speed 1.0 (service time == job size). Offline
  /// validation (core::validate_run) consults this to reconstruct per-job
  /// service times.
  std::vector<double> host_speeds;
  /// Filled for streaming runs (run_stream): the bounded-memory metric
  /// state that stands in for `records`, which is then empty.
  std::optional<StreamSummary> stream;
};

/// One simulation of one trace under one policy.
///
/// Implements sim::EventHandler: the event loop delivers typed POD events
/// (arrival, departure, failure, repair, probe, RPC timeout) and on_event
/// dispatches them with a switch — no per-event closures, no per-event
/// heap allocation.
class DistributedServer final : public ServerView,
                                private sim::EventHandler {
 public:
  /// `policy` must outlive the server. Requires hosts >= 1.
  DistributedServer(std::size_t hosts, Policy& policy);

  /// Simulates the complete trace to completion of the last job.
  /// `seed` feeds Policy::reset (e.g. Random's RNG). Can be called
  /// repeatedly; each call is an independent run.
  [[nodiscard]] RunResult run(const workload::Trace& trace,
                              std::uint64_t seed = 1);

  /// Like run(trace), but pulls jobs on demand from `source` (which must
  /// yield at least one job and satisfy the JobSource contract). Per-job
  /// records are still materialised — O(jobs) memory.
  [[nodiscard]] RunResult run(workload::JobSource& source,
                              std::uint64_t seed = 1);

  /// Bounded-memory run: jobs are pulled on demand and metrics are folded
  /// into a StreamSummary the moment each job resolves — no per-job record
  /// is ever stored, so memory stays O(hosts + sketch) regardless of
  /// stream length. Completion times are bit-identical to the materialised
  /// path over the same job sequence; RunResult::records is empty and
  /// RunResult::stream is filled instead.
  [[nodiscard]] RunResult run_stream(workload::JobSource& source,
                                     std::uint64_t seed = 1,
                                     StreamOptions options = {});

  /// Turns the audit layer on (config.enabled) or off for subsequent runs.
  /// When on, every queueing invariant is verified online and the report
  /// lands in RunResult::audit; when off, the only cost is one null check
  /// per hook site.
  void enable_audit(const sim::AuditConfig& config);

  /// The installed auditor, or nullptr — for attaching an expected-route
  /// oracle (SITA cutoff consistency) before run().
  [[nodiscard]] sim::QueueingAuditor* auditor() noexcept {
    return auditor_.get();
  }

  /// Turns the host failure model (sim/faults.hpp) on (config.enabled) or
  /// off for subsequent runs. `recovery` governs the in-service job of a
  /// failing host. Fault randomness lives on its own RNG stream, so runs
  /// with faults disabled are bit-identical to a server without this call.
  void enable_faults(const sim::FaultConfig& config,
                     RecoveryMode recovery = RecoveryMode::kResubmit);

  /// Turns the degraded-information control plane (sim/control_plane.hpp)
  /// on (config.enabled) or off for subsequent runs. When on, policies read
  /// probe-refreshed snapshots instead of live state, dispatches travel
  /// over a lossy RPC path with timeout/retry/backoff and fallback
  /// escalation, and ControlStats land in RunResult::control. Control
  /// randomness lives on its own RNG stream, so runs with the control
  /// plane disabled are bit-identical to a server without this call.
  void enable_control(const sim::ControlPlaneConfig& config);

  /// Turns the elastic-fleet autoscaler (sim/autoscaler.hpp) on
  /// (config.enabled) or off for subsequent runs. When on, fleet
  /// utilization is sampled every check_period and hosts move through the
  /// Off -> WarmingUp -> Up -> Draining -> Off power machine; dispatch only
  /// ever targets power-Up hosts, draining hosts finish their backlog, and
  /// ScalingStats land in RunResult::scaling. Scaler randomness lives on
  /// its own RNG stream, so runs with the autoscaler disabled are
  /// bit-identical to a server without this call.
  void enable_autoscaler(const sim::AutoscalerConfig& config);

  /// Turns the overload-resilience model (sim/overload.hpp) on
  /// (config.enabled) or off for subsequent runs. When on, per-host queues
  /// respect the configured caps (with the overflow action applied at
  /// delivery), fresh arrivals pass the admission controller, queued jobs
  /// renege past their patience deadline, and queued work migrates off
  /// draining/failing hosts when the migrate flags are set; OverloadStats
  /// land in RunResult::overload. Overload randomness lives on its own RNG
  /// stream, and a config with every feature at its default is a no-op:
  /// bit-identical to a server without this call (the golden-fixture
  /// contract).
  void enable_overload(const sim::OverloadConfig& config);

  /// Sets per-host speed factors (service time = size / speed) for
  /// subsequent runs. `speeds` must be empty (reset to a homogeneous
  /// fleet) or hold one positive finite factor per host. Capacity classes
  /// are derived by grouping equal speeds in order of first appearance.
  /// All speeds 1.0 is bit-identical to never calling this (x / 1.0 == x).
  void set_host_speeds(std::vector<double> speeds);

  /// Dispatcher `k`'s probe-refreshed kObserved snapshot table, as left by
  /// the last run (control runs only). Test hook: the probe-batching
  /// equivalence wall compares these tables bit-for-bit across probe-path
  /// variants.
  [[nodiscard]] const HostStateTable& snapshot_table(
      std::uint32_t dispatcher = 0) const;

  // ServerView interface (used by policies during run()): the live host
  // table, maintained in lockstep with every host mutation.
  [[nodiscard]] const HostStateTable& hosts() const override {
    return live_table_;
  }
  [[nodiscard]] double now() const override;

 private:
  struct Host {
    std::deque<workload::Job> queue;  ///< waiting jobs (running job excluded)
    bool busy = false;
    double current_completion = 0.0;  ///< absolute end of running job
    double queued_work = 0.0;         ///< sum of sizes in `queue`
    HostStats stats;
    // Failure-model state (inert when faults are disabled).
    bool up = true;
    std::size_t down_depth = 0;   ///< covering outages; up iff 0
    double down_since = 0.0;      ///< when the current down period began
    /// Incremented at every service start and interruption; a pending
    /// completion event is valid only if its captured epoch still matches
    /// (the kernel has no event cancellation).
    std::uint64_t service_epoch = 0;
    workload::Job running_job{};  ///< job in service (valid while busy)
    double service_start = 0.0;   ///< when the current service began
    // Autoscaler state (inert — always kUp — when scaling is disabled).
    sim::PowerState power = sim::PowerState::kUp;
    /// Incremented when a warm-up is started or cancelled; a pending
    /// warm-up event is valid only if its captured epoch still matches.
    std::uint64_t power_epoch = 0;
  };

  /// ServerView over the dispatcher's probe-refreshed snapshot table:
  /// per-host observations are frozen probe results (possibly stale), the
  /// clock stays live. Installed as the policy's view when snapshots are
  /// enabled.
  class SnapshotView final : public ServerView {
   public:
    explicit SnapshotView(const DistributedServer* server) : server_(server) {}
    [[nodiscard]] const HostStateTable& hosts() const override;
    [[nodiscard]] double now() const override;

   private:
    const DistributedServer* server_;
  };

  /// One in-flight dispatch RPC chain (rpc_timeout > 0 only). The job id
  /// doubles as the idempotency key: `enqueued` records whether any send
  /// of this chain was actually delivered to a host.
  struct PendingDispatch {
    workload::Job job;
    HostId target = 0;
    std::uint32_t attempt = 0;  ///< 0 = initial send of this level
    std::uint32_t level = 0;    ///< 0 = the policy proper, >0 = fallbacks
    bool enqueued = false;
    /// Chain identity; a timeout event whose captured epoch no longer
    /// matches belongs to a cancelled chain (interrupt resubmission) and
    /// is ignored (the kernel has no event cancellation).
    std::uint64_t epoch = 0;
  };

  /// One dispatcher front-end: its own control-plane RNG streams, its own
  /// probe-refreshed kObserved table (independently stale from every
  /// sibling's), and its own batched probe wheel. Single-dispatcher runs
  /// hold exactly one of these, seeded so every draw matches the
  /// pre-multi-dispatcher plane bit for bit.
  struct DispatcherState {
    sim::ControlPlane plane;
    HostStateTable snapshot;
    /// Batched-probe wheel: each host's next probe due-time, advanced by
    /// `+= probe_period` on fire — the identical floating-point recurrence
    /// the per-host event path produces, so observation times match bit
    /// for bit. All hosts advance by the same period, so the (due, host)
    /// order fixed at t=0 is invariant: `order` is sorted once and
    /// `cursor` walks it cyclically; one timer event per distinct due time
    /// sweeps every host sharing it (with probe_jitter = 0 that is the
    /// whole fleet in one tight loop).
    std::vector<double> probe_due;
    std::vector<HostId> probe_order;
    std::size_t probe_cursor = 0;
  };

  /// Typed event dispatch (the simulation's inner loop).
  void on_event(const sim::Event& event) override;

  /// The shared engine behind run/run_stream: record mode when `stream` is
  /// null (per-job records materialised), streaming mode otherwise.
  [[nodiscard]] RunResult run_source(workload::JobSource& source,
                                     std::uint64_t seed,
                                     const StreamOptions* stream);
  /// Pulls the next job from the source (eagerly, so exhaustion is known
  /// the moment the last job arrives) and schedules its arrival event.
  void schedule_next_arrival();
  void on_arrival(const workload::Job& job);
  /// Policy routing shared by fresh arrivals and resubmitted jobs.
  void route(const workload::Job& job);
  /// Routing at one escalation level: 0 = the policy proper, level k > 0 =
  /// the k-th fallback. `hint` is the failed target (for range fallbacks).
  void route_at_level(const workload::Job& job, std::uint32_t level,
                      std::optional<HostId> hint);
  /// The view assign() reads: the snapshot when snapshots are on, else live.
  [[nodiscard]] const ServerView& policy_view() const;
  /// The fallback rule for escalation level `level` >= 1 under the
  /// configured FallbackMode, or nullopt when the chain is exhausted.
  [[nodiscard]] std::optional<FallbackKind> fallback_for_level(
      std::uint32_t level) const;
  /// Executes one fallback rule on live liveness (and live work for
  /// Power-of-2), drawing from the control stream. nullopt = no up host.
  [[nodiscard]] std::optional<HostId> assign_fallback(
      FallbackKind kind, std::optional<HostId> hint);
  /// Hands a routed job to `target`: directly when RPCs are reliable, else
  /// opens an RPC chain at `level`.
  void commit_route(const workload::Job& job, HostId target,
                    std::uint32_t level);
  /// Sends (or resends) the pending dispatch of `id` over the lossy path.
  void send_dispatch(workload::JobId id);
  void schedule_rpc_timeout(workload::JobId id);
  void rpc_timeout_fired(workload::JobId id, std::uint64_t epoch);
  /// Chain exhausted: place reliably on a random live up host (or hold).
  void force_place(const workload::Job& job);
  /// The single reliable-delivery choke point: bounces a job aimed at a
  /// non-serving (Warming/Draining/Off) host back to the dispatcher —
  /// before the audit sees a dispatch — instead of enqueueing behind a
  /// host that will not serve it. Returns false on a bounce.
  bool deliver_or_bounce(const workload::Job& job, HostId target);
  /// The policy declined (or no fallback host exists): start on an idle up
  /// host now, else wait in the dispatcher's central queue.
  void hold_centrally(const workload::Job& job);
  // Control-plane event handlers.
  void begin_control(std::uint64_t seed);
  /// Owner dispatcher of `id`: a pure function of the job id (so
  /// resubmitted and migrated jobs recompute the same owner), per the
  /// configured ShardMode. Always 0 with one dispatcher.
  [[nodiscard]] std::uint32_t dispatcher_of(workload::JobId id) const noexcept;
  /// One probe of `host` by dispatcher `dispatcher`: the shared draw/
  /// observe/audit sequence of both probe paths.
  void probe_host(std::uint32_t dispatcher, HostId host);
  /// Legacy per-host probe event (batch_probes == false): probe + reschedule.
  void probe_fired(std::uint32_t dispatcher, HostId host);
  /// Batched probe wheel event: sweeps every host of `dispatcher` whose
  /// due-time equals now, then schedules one event at the next due-time.
  void wheel_fired(std::uint32_t dispatcher);
  void dispatch_to_host(HostId host, const workload::Job& job);
  void start_service(HostId host, const workload::Job& job,
                     sim::QueueingAuditor::StartSource source);
  void on_completion(HostId host, workload::JobId id, std::uint64_t epoch);
  void feed_idle_host(HostId host);
  // Fault-model event handlers.
  void begin_faults(std::uint64_t seed);
  void schedule_failure(HostId host, double delay);
  void fault_down(HostId host, double duration, bool renewal);
  void fault_up(HostId host, bool renewal);
  void interrupt_running(HostId host);
  // Overload-model handlers (bounded queues, admission, reneging,
  // migration).
  void begin_overload(std::uint64_t seed);
  /// Admission decision for a fresh arrival; counts and resolves a shed.
  [[nodiscard]] bool admit_arrival(const workload::Job& job);
  /// True when delivering `job` to `target` would queue it past a cap.
  [[nodiscard]] bool host_full_for(HostId target) const;
  /// Applies the kReject / kShed* overflow action at a full host (kBounce
  /// is handled by the delivery paths themselves). The dispatch hook has
  /// already fired; either the arriving job or a queued victim is shed.
  void overflow_at_host(const workload::Job& job, HostId target);
  /// kRenege event: cancels the job if it is still waiting in some queue.
  void renege_fired(workload::JobId id);
  /// Re-dispatches every queued (not in-service) job of `host` through the
  /// active policy. `drain` tells the stats which cause to charge.
  void migrate_queue(HostId host, bool drain);
  /// Emits the terminal record of a job that leaves without service
  /// (outcome kShed or kReneged) and counts it done.
  void resolve_loss(const workload::Job& job, HostId host, JobOutcome outcome);
  [[nodiscard]] bool reneging_enabled() const noexcept {
    return overload_enabled_ && overload_config_.patience_mean > 0.0;
  }
  // Autoscaler event handlers and the power state machine.
  void begin_scaling(std::uint64_t seed);
  void scale_eval_fired();
  void warmup_fired(HostId host, std::uint64_t epoch);
  void apply_scale_up(std::size_t step);
  void apply_scale_down(std::size_t step);
  /// The one power-transition site: updates counts/integrals, re-derives
  /// the table's accepting bit, and notifies the auditor.
  void set_power(HostId host, sim::PowerState next);
  /// A drained host (Draining, idle, empty queue) powers off.
  void complete_drain(HostId host);
  /// Re-derives the live table's up bit: accepting = fault-up AND power-Up.
  void refresh_accepting(HostId host);
  /// Advances the busy/serviceable/powered time integrals to `t`. Called
  /// before every count change and at each utilization sample.
  void accrue_integrals(double t);
  /// Busy-host count bookkeeping for the utilization integral (scaling
  /// runs only; plain runs skip all integral work).
  void note_busy_change(int delta);
  [[nodiscard]] double service_time_of(const workload::Job& job,
                                       HostId host) const {
    return job.size / speeds_[host];
  }
  /// Re-publishes hosts_[host]'s scheduling state into the live table
  /// (O(log h) index repair). Must run after every queue/busy mutation and
  /// before the next policy or auditor read.
  void publish_host(HostId host);
  /// Counts a job outcome (completion or abandonment); under faults the
  /// run stops here once every job is accounted for, leaving any pending
  /// failure/repair events unexecuted.
  void note_job_done();
  [[nodiscard]] bool all_jobs_done() const noexcept {
    // The pending arrival is pulled eagerly, so no pending arrival means
    // the source is exhausted: every job that will ever exist has arrived.
    return !have_pending_arrival_ && jobs_done_ == jobs_arrived_;
  }

  std::size_t hosts_count_;
  Policy* policy_;
  /// Per-host speed factors (all 1.0 unless set_host_speeds was called).
  std::vector<double> speeds_;
  /// Capacity class per host (equal speeds share a class).
  std::vector<std::uint32_t> class_ids_;
  /// Distinct speeds ascending (class-aware drain order: slowest first).
  std::vector<double> drain_speed_menu_;
  bool heterogeneous_ = false;
  sim::Simulator sim_;
  std::unique_ptr<sim::QueueingAuditor> auditor_;
  std::vector<Host> hosts_;
  /// SoA mirror of hosts_ with the argmin indices — what policies read.
  HostStateTable live_table_;
  std::deque<workload::Job> central_queue_;
  /// Per-job records, filled in record mode only (empty while streaming).
  std::vector<JobRecord> records_;
  workload::JobSource* source_ = nullptr;  ///< valid during run_source only
  workload::Job pending_arrival_{};  ///< pulled but not yet arrived
  bool have_pending_arrival_ = false;
  std::uint64_t jobs_arrived_ = 0;
  bool record_mode_ = true;
  const StreamOptions* stream_options_ = nullptr;  ///< streaming mode only
  StreamSummary stream_summary_;
  /// Online result counters (both modes), replacing post-run record scans.
  double max_completion_ = 0.0;
  std::uint64_t jobs_failed_ = 0;
  /// Streaming-mode restart counts for jobs interrupted at least once —
  /// O(currently interrupted jobs), erased when the job resolves (record
  /// mode keeps restarts on the records instead).
  std::unordered_map<workload::JobId, std::uint32_t> restarts_;
  // Fault model (inert unless enable_faults turned it on).
  bool faults_enabled_ = false;
  sim::FaultConfig fault_config_;
  RecoveryMode recovery_ = RecoveryMode::kResubmit;
  sim::FaultProcess fault_process_;
  std::uint64_t jobs_done_ = 0;
  std::uint64_t interruptions_ = 0;
  // Control plane (inert unless enable_control turned it on).
  bool control_enabled_ = false;
  sim::ControlPlaneConfig control_config_;
  /// The dispatcher front-ends (one per ControlPlaneConfig::dispatchers);
  /// each owns its plane, snapshot table, and probe wheel. Every probe is
  /// an incremental patch of one row of the owner's kObserved table — the
  /// argmin trees go dirty per-row and flush lazily (PR-6 machinery), no
  /// view is ever rebuilt.
  std::vector<DispatcherState> dispatchers_;
  /// The dispatcher whose state the current control-path code runs under;
  /// set at the route()/rpc_timeout_fired()/probe entry points.
  std::uint32_t active_dispatcher_ = 0;
  [[nodiscard]] sim::ControlPlane& active_plane() noexcept {
    return dispatchers_[active_dispatcher_].plane;
  }
  [[nodiscard]] HostStateTable& active_snapshot() noexcept {
    return dispatchers_[active_dispatcher_].snapshot;
  }
  [[nodiscard]] const HostStateTable& active_snapshot() const noexcept {
    return dispatchers_[active_dispatcher_].snapshot;
  }
  sim::ControlStats control_stats_;
  SnapshotView snapshot_view_{this};
  DegradedInfo degraded_;
  /// In-flight RPC chains keyed by job id. A slot-pooled map (not an
  /// unordered_map): the steady state inserts and erases one chain per
  /// routed job, and the pool recycles slots without touching the
  /// allocator — the dominant per-dispatch cost before this existed.
  util::SlotMap<workload::JobId, PendingDispatch> pending_;
  std::uint64_t rpc_epoch_ = 0;
  // Overload model (inert unless enable_overload turned it on).
  bool overload_enabled_ = false;
  sim::OverloadConfig overload_config_;
  sim::AdmissionController admission_;
  sim::OverloadStats overload_stats_;
  /// Where each waiting job currently queues: host id, or -1 for the
  /// central queue. Maintained only while reneging is enabled — the renege
  /// event looks its job up here (absence means the job started or already
  /// resolved, and the event no-ops).
  std::unordered_map<workload::JobId, std::int64_t> waiting_at_;
  /// Reusable detach buffer for migrate_queue (no per-migration alloc).
  std::vector<workload::Job> migrate_buffer_;
  // Autoscaler (inert unless enable_autoscaler turned it on).
  bool scaling_enabled_ = false;
  sim::AutoscalerConfig scaler_config_;
  sim::Autoscaler scaler_;
  sim::ScalingStats scaling_stats_;
  /// Piecewise-constant time integrals behind the utilization samples and
  /// the host-hours accounting: advanced by accrue_integrals() before any
  /// of the three counts changes.
  double integral_mark_ = 0.0;       ///< time the integrals are valid up to
  double busy_integral_ = 0.0;       ///< sum over time of busy hosts
  double serviceable_integral_ = 0.0;  ///< ... of accepting (Up, fault-up)
  double powered_integral_ = 0.0;    ///< ... of non-Off hosts
  std::size_t busy_count_ = 0;
  std::size_t serviceable_count_ = 0;
  std::size_t powered_count_ = 0;
  /// Integral values at the previous utilization sample.
  double eval_busy_mark_ = 0.0;
  double eval_serviceable_mark_ = 0.0;
};

/// Convenience: run `trace` on `hosts` hosts under `policy`.
[[nodiscard]] RunResult simulate(Policy& policy, const workload::Trace& trace,
                                 std::size_t hosts, std::uint64_t seed = 1);

/// Audited convenience run: like simulate, but with the audit layer
/// configured by `audit`; the report lands in RunResult::audit.
[[nodiscard]] RunResult simulate_audited(Policy& policy,
                                         const workload::Trace& trace,
                                         std::size_t hosts,
                                         const sim::AuditConfig& audit,
                                         std::uint64_t seed = 1);

/// Fault-injected convenience run: like simulate, but with the host
/// failure model `faults` and recovery semantics `recovery`.
[[nodiscard]] RunResult simulate_with_faults(Policy& policy,
                                             const workload::Trace& trace,
                                             std::size_t hosts,
                                             const sim::FaultConfig& faults,
                                             RecoveryMode recovery,
                                             std::uint64_t seed = 1);

/// Degraded-information convenience run: like simulate, but with the
/// control plane `control`; ControlStats land in RunResult::control.
[[nodiscard]] RunResult simulate_with_control(
    Policy& policy, const workload::Trace& trace, std::size_t hosts,
    const sim::ControlPlaneConfig& control, std::uint64_t seed = 1);

/// Elastic convenience run: like simulate, but with the autoscaler
/// `scaler`; ScalingStats land in RunResult::scaling.
[[nodiscard]] RunResult simulate_with_autoscaler(
    Policy& policy, const workload::Trace& trace, std::size_t hosts,
    const sim::AutoscalerConfig& scaler, std::uint64_t seed = 1);

/// Overload convenience run: like simulate, but with the overload model
/// `overload`; OverloadStats land in RunResult::overload.
[[nodiscard]] RunResult simulate_with_overload(
    Policy& policy, const workload::Trace& trace, std::size_t hosts,
    const sim::OverloadConfig& overload, std::uint64_t seed = 1);

}  // namespace distserv::core
