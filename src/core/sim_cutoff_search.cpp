#include "core/sim_cutoff_search.hpp"

#include <cmath>
#include <limits>

#include "core/metrics.hpp"
#include "core/policies/sita.hpp"
#include "core/server.hpp"
#include "queueing/size_model.hpp"
#include "util/contracts.hpp"

namespace distserv::core {

SimCutoffResult find_cutoff_by_simulation(
    std::span<const double> training_sizes, double rho,
    SimCutoffObjective objective, std::size_t grid, std::uint64_t seed) {
  DS_EXPECTS(!training_sizes.empty());
  DS_EXPECTS(rho > 0.0 && rho < 1.0);
  DS_EXPECTS(grid >= 4);

  // One shared arrival stream: every candidate sees the identical trace, so
  // the comparison between cutoffs is paired and low-variance.
  dist::Rng rng = dist::Rng(seed).split(0x51713u);
  const workload::Trace trace =
      workload::Trace::with_poisson_load(training_sizes, rho, 2, rng);

  // Candidate cutoffs at evenly spaced *load* fractions — the axis on which
  // feasibility and the optimum live.
  const queueing::EmpiricalSizeModel model(training_sizes);
  std::vector<double> candidates;
  for (std::size_t i = 1; i < grid; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(grid);
    // Both hosts must stay stable: 2*rho*f < 1 and 2*rho*(1-f) < 1.
    if (2.0 * rho * f >= 0.98 || 2.0 * rho * (1.0 - f) >= 0.98) continue;
    candidates.push_back(model.load_quantile(f));
  }

  SimCutoffResult best;
  double best_score = std::numeric_limits<double>::infinity();
  for (double cutoff : candidates) {
    SitaPolicy policy({cutoff}, "SITA-sim-search");
    const RunResult run = simulate(policy, trace, 2);
    const MetricsSummary m = summarize(run);
    const FairnessReport fr = fairness_at_cutoff(run, cutoff);
    const double score = objective == SimCutoffObjective::kMinMeanSlowdown
                             ? m.mean_slowdown
                             : std::abs(fr.mean_slowdown_short -
                                        fr.mean_slowdown_long);
    if (score < best_score) {
      best_score = score;
      best.cutoff = cutoff;
      best.mean_slowdown = m.mean_slowdown;
      best.fairness_gap =
          std::abs(fr.mean_slowdown_short - fr.mean_slowdown_long);
      best.host1_load_fraction = model.load_fraction_below(cutoff);
      best.feasible = true;
    }
  }
  best.candidates = candidates.size();
  return best;
}

}  // namespace distserv::core
