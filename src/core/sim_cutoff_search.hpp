// Simulation-scored cutoff search (the paper's "experimental" derivation).
//
// The paper derives SITA-U cutoffs two ways: analytically (per-host M/G/1
// scoring, implemented in queueing/cutoff_search.hpp) and experimentally —
// scoring each candidate cutoff by simulating the training half of the
// trace — and reports that "both methods yielded about the same result".
// This file implements the experimental method so that claim is checkable
// (tests/core/test_sim_cutoff_search.cpp does exactly that).
#pragma once

#include <span>
#include <vector>

#include "workload/trace.hpp"

namespace distserv::core {

/// Result of a simulation-scored 2-host cutoff search.
struct SimCutoffResult {
  double cutoff = 0.0;
  double mean_slowdown = 0.0;     ///< simulated, at the chosen cutoff
  double fairness_gap = 0.0;      ///< |E[S_short]-E[S_long]| at the cutoff
  double host1_load_fraction = 0.0;
  bool feasible = false;
  std::size_t candidates = 0;
};

/// Search objectives.
enum class SimCutoffObjective {
  kMinMeanSlowdown,  ///< SITA-U-opt, experimentally
  kFairness,         ///< SITA-U-fair: equalize short/long mean slowdown
};

/// Scores candidate cutoffs by simulating SITA on a Poisson-arrival trace
/// built from `training_sizes` at system load `rho` on 2 hosts.
/// `grid` bounds the number of candidates (quantiles of the load curve);
/// `seed` controls the arrival stream (one common stream for all
/// candidates, so comparisons are paired).
[[nodiscard]] SimCutoffResult find_cutoff_by_simulation(
    std::span<const double> training_sizes, double rho,
    SimCutoffObjective objective, std::size_t grid = 24,
    std::uint64_t seed = 1);

}  // namespace distserv::core
