#include "core/stream_metrics.hpp"

namespace distserv::core {

void StreamSummary::add(const JobRecord& rec) {
  if (rec.failed) {
    ++failed_;  // lossy outcome: no completion, so no statistics
    if (rec.outcome == JobOutcome::kShed) {
      ++shed_;
    } else if (rec.outcome == JobOutcome::kReneged) {
      ++reneged_;
    }
    return;
  }
  const double s = rec.slowdown();
  slowdown_.add(s);
  response_.add(rec.response());
  waiting_.add(rec.waiting());
  slowdown_sketch_.add(s);
}

}  // namespace distserv::core
