#include "core/stream_metrics.hpp"

namespace distserv::core {

void StreamSummary::add(const JobRecord& rec) {
  if (rec.failed) {
    ++failed_;  // abandoned: no completion, so no statistics
    return;
  }
  const double s = rec.slowdown();
  slowdown_.add(s);
  response_.add(rec.response());
  waiting_.add(rec.waiting());
  slowdown_sketch_.add(s);
}

}  // namespace distserv::core
