// Streaming per-job metric accumulation for bounded-memory runs.
//
// The materialised path stores one JobRecord per job and summarizes after
// the fact (core/metrics.hpp) — O(n) memory, exact quantiles. The streaming
// path folds each record into Welford accumulators plus an ε-approximate GK
// quantile sketch (stats/gk_quantile.hpp) the moment the job completes, so
// a 10^9-job run holds O(1/ε · log εn) metric state. summarize() consumes
// either representation through the same MetricsSummary surface; means and
// variances are identical to the exact path (same Welford fold in the same
// order), quantiles carry the sketch's ±εn rank guarantee.
#pragma once

#include <cstdint>
#include <functional>

#include "core/types.hpp"
#include "stats/gk_quantile.hpp"
#include "stats/welford.hpp"

namespace distserv::core {

/// Options for DistributedServer::run_stream.
struct StreamOptions {
  /// Rank-error bound for the slowdown quantile sketch.
  double sketch_eps = 1e-3;
  /// Optional per-job tap, invoked with each job's final record in
  /// completion order (failed jobs included). Tests use it to compare the
  /// streaming path against materialised records without storing anything
  /// in the server.
  std::function<void(const JobRecord&)> record_sink;
};

/// Running metric state for a streaming run; the bounded-memory stand-in
/// for RunResult::records. Abandoned jobs count in jobs_failed and touch no
/// statistic, exactly like summarize() over records.
class StreamSummary {
 public:
  StreamSummary() : StreamSummary(1e-3) {}
  explicit StreamSummary(double sketch_eps) : slowdown_sketch_(sketch_eps) {}

  /// Folds one finished job in. Call once per job, in completion order.
  void add(const JobRecord& rec);

  [[nodiscard]] std::uint64_t jobs() const noexcept {
    return slowdown_.count();
  }
  [[nodiscard]] std::uint64_t jobs_failed() const noexcept { return failed_; }
  /// Failed jobs dropped by admission control or bounded-queue overflow
  /// (subset of jobs_failed; zero when overload protection is off).
  [[nodiscard]] std::uint64_t jobs_shed() const noexcept { return shed_; }
  /// Failed jobs whose patience expired while waiting (subset of
  /// jobs_failed; zero when reneging is off).
  [[nodiscard]] std::uint64_t jobs_reneged() const noexcept {
    return reneged_;
  }
  [[nodiscard]] const stats::Welford& slowdown() const noexcept {
    return slowdown_;
  }
  [[nodiscard]] const stats::Welford& response() const noexcept {
    return response_;
  }
  [[nodiscard]] const stats::Welford& waiting() const noexcept {
    return waiting_;
  }
  /// ε-approximate slowdown quantile. Requires jobs() > 0.
  [[nodiscard]] double slowdown_quantile(double q) const {
    return slowdown_sketch_.quantile(q);
  }
  [[nodiscard]] double sketch_eps() const noexcept {
    return slowdown_sketch_.eps();
  }

 private:
  stats::Welford slowdown_;
  stats::Welford response_;
  stats::Welford waiting_;
  stats::GkQuantile slowdown_sketch_;
  std::uint64_t failed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t reneged_ = 0;
};

}  // namespace distserv::core
