#include "core/sweep_runner.hpp"

#include <mutex>
#include <utility>

#include "util/thread_pool.hpp"

namespace distserv::core {

namespace {

struct PointSpec {
  PolicyKind policy{};
  double rho = 0.0;
};

std::vector<PointSpec> cross_product(std::span<const PolicyKind> policies,
                                     std::span<const double> loads) {
  std::vector<PointSpec> specs;
  specs.reserve(policies.size() * loads.size());
  for (double rho : loads) {
    for (PolicyKind kind : policies) specs.push_back({kind, rho});
  }
  return specs;
}

}  // namespace

std::vector<ExperimentPoint> run_sweep(const Workbench& workbench,
                                       std::span<const PolicyKind> policies,
                                       std::span<const double> loads,
                                       const SweepOptions& options) {
  const std::vector<PointSpec> specs = cross_product(policies, loads);
  const std::size_t n_points = specs.size();
  const std::size_t reps = workbench.config().replications;
  const std::size_t total_tasks = n_points * reps;

  const std::size_t threads = options.threads == 0
                                  ? util::ThreadPool::hardware_threads()
                                  : options.threads;

  std::mutex progress_mutex;
  std::size_t completed = 0;
  auto report = [&](std::size_t done) {
    if (options.progress) options.progress(done, total_tasks);
  };

  // Pre-sized result slots: every task writes its own cell, so scheduling
  // order cannot affect the output.
  std::vector<Workbench::PointPlan> plans(n_points);
  std::vector<std::vector<MetricsSummary>> summaries(n_points);
  for (auto& s : summaries) s.resize(reps);

  if (threads <= 1 || total_tasks <= 1) {
    // Inline path: same task bodies, same order as Workbench::sweep.
    for (std::size_t i = 0; i < n_points; ++i) {
      plans[i] = workbench.plan_point(specs[i].policy, specs[i].rho);
      for (std::size_t r = 0; r < reps; ++r) {
        summaries[i][r] = workbench.run_replication(plans[i], r);
        report(++completed);
      }
    }
  } else {
    util::ThreadPool pool(threads);
    // Wave 1: cutoff derivation per point (the SITA-U searches are the
    // second-biggest cost after simulation and parallelize the same way).
    for (std::size_t i = 0; i < n_points; ++i) {
      pool.submit([&, i] {
        plans[i] = workbench.plan_point(specs[i].policy, specs[i].rho);
      });
    }
    pool.wait();
    // Wave 2: one simulation per (point, replication).
    for (std::size_t i = 0; i < n_points; ++i) {
      for (std::size_t r = 0; r < reps; ++r) {
        pool.submit([&, i, r] {
          summaries[i][r] = workbench.run_replication(plans[i], r);
          const std::lock_guard lock(progress_mutex);
          report(++completed);
        });
      }
    }
    pool.wait();
  }

  std::vector<ExperimentPoint> out;
  out.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    out.push_back(
        Workbench::finalize_point(plans[i], std::move(summaries[i])));
  }
  return out;
}

std::vector<ExperimentPoint> Workbench::sweep(
    std::span<const PolicyKind> policies, std::span<const double> loads,
    const SweepOptions& options) const {
  return run_sweep(*this, policies, loads, options);
}

}  // namespace distserv::core
