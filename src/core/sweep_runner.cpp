#include "core/sweep_runner.hpp"

#include <exception>
#include <mutex>
#include <optional>
#include <utility>

#include "util/thread_pool.hpp"

namespace distserv::core {

namespace {

struct PointSpec {
  PolicyKind policy{};
  double rho = 0.0;
};

std::vector<PointSpec> cross_product(std::span<const PolicyKind> policies,
                                     std::span<const double> loads) {
  std::vector<PointSpec> specs;
  specs.reserve(policies.size() * loads.size());
  for (double rho : loads) {
    for (PolicyKind kind : policies) specs.push_back({kind, rho});
  }
  return specs;
}

}  // namespace

std::vector<ExperimentPoint> run_sweep(const Workbench& workbench,
                                       std::span<const PolicyKind> policies,
                                       std::span<const double> loads,
                                       const SweepOptions& options) {
  const std::vector<PointSpec> specs = cross_product(policies, loads);
  const std::size_t n_points = specs.size();
  const std::size_t reps = workbench.config().replications;
  const std::size_t total_tasks = n_points * reps;

  const std::size_t threads = options.threads == 0
                                  ? util::ThreadPool::hardware_threads()
                                  : options.threads;

  std::mutex progress_mutex;
  std::size_t completed = 0;
  auto report = [&](std::size_t done) {
    if (options.progress) options.progress(done, total_tasks);
  };

  // Pre-sized result slots: every task writes its own cell, so scheduling
  // order cannot affect the output. In hardened mode (isolate_failures) a
  // slot may hold a failure record instead of (or, after a recovered
  // retry, alongside) a summary; `done` marks slots with a valid summary.
  std::vector<Workbench::PointPlan> plans(n_points);
  std::vector<std::optional<ReplicationFailure>> plan_failures(n_points);
  std::vector<std::vector<MetricsSummary>> summaries(n_points);
  std::vector<std::vector<char>> done(n_points);
  std::vector<std::vector<std::optional<ReplicationFailure>>> failures(
      n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    summaries[i].resize(reps);
    done[i].assign(reps, 0);
    failures[i].resize(reps);
  }

  // Plans one point. Without isolation the first exception propagates (and
  // kills the sweep) exactly as before; with it, a throwing plan step is
  // recorded as a point-level failure and the point's replications are
  // skipped.
  const auto plan_one = [&](std::size_t i) {
    if (!options.isolate_failures) {
      plans[i] = workbench.plan_point(specs[i].policy, specs[i].rho);
      return;
    }
    try {
      plans[i] = workbench.plan_point(specs[i].policy, specs[i].rho);
    } catch (const std::exception& e) {
      ReplicationFailure f;
      f.replication = ReplicationFailure::kPlanStep;
      f.seed = workbench.config().seed;
      f.error = e.what();
      plan_failures[i] = std::move(f);
      plans[i].point.policy = specs[i].policy;
      plans[i].point.rho = specs[i].rho;
      plans[i].point.feasible = false;
    }
  };

  // Runs one (point, replication). Hardened mode records the failure —
  // with the seed the replication ran under — and optionally retries once.
  // The workspace recycles trace storage across every task this thread
  // runs; reuse cannot change results (see ReplicationWorkspace).
  const auto run_one = [&](std::size_t i, std::size_t r) {
    thread_local Workbench::ReplicationWorkspace workspace;
    if (!options.isolate_failures) {
      summaries[i][r] = workbench.run_replication(plans[i], r, r, workspace);
      done[i][r] = 1;
      return;
    }
    try {
      summaries[i][r] = workbench.run_replication(plans[i], r, r, workspace);
      done[i][r] = 1;
      return;
    } catch (const std::exception& e) {
      ReplicationFailure f;
      f.replication = r;
      f.seed = workbench.replication_seed(r);
      f.error = e.what();
      if (options.retry_failed_once) {
        // Retry under an offset replication index: a fresh simulation seed
        // and a fresh arrival stream. Rerunning the identical seed would
        // reproduce any deterministic failure bit-for-bit and can only
        // "recover" from environmental flakes — offset 0 opts into that.
        const std::size_t retry_index = r + options.retry_seed_offset;
        f.retried = true;
        f.retry_seed = workbench.replication_seed(retry_index);
        try {
          summaries[i][r] =
              workbench.run_replication(plans[i], r, retry_index, workspace);
          done[i][r] = 1;
          f.recovered = true;
        } catch (const std::exception&) {
          // Keep the first error: the retry failed too.
        }
      }
      failures[i][r] = std::move(f);
    }
  };

  if (threads <= 1 || total_tasks <= 1) {
    // Inline path: same task bodies, same order as Workbench::sweep.
    for (std::size_t i = 0; i < n_points; ++i) {
      plan_one(i);
      for (std::size_t r = 0; r < reps; ++r) {
        if (!plan_failures[i]) run_one(i, r);
        report(++completed);
      }
    }
  } else {
    util::ThreadPool pool(threads);
    // Wave 1: cutoff derivation per point (the SITA-U searches are the
    // second-biggest cost after simulation and parallelize the same way).
    for (std::size_t i = 0; i < n_points; ++i) {
      pool.submit([&, i] { plan_one(i); });
    }
    pool.wait();
    // Wave 2: one simulation per (point, replication). Points whose plan
    // step failed skip straight to "completed" so the progress total holds.
    for (std::size_t i = 0; i < n_points; ++i) {
      for (std::size_t r = 0; r < reps; ++r) {
        pool.submit([&, i, r] {
          if (!plan_failures[i]) run_one(i, r);
          const std::lock_guard lock(progress_mutex);
          report(++completed);
        });
      }
    }
    pool.wait();
  }

  std::vector<ExperimentPoint> out;
  out.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    std::vector<MetricsSummary> point_summaries;
    std::vector<ReplicationFailure> point_failures;
    point_summaries.reserve(reps);
    if (plan_failures[i]) {
      point_failures.push_back(std::move(*plan_failures[i]));
    } else {
      for (std::size_t r = 0; r < reps; ++r) {
        if (done[i][r]) point_summaries.push_back(std::move(summaries[i][r]));
        if (failures[i][r]) {
          point_failures.push_back(std::move(*failures[i][r]));
        }
      }
    }
    out.push_back(Workbench::finalize_point(plans[i],
                                            std::move(point_summaries),
                                            std::move(point_failures)));
  }
  return out;
}

std::vector<ExperimentPoint> Workbench::sweep(
    std::span<const PolicyKind> policies, std::span<const double> loads,
    const SweepOptions& options) const {
  return run_sweep(*this, policies, loads, options);
}

}  // namespace distserv::core
