// The parallel sweep engine behind Workbench::sweep(policies, loads, opts).
//
// A sweep is a (policy, load) cross product, each point replicated R times
// with independent arrival seeds. Sequentially that is the dominant cost of
// every figure-reproduction bench, yet every task is independent: cutoffs
// depend only on the (immutable) training half, and each replication's
// randomness is derived from (seed, load, replication) via SplitMix64
// substream splitting — never from shared generator state. run_sweep
// exploits that by fanning two waves of tasks over a util::ThreadPool:
//
//   wave 1: one task per point      — cutoff derivation (plan_point)
//   wave 2: one task per (point, R) — simulate + summarize (run_replication)
//
// Workers write into pre-sized slots indexed by (point, replication), and
// per-point summaries are merged in replication order afterwards, so the
// output is bit-identical to the sequential sweep for every thread count.
// DESIGN.md §"Parallel sweep engine" documents the seed-spacing scheme and
// why splitting is preferred over xoshiro jump() chains here.
#pragma once

#include <span>
#include <vector>

#include "core/experiment.hpp"

namespace distserv::core {

/// Runs the (policies × loads) sweep on `workbench` across a worker pool.
/// Row-major by load then policy, like Workbench::sweep. If any task throws
/// (e.g. an infeasible cutoff contract), the first exception is rethrown
/// after in-flight tasks drain — unless options.isolate_failures is set, in
/// which case the failing (point, replication) is recorded in its point's
/// ExperimentPoint::failures (seed + error text, optionally retried once)
/// and every sibling task still completes.
[[nodiscard]] std::vector<ExperimentPoint> run_sweep(
    const Workbench& workbench, std::span<const PolicyKind> policies,
    std::span<const double> loads, const SweepOptions& options = {});

}  // namespace distserv::core
