#include "core/tags.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "sim/simulator.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"

namespace distserv::core {

TagsServer::TagsServer(std::vector<double> cutoffs)
    : cutoffs_(std::move(cutoffs)) {
  DS_EXPECTS(!cutoffs_.empty());
  DS_EXPECTS(cutoffs_.front() > 0.0);
  for (std::size_t i = 1; i < cutoffs_.size(); ++i) {
    DS_EXPECTS(cutoffs_[i - 1] < cutoffs_[i]);
  }
}

namespace {

/// The TAGS event model: typed arrivals plus per-host service-budget
/// expiries (a "departure" either completes the job or kills and restarts
/// it from scratch at the next host).
class TagsSim final : public sim::EventHandler {
 public:
  struct Host {
    std::deque<workload::Job> queue;
    bool busy = false;
    workload::Job running{};    ///< job in service (valid while busy)
    double budget = 0.0;        ///< service granted this visit
    bool completes = false;     ///< true when `running` finishes here
    HostStats stats;
  };

  TagsSim(const workload::Trace& trace, const std::vector<double>& cutoffs,
          std::size_t host_count)
      : trace_(trace),
        cutoffs_(cutoffs),
        host_count_(host_count),
        hosts_(host_count),
        records_(trace.size()) {}

  void run() {
    sim_.reserve(host_count_ + 8);
    schedule_next_arrival();
    sim_.run(*this);
  }

  void on_event(const sim::Event& event) override {
    switch (event.kind) {
      case sim::EventKind::kArrival: {
        const workload::Job job = trace_.jobs()[next_arrival_++];
        schedule_next_arrival();
        enqueue(0, job);
        return;
      }
      case sim::EventKind::kDeparture:
        on_budget_expired(event.host);
        return;
      default:
        DS_ASSERT(false && "unexpected event kind");
    }
  }

  sim::Simulator& sim() noexcept { return sim_; }
  std::vector<Host>& hosts() noexcept { return hosts_; }
  std::vector<JobRecord>& records() noexcept { return records_; }

 private:
  void schedule_next_arrival() {
    if (next_arrival_ >= trace_.size()) return;
    sim_.schedule_at(trace_.jobs()[next_arrival_].arrival,
                     sim::Event::arrival());
  }

  void start_service(HostId host, const workload::Job& job) {
    Host& hs = hosts_[host];
    DS_ASSERT(!hs.busy);
    hs.busy = true;
    const bool final_host = host + 1 == host_count_;
    hs.running = job;
    hs.budget = final_host ? job.size : std::min(job.size, cutoffs_[host]);
    hs.completes = final_host || job.size <= cutoffs_[host];
    JobRecord& rec = records_[job.id];
    if (rec.size == 0.0) {
      // First time this job receives service anywhere.
      rec.id = job.id;
      rec.arrival = job.arrival;
      rec.size = job.size;
      rec.start = sim_.now();
    }
    sim_.schedule_in(hs.budget, sim::Event::departure(host, job.id, 0));
  }

  void on_budget_expired(HostId host) {
    Host& me = hosts_[host];
    DS_ASSERT(me.busy);
    me.busy = false;
    me.stats.busy_time += me.budget;
    if (me.completes) {
      JobRecord& r = records_[me.running.id];
      r.host = host;
      r.completion = sim_.now();
      me.stats.jobs_completed += 1;
      me.stats.work_done += me.budget;
    } else {
      // Killed: restart from scratch at the next host.
      enqueue(host + 1, me.running);
    }
    feed(host);
  }

  void enqueue(HostId host, const workload::Job& job) {
    Host& hs = hosts_[host];
    if (!hs.busy && hs.queue.empty()) {
      start_service(host, job);
    } else {
      hs.queue.push_back(job);
    }
  }

  void feed(HostId host) {
    Host& hs = hosts_[host];
    if (hs.busy || hs.queue.empty()) return;
    const workload::Job job = hs.queue.front();
    hs.queue.pop_front();
    start_service(host, job);
  }

  const workload::Trace& trace_;
  const std::vector<double>& cutoffs_;
  std::size_t host_count_;
  sim::Simulator sim_;
  std::vector<Host> hosts_;
  std::vector<JobRecord> records_;
  std::size_t next_arrival_ = 0;
};

}  // namespace

RunResult TagsServer::run(const workload::Trace& trace) {
  DS_EXPECTS(!trace.empty());
  const std::size_t h = host_count();

  TagsSim model(trace, cutoffs_, h);
  model.run();
  sim::Simulator& sim = model.sim();
  std::vector<TagsSim::Host>& hosts = model.hosts();
  std::vector<JobRecord>& records = model.records();

  RunResult result;
  result.hosts = h;
  double makespan = 0.0;
  for (const JobRecord& r : records) {
    DS_ASSERT(r.completion > 0.0);
    makespan = std::max(makespan, r.completion);
  }
  result.makespan = makespan;
  result.host_stats.reserve(hosts.size());
  for (TagsSim::Host& hs : hosts) {
    DS_ASSERT(!hs.busy && hs.queue.empty());
    hs.stats.utilization = makespan > 0.0 ? hs.stats.busy_time / makespan : 0.0;
    result.host_stats.push_back(hs.stats);
  }
  result.records = std::move(records);
  result.events_executed = sim.executed();
  return result;
}

TagsMetrics analyze_tags(const queueing::SizeModel& model, double lambda,
                         const std::vector<double>& cutoffs) {
  DS_EXPECTS(lambda > 0.0);
  for (std::size_t i = 1; i < cutoffs.size(); ++i) {
    DS_EXPECTS(cutoffs[i - 1] < cutoffs[i]);
  }
  const std::size_t h = cutoffs.size() + 1;
  const double max_size = model.max_size();

  TagsMetrics out;
  out.host_rho.assign(h, 0.0);
  out.host_mean_wait.assign(h, 0.0);
  out.stable = true;

  // Per-host arrival rates and service moments of Y_i = min(X, s_i) given
  // X > s_{i-1}. Moments of the truncated part come from the size model;
  // the killed jobs contribute a point mass s_i^k * P(X > s_i).
  std::vector<double> mean_wait(h, 0.0);
  std::vector<double> survive(h + 1, 0.0);  // P(X > s_{i-1})
  survive[0] = 1.0;
  double useful_work = model.partial_moment(1.0, 0.0, max_size);
  double executed_work = 0.0;
  for (std::size_t i = 0; i < h; ++i) {
    const double lo = (i == 0) ? 0.0 : cutoffs[i - 1];
    const double hi = (i == h - 1) ? max_size : cutoffs[i];
    const double p_pass = 1.0 - model.probability(0.0, lo);  // X > lo
    survive[i] = p_pass;
    if (p_pass <= 0.0) {
      out.stable = false;
      break;
    }
    const double p_kill = 1.0 - model.probability(0.0, hi);  // X > hi
    const double lambda_i = lambda * p_pass;
    queueing::ServiceMoments y;
    const double body0 = model.probability(lo, hi);
    y.m1 = (model.partial_moment(1.0, lo, hi) + hi * p_kill) / p_pass;
    y.m2 = (model.partial_moment(2.0, lo, hi) + hi * hi * p_kill) / p_pass;
    y.m3 = (model.partial_moment(3.0, lo, hi) + hi * hi * hi * p_kill) /
           p_pass;
    // inv moments unused for waiting; fill harmlessly.
    y.inv1 = body0 > 0.0 ? 1.0 : 0.0;
    y.inv2 = y.inv1;
    const double rho_i = lambda_i * y.m1;
    out.host_rho[i] = rho_i;
    executed_work += lambda_i * y.m1;
    if (rho_i >= 1.0) {
      out.stable = false;
      continue;
    }
    // PK mean wait with the mixed (truncated + point-mass) service law.
    mean_wait[i] = lambda_i * y.m2 / (2.0 * (1.0 - rho_i));
    out.host_mean_wait[i] = mean_wait[i];
  }
  if (!out.stable) {
    out.mean_slowdown = std::numeric_limits<double>::infinity();
    out.mean_response = std::numeric_limits<double>::infinity();
    out.wasted_work_fraction = std::numeric_limits<double>::infinity();
    return out;
  }
  // executed_work = sum_i lambda_i E[Y_i] is the work rate actually served;
  // lambda * E[X] of it is useful, the rest was killed and redone.
  out.wasted_work_fraction =
      executed_work > 0.0 ? 1.0 - (lambda * useful_work) / executed_work
                          : 0.0;

  // Mean slowdown/response: class i jobs (lo < X <= hi) pass hosts 0..i.
  double mean_s = 0.0, mean_r = 0.0;
  double killed_budget_prefix = 0.0;  // sum of s_0..s_{i-1}
  double wait_prefix = 0.0;           // sum of W_0..W_{i-1}
  for (std::size_t i = 0; i < h; ++i) {
    const double lo = (i == 0) ? 0.0 : cutoffs[i - 1];
    const double hi = (i == h - 1) ? max_size : cutoffs[i];
    const double p_class = model.probability(lo, hi);
    if (p_class > 0.0) {
      const double inv1 = model.partial_moment(-1.0, lo, hi) / p_class;
      const double m1 = model.partial_moment(1.0, lo, hi) / p_class;
      const double delay = wait_prefix + mean_wait[i] + killed_budget_prefix;
      mean_s += p_class * (delay * inv1 + 1.0);
      mean_r += p_class * (delay + m1);
    }
    wait_prefix += mean_wait[i];
    if (i < cutoffs.size()) killed_budget_prefix += cutoffs[i];
  }
  out.mean_slowdown = mean_s;
  out.mean_response = mean_r;
  return out;
}

TagsCutoffResult find_tags_opt(const queueing::SizeModel& model,
                               double lambda, std::size_t grid_n) {
  DS_EXPECTS(lambda > 0.0);
  DS_EXPECTS(grid_n >= 8);
  std::vector<double> grid = model.cutoff_grid(grid_n);
  std::erase_if(grid, [&](double c) {
    return c >= model.max_size() || c < model.min_size();
  });
  TagsCutoffResult best;
  best.metrics.mean_slowdown = std::numeric_limits<double>::infinity();
  for (double c : grid) {
    const TagsMetrics m = analyze_tags(model, lambda, {c});
    if (!m.stable) continue;
    if (m.mean_slowdown < best.metrics.mean_slowdown) {
      best.cutoff = c;
      best.metrics = m;
      best.feasible = true;
    }
  }
  if (!best.feasible) return best;
  // Local golden-section refinement around the best grid candidate.
  const auto it = std::lower_bound(grid.begin(), grid.end(), best.cutoff);
  const std::size_t idx = static_cast<std::size_t>(it - grid.begin());
  const double lo = grid[idx > 0 ? idx - 1 : idx];
  const double hi = grid[std::min(idx + 1, grid.size() - 1)];
  if (hi > lo) {
    const auto refined = util::golden_section_minimize(
        [&](double c) {
          const TagsMetrics m = analyze_tags(model, lambda, {c});
          return m.stable ? m.mean_slowdown
                          : std::numeric_limits<double>::infinity();
        },
        lo, hi, (hi - lo) * 1e-6);
    if (refined.fx < best.metrics.mean_slowdown) {
      best.cutoff = refined.x;
      best.metrics = analyze_tags(model, lambda, {refined.x});
    }
  }
  return best;
}

}  // namespace distserv::core
