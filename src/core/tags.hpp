// TAGS — Task Assignment by Guessing Size (Harchol-Balter, ICDCS 2000,
// the paper's reference [10]).
//
// The load-unbalancing idea *without* runtime estimates: every job starts
// on Host 1, which runs jobs FCFS but kills any job that exceeds cutoff
// s_1; killed jobs restart **from scratch** at the back of Host 2's queue
// (cutoff s_2), and so on. Host h never kills. Size information is thus
// "guessed" by observation, at the price of wasted restart work.
//
// This is a different service discipline from the dispatch-on-arrival
// policies (a job can visit several hosts), so it gets its own simulator
// and its own Poisson-approximation analysis rather than a Policy subclass.
#pragma once

#include <vector>

#include "core/server.hpp"
#include "core/types.hpp"
#include "queueing/mg1.hpp"
#include "queueing/size_model.hpp"
#include "workload/trace.hpp"

namespace distserv::core {

/// Event-driven simulator of a TAGS system.
class TagsServer {
 public:
  /// `cutoffs` are the kill thresholds of hosts 0..h-2 (host h-1 runs to
  /// completion); strictly increasing, all > 0. Host count = cutoffs+1.
  explicit TagsServer(std::vector<double> cutoffs);

  /// Simulates the trace to completion. JobRecord::host is the host where
  /// the job finally completed; start is its *first* service start (on
  /// Host 0); completion is its final completion, so response time includes
  /// every queueing delay and restarted execution.
  [[nodiscard]] RunResult run(const workload::Trace& trace);

  [[nodiscard]] std::size_t host_count() const noexcept {
    return cutoffs_.size() + 1;
  }
  [[nodiscard]] const std::vector<double>& cutoffs() const noexcept {
    return cutoffs_;
  }

 private:
  std::vector<double> cutoffs_;
};

/// Poisson-approximation analysis of TAGS (mean metrics only).
///
/// Host i sees the jobs with size > s_{i-1} (s_{-1} = 0) at rate
/// lambda * P(X > s_{i-1}); its service time is min(X, s_i) conditioned on
/// X > s_{i-1}. Treating each host as an independent M/G/1 (exact for Host
/// 0, an approximation for the restart streams, as in [10]), a job of class
/// i waits W_0..W_i and burns s_0..s_{i-1} in killed work before its final
/// run.
struct TagsMetrics {
  std::vector<double> host_rho;        ///< per-host utilization
  std::vector<double> host_mean_wait;  ///< per-host E[W]
  double mean_slowdown = 0.0;
  double mean_response = 0.0;
  /// Fraction of total executed work thrown away by kills.
  double wasted_work_fraction = 0.0;
  bool stable = false;
};

[[nodiscard]] TagsMetrics analyze_tags(const queueing::SizeModel& model,
                                       double lambda,
                                       const std::vector<double>& cutoffs);

/// 2-host TAGS cutoff minimizing analytic mean slowdown (grid + golden
/// refinement, mirroring the SITA-U-opt search).
struct TagsCutoffResult {
  double cutoff = 0.0;
  TagsMetrics metrics;
  bool feasible = false;
};
[[nodiscard]] TagsCutoffResult find_tags_opt(const queueing::SizeModel& model,
                                             double lambda,
                                             std::size_t grid = 200);

}  // namespace distserv::core
