// Shared vocabulary types for the distributed-server model.
#pragma once

#include <cstdint>

#include "workload/job.hpp"

namespace distserv::core {

/// Index of a host machine within the distributed server, 0-based.
using HostId = std::uint32_t;

/// How a job left the system. Everything except kCompleted also sets
/// JobRecord::failed, so statistics code that filters on `failed` keeps
/// excluding every lossy outcome without knowing the overload model.
enum class JobOutcome : std::uint8_t {
  kCompleted,  ///< finished service
  kAbandoned,  ///< interrupted by a host failure under RecoveryMode::kAbandon
  kShed,       ///< dropped by admission control or a bounded-queue overflow
  kReneged,    ///< patience deadline expired while waiting in a queue
};

/// The fate of one job after a simulation run.
struct JobRecord {
  workload::JobId id = 0;
  double arrival = 0.0;
  double size = 0.0;
  HostId host = 0;
  double start = 0.0;       ///< when service (last) began
  double completion = 0.0;  ///< when service finished (or was abandoned)
  /// True when the job did not complete (abandoned, shed, or reneged);
  /// `completion` is then the time it left the system, not a finish. Shed
  /// and reneged jobs never received service: start == completion.
  bool failed = false;
  JobOutcome outcome = JobOutcome::kCompleted;
  /// Service restarts caused by host failures (fail-stop loses all
  /// completed work, so each interruption restarts the job from zero).
  std::uint32_t restarts = 0;

  /// Time from arrival to completion.
  [[nodiscard]] double response() const noexcept { return completion - arrival; }
  /// Time spent queued (response minus service).
  [[nodiscard]] double waiting() const noexcept { return start - arrival; }
  /// Response time divided by service requirement; >= 1 by construction.
  [[nodiscard]] double slowdown() const noexcept { return response() / size; }
};

/// Per-host accounting over a run.
struct HostStats {
  std::uint64_t jobs_completed = 0;
  double busy_time = 0.0;  ///< total time the host was serving (incl. lost)
  double work_done = 0.0;  ///< sum of sizes of completed jobs
  /// Fraction of the run's makespan the host was busy.
  double utilization = 0.0;
  // Failure accounting (all zero when the fault model is disabled).
  std::uint64_t failures = 0;          ///< up -> down transitions
  double down_time = 0.0;              ///< total time spent down
  std::uint64_t jobs_interrupted = 0;  ///< in-service jobs cut by a failure
  /// Partial service discarded at interruptions (fail-stop loses completed
  /// work); busy_time == work_done + wasted_work always holds.
  double wasted_work = 0.0;
};

}  // namespace distserv::core
