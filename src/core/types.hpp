// Shared vocabulary types for the distributed-server model.
#pragma once

#include <cstdint>

#include "workload/job.hpp"

namespace distserv::core {

/// Index of a host machine within the distributed server, 0-based.
using HostId = std::uint32_t;

/// The fate of one job after a simulation run.
struct JobRecord {
  workload::JobId id = 0;
  double arrival = 0.0;
  double size = 0.0;
  HostId host = 0;
  double start = 0.0;       ///< when service began
  double completion = 0.0;  ///< when service finished

  /// Time from arrival to completion.
  [[nodiscard]] double response() const noexcept { return completion - arrival; }
  /// Time spent queued (response minus service).
  [[nodiscard]] double waiting() const noexcept { return start - arrival; }
  /// Response time divided by service requirement; >= 1 by construction.
  [[nodiscard]] double slowdown() const noexcept { return response() / size; }
};

/// Per-host accounting over a run.
struct HostStats {
  std::uint64_t jobs_completed = 0;
  double busy_time = 0.0;  ///< total time the host was serving
  double work_done = 0.0;  ///< sum of sizes of completed jobs
  /// Fraction of the run's makespan the host was busy.
  double utilization = 0.0;
};

}  // namespace distserv::core
