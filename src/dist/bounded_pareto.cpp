#include "dist/bounded_pareto.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

BoundedPareto::BoundedPareto(double alpha, double k, double p)
    : alpha_(alpha), k_(k), p_(p) {
  DS_EXPECTS(alpha > 0.0);
  DS_EXPECTS(k > 0.0 && k < p);
  norm_ = 1.0 - std::pow(k_ / p_, alpha_);
}

double BoundedPareto::sample(Rng& rng) const {
  const double u = rng.uniform01();
  // Inverse CDF: x = k * (1 - u*norm)^{-1/alpha}.
  return k_ * std::pow(1.0 - u * norm_, -1.0 / alpha_);
}

double BoundedPareto::partial_moment(double j, double a, double b) const {
  DS_EXPECTS(a >= k_ && b <= p_ && a <= b);
  const double coeff = alpha_ * std::pow(k_, alpha_) / norm_;
  const double e = j - alpha_;
  if (std::abs(e) < 1e-12) {
    // integral x^{-1} dx over the transformed variable -> log form.
    return coeff * std::log(b / a);
  }
  return coeff * (std::pow(b, e) - std::pow(a, e)) / e;
}

double BoundedPareto::moment(double j) const {
  return partial_moment(j, k_, p_);
}

double BoundedPareto::cdf(double x) const {
  if (x <= k_) return 0.0;
  if (x >= p_) return 1.0;
  return (1.0 - std::pow(k_ / x, alpha_)) / norm_;
}

double BoundedPareto::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  return k_ * std::pow(1.0 - u * norm_, -1.0 / alpha_);
}

double BoundedPareto::tail_load_fraction(double x) const {
  if (x <= k_) return 1.0;
  if (x >= p_) return 0.0;
  return partial_moment(1.0, x, p_) / moment(1.0);
}

std::string BoundedPareto::name() const {
  return "BoundedPareto(alpha=" + util::format_sig(alpha_) +
         ", k=" + util::format_sig(k_) + ", p=" + util::format_sig(p_) + ")";
}

}  // namespace distserv::dist
