// Bounded Pareto distribution B(k, p, alpha).
//
// This is the workload model of Harchol-Balter, Crovella & Murta [11] and the
// distribution we fit to the paper's trace statistics: heavy-tailed body with
// a hard upper bound p (real traces always have a largest job; the CTC trace
// is even administratively capped at 12 hours). All moments — including the
// negative ones needed for slowdown analysis — exist in closed form.
#pragma once

#include "dist/distribution.hpp"

namespace distserv::dist {

/// Bounded Pareto on [k, p]:
///   f(x) = alpha k^alpha x^{-alpha-1} / (1 - (k/p)^alpha).
class BoundedPareto final : public Distribution {
 public:
  /// Requires 0 < k < p and alpha > 0.
  BoundedPareto(double alpha, double k, double p);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return k_; }
  [[nodiscard]] double support_max() const override { return p_; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double k() const noexcept { return k_; }
  [[nodiscard]] double p() const noexcept { return p_; }

  /// E[X^j] restricted to x in [a, b] subinterval of the support, i.e.
  /// the contribution integral_a^b x^j f(x) dx (NOT renormalized).
  /// Used by the SITA split analysis to get per-host moments in closed form.
  [[nodiscard]] double partial_moment(double j, double a, double b) const;

  /// Fraction of total load (E[X]-mass) contributed by jobs of size > x.
  [[nodiscard]] double tail_load_fraction(double x) const;

 private:
  double alpha_;
  double k_;
  double p_;
  double norm_;  // 1 - (k/p)^alpha
};

}  // namespace distserv::dist
