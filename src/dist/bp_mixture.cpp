#include "dist/bp_mixture.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace distserv::dist {

BoundedParetoMixture::BoundedParetoMixture(
    std::vector<BoundedPareto> components, std::vector<double> weights)
    : components_(std::move(components)), weights_(std::move(weights)) {
  DS_EXPECTS(!components_.empty());
  DS_EXPECTS(components_.size() == weights_.size());
  double total = 0.0;
  for (double w : weights_) {
    DS_EXPECTS(w > 0.0);
    total += w;
  }
  DS_EXPECTS(std::abs(total - 1.0) < 1e-9);
  for (double& w : weights_) w /= total;
}

BoundedParetoMixture::BoundedParetoMixture(BoundedPareto single)
    : BoundedParetoMixture({std::move(single)}, {1.0}) {}

double BoundedParetoMixture::sample(Rng& rng) const {
  double u = rng.uniform01();
  for (std::size_t i = 0; i + 1 < weights_.size(); ++i) {
    if (u < weights_[i]) return components_[i].sample(rng);
    u -= weights_[i];
  }
  return components_.back().sample(rng);
}

double BoundedParetoMixture::moment(double j) const {
  double total = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    total += weights_[i] * components_[i].moment(j);
  }
  return total;
}

double BoundedParetoMixture::cdf(double x) const {
  double total = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    total += weights_[i] * components_[i].cdf(x);
  }
  return total;
}

double BoundedParetoMixture::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  // No closed form for mixtures; monotone CDF -> bisection over the support.
  const double lo = support_min();
  const double hi = support_max();
  const auto r = util::bisect([&](double x) { return cdf(x) - u; },
                              lo, hi, hi * 1e-14);
  return r.x;
}

double BoundedParetoMixture::support_min() const {
  double lo = components_.front().k();
  for (const BoundedPareto& c : components_) lo = std::min(lo, c.k());
  return lo;
}

double BoundedParetoMixture::support_max() const {
  double hi = components_.front().p();
  for (const BoundedPareto& c : components_) hi = std::max(hi, c.p());
  return hi;
}

double BoundedParetoMixture::partial_moment(double j, double a,
                                            double b) const {
  if (b <= a) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const BoundedPareto& c = components_[i];
    const double lo = std::clamp(a, c.k(), c.p());
    const double hi = std::clamp(b, c.k(), c.p());
    if (hi > lo) total += weights_[i] * c.partial_moment(j, lo, hi);
  }
  return total;
}

double BoundedParetoMixture::tail_load_fraction(double x) const {
  return partial_moment(1.0, x, support_max()) / moment(1.0);
}

std::string BoundedParetoMixture::name() const {
  std::string out = "BPMixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += " + ";
    out += std::to_string(weights_[i]).substr(0, 5) + "*" +
           components_[i].name();
  }
  out += ")";
  return out;
}

}  // namespace distserv::dist
