// Finite mixture of Bounded Pareto components.
//
// Real supercomputing traces are not a single power law: they have a broad
// *body* of small-to-medium jobs (seconds to minutes) plus a heavy Pareto
// *tail* that carries half the load (Harchol-Balter & Downey 1997). A
// mixture of Bounded Paretos captures that shape while keeping every
// quantity the queueing analysis needs — moments, interval-restricted
// moments, CDF — in closed form. The calibrated paper workloads (catalog)
// are two-component (body + tail) instances of this class.
#pragma once

#include <vector>

#include "dist/bounded_pareto.hpp"
#include "dist/distribution.hpp"

namespace distserv::dist {

/// Mixture sum_i w_i * BoundedPareto_i with w_i > 0, sum w_i = 1.
class BoundedParetoMixture final : public Distribution {
 public:
  /// Requires equal-length non-empty vectors; weights positive, summing to
  /// 1 within 1e-9 (then renormalized).
  BoundedParetoMixture(std::vector<BoundedPareto> components,
                       std::vector<double> weights);

  /// Single-component convenience.
  explicit BoundedParetoMixture(BoundedPareto single);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override;
  [[nodiscard]] double support_max() const override;
  [[nodiscard]] std::string name() const override;

  /// Closed-form unnormalized restricted moment
  /// integral_a^b x^j f(x) dx = sum_i w_i * restricted moment of component i.
  [[nodiscard]] double partial_moment(double j, double a, double b) const;

  /// Fraction of total load (size-mass) from jobs with size > x.
  [[nodiscard]] double tail_load_fraction(double x) const;

  [[nodiscard]] const std::vector<BoundedPareto>& components() const noexcept {
    return components_;
  }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  std::vector<BoundedPareto> components_;
  std::vector<double> weights_;
};

}  // namespace distserv::dist
