#include "dist/deterministic.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

Deterministic::Deterministic(double value) : value_(value) {
  DS_EXPECTS(value > 0.0);
}

double Deterministic::sample(Rng& /*rng*/) const { return value_; }

double Deterministic::moment(double j) const { return std::pow(value_, j); }

double Deterministic::cdf(double x) const { return x >= value_ ? 1.0 : 0.0; }

double Deterministic::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  return value_;
}

std::string Deterministic::name() const {
  return "Deterministic(" + util::format_sig(value_) + ")";
}

}  // namespace distserv::dist
