// Point mass at a constant — the zero-variance service distribution, useful
// for M/D/1 sanity checks of the analysis module.
#pragma once

#include "dist/distribution.hpp"

namespace distserv::dist {

/// Deterministic(value): every sample equals `value` > 0.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return value_; }
  [[nodiscard]] double support_max() const override { return value_; }
  [[nodiscard]] std::string name() const override;

 private:
  double value_;
};

}  // namespace distserv::dist
