#include "dist/distribution.hpp"

#include <cmath>
#include <limits>

namespace distserv::dist {

double Distribution::variance() const {
  const double m1 = moment(1.0);
  const double m2 = moment(2.0);
  if (!std::isfinite(m2)) return std::numeric_limits<double>::infinity();
  return m2 - m1 * m1;
}

double Distribution::scv() const {
  const double m1 = moment(1.0);
  const double var = variance();
  if (!std::isfinite(var)) return std::numeric_limits<double>::infinity();
  return var / (m1 * m1);
}

}  // namespace distserv::dist
