// Abstract service-time / interarrival distribution.
//
// Beyond sampling, the queueing analysis in src/queueing needs fractional and
// *negative* moments: E[X] and E[X^2] drive the Pollaczek–Khinchine waiting
// time, E[1/X] converts waiting time to slowdown, E[1/X^2] gives the variance
// of slowdown, and E[X^3] gives the second moment of waiting time. Every
// concrete distribution therefore implements `moment(j)` for real j and
// returns +infinity where the integral diverges (e.g. E[1/X] for the
// exponential, E[X^2] for a Pareto with alpha < 2).
#pragma once

#include <memory>
#include <string>

#include "dist/rng.hpp"

namespace distserv::dist {

/// Interface for a nonnegative continuous distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one variate using `rng`.
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;

  /// E[X^j] for real j; +infinity when divergent.
  [[nodiscard]] virtual double moment(double j) const = 0;

  /// P(X <= x).
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Inverse CDF; requires 0 < u < 1.
  [[nodiscard]] virtual double quantile(double u) const = 0;

  /// Essential infimum of the support.
  [[nodiscard]] virtual double support_min() const = 0;

  /// Essential supremum of the support (+infinity if unbounded).
  [[nodiscard]] virtual double support_max() const = 0;

  /// Human-readable identification including parameters.
  [[nodiscard]] virtual std::string name() const = 0;

  // Derived conveniences (all defined in terms of moment()).

  /// E[X].
  [[nodiscard]] double mean() const { return moment(1.0); }
  /// Var[X] = E[X^2] - E[X]^2.
  [[nodiscard]] double variance() const;
  /// Squared coefficient of variation C^2 = Var[X]/E[X]^2.
  [[nodiscard]] double scv() const;
};

/// Owning handle used throughout the library.
using DistributionPtr = std::shared_ptr<const Distribution>;

}  // namespace distserv::dist
