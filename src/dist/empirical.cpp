#include "dist/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

Empirical::Empirical(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  DS_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
  DS_EXPECTS(sorted_.front() > 0.0);
  prefix_sum_.reserve(sorted_.size());
  util::KahanSum acc;
  for (double x : sorted_) {
    acc.add(x);
    prefix_sum_.push_back(acc.value());
  }
}

double Empirical::sample(Rng& rng) const {
  return sorted_[rng.below(sorted_.size())];
}

double Empirical::moment(double j) const {
  util::KahanSum acc;
  for (double x : sorted_) acc.add(std::pow(x, j));
  return acc.value() / static_cast<double>(sorted_.size());
}

double Empirical::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Empirical::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(u * n)) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double Empirical::partial_moment(double j, double a, double b) const {
  DS_EXPECTS(a <= b);
  const auto lo = std::upper_bound(sorted_.begin(), sorted_.end(), a);
  const auto hi = std::upper_bound(sorted_.begin(), sorted_.end(), b);
  util::KahanSum acc;
  for (auto it = lo; it != hi; ++it) acc.add(std::pow(*it, j));
  return acc.value() / static_cast<double>(sorted_.size());
}

double Empirical::fraction_below(double c) const { return cdf(c); }

double Empirical::load_fraction_below(double c) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), c);
  if (it == sorted_.begin()) return 0.0;
  const std::size_t count = static_cast<std::size_t>(it - sorted_.begin());
  return prefix_sum_[count - 1] / prefix_sum_.back();
}

std::string Empirical::name() const {
  return "Empirical(n=" + std::to_string(sorted_.size()) + ")";
}

}  // namespace distserv::dist
