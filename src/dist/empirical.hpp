// Empirical distribution built from observed samples (e.g. the job sizes of
// a trace). This is what makes the analysis "trace-driven": the SITA cutoff
// search evaluates M/G/1 formulas against the empirical split moments of the
// training half of a trace, exactly as the paper does.
#pragma once

#include <span>
#include <vector>

#include "dist/distribution.hpp"

namespace distserv::dist {

/// Discrete distribution putting mass 1/n on each of n observed values.
class Empirical final : public Distribution {
 public:
  /// Copies and sorts the samples. Requires at least one sample, all > 0.
  explicit Empirical(std::span<const double> samples);

  [[nodiscard]] double sample(Rng& rng) const override;
  /// Exact plug-in moment: (1/n) sum x_i^j, computed with compensated
  /// summation (never infinite: the support is finite and positive).
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  /// Order-statistic quantile (inverse of the right-continuous ECDF).
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return sorted_.front(); }
  [[nodiscard]] double support_max() const override { return sorted_.back(); }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

  /// Mean of x^j restricted to samples with a < x <= b, times the fraction
  /// of samples in that range (i.e. the unnormalized contribution, matching
  /// BoundedPareto::partial_moment semantics).
  [[nodiscard]] double partial_moment(double j, double a, double b) const;

  /// Fraction of samples with value <= c (the SITA "short" fraction).
  [[nodiscard]] double fraction_below(double c) const;

  /// Fraction of total size-mass carried by samples with value <= c.
  [[nodiscard]] double load_fraction_below(double c) const;

 private:
  std::vector<double> sorted_;
  std::vector<double> prefix_sum_;  // prefix sums of sorted_ for load splits
};

}  // namespace distserv::dist
