#include "dist/exponential.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

Exponential::Exponential(double rate) : rate_(rate) {
  DS_EXPECTS(rate > 0.0);
}

Exponential Exponential::from_mean(double mean) {
  DS_EXPECTS(mean > 0.0);
  return Exponential(1.0 / mean);
}

double Exponential::sample(Rng& rng) const { return rng.exponential(rate_); }

double Exponential::moment(double j) const {
  // E[X^j] = Gamma(1+j) / rate^j, finite iff j > -1.
  if (j <= -1.0) return std::numeric_limits<double>::infinity();
  return std::tgamma(1.0 + j) * std::pow(rate_, -j);
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-rate_ * x);
}

double Exponential::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  return -std::log1p(-u) / rate_;
}

double Exponential::support_max() const {
  return std::numeric_limits<double>::infinity();
}

std::string Exponential::name() const {
  return "Exponential(rate=" + util::format_sig(rate_) + ")";
}

}  // namespace distserv::dist
