// Exponential distribution — the classical (and, per the paper, misleading)
// service-time model under which load balancing looks optimal.
#pragma once

#include "dist/distribution.hpp"

namespace distserv::dist {

/// Exponential(rate): mean 1/rate, C^2 = 1.
class Exponential final : public Distribution {
 public:
  /// Requires rate > 0.
  explicit Exponential(double rate);

  /// Convenience constructor from the mean.
  [[nodiscard]] static Exponential from_mean(double mean);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return 0.0; }
  [[nodiscard]] double support_max() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

}  // namespace distserv::dist
