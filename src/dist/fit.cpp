#include "dist/fit.hpp"

#include <cmath>
#include <functional>
#include <optional>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace distserv::dist {

namespace {

// Solves p such that B(k, p, alpha) has the target mean. The mean is
// strictly increasing in p, from k (as p -> k) toward the unbounded-Pareto
// limit (alpha k/(alpha-1) for alpha > 1, +infinity otherwise). Returns
// nullopt if the target mean is unreachable for this alpha.
std::optional<double> solve_p(double alpha, double k, double mean) {
  auto mean_at = [&](double p) { return BoundedPareto(alpha, k, p).mean(); };
  double hi = k * 2.0;
  const double hi_cap = k * 1e17;  // avoid overflow in pow
  while (mean_at(hi) < mean) {
    hi *= 4.0;
    if (hi > hi_cap) return std::nullopt;
  }
  const double lo = k * (1.0 + 1e-12);
  const auto r = util::bisect(
      [&](double p) { return mean_at(p) - mean; }, lo, hi,
      /*xtol=*/hi * 1e-14, /*ftol=*/mean * 1e-12);
  if (!r.converged) return std::nullopt;
  return r.x;
}

// Solves k such that B(k, p, alpha) has the target mean with p fixed. The
// mean is strictly increasing in k from the small-k limit toward p.
std::optional<double> solve_k(double alpha, double p, double mean) {
  auto mean_at = [&](double k) { return BoundedPareto(alpha, k, p).mean(); };
  double lo = p * 1e-15;
  const double hi = p * (1.0 - 1e-12);
  if (mean_at(lo) > mean || mean_at(hi) < mean) return std::nullopt;
  const auto r = util::bisect(
      [&](double k) { return mean_at(k) - mean; }, lo, hi,
      /*xtol=*/p * 1e-16, /*ftol=*/mean * 1e-12);
  if (!r.converged) return std::nullopt;
  return r.x;
}

// Generic driver: `scv_at(alpha)` returns the scv of the mean-matched fit at
// that alpha (nullopt if the mean is unreachable). Scans a log-spaced alpha
// grid for a bracketing pair around the target scv — making no assumption
// about the direction of monotonicity — then bisects inside the bracket.
std::optional<double> solve_alpha(
    const std::function<std::optional<double>(double)>& scv_at, double scv) {
  const std::vector<double> grid = util::logspace(0.02, 20.0, 96);
  std::optional<double> prev_alpha;
  std::optional<double> prev_scv;
  for (double alpha : grid) {
    const std::optional<double> s = scv_at(alpha);
    if (!s) {
      prev_alpha.reset();
      prev_scv.reset();
      continue;
    }
    if (std::abs(*s - scv) <= scv * 1e-9) return alpha;
    if (prev_scv &&
        std::signbit(*prev_scv - scv) != std::signbit(*s - scv)) {
      const auto r = util::bisect(
          [&](double a) {
            const auto sa = scv_at(a);
            // Inside a feasible bracket the mean stays reachable; fall back
            // to the midpoint sign convention if a probe fails anyway.
            return sa ? (*sa - scv) : 0.0;
          },
          *prev_alpha, alpha, /*xtol=*/1e-12, /*ftol=*/scv * 1e-10);
      if (r.converged) return r.x;
    }
    prev_alpha = alpha;
    prev_scv = s;
  }
  return std::nullopt;
}

BoundedParetoFit finish(double alpha, double k, double p) {
  BoundedPareto d(alpha, k, p);
  BoundedParetoFit fit;
  fit.alpha = alpha;
  fit.k = k;
  fit.p = p;
  fit.achieved_mean = d.mean();
  fit.achieved_scv = d.scv();
  fit.converged = true;
  return fit;
}

}  // namespace

BoundedPareto BoundedParetoFit::distribution() const {
  DS_EXPECTS(converged);
  return BoundedPareto(alpha, k, p);
}

BoundedParetoFit fit_bounded_pareto_fixed_k(double mean, double scv,
                                            double k) {
  DS_EXPECTS(k > 0.0 && mean > k);
  DS_EXPECTS(scv > 0.0);
  auto scv_at = [&](double alpha) -> std::optional<double> {
    const auto p = solve_p(alpha, k, mean);
    if (!p) return std::nullopt;
    return BoundedPareto(alpha, k, *p).scv();
  };
  const auto alpha = solve_alpha(scv_at, scv);
  if (!alpha) return {};
  const auto p = solve_p(*alpha, k, mean);
  if (!p) return {};
  return finish(*alpha, k, *p);
}

BoundedParetoFit fit_bounded_pareto_fixed_alpha(double mean, double scv,
                                                double alpha) {
  DS_EXPECTS(alpha > 1.0);
  DS_EXPECTS(mean > 0.0 && scv > 0.0);
  // For fixed alpha, k must lie in (mean (alpha-1)/alpha, mean): below the
  // lower end even p -> infinity cannot reach the mean, above it even p -> k
  // overshoots. Within that window the mean pins p(k), and the resulting
  // scv decreases monotonically in k (larger k => smaller p => lighter
  // tail), so a bracket scan + bisection over k converges.
  const double k_lo = mean * (alpha - 1.0) / alpha * (1.0 + 1e-9);
  const double k_hi = mean * (1.0 - 1e-9);
  auto scv_at = [&](double k) -> std::optional<double> {
    const auto p = solve_p(alpha, k, mean);
    if (!p) return std::nullopt;
    return BoundedPareto(alpha, k, *p).scv();
  };
  bool has_prev = false;
  double prev_k = 0.0, prev_scv = 0.0;
  const std::vector<double> grid = util::logspace(k_lo, k_hi, 96);
  for (double k : grid) {
    const std::optional<double> s = scv_at(k);
    if (!s) {
      has_prev = false;
      continue;
    }
    if (std::abs(*s - scv) <= scv * 1e-9) {
      const auto p = solve_p(alpha, k, mean);
      if (!p) return {};
      return finish(alpha, k, *p);
    }
    if (has_prev &&
        std::signbit(prev_scv - scv) != std::signbit(*s - scv)) {
      const auto r = util::bisect(
          [&](double kk) {
            const auto sk = scv_at(kk);
            return sk ? (*sk - scv) : 0.0;
          },
          prev_k, k, /*xtol=*/mean * 1e-12, /*ftol=*/scv * 1e-10);
      if (!r.converged) return {};
      const auto p = solve_p(alpha, r.x, mean);
      if (!p) return {};
      return finish(alpha, r.x, *p);
    }
    prev_k = k;
    prev_scv = *s;
    has_prev = true;
  }
  return {};
}

BoundedParetoFit fit_bounded_pareto_fixed_p(double mean, double scv,
                                            double p) {
  DS_EXPECTS(p > 0.0 && mean > 0.0 && mean < p);
  DS_EXPECTS(scv > 0.0);
  auto scv_at = [&](double alpha) -> std::optional<double> {
    const auto k = solve_k(alpha, p, mean);
    if (!k) return std::nullopt;
    return BoundedPareto(alpha, *k, p).scv();
  };
  const auto alpha = solve_alpha(scv_at, scv);
  if (!alpha) return {};
  const auto k = solve_k(*alpha, p, mean);
  if (!k) return {};
  return finish(*alpha, *k, p);
}

BoundedParetoMixture BodyTailFit::distribution() const {
  DS_EXPECTS(converged);
  return BoundedParetoMixture({body, tail}, {body_weight, 1.0 - body_weight});
}

BodyTailFit fit_body_tail(double mean, double scv, double min_size,
                          double body_break, double alpha_body,
                          double alpha_tail) {
  DS_EXPECTS(min_size > 0.0 && min_size < body_break);
  DS_EXPECTS(alpha_body > 0.0);
  DS_EXPECTS(alpha_tail > 1.0);
  DS_EXPECTS(scv > 0.0);
  const BoundedPareto body(alpha_body, min_size, body_break);
  const double body_mean = body.mean();
  DS_EXPECTS(mean > body_mean);

  // The unbounded tail mean limit caps what any p can deliver.
  const double tail_mean_limit =
      alpha_tail * body_break / (alpha_tail - 1.0);

  // For a given body weight w, the tail mean needed to hit the overall mean:
  //   mB = (mean - w*mA) / (1-w), feasible while mB in (body_break, limit).
  auto tail_for = [&](double w) -> std::optional<BoundedPareto> {
    const double need = (mean - w * body_mean) / (1.0 - w);
    if (need <= body_break * (1.0 + 1e-9) ||
        need >= tail_mean_limit * (1.0 - 1e-9)) {
      return std::nullopt;
    }
    const auto p = solve_p(alpha_tail, body_break, need);
    if (!p) return std::nullopt;
    return BoundedPareto(alpha_tail, body_break, *p);
  };
  auto scv_at = [&](double w) -> std::optional<double> {
    const auto tail = tail_for(w);
    if (!tail) return std::nullopt;
    BoundedParetoMixture mix({body, *tail}, {w, 1.0 - w});
    return mix.scv();
  };

  // Bracket scan over w, then bisect (scv is increasing in w: more body
  // weight forces a longer tail to hold the mean).
  const std::vector<double> grid = util::linspace(0.005, 0.995, 200);
  bool has_prev = false;
  double prev_w = 0.0, prev_scv = 0.0;
  auto finish_fit = [&](double w) -> BodyTailFit {
    const auto tail = tail_for(w);
    if (!tail) return {};
    BodyTailFit fit;
    fit.body = body;
    fit.tail = *tail;
    fit.body_weight = w;
    BoundedParetoMixture mix = BoundedParetoMixture({body, *tail},
                                                    {w, 1.0 - w});
    fit.achieved_mean = mix.mean();
    fit.achieved_scv = mix.scv();
    fit.converged = true;
    return fit;
  };
  for (double w : grid) {
    const std::optional<double> s = scv_at(w);
    if (!s) {
      has_prev = false;
      continue;
    }
    if (std::abs(*s - scv) <= scv * 1e-9) return finish_fit(w);
    if (has_prev &&
        std::signbit(prev_scv - scv) != std::signbit(*s - scv)) {
      const auto r = util::bisect(
          [&](double ww) {
            const auto sw = scv_at(ww);
            return sw ? (*sw - scv) : 0.0;
          },
          prev_w, w, /*xtol=*/1e-12, /*ftol=*/scv * 1e-10);
      if (!r.converged) return {};
      return finish_fit(r.x);
    }
    prev_w = w;
    prev_scv = *s;
    has_prev = true;
  }
  return {};
}

}  // namespace distserv::dist
