// Fitting Bounded Pareto parameters to trace statistics.
//
// The paper characterizes each trace by its mean service requirement and its
// squared coefficient of variation (Table 1; the text highlights C^2 = 43 for
// the C90 trace). To synthesize workloads with those characteristics we fit
// B(k, p, alpha) by moment matching: fix one endpoint of the support and
// solve the remaining two parameters against (mean, C^2) with nested
// bisection. Both maps are monotone, so the fits are unique when feasible.
#pragma once

#include "dist/bounded_pareto.hpp"
#include "dist/bp_mixture.hpp"

namespace distserv::dist {

/// Result of a Bounded-Pareto moment fit.
struct BoundedParetoFit {
  double alpha = 0.0;
  double k = 0.0;
  double p = 0.0;
  double achieved_mean = 0.0;
  double achieved_scv = 0.0;
  bool converged = false;

  /// Materializes the fitted distribution. Requires converged.
  [[nodiscard]] BoundedPareto distribution() const;
};

/// Fits alpha and p with the minimum job size k fixed.
/// Requires mean > k and scv > 0.
[[nodiscard]] BoundedParetoFit fit_bounded_pareto_fixed_k(double mean,
                                                          double scv,
                                                          double k);

/// Fits alpha and k with the maximum job size p fixed (e.g. the CTC trace's
/// administrative 12-hour kill limit). Requires 0 < mean < p and scv > 0.
[[nodiscard]] BoundedParetoFit fit_bounded_pareto_fixed_p(double mean,
                                                          double scv,
                                                          double p);

/// Fits k and p with the tail index alpha fixed. This is the paper-faithful
/// mode: Harchol-Balter, Crovella & Murta [11] model the supercomputing
/// traces with alpha ~= 1.1, and the tail index is what controls the "tiny
/// fraction of jobs carries half the load" property. Requires alpha > 1
/// (so the mean pins k from above) and scv > 0.
[[nodiscard]] BoundedParetoFit fit_bounded_pareto_fixed_alpha(double mean,
                                                              double scv,
                                                              double alpha);

/// Result of a body+tail mixture fit.
struct BodyTailFit {
  BoundedPareto body{1.0, 1.0, 2.0};  ///< placeholder until converged
  BoundedPareto tail{1.0, 2.0, 4.0};
  double body_weight = 0.0;
  double achieved_mean = 0.0;
  double achieved_scv = 0.0;
  bool converged = false;

  /// Materializes the two-component mixture. Requires converged.
  [[nodiscard]] BoundedParetoMixture distribution() const;
};

/// Fits the trace-shaped two-component model
///   w * BP(alpha_body, min_size, body_break)
///   + (1-w) * BP(alpha_tail, body_break, p)
/// to a target mean and squared coefficient of variation, solving the body
/// weight w and the tail truncation p. The body (spread of small jobs from
/// `min_size` up to `body_break`) is what drives E[1/X] — and therefore
/// slowdown — while the tail drives E[X^2]; fixing both shapes and solving
/// only (w, p) keeps the fit unique. Requires min_size < body_break,
/// alpha_tail > 1, mean > body mean, scv > 0.
[[nodiscard]] BodyTailFit fit_body_tail(double mean, double scv,
                                        double min_size, double body_break,
                                        double alpha_body, double alpha_tail);

}  // namespace distserv::dist
