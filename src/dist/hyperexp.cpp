#include "dist/hyperexp.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

Hyperexponential::Hyperexponential(std::vector<double> probabilities,
                                   std::vector<double> rates)
    : probs_(std::move(probabilities)), rates_(std::move(rates)) {
  DS_EXPECTS(!probs_.empty());
  DS_EXPECTS(probs_.size() == rates_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    DS_EXPECTS(probs_[i] >= 0.0);
    DS_EXPECTS(rates_[i] > 0.0);
    total += probs_[i];
  }
  DS_EXPECTS(std::abs(total - 1.0) < 1e-9);
  for (double& prob : probs_) prob /= total;
}

Hyperexponential Hyperexponential::fit_mean_scv(double mean, double scv) {
  DS_EXPECTS(mean > 0.0);
  DS_EXPECTS(scv >= 1.0);
  // Balanced-means H2 (Whitt): p1 mu2 = p2 mu1 branch weighting.
  const double p1 = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double p2 = 1.0 - p1;
  const double mu1 = 2.0 * p1 / mean;
  const double mu2 = 2.0 * p2 / mean;
  return Hyperexponential({p1, p2}, {mu1, mu2});
}

double Hyperexponential::sample(Rng& rng) const {
  double u = rng.uniform01();
  for (std::size_t i = 0; i + 1 < probs_.size(); ++i) {
    if (u < probs_[i]) return rng.exponential(rates_[i]);
    u -= probs_[i];
  }
  return rng.exponential(rates_.back());
}

double Hyperexponential::moment(double j) const {
  if (j <= -1.0) return std::numeric_limits<double>::infinity();
  const double gamma = std::tgamma(1.0 + j);
  double total = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    total += probs_[i] * gamma * std::pow(rates_[i], -j);
  }
  return total;
}

double Hyperexponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  double survival = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    survival += probs_[i] * std::exp(-rates_[i] * x);
  }
  return 1.0 - survival;
}

double Hyperexponential::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  // No closed form for mixtures; bracket with the slowest phase and bisect.
  double slowest = rates_[0];
  for (double r : rates_) slowest = std::min(slowest, r);
  const double hi = -std::log1p(-u) / slowest + 1.0;
  const auto r = util::bisect([&](double x) { return cdf(x) - u; }, 0.0, hi,
                              1e-12 * hi);
  return r.x;
}

double Hyperexponential::support_max() const {
  return std::numeric_limits<double>::infinity();
}

std::string Hyperexponential::name() const {
  return "Hyperexponential(phases=" + std::to_string(probs_.size()) + ")";
}

}  // namespace distserv::dist
