// Hyperexponential distribution — a mixture of exponentials. The standard
// analytically-tractable way to get C^2 > 1 without a power-law tail; used in
// tests and as an alternative high-variance workload.
#pragma once

#include <vector>

#include "dist/distribution.hpp"

namespace distserv::dist {

/// H_n: with probability prob[i], sample Exponential(rate[i]).
class Hyperexponential final : public Distribution {
 public:
  /// Requires equal non-empty vectors, probabilities summing to 1 (within
  /// 1e-9, then renormalized), all rates > 0.
  Hyperexponential(std::vector<double> probabilities,
                   std::vector<double> rates);

  /// Two-phase hyperexponential with balanced means matching a target mean
  /// and squared coefficient of variation scv >= 1.
  [[nodiscard]] static Hyperexponential fit_mean_scv(double mean, double scv);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return 0.0; }
  [[nodiscard]] double support_max() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t phases() const noexcept { return probs_.size(); }

 private:
  std::vector<double> probs_;
  std::vector<double> rates_;
};

}  // namespace distserv::dist
