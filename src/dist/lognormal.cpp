#include "dist/lognormal.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

namespace {
// Acklam's rational approximation to the standard normal quantile, refined
// with one Halley step; |error| < 1e-13 across (0,1).
double probit(double u) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (u < plow) {
    const double q = std::sqrt(-2.0 * std::log(u));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (u <= 1.0 - plow) {
    const double q = u - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - u));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the true CDF.
  const double e = 0.5 * std::erfc(-x / std::numbers::sqrt2) - u;
  const double pdf =
      std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
  const double g = e / pdf;
  x -= g / (1.0 + 0.5 * x * g);
  return x;
}
}  // namespace

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  DS_EXPECTS(sigma > 0.0);
}

Lognormal Lognormal::fit_mean_scv(double mean, double scv) {
  DS_EXPECTS(mean > 0.0);
  DS_EXPECTS(scv > 0.0);
  // mean = exp(mu + sigma^2/2), scv = exp(sigma^2) - 1.
  const double sigma2 = std::log1p(scv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return Lognormal(mu, std::sqrt(sigma2));
}

double Lognormal::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double Lognormal::moment(double j) const {
  return std::exp(j * mu_ + 0.5 * j * j * sigma_ * sigma_);
}

double Lognormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 0.5 * std::erfc(-(std::log(x) - mu_) /
                         (sigma_ * std::numbers::sqrt2));
}

double Lognormal::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  return std::exp(mu_ + sigma_ * probit(u));
}

double Lognormal::support_max() const {
  return std::numeric_limits<double>::infinity();
}

std::string Lognormal::name() const {
  return "Lognormal(mu=" + util::format_sig(mu_) +
         ", sigma=" + util::format_sig(sigma_) + ")";
}

}  // namespace distserv::dist
