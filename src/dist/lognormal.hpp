// Lognormal distribution — used for bursty interarrival-time modeling and as
// an alternative service-time model in ablations. All real moments exist.
#pragma once

#include "dist/distribution.hpp"

namespace distserv::dist {

/// Lognormal(mu, sigma): log X ~ Normal(mu, sigma^2).
class Lognormal final : public Distribution {
 public:
  /// Requires sigma > 0.
  Lognormal(double mu, double sigma);

  /// Parameterizes from a target mean and squared coefficient of variation.
  [[nodiscard]] static Lognormal fit_mean_scv(double mean, double scv);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return 0.0; }
  [[nodiscard]] double support_max() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace distserv::dist
