#include "dist/pareto.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

Pareto::Pareto(double alpha, double k) : alpha_(alpha), k_(k) {
  DS_EXPECTS(alpha > 0.0);
  DS_EXPECTS(k > 0.0);
}

double Pareto::sample(Rng& rng) const {
  return k_ * std::pow(rng.uniform01(), -1.0 / alpha_);
}

double Pareto::moment(double j) const {
  // E[X^j] = alpha k^j / (alpha - j) for j < alpha, else divergent.
  if (j >= alpha_) return std::numeric_limits<double>::infinity();
  return alpha_ * std::pow(k_, j) / (alpha_ - j);
}

double Pareto::cdf(double x) const {
  if (x <= k_) return 0.0;
  return 1.0 - std::pow(k_ / x, alpha_);
}

double Pareto::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  return k_ * std::pow(1.0 - u, -1.0 / alpha_);
}

double Pareto::support_max() const {
  return std::numeric_limits<double>::infinity();
}

std::string Pareto::name() const {
  return "Pareto(alpha=" + util::format_sig(alpha_) +
         ", k=" + util::format_sig(k_) + ")";
}

}  // namespace distserv::dist
