// Unbounded Pareto distribution — the canonical heavy-tailed model for
// process lifetimes (Harchol-Balter & Downey 1997). Moments E[X^j] diverge
// for j >= alpha, which is exactly why supercomputing workloads break
// load-balancing intuition.
#pragma once

#include "dist/distribution.hpp"

namespace distserv::dist {

/// Pareto(alpha, k): P(X > x) = (k/x)^alpha for x >= k > 0, alpha > 0.
class Pareto final : public Distribution {
 public:
  Pareto(double alpha, double k);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return k_; }
  [[nodiscard]] double support_max() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double k() const noexcept { return k_; }

 private:
  double alpha_;
  double k_;
};

}  // namespace distserv::dist
