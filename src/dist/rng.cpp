#include "dist/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/contracts.hpp"

namespace distserv::dist {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one forbidden configuration; SplitMix64 cannot
  // produce four zero outputs in a row, but keep the guarantee explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 random bits, centered in the bin: yields values in (0,1) strictly.
  return (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double rate) {
  DS_EXPECTS(rate > 0.0);
  return -std::log(uniform01()) / rate;
}

std::uint64_t Rng::below(std::uint64_t n) {
  DS_EXPECTS(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  while (true) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  DS_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

double Rng::normal() noexcept {
  const double u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Derive a fresh seed from the current state and the stream index; the
  // SplitMix64 avalanche decorrelates nearby stream indices.
  std::uint64_t sm = s_[0] ^ rotl(s_[2], 13) ^ (stream * 0xd1342543de82ef95ULL);
  const std::uint64_t seed = splitmix64(sm) ^ splitmix64(sm);
  return Rng(seed);
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace distserv::dist
