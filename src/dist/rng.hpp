// Deterministic pseudo-random number generation for distserv.
//
// All experiment randomness flows from explicit 64-bit seeds through
// xoshiro256++ streams so every figure in the paper reproduction is
// bit-for-bit repeatable. Independent substreams (per host, per replication)
// are derived with `split`, which re-seeds via SplitMix64 rather than
// relying on correlated jumps of a shared state.
#pragma once

#include <cstdint>

namespace distserv::dist {

/// SplitMix64 step: used for seed expansion and substream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ generator (Blackman & Vigna). Fast, 256-bit state, passes
/// BigCrush; the de-facto standard for simulation workloads.
class Rng {
 public:
  /// Seeds the 256-bit state by expanding `seed` with SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform double in the open interval (0, 1). Never returns 0 or 1, so
  /// inverse-CDF sampling (log u, u^{-1/alpha}) is always finite.
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Exponential variate with the given rate (mean 1/rate). Requires rate>0.
  [[nodiscard]] double exponential(double rate);

  /// Unbiased integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  /// True with probability p. Requires 0 <= p <= 1.
  [[nodiscard]] bool bernoulli(double p);

  /// Standard normal variate (Box–Muller, no caching: stateless w.r.t.
  /// substream splitting).
  [[nodiscard]] double normal() noexcept;

  /// Derives an independent generator for substream `stream`. Deterministic:
  /// the same (seed, stream) pair always yields the same substream.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept;

  /// Equivalent to 2^128 calls of next(); used to space parallel streams.
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace distserv::dist
