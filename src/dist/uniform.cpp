#include "dist/uniform.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  DS_EXPECTS(lo >= 0.0 && lo < hi);
}

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

double Uniform::moment(double j) const {
  // E[X^j] = (hi^{j+1} - lo^{j+1}) / ((j+1)(hi-lo)), special-casing j = -1.
  const double width = hi_ - lo_;
  if (j == -1.0) {
    if (lo_ == 0.0) return std::numeric_limits<double>::infinity();
    return std::log(hi_ / lo_) / width;
  }
  if (lo_ == 0.0 && j <= -1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return (std::pow(hi_, j + 1.0) - std::pow(lo_, j + 1.0)) /
         ((j + 1.0) * width);
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  return lo_ + u * (hi_ - lo_);
}

std::string Uniform::name() const {
  return "Uniform(" + util::format_sig(lo_) + ", " + util::format_sig(hi_) +
         ")";
}

}  // namespace distserv::dist
