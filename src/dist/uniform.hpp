// Uniform distribution on [lo, hi] — used in tests and as a low-variance
// contrast workload.
#pragma once

#include "dist/distribution.hpp"

namespace distserv::dist {

/// Uniform(lo, hi) with 0 <= lo < hi.
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return lo_; }
  [[nodiscard]] double support_max() const override { return hi_; }
  [[nodiscard]] std::string name() const override;

 private:
  double lo_;
  double hi_;
};

}  // namespace distserv::dist
