#include "dist/weibull.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::dist {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  DS_EXPECTS(shape > 0.0);
  DS_EXPECTS(scale > 0.0);
}

double Weibull::sample(Rng& rng) const {
  return scale_ * std::pow(-std::log(rng.uniform01()), 1.0 / shape_);
}

double Weibull::moment(double j) const {
  // E[X^j] = scale^j * Gamma(1 + j/shape), finite iff j > -shape.
  if (j <= -shape_) return std::numeric_limits<double>::infinity();
  return std::pow(scale_, j) * std::tgamma(1.0 + j / shape_);
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double u) const {
  DS_EXPECTS(u > 0.0 && u < 1.0);
  return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
}

double Weibull::support_max() const {
  return std::numeric_limits<double>::infinity();
}

std::string Weibull::name() const {
  return "Weibull(shape=" + util::format_sig(shape_) +
         ", scale=" + util::format_sig(scale_) + ")";
}

}  // namespace distserv::dist
