// Weibull distribution — sub-exponential tails for shape < 1; rounds out the
// workload-model toolbox for sensitivity studies.
#pragma once

#include "dist/distribution.hpp"

namespace distserv::dist {

/// Weibull(shape, scale): P(X > x) = exp(-(x/scale)^shape).
class Weibull final : public Distribution {
 public:
  /// Requires shape > 0 and scale > 0.
  Weibull(double shape, double scale);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(double j) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double u) const override;
  [[nodiscard]] double support_min() const override { return 0.0; }
  [[nodiscard]] double support_max() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace distserv::dist
