// Umbrella header: everything a downstream user needs to simulate, analyze,
// and compare task assignment policies for distributed supercomputing
// servers. Include <distserv.hpp> and link distserv::distserv.
#pragma once

// Utilities
#include "util/cli.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

// Substrate
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "dist/fit.hpp"
#include "dist/hyperexp.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/rng.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"
#include "sim/autoscaler.hpp"
#include "sim/simulator.hpp"
#include "stats/confidence.hpp"
#include "stats/histogram.hpp"
#include "stats/ks_test.hpp"
#include "stats/moments.hpp"
#include "stats/quantile.hpp"
#include "stats/welford.hpp"

// Workloads
#include "workload/arrival.hpp"
#include "workload/catalog.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

// Analysis
#include "queueing/cutoff_search.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mgh.hpp"
#include "queueing/mmh.hpp"
#include "queueing/policy_analysis.hpp"
#include "queueing/sita_analysis.hpp"
#include "queueing/size_model.hpp"

// The distributed server and its policies
#include "core/cutoffs.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/policies/central_queue.hpp"
#include "core/policies/class_sita.hpp"
#include "core/policies/hybrid_sita_lwl.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/random.hpp"
#include "core/policies/round_robin.hpp"
#include "core/policies/shortest_queue.hpp"
#include "core/policies/sita.hpp"
#include "core/policies/noisy_lwl.hpp"
#include "core/policies/power_of_d.hpp"
#include "core/ps_server.hpp"
#include "core/server.hpp"
#include "core/sim_cutoff_search.hpp"
#include "core/sweep_runner.hpp"
#include "core/tags.hpp"
