#include "queueing/cutoff_search.hpp"

#include <cmath>
#include <limits>
#include <optional>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace distserv::queueing {

namespace {

CutoffSearchResult pack(const SizeModel& model, double lambda, double cutoff,
                        std::size_t scanned) {
  CutoffSearchResult r;
  r.cutoff = cutoff;
  r.metrics = analyze_sita(model, lambda, {cutoff});
  r.feasible = r.metrics.stable;
  if (r.metrics.hosts.size() == 2) {
    r.host1_load_fraction = r.metrics.hosts[0].load_fraction;
    r.host1_job_fraction = r.metrics.hosts[0].job_fraction;
  }
  r.candidates_scanned = scanned;
  return r;
}

// Scans the candidate grid and returns (index, score) of the best feasible
// candidate under `score` (lower is better), or nullopt if none feasible.
struct ScanHit {
  std::size_t index;
  double value;
};

template <typename Score>
std::optional<ScanHit> scan(const std::vector<double>& grid,
                            const SizeModel& model, double lambda,
                            const Score& score) {
  std::optional<ScanHit> best;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const SitaMetrics m = analyze_sita(model, lambda, {grid[i]});
    if (!m.stable) continue;
    const double v = score(m);
    if (!best || v < best->value) best = ScanHit{i, v};
  }
  return best;
}

std::vector<double> interior_grid(const SizeModel& model, std::size_t n) {
  std::vector<double> grid = model.cutoff_grid(n);
  // Both hosts must receive jobs: drop endpoints equal to the extreme sizes.
  std::erase_if(grid, [&](double c) {
    return c >= model.max_size() || c < model.min_size();
  });
  return grid;
}

}  // namespace

CutoffSearchResult find_sita_u_opt(const SizeModel& model, double lambda,
                                   std::size_t grid_n) {
  DS_EXPECTS(lambda > 0.0);
  DS_EXPECTS(grid_n >= 8);
  const std::vector<double> grid = interior_grid(model, grid_n);
  if (grid.empty()) return {};
  const auto best = scan(grid, model, lambda, [](const SitaMetrics& m) {
    return m.mean_slowdown;
  });
  if (!best) return {};
  // Local golden-section refinement between the neighbors of the best grid
  // point (mean slowdown is piecewise-smooth and locally unimodal there).
  const double lo = grid[best->index > 0 ? best->index - 1 : best->index];
  const double hi = grid[std::min(best->index + 1, grid.size() - 1)];
  double cutoff = grid[best->index];
  if (hi > lo) {
    const auto refined = util::golden_section_minimize(
        [&](double c) {
          const SitaMetrics m = analyze_sita(model, lambda, {c});
          return m.stable ? m.mean_slowdown
                          : std::numeric_limits<double>::infinity();
        },
        lo, hi, (hi - lo) * 1e-6);
    if (refined.fx <= best->value) cutoff = refined.x;
  }
  return pack(model, lambda, cutoff, grid.size());
}

CutoffSearchResult find_sita_u_fair(const SizeModel& model, double lambda,
                                    std::size_t grid_n) {
  DS_EXPECTS(lambda > 0.0);
  DS_EXPECTS(grid_n >= 8);
  const std::vector<double> grid = interior_grid(model, grid_n);
  if (grid.empty()) return {};
  // Signed slowdown gap between the short host and the long host; fairness
  // is a root of this function.
  auto gap = [&](const SitaMetrics& m) {
    return m.hosts[0].mg1.mean_slowdown - m.hosts[1].mg1.mean_slowdown;
  };
  const auto best = scan(grid, model, lambda, [&](const SitaMetrics& m) {
    return std::abs(gap(m));
  });
  if (!best) return {};
  double cutoff = grid[best->index];
  // Refine by bisection if a neighboring feasible candidate brackets a sign
  // change (the gap is increasing in the cutoff: pushing more sizes to Host 1
  // loads it and relieves Host 2).
  auto signed_gap_at = [&](double c) -> std::optional<double> {
    const SitaMetrics m = analyze_sita(model, lambda, {c});
    if (!m.stable) return std::nullopt;
    return gap(m);
  };
  const auto g_best = signed_gap_at(cutoff);
  for (int dir : {-1, +1}) {
    const std::size_t j = best->index + static_cast<std::size_t>(dir);
    if (dir < 0 && best->index == 0) continue;
    if (j >= grid.size()) continue;
    const auto g_nb = signed_gap_at(grid[j]);
    if (!g_best || !g_nb) continue;
    if (std::signbit(*g_best) != std::signbit(*g_nb)) {
      const double lo = std::min(cutoff, grid[j]);
      const double hi = std::max(cutoff, grid[j]);
      const auto root = util::bisect(
          [&](double c) {
            const auto g = signed_gap_at(c);
            // Infeasible points inside the bracket keep the previous sign
            // direction by returning a huge value of the boundary sign.
            return g ? *g : std::numeric_limits<double>::max();
          },
          lo, hi, (hi - lo) * 1e-9, 0.0);
      if (root.converged) cutoff = root.x;
      break;
    }
  }
  return pack(model, lambda, cutoff, grid.size());
}

double rule_of_thumb_cutoff(const SizeModel& model, double rho) {
  DS_EXPECTS(rho > 0.0 && rho < 1.0);
  return model.load_quantile(0.5 * rho);
}

CutoffSearchResult evaluate_cutoff(const SizeModel& model, double lambda,
                                   double cutoff) {
  DS_EXPECTS(lambda > 0.0);
  return pack(model, lambda, cutoff, 1);
}

namespace {

// Minimizes f on [lo, hi] where f may be +inf on unknown sub-ranges at both
// ends (infeasible cutoff positions): coarse log-grid scan to locate the
// basin, then golden-section between the neighbors of the best grid point.
util::MinResult grid_then_golden(const std::function<double(double)>& f,
                                 double lo, double hi, std::size_t n) {
  const std::vector<double> grid = util::logspace(lo, hi, n);
  std::size_t best = 0;
  double best_fx = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double fx = f(grid[i]);
    if (fx < best_fx) {
      best_fx = fx;
      best = i;
    }
  }
  if (!std::isfinite(best_fx)) return {lo, best_fx, false, 0};
  const double a = grid[best > 0 ? best - 1 : best];
  const double b = grid[std::min(best + 1, grid.size() - 1)];
  if (b <= a) return {grid[best], best_fx, true, 0};
  util::MinResult r = util::golden_section_minimize(f, a, b, (b - a) * 1e-7);
  if (r.fx > best_fx) return {grid[best], best_fx, true, r.iterations};
  return r;
}

MultiCutoffResult pack_multi(const SizeModel& model, double lambda,
                             std::vector<double> cutoffs, int sweeps) {
  MultiCutoffResult r;
  r.metrics = analyze_sita(model, lambda, cutoffs);
  r.cutoffs = std::move(cutoffs);
  r.feasible = r.metrics.stable;
  for (const SitaHostMetrics& hm : r.metrics.hosts) {
    r.host_load_fractions.push_back(hm.load_fraction);
  }
  r.sweeps = sweeps;
  return r;
}

}  // namespace

MultiCutoffResult find_sita_u_opt_multi(const SizeModel& model, double lambda,
                                        std::size_t h, int max_sweeps) {
  DS_EXPECTS(lambda > 0.0);
  DS_EXPECTS(h >= 2);
  std::vector<double> cutoffs = sita_e_cutoffs(model, h);
  auto score = [&](const std::vector<double>& cs) {
    const SitaMetrics m = analyze_sita(model, lambda, cs);
    return m.stable ? m.mean_slowdown
                    : std::numeric_limits<double>::infinity();
  };
  double current = score(cutoffs);
  int sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    const double before = current;
    for (std::size_t i = 0; i < cutoffs.size(); ++i) {
      // Bracket cutoff i between its neighbors (or the support bounds).
      const double lo =
          (i == 0) ? model.min_size() * (1.0 + 1e-9) : cutoffs[i - 1] * (1.0 + 1e-9);
      const double hi = (i + 1 == cutoffs.size())
                            ? model.max_size() * (1.0 - 1e-9)
                            : cutoffs[i + 1] * (1.0 - 1e-9);
      if (hi <= lo) continue;
      const auto refined = grid_then_golden(
          [&](double c) {
            std::vector<double> trial = cutoffs;
            trial[i] = c;
            return score(trial);
          },
          lo, hi, 48);
      if (refined.fx < current) {
        cutoffs[i] = refined.x;
        current = refined.fx;
      }
    }
    if (before - current <= std::abs(before) * 1e-9) break;
  }
  return pack_multi(model, lambda, std::move(cutoffs), sweep + 1);
}

MultiCutoffResult find_sita_u_fair_multi(const SizeModel& model,
                                         double lambda, std::size_t h,
                                         int max_sweeps) {
  DS_EXPECTS(lambda > 0.0);
  DS_EXPECTS(h >= 2);
  // Exact nested construction instead of blind descent. For a candidate
  // common slowdown target s*, the cutoffs are determined host by host:
  // host i's slowdown depends only on its own interval (prev, c], and is
  // monotone increasing in c (more jobs and more load), so the c achieving
  // E[S_i] = s* is unique. Building hosts 0..h-2 this way leaves host h-1
  // with whatever remains; its slowdown S_last(s*) is decreasing in s*
  // (greedier early hosts leave less load), so the fair point is the root
  // of S_last(s*) - s* — one outer bisection. `max_sweeps` bounds the
  // outer iterations.
  const double max_c = model.max_size() * (1.0 - 1e-9);

  // Mean slowdown of an M/G/1 host serving the size interval (a, b].
  auto interval_slowdown = [&](double a, double b) -> double {
    const double p = model.probability(a, b);
    if (p <= 0.0) return 1.0;  // an empty host delays nobody
    const ServiceMoments cond = model.conditional_moments(a, b);
    const Mg1Metrics m = mg1_fcfs(lambda * p, cond);
    return m.stable ? m.mean_slowdown
                    : std::numeric_limits<double>::infinity();
  };

  // Smallest c > a with E[S(a, c]] >= target (monotone in c), or max_c if
  // even the full remainder cannot reach the target.
  auto solve_cutoff = [&](double a, double target) -> double {
    if (interval_slowdown(a, max_c) < target) return max_c;
    const auto r = util::bisect(
        [&](double c) {
          const double s = interval_slowdown(a, c);
          return (std::isfinite(s) ? s : 1e300) - target;
        },
        a, max_c, /*xtol=*/max_c * 1e-13, /*ftol=*/0.0);
    return r.x;
  };

  auto build = [&](double target) -> std::vector<double> {
    std::vector<double> cs;
    double prev = 0.0;
    for (std::size_t i = 0; i + 1 < h; ++i) {
      const double c = solve_cutoff(prev, target);
      cs.push_back(c);
      prev = c;
    }
    return cs;
  };
  auto last_host_residual = [&](double target) -> double {
    const std::vector<double> cs = build(target);
    const double s_last = interval_slowdown(cs.back(), max_c * (1.0 + 1e-9));
    if (!std::isfinite(s_last)) return 1e300;  // target too low: overloaded
    return s_last - target;
  };

  // Outer bracket: expand upward from just above 1 until the residual goes
  // negative.
  double lo_t = 1.0 + 1e-9;
  double hi_t = 2.0;
  int expand = 0;
  while (last_host_residual(hi_t) > 0.0 && expand < 60) {
    hi_t *= 2.0;
    ++expand;
  }
  const auto root = util::bisect(last_host_residual, lo_t, hi_t,
                                 /*xtol=*/hi_t * 1e-10, /*ftol=*/1e-9);
  std::vector<double> cutoffs = build(root.x);
  // Guard against degenerate duplicate cutoffs (can appear when the target
  // saturates at max_c): nudge into strict order.
  for (std::size_t i = 1; i < cutoffs.size(); ++i) {
    if (cutoffs[i] <= cutoffs[i - 1]) {
      cutoffs[i] = cutoffs[i - 1] * (1.0 + 1e-9);
    }
  }
  (void)max_sweeps;
  return pack_multi(model, lambda, std::move(cutoffs), expand + root.iterations);
}

}  // namespace distserv::queueing
