// Cutoff searches for the load-unbalancing SITA policies (paper §4).
//
// SITA-U-opt  : choose the short/long cutoff to minimize overall mean
//               slowdown.
// SITA-U-fair : choose the cutoff at which short jobs and long jobs see the
//               *same* expected slowdown (the paper's fairness criterion).
// Both are found exactly as in the paper: enumerate feasible cutoffs (a
// dense grid over the size support; neither host may exceed load 1), score
// each candidate with the per-host M/G/1 analysis, then refine locally.
// The paper's rule of thumb — put load fraction rho/2 on the short host at
// system load rho — is also provided.
#pragma once

#include <cstddef>

#include "queueing/sita_analysis.hpp"

namespace distserv::queueing {

/// Result of a 2-host cutoff search.
struct CutoffSearchResult {
  double cutoff = 0.0;
  SitaMetrics metrics;               ///< analysis at the chosen cutoff
  double host1_load_fraction = 0.0;  ///< fraction of total load on Host 1
  double host1_job_fraction = 0.0;   ///< fraction of jobs on Host 1
  bool feasible = false;             ///< some stable cutoff existed
  std::size_t candidates_scanned = 0;
};

/// SITA-U-opt: cutoff minimizing overall mean slowdown at arrival rate
/// `lambda` on 2 hosts. `grid` controls the scan density.
[[nodiscard]] CutoffSearchResult find_sita_u_opt(const SizeModel& model,
                                                 double lambda,
                                                 std::size_t grid = 400);

/// SITA-U-fair: cutoff equalizing the mean slowdown of the short-job host
/// and the long-job host.
[[nodiscard]] CutoffSearchResult find_sita_u_fair(const SizeModel& model,
                                                  double lambda,
                                                  std::size_t grid = 400);

/// Rule-of-thumb cutoff (paper §4.4): the cutoff sending load fraction
/// rho/2 to Host 1 when the system load is rho. Requires 0 < rho < 1.
[[nodiscard]] double rule_of_thumb_cutoff(const SizeModel& model, double rho);

/// Evaluates the rule-of-thumb cutoff into a full result for comparison.
[[nodiscard]] CutoffSearchResult evaluate_cutoff(const SizeModel& model,
                                                 double lambda,
                                                 double cutoff);

// ---------------------------------------------------------------------------
// Multi-host SITA-U (extension).
//
// The paper stops at the 2-host cutoff plus host grouping (§5) because "the
// search space for the optimal and fair cutoffs becomes much larger making
// the search computationally expensive". With the analytic scoring this is
// no longer true: coordinate descent on the h-1 cutoffs (parameterized by
// the load fractions they induce) converges in a handful of sweeps. This
// implements the "obvious way" extension the paper describes, so the
// grouped approximation can be measured against the real thing
// (bench_ablation_multihost_sita.cpp).

/// Result of a multi-cutoff search on h = cutoffs.size()+1 hosts.
struct MultiCutoffResult {
  std::vector<double> cutoffs;
  SitaMetrics metrics;
  std::vector<double> host_load_fractions;
  bool feasible = false;
  int sweeps = 0;  ///< coordinate-descent sweeps until convergence
};

/// Minimizes overall mean slowdown over all h-1 cutoffs (SITA-U-opt for h
/// hosts). Starts from SITA-E cutoffs. Requires h >= 2.
[[nodiscard]] MultiCutoffResult find_sita_u_opt_multi(const SizeModel& model,
                                                      double lambda,
                                                      std::size_t h,
                                                      int max_sweeps = 40);

/// Equalizes the per-host expected slowdowns over all h-1 cutoffs
/// (SITA-U-fair for h hosts) by coordinate root-finding: cutoff i is moved
/// to equalize E[S_i] and E[S_{i+1}], iterated to a fixed point.
[[nodiscard]] MultiCutoffResult find_sita_u_fair_multi(const SizeModel& model,
                                                       double lambda,
                                                       std::size_t h,
                                                       int max_sweeps = 60);

}  // namespace distserv::queueing
