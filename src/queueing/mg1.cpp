#include "queueing/mg1.hpp"

#include <cmath>
#include <limits>

#include "stats/moments.hpp"
#include "util/contracts.hpp"

namespace distserv::queueing {

ServiceMoments ServiceMoments::of(const dist::Distribution& d) {
  ServiceMoments s;
  s.m1 = d.moment(1.0);
  s.m2 = d.moment(2.0);
  s.m3 = d.moment(3.0);
  s.inv1 = d.moment(-1.0);
  s.inv2 = d.moment(-2.0);
  return s;
}

ServiceMoments ServiceMoments::of_samples(std::span<const double> xs) {
  DS_EXPECTS(!xs.empty());
  stats::RawMoments acc;  // default exponent set {1,2,3,-1,-2}
  for (double x : xs) acc.add(x);
  ServiceMoments s;
  s.m1 = acc.moment(1.0);
  s.m2 = acc.moment(2.0);
  s.m3 = acc.moment(3.0);
  s.inv1 = acc.moment(-1.0);
  s.inv2 = acc.moment(-2.0);
  return s;
}

double ServiceMoments::scv() const noexcept {
  if (m1 <= 0.0) return 0.0;
  return m2 / (m1 * m1) - 1.0;
}

Mg1Metrics Mg1Metrics::unstable(double rho) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Mg1Metrics m;
  m.rho = rho;
  m.mean_waiting = kInf;
  m.m2_waiting = kInf;
  m.var_waiting = kInf;
  m.mean_response = kInf;
  m.var_response = kInf;
  m.mean_slowdown = kInf;
  m.var_slowdown = kInf;
  m.mean_queue_len = kInf;
  m.stable = false;
  return m;
}

Mg1Metrics mg1_fcfs(double lambda, const ServiceMoments& s) {
  DS_EXPECTS(lambda > 0.0);
  DS_EXPECTS(s.m1 > 0.0);
  const double rho = lambda * s.m1;
  if (rho >= 1.0) return Mg1Metrics::unstable(rho);

  Mg1Metrics m;
  m.rho = rho;
  m.stable = true;
  // Pollaczek–Khinchine.
  m.mean_waiting = lambda * s.m2 / (2.0 * (1.0 - rho));
  // Second moment of FCFS waiting time (Takács).
  m.m2_waiting = 2.0 * m.mean_waiting * m.mean_waiting +
                 lambda * s.m3 / (3.0 * (1.0 - rho));
  m.var_waiting = m.m2_waiting - m.mean_waiting * m.mean_waiting;
  m.mean_response = m.mean_waiting + s.m1;
  const double var_x = s.m2 - s.m1 * s.m1;
  m.var_response = m.var_waiting + var_x;  // W independent of own X in FCFS
  m.mean_slowdown = m.mean_waiting * s.inv1 + 1.0;
  const double m2_slowdown =
      m.m2_waiting * s.inv2 + 2.0 * m.mean_waiting * s.inv1 + 1.0;
  m.var_slowdown = m2_slowdown - m.mean_slowdown * m.mean_slowdown;
  m.mean_queue_len = lambda * m.mean_waiting;
  return m;
}

}  // namespace distserv::queueing
