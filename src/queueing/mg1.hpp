// M/G/1/FCFS analysis — Theorem 1 of the paper (Pollaczek–Khinchine) plus
// the second-moment extensions needed for variance of slowdown.
//
// For an M/G/1 FCFS queue with arrival rate lambda and service time X:
//   E[W]   = lambda E[X^2] / (2 (1 - rho)),          rho = lambda E[X]
//   E[W^2] = 2 E[W]^2 + lambda E[X^3] / (3 (1 - rho))
// In FCFS the waiting time W of a job is independent of its own size X, so
// with slowdown S = (W + X)/X = W/X + 1:
//   E[S]   = E[W] E[1/X] + 1
//   E[S^2] = E[W^2] E[1/X^2] + 2 E[W] E[1/X] + 1
// (The paper's Theorem 1 writes E{S} = E{W} E{X^-1}, i.e. without the +1;
// we include it so that analysis matches the simulator's response/size
// definition exactly. The comparison between policies is unaffected.)
#pragma once

#include <span>

#include "dist/distribution.hpp"

namespace distserv::queueing {

/// The service-time moments consumed by the FCFS analysis.
struct ServiceMoments {
  double m1 = 0.0;    ///< E[X]
  double m2 = 0.0;    ///< E[X^2]
  double m3 = 0.0;    ///< E[X^3]
  double inv1 = 0.0;  ///< E[1/X]
  double inv2 = 0.0;  ///< E[1/X^2]

  /// Plug-in moments of an analytic distribution (may contain +inf).
  [[nodiscard]] static ServiceMoments of(const dist::Distribution& d);

  /// Plug-in moments of an empirical sample; requires all sizes > 0.
  [[nodiscard]] static ServiceMoments of_samples(std::span<const double> xs);

  /// Squared coefficient of variation implied by (m1, m2).
  [[nodiscard]] double scv() const noexcept;
};

/// Steady-state FCFS metrics.
struct Mg1Metrics {
  double rho = 0.0;            ///< utilization
  double mean_waiting = 0.0;   ///< E[W]
  double m2_waiting = 0.0;     ///< E[W^2]
  double var_waiting = 0.0;    ///< Var[W]
  double mean_response = 0.0;  ///< E[R] = E[W] + E[X]
  double var_response = 0.0;   ///< Var[R] = Var[W] + Var[X]
  double mean_slowdown = 0.0;  ///< E[S], S = R/X
  double var_slowdown = 0.0;   ///< Var[S]
  double mean_queue_len = 0.0; ///< E[Q] = lambda E[W] (Little)
  bool stable = false;         ///< rho < 1

  /// All +inf metrics (used for infeasible configurations, rho >= 1).
  [[nodiscard]] static Mg1Metrics unstable(double rho);
};

/// Evaluates the M/G/1/FCFS queue. Requires lambda > 0 and valid moments
/// (m1 > 0). If rho >= 1 returns Mg1Metrics::unstable.
[[nodiscard]] Mg1Metrics mg1_fcfs(double lambda, const ServiceMoments& s);

}  // namespace distserv::queueing
