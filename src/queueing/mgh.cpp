#include "queueing/mgh.hpp"

#include <limits>

#include "queueing/mmh.hpp"
#include "util/contracts.hpp"

namespace distserv::queueing {

MghMetrics mgh_approx(std::size_t h, double lambda, const ServiceMoments& s) {
  DS_EXPECTS(h >= 1);
  DS_EXPECTS(lambda > 0.0 && s.m1 > 0.0);
  MghMetrics m;
  m.rho = lambda * s.m1 / static_cast<double>(h);
  if (m.rho >= 1.0) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    m.mean_waiting = kInf;
    m.mean_response = kInf;
    m.mean_slowdown = kInf;
    m.mean_queue_len = kInf;
    m.stable = false;
    return m;
  }
  const MmhMetrics base = mmh(h, lambda, 1.0 / s.m1);
  DS_ASSERT(base.stable);
  m.stable = true;
  m.mean_waiting = 0.5 * (s.scv() + 1.0) * base.mean_waiting;
  m.mean_response = m.mean_waiting + s.m1;
  m.mean_slowdown = m.mean_waiting * s.inv1 + 1.0;
  m.mean_queue_len = lambda * m.mean_waiting;
  return m;
}

}  // namespace distserv::queueing
