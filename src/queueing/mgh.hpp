// M/G/h approximation — the analytic model of Least-Work-Left (equivalently
// Central-Queue) that the paper uses in §3.3.
//
// We use the Lee–Longton scaling of the M/M/h waiting time:
//   E[W_{M/G/h}] ~= ((C^2 + 1)/2) * E[W_{M/M/h}]
// The paper's equation scales queue length by E[X^2]/E[X]^2 = C^2 + 1, i.e.
// omits the 1/2; both are heuristics and agree within a factor of 2, but the
// Lee–Longton form is exact for h = 1 (it reduces to Pollaczek–Khinchine),
// so that is what we implement. Slowdown again uses the FCFS independence of
// waiting time and own size: E[S] = E[W] E[1/X] + 1.
#pragma once

#include <cstddef>

#include "queueing/mg1.hpp"

namespace distserv::queueing {

/// Approximate steady-state M/G/h metrics.
struct MghMetrics {
  double rho = 0.0;
  double mean_waiting = 0.0;
  double mean_response = 0.0;
  double mean_slowdown = 0.0;
  double mean_queue_len = 0.0;
  bool stable = false;
};

/// Evaluates the approximation for arrival rate lambda at h hosts with
/// service moments s. Returns all-infinite metrics when rho >= 1.
[[nodiscard]] MghMetrics mgh_approx(std::size_t h, double lambda,
                                    const ServiceMoments& s);

}  // namespace distserv::queueing
