#include "queueing/mmh.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace distserv::queueing {

double erlang_c(std::size_t h, double a) {
  DS_EXPECTS(h >= 1);
  DS_EXPECTS(a > 0.0 && a < static_cast<double>(h));
  // Numerically stable recurrence on the inverse of the Erlang-B blocking
  // probability: invB_0 = 1; invB_k = 1 + (k/a) invB_{k-1}.
  double inv_b = 1.0;
  for (std::size_t k = 1; k <= h; ++k) {
    inv_b = 1.0 + (static_cast<double>(k) / a) * inv_b;
  }
  const double b = 1.0 / inv_b;  // Erlang-B
  const double rho = a / static_cast<double>(h);
  return b / (1.0 - rho * (1.0 - b));
}

MmhMetrics mmh(std::size_t h, double lambda, double mu) {
  DS_EXPECTS(h >= 1);
  DS_EXPECTS(lambda > 0.0 && mu > 0.0);
  const double a = lambda / mu;
  const double hh = static_cast<double>(h);
  MmhMetrics m;
  m.rho = a / hh;
  if (a >= hh) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    m.p_wait = 1.0;
    m.mean_waiting = kInf;
    m.mean_response = kInf;
    m.mean_queue_len = kInf;
    m.stable = false;
    return m;
  }
  m.stable = true;
  m.p_wait = erlang_c(h, a);
  m.mean_waiting = m.p_wait / (hh * mu - lambda);
  m.mean_response = m.mean_waiting + 1.0 / mu;
  m.mean_queue_len = lambda * m.mean_waiting;
  return m;
}

}  // namespace distserv::queueing
