// M/M/h analysis: Erlang-C delay probability and mean waiting time. Used as
// the base of the M/G/h approximation that models the Least-Work-Left /
// Central-Queue policy (the two are equivalent; see [11] and our property
// test), and directly for sanity checks of the simulator.
#pragma once

#include <cstddef>

namespace distserv::queueing {

/// Erlang-C: probability an arrival must wait in an M/M/h queue with
/// offered load a = lambda/mu (Erlangs). Requires h >= 1 and 0 < a < h.
[[nodiscard]] double erlang_c(std::size_t h, double a);

/// Steady-state M/M/h metrics.
struct MmhMetrics {
  double rho = 0.0;            ///< a/h
  double p_wait = 0.0;         ///< Erlang-C
  double mean_waiting = 0.0;   ///< E[W]
  double mean_response = 0.0;  ///< E[W] + 1/mu
  double mean_queue_len = 0.0; ///< E[Q] waiting only
  bool stable = false;
};

/// Evaluates M/M/h with arrival rate lambda and per-server service rate mu.
/// Returns an all-infinite result when lambda >= h*mu.
[[nodiscard]] MmhMetrics mmh(std::size_t h, double lambda, double mu);

}  // namespace distserv::queueing
