#include "queueing/policy_analysis.hpp"

#include <limits>

#include "util/contracts.hpp"

namespace distserv::queueing {

Mg1Metrics analyze_random(const SizeModel& model, double lambda,
                          std::size_t h) {
  DS_EXPECTS(lambda > 0.0 && h >= 1);
  const ServiceMoments s = model.overall_moments();
  return mg1_fcfs(lambda / static_cast<double>(h), s);
}

RoundRobinMetrics analyze_round_robin(const SizeModel& model, double lambda,
                                      std::size_t h) {
  DS_EXPECTS(lambda > 0.0 && h >= 1);
  const ServiceMoments s = model.overall_moments();
  const double lambda_host = lambda / static_cast<double>(h);
  RoundRobinMetrics m;
  m.rho = lambda_host * s.m1;
  if (m.rho >= 1.0) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    m.mean_waiting = kInf;
    m.mean_response = kInf;
    m.mean_slowdown = kInf;
    m.stable = false;
    return m;
  }
  m.stable = true;
  // Kingman: E[W] ~= (rho/(1-rho)) * (Ca^2 + Cs^2)/2 * E[X]; a host under
  // Round-Robin sees Erlang-h interarrivals, Ca^2 = 1/h.
  const double ca2 = 1.0 / static_cast<double>(h);
  const double cs2 = s.scv();
  m.mean_waiting =
      (m.rho / (1.0 - m.rho)) * 0.5 * (ca2 + cs2) * s.m1;
  m.mean_response = m.mean_waiting + s.m1;
  m.mean_slowdown = m.mean_waiting * s.inv1 + 1.0;
  return m;
}

MghMetrics analyze_lwl(const SizeModel& model, double lambda, std::size_t h) {
  DS_EXPECTS(lambda > 0.0 && h >= 1);
  return mgh_approx(h, lambda, model.overall_moments());
}

SitaMetrics analyze_sita_e(const SizeModel& model, double lambda,
                           std::size_t h) {
  DS_EXPECTS(lambda > 0.0 && h >= 2);
  return analyze_sita(model, lambda, sita_e_cutoffs(model, h));
}

}  // namespace distserv::queueing
