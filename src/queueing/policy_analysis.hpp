// Closed-form / approximate analysis of the load-balancing task assignment
// policies (paper §3.3 and appendix A, Figure 8).
//
//   Random      — Bernoulli splitting: each host is an independent M/G/1
//                 with rate lambda/h and the *unreduced* service variance.
//   Round-Robin — each host sees an E_h/G/1 queue; we approximate with
//                 Kingman's GI/G/1 bound using interarrival scv 1/h.
//   LWL         — equivalent to Central-Queue = M/G/h; Lee–Longton
//                 approximation (see mgh.hpp).
//   SITA-E      — exact per-host M/G/1 via analyze_sita at load-equalizing
//                 cutoffs.
#pragma once

#include <cstddef>

#include "queueing/mg1.hpp"
#include "queueing/mgh.hpp"
#include "queueing/sita_analysis.hpp"

namespace distserv::queueing {

/// Random splitting: returns the per-host (= job-average) M/G/1 metrics.
[[nodiscard]] Mg1Metrics analyze_random(const SizeModel& model, double lambda,
                                        std::size_t h);

/// Round-Robin: Kingman-approximate mean metrics (means only — variance is
/// not available from the two-moment bound).
struct RoundRobinMetrics {
  double rho = 0.0;
  double mean_waiting = 0.0;
  double mean_response = 0.0;
  double mean_slowdown = 0.0;
  bool stable = false;
};
[[nodiscard]] RoundRobinMetrics analyze_round_robin(const SizeModel& model,
                                                    double lambda,
                                                    std::size_t h);

/// Least-Work-Left / Central-Queue: M/G/h approximation.
[[nodiscard]] MghMetrics analyze_lwl(const SizeModel& model, double lambda,
                                     std::size_t h);

/// SITA-E at load-equalizing cutoffs.
[[nodiscard]] SitaMetrics analyze_sita_e(const SizeModel& model,
                                         double lambda, std::size_t h);

}  // namespace distserv::queueing
