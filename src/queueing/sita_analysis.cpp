#include "queueing/sita_analysis.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace distserv::queueing {

SitaMetrics analyze_sita(const SizeModel& model, double lambda,
                         const std::vector<double>& cutoffs) {
  DS_EXPECTS(lambda > 0.0);
  for (std::size_t i = 1; i < cutoffs.size(); ++i) {
    DS_EXPECTS(cutoffs[i - 1] < cutoffs[i]);
  }
  const std::size_t h = cutoffs.size() + 1;
  const double total_m1 = model.partial_moment(1.0, 0.0, model.max_size());

  SitaMetrics out;
  out.hosts.reserve(h);
  out.stable = true;
  double mean_s = 0.0, m2_s = 0.0;
  double mean_r = 0.0, m2_r = 0.0;
  double mean_w = 0.0;

  for (std::size_t i = 0; i < h; ++i) {
    SitaHostMetrics hm;
    hm.size_lo = (i == 0) ? 0.0 : cutoffs[i - 1];
    hm.size_hi = (i == h - 1) ? model.max_size() : cutoffs[i];
    hm.job_fraction = model.probability(hm.size_lo, hm.size_hi);
    if (hm.job_fraction <= 0.0) {
      out.stable = false;
      out.hosts.push_back(hm);
      continue;
    }
    hm.load_fraction =
        model.partial_moment(1.0, hm.size_lo, hm.size_hi) / total_m1;
    const ServiceMoments cond =
        model.conditional_moments(hm.size_lo, hm.size_hi);
    const double lambda_i = lambda * hm.job_fraction;
    hm.mg1 = mg1_fcfs(lambda_i, cond);
    if (!hm.mg1.stable) out.stable = false;
    out.hosts.push_back(hm);
  }

  if (!out.stable) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    out.mean_slowdown = kInf;
    out.var_slowdown = kInf;
    out.mean_response = kInf;
    out.var_response = kInf;
    out.mean_waiting = kInf;
    out.fairness_gap = kInf;
    return out;
  }

  // Job-averaged mixture moments: a random job lands on host i with
  // probability job_fraction_i, so E[S] = sum p_i E[S_i] and
  // E[S^2] = sum p_i E[S_i^2] (then Var = E[S^2] - E[S]^2).
  for (const SitaHostMetrics& hm : out.hosts) {
    const double p = hm.job_fraction;
    const Mg1Metrics& m = hm.mg1;
    mean_s += p * m.mean_slowdown;
    m2_s += p * (m.var_slowdown + m.mean_slowdown * m.mean_slowdown);
    mean_r += p * m.mean_response;
    m2_r += p * (m.var_response + m.mean_response * m.mean_response);
    mean_w += p * m.mean_waiting;
  }
  out.mean_slowdown = mean_s;
  out.var_slowdown = m2_s - mean_s * mean_s;
  out.mean_response = mean_r;
  out.var_response = m2_r - mean_r * mean_r;
  out.mean_waiting = mean_w;

  double gap = 0.0;
  for (const SitaHostMetrics& hm : out.hosts) {
    gap = std::max(gap, std::abs(hm.mg1.mean_slowdown - mean_s) / mean_s);
  }
  out.fairness_gap = gap;
  return out;
}

std::vector<double> sita_e_cutoffs(const SizeModel& model, std::size_t h) {
  DS_EXPECTS(h >= 2);
  std::vector<double> cutoffs;
  cutoffs.reserve(h - 1);
  for (std::size_t i = 1; i < h; ++i) {
    cutoffs.push_back(model.load_quantile(static_cast<double>(i) /
                                          static_cast<double>(h)));
  }
  return cutoffs;
}

double lambda_for_load(const SizeModel& model, double rho, std::size_t h) {
  DS_EXPECTS(rho > 0.0 && h >= 1);
  const ServiceMoments s = model.overall_moments();
  return rho * static_cast<double>(h) / s.m1;
}

}  // namespace distserv::queueing
