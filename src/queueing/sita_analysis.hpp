// Analytic evaluation of SITA policies (Size Interval Task Assignment).
//
// Under SITA with cutoffs c_1 < ... < c_{h-1}, host i receives exactly the
// jobs with size in (c_{i-1}, c_i] (c_0 = 0, c_h = inf). Poisson splitting
// makes each host an independent M/G/1 queue whose arrival rate and service
// moments follow from the size model, so every per-host and overall metric
// is available in closed form (Theorem 1 of the paper applied per host).
#pragma once

#include <vector>

#include "queueing/mg1.hpp"
#include "queueing/size_model.hpp"

namespace distserv::queueing {

/// Analysis of one host under a SITA split.
struct SitaHostMetrics {
  double size_lo = 0.0;        ///< interval lower bound (exclusive)
  double size_hi = 0.0;        ///< interval upper bound (inclusive)
  double job_fraction = 0.0;   ///< fraction of all jobs routed here
  double load_fraction = 0.0;  ///< fraction of total load routed here
  Mg1Metrics mg1;              ///< per-host FCFS metrics
};

/// Analysis of the whole SITA system.
struct SitaMetrics {
  std::vector<SitaHostMetrics> hosts;
  double mean_slowdown = 0.0;   ///< job-average E[S]
  double var_slowdown = 0.0;    ///< job-average Var[S] (law of total variance)
  double mean_response = 0.0;   ///< job-average E[R]
  double var_response = 0.0;
  double mean_waiting = 0.0;
  bool stable = false;          ///< all hosts stable

  /// Max over hosts of |E[S_i] - E[S]|/E[S]: 0 means perfectly fair in the
  /// paper's sense (equal expected slowdown for every size class).
  double fairness_gap = 0.0;
};

/// Evaluates SITA with the given cutoffs on a system of cutoffs.size()+1
/// hosts, total arrival rate `lambda`, job sizes described by `model`.
/// Cutoffs must be strictly increasing and inside the size support.
/// Intervals that would receive no jobs make the configuration invalid
/// (returns stable=false).
[[nodiscard]] SitaMetrics analyze_sita(const SizeModel& model, double lambda,
                                       const std::vector<double>& cutoffs);

/// SITA-E cutoffs: the h-1 cutoffs that equalize the load across h hosts
/// (load fraction i/h below the i-th cutoff). Requires h >= 2.
[[nodiscard]] std::vector<double> sita_e_cutoffs(const SizeModel& model,
                                                 std::size_t h);

/// The arrival rate that produces system load `rho` on `h` hosts for jobs
/// with mean size from `model`: lambda = rho*h/E[X].
[[nodiscard]] double lambda_for_load(const SizeModel& model, double rho,
                                     std::size_t h);

}  // namespace distserv::queueing
