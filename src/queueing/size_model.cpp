#include "queueing/size_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace distserv::queueing {

ServiceMoments SizeModel::overall_moments() const {
  return conditional_moments(0.0, max_size());
}

ServiceMoments SizeModel::conditional_moments(double a, double b) const {
  const double p = probability(a, b);
  DS_EXPECTS(p > 0.0);
  ServiceMoments s;
  s.m1 = partial_moment(1.0, a, b) / p;
  s.m2 = partial_moment(2.0, a, b) / p;
  s.m3 = partial_moment(3.0, a, b) / p;
  s.inv1 = partial_moment(-1.0, a, b) / p;
  s.inv2 = partial_moment(-2.0, a, b) / p;
  return s;
}

double SizeModel::load_fraction_below(double c) const {
  const double total = partial_moment(1.0, 0.0, max_size());
  DS_ASSERT(total > 0.0);
  return partial_moment(1.0, 0.0, c) / total;
}

// ---------------------------------------------------------------------------
// EmpiricalSizeModel

EmpiricalSizeModel::EmpiricalSizeModel(std::span<const double> sizes)
    : empirical_(sizes) {
  const std::vector<double>& sorted = empirical_.sorted_samples();
  for (std::size_t e = 0; e < 5; ++e) {
    prefix_[e].reserve(sorted.size() + 1);
    prefix_[e].push_back(0.0);
    // Neumaier compensation folded into the prefix build.
    double sum = 0.0, comp = 0.0;
    for (double x : sorted) {
      const double term = std::pow(x, kExponents[e]);
      const double t = sum + term;
      if (std::abs(sum) >= std::abs(term)) {
        comp += (sum - t) + term;
      } else {
        comp += (term - t) + sum;
      }
      sum = t;
      prefix_[e].push_back(sum + comp);
    }
  }
}

double EmpiricalSizeModel::prefix_lookup(std::size_t exponent_idx, double a,
                                         double b) const {
  const std::vector<double>& sorted = empirical_.sorted_samples();
  const auto lo = std::upper_bound(sorted.begin(), sorted.end(), a);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), b);
  const auto lo_idx = static_cast<std::size_t>(lo - sorted.begin());
  const auto hi_idx = static_cast<std::size_t>(hi - sorted.begin());
  const double total = prefix_[exponent_idx][hi_idx] -
                       prefix_[exponent_idx][lo_idx];
  return total / static_cast<double>(sorted.size());
}

double EmpiricalSizeModel::probability(double a, double b) const {
  return empirical_.cdf(b) - empirical_.cdf(a);
}

double EmpiricalSizeModel::partial_moment(double j, double a, double b) const {
  if (b < a) return 0.0;
  if (j == 0.0) return probability(a, b);
  for (std::size_t e = 0; e < 5; ++e) {
    if (kExponents[e] == j) return prefix_lookup(e, a, b);
  }
  return empirical_.partial_moment(j, a, b);  // rare exponents: O(n) fallback
}

double EmpiricalSizeModel::min_size() const { return empirical_.support_min(); }
double EmpiricalSizeModel::max_size() const { return empirical_.support_max(); }

std::vector<double> EmpiricalSizeModel::cutoff_grid(std::size_t n) const {
  DS_EXPECTS(n >= 2);
  const std::vector<double>& sorted = empirical_.sorted_samples();
  // Distinct values, thinned evenly to at most n candidates. Cutoffs are
  // actual observed sizes so every empirical split is reachable.
  std::vector<double> distinct;
  distinct.reserve(sorted.size());
  for (double x : sorted) {
    if (distinct.empty() || x > distinct.back()) distinct.push_back(x);
  }
  if (distinct.size() <= n) return distinct;
  std::vector<double> grid;
  grid.reserve(n);
  const double step = static_cast<double>(distinct.size() - 1) /
                      static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    grid.push_back(distinct[static_cast<std::size_t>(
        std::round(step * static_cast<double>(i)))]);
  }
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

double EmpiricalSizeModel::load_quantile(double fraction) const {
  DS_EXPECTS(fraction > 0.0 && fraction < 1.0);
  // Smallest observed size c with load_fraction_below(c) >= fraction.
  const std::vector<double>& sorted = empirical_.sorted_samples();
  std::size_t lo = 0, hi = sorted.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (empirical_.load_fraction_below(sorted[mid]) >= fraction) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return sorted[lo];
}

std::string EmpiricalSizeModel::name() const {
  return "EmpiricalSizeModel(n=" + std::to_string(empirical_.size()) + ")";
}

// ---------------------------------------------------------------------------
// BoundedParetoSizeModel

BoundedParetoSizeModel::BoundedParetoSizeModel(dist::BoundedPareto d)
    : dist_(std::move(d)) {}

double BoundedParetoSizeModel::probability(double a, double b) const {
  return dist_.cdf(b) - dist_.cdf(a);
}

double BoundedParetoSizeModel::partial_moment(double j, double a,
                                              double b) const {
  const double lo = std::clamp(a, dist_.k(), dist_.p());
  const double hi = std::clamp(b, dist_.k(), dist_.p());
  if (hi <= lo) return 0.0;
  return dist_.partial_moment(j, lo, hi);
}

double BoundedParetoSizeModel::min_size() const { return dist_.k(); }
double BoundedParetoSizeModel::max_size() const { return dist_.p(); }

std::vector<double> BoundedParetoSizeModel::cutoff_grid(std::size_t n) const {
  DS_EXPECTS(n >= 2);
  return util::logspace(dist_.k() * (1.0 + 1e-9), dist_.p() * (1.0 - 1e-9),
                        n);
}

double BoundedParetoSizeModel::load_quantile(double fraction) const {
  DS_EXPECTS(fraction > 0.0 && fraction < 1.0);
  const auto r = util::bisect(
      [&](double c) { return load_fraction_below(c) - fraction; },
      dist_.k(), dist_.p(), dist_.p() * 1e-14);
  return r.x;
}

std::string BoundedParetoSizeModel::name() const {
  return "BoundedParetoSizeModel(" + dist_.name() + ")";
}

// ---------------------------------------------------------------------------
// MixtureSizeModel

MixtureSizeModel::MixtureSizeModel(dist::BoundedParetoMixture d)
    : dist_(std::move(d)) {}

double MixtureSizeModel::probability(double a, double b) const {
  return dist_.cdf(b) - dist_.cdf(a);
}

double MixtureSizeModel::partial_moment(double j, double a, double b) const {
  return dist_.partial_moment(j, std::max(a, 0.0),
                              std::min(b, dist_.support_max()));
}

double MixtureSizeModel::min_size() const { return dist_.support_min(); }
double MixtureSizeModel::max_size() const { return dist_.support_max(); }

std::vector<double> MixtureSizeModel::cutoff_grid(std::size_t n) const {
  DS_EXPECTS(n >= 2);
  return util::logspace(dist_.support_min() * (1.0 + 1e-9),
                        dist_.support_max() * (1.0 - 1e-9), n);
}

double MixtureSizeModel::load_quantile(double fraction) const {
  DS_EXPECTS(fraction > 0.0 && fraction < 1.0);
  const auto r = util::bisect(
      [&](double c) { return load_fraction_below(c) - fraction; },
      dist_.support_min(), dist_.support_max(),
      dist_.support_max() * 1e-14);
  return r.x;
}

std::string MixtureSizeModel::name() const {
  return "MixtureSizeModel(" + dist_.name() + ")";
}

}  // namespace distserv::queueing
