// Size models: the interface between the SITA analysis and the job-size
// data. A size model answers "what fraction of jobs, and what moments, fall
// in the size interval (a, b]?" — which is all that SITA cutoff analysis
// needs. Two implementations:
//   * EmpiricalSizeModel  — exact over the training half of a trace (the
//     paper's trace-driven method);
//   * BoundedParetoSizeModel — closed form over the fitted distribution
//     (the paper's analytic method, Figs 8/9).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/bounded_pareto.hpp"
#include "dist/bp_mixture.hpp"
#include "dist/empirical.hpp"
#include "queueing/mg1.hpp"

namespace distserv::queueing {

/// Moments of the job-size distribution restricted to intervals.
class SizeModel {
 public:
  virtual ~SizeModel() = default;

  /// P(a < X <= b).
  [[nodiscard]] virtual double probability(double a, double b) const = 0;

  /// E[X^j ; a < X <= b] — the *unnormalized* restricted moment, so that
  /// probability(a,b) == partial_moment(0,a,b) and overall moments are sums
  /// over a partition.
  [[nodiscard]] virtual double partial_moment(double j, double a,
                                              double b) const = 0;

  /// Support bounds.
  [[nodiscard]] virtual double min_size() const = 0;
  [[nodiscard]] virtual double max_size() const = 0;

  /// Candidate cutoff values for grid searches, in increasing order,
  /// spanning the support. `n` is a hint, implementations may return fewer.
  [[nodiscard]] virtual std::vector<double> cutoff_grid(std::size_t n) const = 0;

  /// Size c such that the load fraction from jobs <= c equals `fraction`.
  /// Requires 0 < fraction < 1.
  [[nodiscard]] virtual double load_quantile(double fraction) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // Conveniences.

  /// Full-distribution moments (partition into one interval).
  [[nodiscard]] ServiceMoments overall_moments() const;

  /// Conditional moments of sizes in (a, b], for a per-host M/G/1 queue.
  /// Requires probability(a,b) > 0.
  [[nodiscard]] ServiceMoments conditional_moments(double a, double b) const;

  /// Fraction of the total load carried by jobs with size <= c.
  [[nodiscard]] double load_fraction_below(double c) const;
};

/// Exact model over observed sizes.
class EmpiricalSizeModel final : public SizeModel {
 public:
  explicit EmpiricalSizeModel(std::span<const double> sizes);

  [[nodiscard]] double probability(double a, double b) const override;
  [[nodiscard]] double partial_moment(double j, double a,
                                      double b) const override;
  [[nodiscard]] double min_size() const override;
  [[nodiscard]] double max_size() const override;
  [[nodiscard]] std::vector<double> cutoff_grid(std::size_t n) const override;
  [[nodiscard]] double load_quantile(double fraction) const override;
  [[nodiscard]] std::string name() const override;

 private:
  /// Prefix sums of x^j over the sorted samples for the five standard
  /// exponents, making partial_moment O(log n) — the cutoff searches issue
  /// tens of thousands of interval-moment queries.
  [[nodiscard]] double prefix_lookup(std::size_t exponent_idx,
                                     double a, double b) const;

  dist::Empirical empirical_;
  static constexpr double kExponents[5] = {1.0, 2.0, 3.0, -1.0, -2.0};
  std::vector<double> prefix_[5];
};

/// Closed-form model over a Bounded Pareto distribution.
class BoundedParetoSizeModel final : public SizeModel {
 public:
  explicit BoundedParetoSizeModel(dist::BoundedPareto d);

  [[nodiscard]] double probability(double a, double b) const override;
  [[nodiscard]] double partial_moment(double j, double a,
                                      double b) const override;
  [[nodiscard]] double min_size() const override;
  [[nodiscard]] double max_size() const override;
  [[nodiscard]] std::vector<double> cutoff_grid(std::size_t n) const override;
  [[nodiscard]] double load_quantile(double fraction) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const dist::BoundedPareto& distribution() const noexcept {
    return dist_;
  }

 private:
  dist::BoundedPareto dist_;
};

/// Closed-form model over a Bounded-Pareto mixture (the catalog's
/// body+tail trace workloads).
class MixtureSizeModel final : public SizeModel {
 public:
  explicit MixtureSizeModel(dist::BoundedParetoMixture d);

  [[nodiscard]] double probability(double a, double b) const override;
  [[nodiscard]] double partial_moment(double j, double a,
                                      double b) const override;
  [[nodiscard]] double min_size() const override;
  [[nodiscard]] double max_size() const override;
  [[nodiscard]] std::vector<double> cutoff_grid(std::size_t n) const override;
  [[nodiscard]] double load_quantile(double fraction) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const dist::BoundedParetoMixture& distribution()
      const noexcept {
    return dist_;
  }

 private:
  dist::BoundedParetoMixture dist_;
};

}  // namespace distserv::queueing
