#include "sim/audit.hpp"

#include <cmath>
#include <sstream>

#include "stats/tolerance.hpp"
#include "util/contracts.hpp"

namespace distserv::sim {

namespace {

std::string describe_job(QueueingAuditor::JobId id) {
  return "job " + std::to_string(id);
}

std::string describe_host(QueueingAuditor::HostIndex host) {
  return "host " + std::to_string(host);
}

}  // namespace

std::string AuditReport::to_string() const {
  std::ostringstream out;
  out << "audit: " << violations_total << " violation(s)"
      << (finalized ? "" : " [not finalized]") << " events=" << events
      << " arrivals=" << arrivals << " dispatches=" << dispatches
      << " holds=" << holds << " starts=" << starts
      << " completions=" << completions;
  if (host_downs + host_ups + interruptions + abandoned > 0) {
    out << " host_downs=" << host_downs << " host_ups=" << host_ups
        << " interruptions=" << interruptions << " abandoned=" << abandoned;
  }
  if (shed + reneged + migrations > 0) {
    out << " shed=" << shed << " reneged=" << reneged
        << " migrations=" << migrations;
  }
  if (power_transitions > 0) {
    out << " power_transitions=" << power_transitions;
  }
  if (probes + control_routes + rpc_sends > 0) {
    out << " probes=" << probes << " probe_losses=" << probe_losses
        << " control_routes=" << control_routes << " rpc_sends=" << rpc_sends
        << " rpc_deliveries=" << rpc_deliveries
        << " rpc_duplicates=" << rpc_duplicates
        << " rpc_request_losses=" << rpc_request_losses
        << " rpc_ack_losses=" << rpc_ack_losses
        << " rpc_timeouts=" << rpc_timeouts << " rpc_cancels=" << rpc_cancels
        << " fallbacks=" << fallbacks
        << " stale_escalations=" << stale_escalations
        << " oracle_checks=" << oracle_checks;
  }
  for (const AuditViolation& v : violations) {
    out << "\n  [" << v.invariant << "] t=" << v.time << " " << v.detail;
  }
  if (violations_total > violations.size()) {
    out << "\n  ... and " << (violations_total - violations.size())
        << " more violation(s) not recorded";
  }
  return out.str();
}

AuditFailure::AuditFailure(const AuditReport& report)
    : std::runtime_error(report.to_string()) {}

void throw_if_failed(const AuditReport& report) {
  if (!report.ok()) throw AuditFailure(report);
}

QueueingAuditor::QueueingAuditor(AuditConfig config) : config_(config) {
  DS_EXPECTS(config.accounting_rtol >= 0.0);
  DS_EXPECTS(config.time_tol >= 0.0);
}

void QueueingAuditor::set_expected_route(
    std::function<HostIndex(double)> oracle) {
  expected_route_ = std::move(oracle);
}

void QueueingAuditor::begin_run(std::size_t hosts) {
  DS_EXPECTS(hosts >= 1);
  report_ = AuditReport{};
  hosts_.assign(hosts, HostShadow{});
  probe_shadows_.clear();
  probe_hits_.clear();
  jobs_.clear();
  central_held_ = 0;
  system_n_ = 0;
  system_n_integral_ = 0.0;
  system_sojourn_sum_ = 0.0;
  system_n_changed_ = 0.0;
  last_event_ = 0.0;
  settled_dirty_ = false;
  idle_up_hosts_ = hosts;  // every host starts up, powered, idle, queue empty
  idle_with_queue_ = 0;
  down_busy_ = 0;
  off_active_ = 0;
}

void QueueingAuditor::settle_sub(const HostShadow& h) {
  if (!h.up) {
    if (h.busy) --down_busy_;
    return;
  }
  switch (h.power) {
    case PowerState::kUp:
      if (!h.busy) {
        --idle_up_hosts_;
        if (!h.queue.empty()) --idle_with_queue_;
      }
      break;
    case PowerState::kDraining:
      // A draining host owes its backlog service just like an Up host, but
      // never counts as available for centrally held work.
      if (!h.busy && !h.queue.empty()) --idle_with_queue_;
      break;
    case PowerState::kWarmingUp:
    case PowerState::kOff:
      if (h.busy || !h.queue.empty()) --off_active_;
      break;
  }
}

void QueueingAuditor::settle_add(const HostShadow& h) {
  if (!h.up) {
    if (h.busy) ++down_busy_;
    return;
  }
  switch (h.power) {
    case PowerState::kUp:
      if (!h.busy) {
        ++idle_up_hosts_;
        if (!h.queue.empty()) ++idle_with_queue_;
      }
      break;
    case PowerState::kDraining:
      if (!h.busy && !h.queue.empty()) ++idle_with_queue_;
      break;
    case PowerState::kWarmingUp:
    case PowerState::kOff:
      if (h.busy || !h.queue.empty()) ++off_active_;
      break;
  }
}

void QueueingAuditor::violate(const char* invariant, Time t,
                              std::string detail) {
  ++report_.violations_total;
  if (report_.violations.size() < config_.max_recorded_violations) {
    report_.violations.push_back(
        AuditViolation{invariant, t, std::move(detail)});
  }
}

void QueueingAuditor::advance_host_integral(HostShadow& h, Time t) {
  h.n_integral += static_cast<double>(h.n) * (t - h.n_changed);
  h.n_changed = t;
}

void QueueingAuditor::advance_system_integral(Time t) {
  system_n_integral_ += static_cast<double>(system_n_) * (t - system_n_changed_);
  system_n_changed_ = t;
}

void QueueingAuditor::check_settled(Time t) {
  // Between events the model must be settled: a host may not sit idle over
  // its own non-empty queue, and a job may not wait centrally while any
  // host is idle. (Within one event's action transient states are fine.)
  // Down hosts are exempt from both idleness checks — their queues lawfully
  // wait out the repair — but may never be in service.
  //
  // The maintained counters decide in O(1) whether any violation exists;
  // the O(h) scan below runs only to attribute it host by host. This is
  // what keeps the audited fast path flat in h (the scan used to run on
  // every time-advancing event).
  if (idle_with_queue_ == 0 && down_busy_ == 0 && off_active_ == 0 &&
      (idle_up_hosts_ == 0 || central_held_ == 0)) {
    settled_dirty_ = false;
    return;
  }
  bool any_idle = false;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const HostShadow& h = hosts_[i];
    if (!h.up) {
      if (h.busy) {
        violate("failure-semantics", t,
                describe_host(static_cast<HostIndex>(i)) +
                    " is in service while down (serving " +
                    describe_job(h.running) + ")");
      }
      continue;
    }
    if (h.power == PowerState::kOff || h.power == PowerState::kWarmingUp) {
      if (h.busy || !h.queue.empty()) {
        violate("power-semantics", t,
                describe_host(static_cast<HostIndex>(i)) + " holds work (" +
                    std::to_string(h.queue.size() + (h.busy ? 1u : 0u)) +
                    " job(s)) in power state " + to_string(h.power));
      }
      continue;
    }
    if (!h.busy && !h.queue.empty()) {
      violate("work-conservation", t,
              describe_host(static_cast<HostIndex>(i)) + " is idle with " +
                  std::to_string(h.queue.size()) + " queued job(s)" +
                  (h.power == PowerState::kDraining ? " while draining"
                                                    : ""));
    }
    // Only fully accepting hosts count as available for central work;
    // a draining host lawfully sits idle once its backlog is gone.
    if (!h.busy && h.power == PowerState::kUp) any_idle = true;
  }
  if (any_idle && central_held_ > 0) {
    violate("work-conservation", t,
            std::to_string(central_held_) +
                " job(s) held centrally while a host is idle");
  }
  settled_dirty_ = false;
}

QueueingAuditor::JobShadow* QueueingAuditor::find_job(JobId id,
                                                      const char* hook,
                                                      Time t) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    violate("state-machine", t,
            std::string(hook) + " for unknown " + describe_job(id));
    return nullptr;
  }
  return &it->second;
}

QueueingAuditor::HostShadow* QueueingAuditor::find_host(HostIndex host,
                                                        const char* hook,
                                                        Time t) {
  if (host >= hosts_.size()) {
    violate("state-machine", t,
            std::string(hook) + " names out-of-range " + describe_host(host));
    return nullptr;
  }
  return &hosts_[host];
}

void QueueingAuditor::on_event(Time t) {
  ++report_.events;
  if (t + config_.time_tol < last_event_) {
    std::ostringstream detail;
    detail << "event at t=" << t << " after t=" << last_event_;
    violate("event-monotonicity", t, detail.str());
  }
  if (settled_dirty_) check_settled(last_event_);
  if (t > last_event_) last_event_ = t;
}

void QueueingAuditor::on_arrival(JobId id, Time t, double size) {
  ++report_.arrivals;
  if (!(size > 0.0) || !std::isfinite(size)) {
    violate("state-machine", t,
            describe_job(id) + " arrives with size " + std::to_string(size));
  }
  if (t + config_.time_tol < last_event_) {
    violate("event-monotonicity", t,
            describe_job(id) + " arrives in the past");
  }
  const auto [it, inserted] = jobs_.emplace(id, JobShadow{});
  if (!inserted) {
    violate("state-machine", t, describe_job(id) + " arrived twice");
    return;
  }
  it->second.size = size;
  it->second.arrival = t;
  advance_system_integral(t);
  ++system_n_;
  settled_dirty_ = true;
}

void QueueingAuditor::on_dispatch(JobId id, HostIndex host) {
  ++report_.dispatches;
  const Time t = last_event_;
  JobShadow* job = find_job(id, "on_dispatch", t);
  HostShadow* h = find_host(host, "on_dispatch", t);
  if (h == nullptr) return;
  if (h->power != PowerState::kUp) {
    // The server must bounce (re-hold) a dispatch that races a scaling
    // decision before it reaches the host, never deliver it.
    violate("power-semantics", t,
            describe_job(id) + " dispatched to " + describe_host(host) +
                " in power state " + to_string(h->power));
  }
  if (job == nullptr) return;
  if (job->state != JobState::kArrived) {
    violate("state-machine", t,
            describe_job(id) + " dispatched after leaving the arrival state");
    return;
  }
  job->host = host;
  if (expected_route_) {
    const HostIndex want = expected_route_(job->size);
    if (want != host) {
      std::ostringstream detail;
      detail << describe_job(id) << " of size " << job->size
             << " routed to host " << host << ", cutoffs demand host "
             << want;
      violate("route-consistency", t, detail.str());
    }
  }
}

void QueueingAuditor::on_hold(JobId id) {
  ++report_.holds;
  const Time t = last_event_;
  JobShadow* job = find_job(id, "on_hold", t);
  if (job == nullptr) return;
  if (job->state != JobState::kArrived) {
    violate("state-machine", t, describe_job(id) + " held twice");
    return;
  }
  job->state = JobState::kHeld;
  ++central_held_;
  settled_dirty_ = true;
}

void QueueingAuditor::on_enqueue(JobId id, HostIndex host) {
  const Time t = last_event_;
  JobShadow* job = find_job(id, "on_enqueue", t);
  HostShadow* h = find_host(host, "on_enqueue", t);
  if (job == nullptr || h == nullptr) return;
  if (job->state != JobState::kArrived) {
    violate("state-machine", t,
            describe_job(id) + " enqueued after leaving the arrival state");
    return;
  }
  if (h->power != PowerState::kUp) {
    violate("power-semantics", t,
            describe_job(id) + " enqueued on " + describe_host(host) +
                " in power state " + to_string(h->power));
  } else if (!h->busy && h->up) {
    // Queueing at an idle *up* host breaks work conservation; queueing at
    // a down host is exactly what the failure model prescribes.
    violate("work-conservation", t,
            describe_job(id) + " queued at idle " + describe_host(host));
  }
  job->state = JobState::kQueued;
  job->host = host;
  job->joined_host = t;
  settle_sub(*h);
  h->queue.push_back(id);
  settle_add(*h);
  advance_host_integral(*h, t);
  ++h->n;
  settled_dirty_ = true;
}

void QueueingAuditor::on_start(JobId id, HostIndex host, Time t, double size,
                               StartSource source, double service_time) {
  ++report_.starts;
  JobShadow* job = find_job(id, "on_start", t);
  HostShadow* h = find_host(host, "on_start", t);
  if (job == nullptr || h == nullptr) return;
  settle_sub(*h);  // busy and possibly the queue mutate below
  if (!stats::close(job->size, size, 0.0, 0.0)) {
    violate("state-machine", t,
            describe_job(id) + " starts with size " + std::to_string(size) +
                " but arrived with size " + std::to_string(job->size));
  }
  const double service = service_time < 0.0 ? size : service_time;
  if (!(service > 0.0) || !std::isfinite(service)) {
    violate("state-machine", t,
            describe_job(id) + " starts with service time " +
                std::to_string(service));
  }
  if (h->busy) {
    violate("work-conservation", t,
            describe_job(id) + " starts on busy " + describe_host(host) +
                " (still serving " + describe_job(h->running) + ")");
  }
  if (!h->up) {
    violate("failure-semantics", t,
            describe_job(id) + " starts on down " + describe_host(host));
  }
  if (h->power == PowerState::kOff || h->power == PowerState::kWarmingUp) {
    violate("power-semantics", t,
            describe_job(id) + " starts on " + describe_host(host) +
                " in power state " + to_string(h->power));
  } else if (h->power == PowerState::kDraining &&
             source != StartSource::kHostQueue) {
    // Draining hosts finish their own backlog and nothing else.
    violate("power-semantics", t,
            describe_job(id) + " started on draining " + describe_host(host) +
                " from outside its own queue");
  }
  switch (source) {
    case StartSource::kHostQueue: {
      if (job->state != JobState::kQueued || job->host != host) {
        violate("state-machine", t,
                describe_job(id) + " started from a queue it never joined");
        break;
      }
      if (h->queue.empty()) {
        violate("fcfs-order", t,
                describe_job(id) + " started from empty queue of " +
                    describe_host(host));
        break;
      }
      if (h->queue.front() != id) {
        violate("fcfs-order", t,
                describe_host(host) + " started " + describe_job(id) +
                    " but its queue front is " + describe_job(h->queue.front()));
        // Remove it from wherever it is so later checks stay meaningful.
        for (auto it = h->queue.begin(); it != h->queue.end(); ++it) {
          if (*it == id) {
            h->queue.erase(it);
            break;
          }
        }
        break;
      }
      h->queue.pop_front();
      break;
    }
    case StartSource::kDirect: {
      if (job->state != JobState::kArrived) {
        violate("state-machine", t,
                describe_job(id) + " direct-started after leaving the "
                                   "arrival state");
        break;
      }
      advance_host_integral(*h, t);
      ++h->n;
      job->joined_host = t;
      break;
    }
    case StartSource::kCentralQueue: {
      if (job->state != JobState::kHeld) {
        violate("state-machine", t,
                describe_job(id) + " pulled from the central queue without "
                                   "being held");
        break;
      }
      if (central_held_ == 0) {
        violate("state-machine", t, "central queue underflow");
      } else {
        --central_held_;
      }
      advance_host_integral(*h, t);
      ++h->n;
      job->joined_host = t;
      break;
    }
  }
  job->state = JobState::kRunning;
  job->host = host;
  h->busy = true;
  h->running = id;
  h->service_start = t;
  h->service_time = service;
  settle_add(*h);
  settled_dirty_ = true;
}

void QueueingAuditor::on_complete(JobId id, HostIndex host, Time t) {
  ++report_.completions;
  JobShadow* job = find_job(id, "on_complete", t);
  HostShadow* h = find_host(host, "on_complete", t);
  if (job == nullptr || h == nullptr) return;
  if (job->state != JobState::kRunning || !h->busy || h->running != id) {
    violate("state-machine", t,
            describe_job(id) + " completed on " + describe_host(host) +
                " without being in service there");
    return;
  }
  if (!h->up) {
    violate("failure-semantics", t,
            describe_job(id) + " completed on down " + describe_host(host));
  }
  const Time expected = h->service_start + h->service_time;
  if (!stats::close(t, expected, config_.accounting_rtol, config_.time_tol)) {
    std::ostringstream detail;
    detail << describe_job(id) << " completed at t=" << t << ", expected t="
           << expected << " (start " << h->service_start << " + service "
           << h->service_time << ")";
    violate("service-time", t, detail.str());
  }
  settle_sub(*h);
  h->busy = false;
  settle_add(*h);
  h->busy_integral += t - h->service_start;
  h->work_completed += h->service_time;
  advance_host_integral(*h, t);
  if (h->n == 0) {
    violate("state-machine", t, describe_host(host) + " job count underflow");
  } else {
    --h->n;
  }
  h->sojourn_sum += t - job->joined_host;
  ++h->completed;
  advance_system_integral(t);
  if (system_n_ == 0) {
    violate("state-machine", t, "system job count underflow");
  } else {
    --system_n_;
  }
  system_sojourn_sum_ += t - job->arrival;
  job->state = JobState::kCompleted;
  settled_dirty_ = true;
  // Bounded mode: the job is resolved, drop its shadow. RPC-placed shadows
  // stay — a late duplicate delivery or an orphaned ack-loss timeout still
  // looks this id up, and must find a placed job, not an unknown one.
  if (config_.bounded_shadow && !job->rpc_placed) jobs_.erase(id);
}

void QueueingAuditor::on_host_down(HostIndex host, Time t) {
  ++report_.host_downs;
  HostShadow* h = find_host(host, "on_host_down", t);
  if (h == nullptr) return;
  if (!h->up) {
    violate("failure-semantics", t,
            describe_host(host) + " went down while already down");
  }
  settle_sub(*h);
  h->up = false;
  settle_add(*h);
  settled_dirty_ = true;
}

void QueueingAuditor::on_host_up(HostIndex host, Time t) {
  ++report_.host_ups;
  HostShadow* h = find_host(host, "on_host_up", t);
  if (h == nullptr) return;
  if (h->up) {
    violate("failure-semantics", t,
            describe_host(host) + " repaired while already up");
  }
  settle_sub(*h);
  h->up = true;
  settle_add(*h);
  settled_dirty_ = true;
}

void QueueingAuditor::on_interrupt(JobId id, HostIndex host, Time t,
                                   InterruptResolution resolution) {
  ++report_.interruptions;
  JobShadow* job = find_job(id, "on_interrupt", t);
  HostShadow* h = find_host(host, "on_interrupt", t);
  if (job == nullptr || h == nullptr) return;
  if (job->state != JobState::kRunning || !h->busy || h->running != id) {
    violate("failure-semantics", t,
            describe_job(id) + " interrupted on " + describe_host(host) +
                " without being in service there");
    return;
  }
  if (h->up) {
    violate("failure-semantics", t,
            describe_job(id) + " interrupted on up " + describe_host(host));
  }
  // The partial service counts as busy time that produced no completed
  // work; the utilization identity at finalize accounts for it separately.
  const double partial = t - h->service_start;
  h->busy_integral += partial;
  h->wasted_work += partial;
  settle_sub(*h);  // busy and possibly the queue mutate below
  h->busy = false;
  switch (resolution) {
    case InterruptResolution::kRequeuedFront:
      // The job stays this host's responsibility: back at the queue front,
      // n and joined_host unchanged, so FCFS order and the host's Little's
      // law integrals carry straight through the outage.
      job->state = JobState::kQueued;
      h->queue.push_front(id);
      break;
    case InterruptResolution::kResubmitted:
      // The job leaves this host and is the dispatcher's problem again —
      // exactly the arrival state. Its next dispatch RPC chain starts
      // fresh, so a second delivery is legitimate.
      job->state = JobState::kArrived;
      job->rpc_placed = false;
      advance_host_integral(*h, t);
      if (h->n == 0) {
        violate("state-machine", t,
                describe_host(host) + " job count underflow");
      } else {
        --h->n;
      }
      h->sojourn_sum += t - job->joined_host;
      break;
    case InterruptResolution::kAbandoned:
      // The job leaves the system entirely, counted by the abandoned
      // conservation term rather than completions.
      ++report_.abandoned;
      job->state = JobState::kAbandoned;
      advance_host_integral(*h, t);
      if (h->n == 0) {
        violate("state-machine", t,
                describe_host(host) + " job count underflow");
      } else {
        --h->n;
      }
      h->sojourn_sum += t - job->joined_host;
      advance_system_integral(t);
      if (system_n_ == 0) {
        violate("state-machine", t, "system job count underflow");
      } else {
        --system_n_;
      }
      system_sojourn_sum_ += t - job->arrival;
      break;
  }
  settle_add(*h);
  settled_dirty_ = true;
  // Bounded mode: an abandoned job is resolved for good; same RPC-placed
  // retention rule as on_complete.
  if (config_.bounded_shadow && resolution == InterruptResolution::kAbandoned &&
      !job->rpc_placed) {
    jobs_.erase(id);
  }
}

void QueueingAuditor::on_shed(JobId id, Time t) {
  ++report_.shed;
  JobShadow* job = find_job(id, "on_shed", t);
  if (job == nullptr) return;
  switch (job->state) {
    case JobState::kArrived:
      // Admission control, or an arriving job losing the overflow contest:
      // it never joined any host, so only the system-side accounting moves.
      break;
    case JobState::kQueued: {
      // Overflow victim: leave its host's shadow queue and integrals.
      HostShadow* h = find_host(job->host, "on_shed", t);
      if (h == nullptr) return;
      settle_sub(*h);
      for (auto it = h->queue.begin(); it != h->queue.end(); ++it) {
        if (*it == id) {
          h->queue.erase(it);
          break;
        }
      }
      settle_add(*h);
      advance_host_integral(*h, t);
      if (h->n == 0) {
        violate("state-machine", t,
                describe_host(job->host) + " job count underflow");
      } else {
        --h->n;
      }
      h->sojourn_sum += t - job->joined_host;
      break;
    }
    default:
      violate("overload-semantics", t,
              describe_job(id) +
                  " shed while neither arriving nor queued (in service, "
                  "held, or already resolved)");
      return;
  }
  advance_system_integral(t);
  if (system_n_ == 0) {
    violate("state-machine", t, "system job count underflow");
  } else {
    --system_n_;
  }
  system_sojourn_sum_ += t - job->arrival;
  job->state = JobState::kShed;
  settled_dirty_ = true;
  if (config_.bounded_shadow && !job->rpc_placed) jobs_.erase(id);
}

void QueueingAuditor::on_renege(JobId id, Time t) {
  ++report_.reneged;
  JobShadow* job = find_job(id, "on_renege", t);
  if (job == nullptr) return;
  switch (job->state) {
    case JobState::kHeld:
      if (central_held_ == 0) {
        violate("state-machine", t, "central queue underflow");
      } else {
        --central_held_;
      }
      break;
    case JobState::kQueued: {
      HostShadow* h = find_host(job->host, "on_renege", t);
      if (h == nullptr) return;
      settle_sub(*h);
      for (auto it = h->queue.begin(); it != h->queue.end(); ++it) {
        if (*it == id) {
          h->queue.erase(it);
          break;
        }
      }
      settle_add(*h);
      advance_host_integral(*h, t);
      if (h->n == 0) {
        violate("state-machine", t,
                describe_host(job->host) + " job count underflow");
      } else {
        --h->n;
      }
      h->sojourn_sum += t - job->joined_host;
      break;
    }
    default:
      violate("overload-semantics", t,
              describe_job(id) +
                  " reneged while not waiting (a job in service or already "
                  "resolved has no patience to lose)");
      return;
  }
  advance_system_integral(t);
  if (system_n_ == 0) {
    violate("state-machine", t, "system job count underflow");
  } else {
    --system_n_;
  }
  system_sojourn_sum_ += t - job->arrival;
  job->state = JobState::kReneged;
  settled_dirty_ = true;
  if (config_.bounded_shadow && !job->rpc_placed) jobs_.erase(id);
}

void QueueingAuditor::on_migrate(JobId id, HostIndex from, Time t) {
  ++report_.migrations;
  JobShadow* job = find_job(id, "on_migrate", t);
  HostShadow* h = find_host(from, "on_migrate", t);
  if (job == nullptr || h == nullptr) return;
  if (job->state != JobState::kQueued || job->host != from) {
    violate("overload-semantics", t,
            describe_job(id) + " migrated off " + describe_host(from) +
                " without being queued there");
    return;
  }
  settle_sub(*h);
  for (auto it = h->queue.begin(); it != h->queue.end(); ++it) {
    if (*it == id) {
      h->queue.erase(it);
      break;
    }
  }
  settle_add(*h);
  advance_host_integral(*h, t);
  if (h->n == 0) {
    violate("state-machine", t, describe_host(from) + " job count underflow");
  } else {
    --h->n;
  }
  h->sojourn_sum += t - job->joined_host;
  // The job stays in the system (system_n_ unchanged) and is the
  // dispatcher's problem again: back to the arrival state, a fresh RPC
  // placement legitimate — exactly the resubmission bookkeeping.
  job->state = JobState::kArrived;
  job->rpc_placed = false;
  settled_dirty_ = true;
}

void QueueingAuditor::on_power_state(HostIndex host, PowerState next, Time t) {
  ++report_.power_transitions;
  HostShadow* h = find_host(host, "on_power_state", t);
  if (h == nullptr) return;
  const PowerState prev = h->power;
  bool legal = false;
  switch (prev) {
    case PowerState::kUp:
      legal = next == PowerState::kDraining;
      break;
    case PowerState::kDraining:
      // Backlog done -> Off; or reclaimed by a scale-up while still warm.
      legal = next == PowerState::kOff || next == PowerState::kUp;
      break;
    case PowerState::kOff:
      legal = next == PowerState::kWarmingUp;
      break;
    case PowerState::kWarmingUp:
      // Warm-up completed, or cancelled by a scale-down before it fired.
      legal = next == PowerState::kUp || next == PowerState::kOff;
      break;
  }
  if (!legal) {
    violate("power-semantics", t,
            describe_host(host) + std::string(" moved ") + to_string(prev) +
                " -> " + to_string(next) +
                " outside the power state machine");
  }
  if (next == PowerState::kOff && (h->busy || !h->queue.empty())) {
    // A drain must complete its backlog before the host powers off (and a
    // warming host can never have acquired work at all).
    violate("power-semantics", t,
            describe_host(host) + " powered off holding " +
                std::to_string(h->queue.size() + (h->busy ? 1u : 0u)) +
                " job(s)");
  }
  settle_sub(*h);
  h->power = next;
  settle_add(*h);
  settled_dirty_ = true;
}

std::vector<Time>& QueueingAuditor::probe_shadow(std::uint32_t dispatcher) {
  if (dispatcher >= probe_shadows_.size()) {
    probe_shadows_.resize(dispatcher + 1);
    probe_hits_.resize(dispatcher + 1, 0);
  }
  std::vector<Time>& shadow = probe_shadows_[dispatcher];
  if (shadow.size() != hosts_.size()) shadow.assign(hosts_.size(), 0.0);
  return shadow;
}

void QueueingAuditor::check_owner(JobShadow& job, JobId id,
                                  std::uint32_t dispatcher, const char* hook,
                                  Time t) {
  if (!job.dispatcher_pinned) {
    job.dispatcher = dispatcher;
    job.dispatcher_pinned = true;
    return;
  }
  if (job.dispatcher != dispatcher) {
    std::ostringstream detail;
    detail << describe_job(id) << " owned by dispatcher " << job.dispatcher
           << " but " << hook << " came from dispatcher " << dispatcher;
    violate("dispatcher-ownership", t, detail.str());
  }
}

void QueueingAuditor::on_probe(HostIndex host, Time t, bool lost,
                               std::uint32_t dispatcher) {
  ++report_.probes;
  if (find_host(host, "on_probe", t) == nullptr) return;
  if (lost) {
    ++report_.probe_losses;
    return;  // the previous observation stays in place
  }
  std::vector<Time>& shadow = probe_shadow(dispatcher);
  if (t + config_.time_tol < shadow[host]) {
    violate("event-monotonicity", t,
            describe_host(host) + " probed in the past by dispatcher " +
                std::to_string(dispatcher));
  }
  shadow[host] = t;
  ++probe_hits_[dispatcher];
}

void QueueingAuditor::on_control_route(JobId id, Time t, double age,
                                       double bound, bool stale_sensitive,
                                       std::uint32_t level,
                                       std::uint32_t dispatcher) {
  ++report_.control_routes;
  JobShadow* job = find_job(id, "on_control_route", t);
  if (job == nullptr) return;
  check_owner(*job, id, dispatcher, "on_control_route", t);
  if (level == 0) job->last_primary_route = t;
  // Shadow recomputation: the oldest successful probe by *this dispatcher*
  // over all hosts must reproduce the snapshot age the server claims it
  // routed under — each dispatcher's kObserved table is fed only by its own
  // probe stream. Before the dispatcher's first probe the shadow cannot
  // distinguish snapshots-disabled (reported age 0) from
  // all-observations-at-t=0, so the check arms per dispatcher.
  if (dispatcher < probe_hits_.size() && probe_hits_[dispatcher] > 0) {
    Time oldest = t;
    for (const Time last : probe_shadows_[dispatcher]) {
      oldest = std::min(oldest, last);
    }
    const double expected = t - oldest;
    if (!stats::close(age, expected, config_.accounting_rtol,
                      config_.time_tol)) {
      std::ostringstream detail;
      detail << describe_job(id) << " routed by dispatcher " << dispatcher
             << " under reported snapshot age " << age
             << ", probe stream implies " << expected;
      violate("snapshot-age", t, detail.str());
    }
  }
  if (level == 0 && stale_sensitive && bound > 0.0 &&
      age > bound + config_.time_tol) {
    std::ostringstream detail;
    detail << describe_job(id) << " routed by a state-sensitive policy from "
           << "a snapshot aged " << age << " past the bound " << bound
           << " without falling back";
    violate("stale-dispatch", t, detail.str());
  }
}

void QueueingAuditor::on_rpc_send(JobId id, HostIndex host,
                                  std::uint32_t attempt, Time t,
                                  std::uint32_t dispatcher) {
  ++report_.rpc_sends;
  JobShadow* job = find_job(id, "on_rpc_send", t);
  if (job == nullptr) return;
  if (find_host(host, "on_rpc_send", t) == nullptr) return;
  check_owner(*job, id, dispatcher, "on_rpc_send", t);
  (void)attempt;
}

void QueueingAuditor::on_oracle(JobId id, Time t) {
  ++report_.oracle_checks;
  JobShadow* job = find_job(id, "on_oracle", t);
  if (job == nullptr) return;
  // The oracle is a side-effect-free re-evaluation inside the job's
  // primary-level routing decision: it must fire at the same instant as
  // that route, never standalone or after the fact.
  if (job->last_primary_route < 0.0 ||
      std::abs(t - job->last_primary_route) > config_.time_tol) {
    std::ostringstream detail;
    detail << describe_job(id) << " oracle comparison at t=" << t
           << " outside a primary-level routing decision";
    violate("misroute-oracle", t, detail.str());
  }
}

void QueueingAuditor::on_rpc_outcome(JobId id, RpcOutcome outcome, Time t) {
  JobShadow* job = find_job(id, "on_rpc_outcome", t);
  switch (outcome) {
    case RpcOutcome::kDelivered:
      ++report_.rpc_deliveries;
      if (job != nullptr) {
        if (job->rpc_placed) {
          violate("at-most-once-enqueue", t,
                  describe_job(id) +
                      " delivered twice without duplicate suppression");
        }
        job->rpc_placed = true;
      }
      break;
    case RpcOutcome::kDuplicate:
      ++report_.rpc_duplicates;
      if (job != nullptr && !job->rpc_placed) {
        violate("at-most-once-enqueue", t,
                describe_job(id) +
                    " duplicate-suppressed but was never placed");
      }
      break;
    case RpcOutcome::kRequestLost:
      ++report_.rpc_request_losses;
      break;
    case RpcOutcome::kAckLost:
      ++report_.rpc_ack_losses;
      break;
    case RpcOutcome::kTimeout:
      ++report_.rpc_timeouts;
      break;
    case RpcOutcome::kCancelled:
      ++report_.rpc_cancels;
      break;
  }
}

void QueueingAuditor::on_fallback(JobId id, std::uint32_t from_level,
                                  std::uint32_t to_level,
                                  FallbackReason reason, Time t) {
  ++report_.fallbacks;
  if (reason == FallbackReason::kStale) ++report_.stale_escalations;
  if (find_job(id, "on_fallback", t) == nullptr) return;
  if (to_level != from_level + 1) {
    std::ostringstream detail;
    detail << describe_job(id) << " escalated from fallback level "
           << from_level << " to " << to_level
           << " (the chain must advance one level at a time)";
    violate("fallback-chain", t, detail.str());
  }
}

AuditReport QueueingAuditor::finalize(Time end) {
  if (settled_dirty_) check_settled(last_event_);
  // Each oracle comparison rides inside one routing decision, so the run
  // totals must obey oracle_checks <= control_routes (misroute-oracle).
  if (report_.oracle_checks > report_.control_routes) {
    violate("misroute-oracle", end,
            std::to_string(report_.oracle_checks) +
                " oracle comparison(s) but only " +
                std::to_string(report_.control_routes) +
                " control route(s)");
  }
  if (report_.arrivals !=
      report_.completions + report_.abandoned + report_.shed +
          report_.reneged) {
    violate("job-conservation", end,
            std::to_string(report_.arrivals) + " arrival(s) but " +
                std::to_string(report_.completions) + " completion(s) + " +
                std::to_string(report_.abandoned) + " abandonment(s) + " +
                std::to_string(report_.shed) + " shed + " +
                std::to_string(report_.reneged) + " reneged");
  }
  if (central_held_ > 0) {
    violate("job-conservation", end,
            std::to_string(central_held_) +
                " job(s) still held centrally at drain");
  }
  std::uint64_t stuck = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kCompleted &&
        job.state != JobState::kAbandoned && job.state != JobState::kShed &&
        job.state != JobState::kReneged) {
      ++stuck;
      if (stuck <= 4) {
        violate("job-conservation", end,
                describe_job(id) + " never completed");
      }
    }
  }
  if (stuck > 4) {
    violate("job-conservation", end,
            std::to_string(stuck - 4) + " further job(s) never completed");
  }
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    HostShadow& h = hosts_[i];
    const auto host = static_cast<HostIndex>(i);
    if (h.busy || !h.queue.empty() || h.n != 0) {
      violate("job-conservation", end,
              describe_host(host) + " not drained (busy=" +
                  std::to_string(h.busy) + ", queued=" +
                  std::to_string(h.queue.size()) + ")");
    }
    advance_host_integral(h, end);
    // Little's law at drain: the time integral of the number at the host
    // equals the summed sojourns of the jobs that passed through it
    // (L = lambda * W after dividing both sides by the run length).
    if (!stats::close(h.n_integral, h.sojourn_sum, config_.accounting_rtol,
                      config_.time_tol)) {
      std::ostringstream detail;
      detail << describe_host(host) << " integral of jobs-in-system "
             << h.n_integral << " != summed sojourn " << h.sojourn_sum;
      violate("littles-law", end, detail.str());
    }
    // Run-to-completion: busy time must equal the work completed plus the
    // partial service discarded at interruptions (fail-stop loses it).
    if (!stats::close(h.busy_integral, h.work_completed + h.wasted_work,
                      config_.accounting_rtol, config_.time_tol)) {
      std::ostringstream detail;
      detail << describe_host(host) << " busy time " << h.busy_integral
             << " != completed work " << h.work_completed
             << " + wasted work " << h.wasted_work;
      violate("utilization", end, detail.str());
    }
  }
  advance_system_integral(end);
  if (!stats::close(system_n_integral_, system_sojourn_sum_,
                    config_.accounting_rtol, config_.time_tol)) {
    std::ostringstream detail;
    detail << "system integral of jobs-in-system " << system_n_integral_
           << " != summed response " << system_sojourn_sum_;
    violate("littles-law", end, detail.str());
  }
  // RPC accounting: every send resolves exactly one way, and every timeout
  // traces back to a loss (request or ack). Holds at drain because the
  // server never finishes with a dispatch still in flight.
  if (report_.rpc_sends != report_.rpc_deliveries + report_.rpc_duplicates +
                               report_.rpc_request_losses) {
    violate("rpc-accounting", end,
            std::to_string(report_.rpc_sends) + " RPC send(s) but " +
                std::to_string(report_.rpc_deliveries) + " delivery(ies) + " +
                std::to_string(report_.rpc_duplicates) + " duplicate(s) + " +
                std::to_string(report_.rpc_request_losses) +
                " request loss(es)");
  }
  // Each loss schedules one timeout, which fires, is orphaned by a chain
  // cancellation, or is still pending when the run stops at the last job
  // outcome — so timeouts + cancels can fall short of losses, never exceed.
  if (report_.rpc_timeouts + report_.rpc_cancels >
      report_.rpc_request_losses + report_.rpc_ack_losses) {
    violate("rpc-accounting", end,
            std::to_string(report_.rpc_timeouts) + " timeout(s) + " +
                std::to_string(report_.rpc_cancels) + " cancel(s) exceed " +
                std::to_string(report_.rpc_request_losses) +
                " request loss(es) + " +
                std::to_string(report_.rpc_ack_losses) + " ack loss(es)");
  }
  report_.finalized = true;
  return report_;
}

}  // namespace distserv::sim
