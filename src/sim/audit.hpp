// Online verification of queueing invariants — the simulation audit layer.
//
// The paper's conclusions rest on the simulator being a faithful FCFS
// run-to-completion model, so trust must come from structural invariants
// checked *while the model runs*, not only from endpoint comparisons against
// M/G/1 formulas. A QueueingAuditor mirrors the server's bookkeeping from a
// stream of hook calls (arrival, dispatch, enqueue, start, complete) and
// flags any step that breaks one of the invariants below. The instrumented
// server (core/server.cpp) forwards hooks only when auditing is enabled, so
// the cost when off is one branch per hook site.
//
// Invariants checked online:
//   * event-monotonicity   — hook/event times never decrease;
//   * fcfs-order           — a host serves its own queue strictly in arrival
//                            (push) order;
//   * work-conservation    — no host idles while its queue is non-empty, and
//                            no job waits centrally while any host is idle;
//   * service-time         — a job completes exactly its service time
//                            (size / host speed; size on a homogeneous
//                            fleet) after it starts, on the host that
//                            started it;
//   * route-consistency    — with an expected-route oracle installed (SITA
//                            cutoffs), every dispatch lands in the interval
//                            the oracle names;
//   * state-machine        — jobs move arrival -> (dispatch|hold) ->
//                            start -> complete exactly once;
//   * failure-semantics    — a down host never starts, serves, or completes
//                            a job; interruptions happen only to the job in
//                            service on a host that just went down; up/down
//                            transitions strictly alternate.
//   * power-semantics      — (elastic fleets, sim/autoscaler.hpp) jobs are
//                            dispatched and enqueued only on hosts in the Up
//                            power state; a Draining host may start jobs
//                            only from its own queue; power transitions
//                            follow the Off -> WarmingUp -> Up -> Draining
//                            -> Off machine; a host never powers off (or
//                            warms up) while holding queued or running work.
// Control-plane invariants (sim/control_plane.hpp; inert without it):
//   * stale-dispatch       — a state-sensitive policy never routes at its
//                            primary level from a snapshot older than the
//                            declared staleness bound (it must fall back);
//   * snapshot-age         — the snapshot age reported at each routing
//                            decision matches the age recomputed from the
//                            observed probe stream (shadow recomputation);
//   * at-most-once-enqueue — a re-delivered dispatch for an already placed
//                            job must be suppressed by the idempotency key:
//                            a second non-duplicate delivery, or a duplicate
//                            claim for a never-placed job, is a violation;
//   * fallback-chain       — escalations walk strictly forward through the
//                            fallback chain, one level at a time;
//   * dispatcher-ownership — in multi-dispatcher mode every control-plane
//                            action for a job (route, RPC send) comes from
//                            the dispatcher that owns the job; ownership is
//                            pinned by the first control hook and never
//                            changes;
//   * misroute-oracle      — the misrouting oracle fires only inside a
//                            primary-level routing decision of a known job
//                            (same job, same instant), and the total oracle
//                            comparisons never exceed the control routes.
// Overload-protection invariants (sim/overload.hpp; inert without it):
//   * overload-semantics   — only a job still waiting (queued at a host or
//                            held centrally) can renege; only an arriving or
//                            queued job can be shed; only a queued job can
//                            migrate off its host; a job in service is never
//                            shed, reneged, or migrated.
// And at finalize (drain):
//   * job-conservation     — every arrival resolves exactly one way:
//                            arrived == completed + abandoned + shed +
//                            reneged, every queue empty, every host idle;
//   * littles-law          — per host and system-wide, the time integral of
//                            the number in system equals the summed sojourn
//                            times of the jobs that passed through
//                            (equivalently L = lambda * W over the run);
//   * utilization          — each host's integrated busy time equals the
//                            summed sizes of the jobs it completed plus the
//                            partial work discarded at interruptions;
//   * rpc-accounting       — every RPC send has exactly one request outcome
//                            (delivered, duplicate, or lost), and every
//                            timeout traces back to a lost request or a
//                            lost ack.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/autoscaler.hpp"
#include "sim/event_queue.hpp"

namespace distserv::sim {

/// Knobs for the audit layer. Default-constructed = disabled (zero cost).
struct AuditConfig {
  /// Master switch; when false the server installs no auditor at all.
  bool enabled = false;
  /// Relative tolerance for accounting identities (Little's law,
  /// utilization integrals), which accumulate rounding over a run.
  double accounting_rtol = 1e-6;
  /// Absolute slack on event-time comparisons (monotonicity, completion
  /// times), covering representation error of t = start + size.
  double time_tol = 1e-9;
  /// Violations recorded verbatim in the report; further ones are only
  /// counted. Keeps a badly broken run from hoarding memory.
  std::size_t max_recorded_violations = 32;
  /// Forget a job's shadow the moment it resolves (completes or is
  /// abandoned), keeping the shadow map O(jobs in flight) instead of
  /// O(jobs) — required for streaming runs, where the audit layer must not
  /// reintroduce the per-job memory the server just shed. Shadows of
  /// RPC-placed jobs are retained either way: a late duplicate delivery or
  /// orphaned timeout still looks them up, and erasing them would turn
  /// those legitimate events into spurious unknown-job violations. The
  /// conservation and Little's-law checks already run on running counters
  /// and integrals, so finalize() loses nothing but the stuck-job scan's
  /// view of resolved jobs (which it never flags anyway).
  bool bounded_shadow = false;
};

/// One broken invariant, with enough context to reproduce it.
struct AuditViolation {
  std::string invariant;  ///< e.g. "fcfs-order", "littles-law"
  Time time = 0.0;        ///< simulation time of detection
  std::string detail;
};

/// Outcome of one audited run.
struct AuditReport {
  std::vector<AuditViolation> violations;  ///< first max_recorded ones
  std::uint64_t violations_total = 0;
  std::uint64_t events = 0;       ///< simulator events observed
  std::uint64_t arrivals = 0;
  std::uint64_t dispatches = 0;   ///< policy routed the job to a host
  std::uint64_t holds = 0;        ///< policy declined; job waited centrally
  std::uint64_t starts = 0;
  std::uint64_t completions = 0;
  // Failure-model traffic (zero when the fault model is off).
  std::uint64_t host_downs = 0;    ///< up -> down transitions observed
  std::uint64_t host_ups = 0;      ///< down -> up transitions observed
  std::uint64_t interruptions = 0; ///< in-service jobs cut by failures
  std::uint64_t abandoned = 0;     ///< jobs dropped (RecoveryMode::kAbandon)
  // Overload-protection traffic (zero when overload protection is off).
  std::uint64_t shed = 0;        ///< dropped by admission control or overflow
  std::uint64_t reneged = 0;     ///< patience deadline expired while waiting
  std::uint64_t migrations = 0;  ///< queued jobs evacuated off a host
  /// Autoscaler traffic (zero when the fleet is not elastic).
  std::uint64_t power_transitions = 0;
  // Control-plane traffic (zero when the control plane is off).
  std::uint64_t probes = 0;             ///< state probes observed
  std::uint64_t probe_losses = 0;
  std::uint64_t control_routes = 0;     ///< routing decisions under snapshots
  std::uint64_t rpc_sends = 0;          ///< dispatch RPC sends (incl. retries)
  std::uint64_t rpc_deliveries = 0;     ///< first deliveries (job placed)
  std::uint64_t rpc_duplicates = 0;     ///< idempotency-suppressed deliveries
  std::uint64_t rpc_request_losses = 0;
  std::uint64_t rpc_ack_losses = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t rpc_cancels = 0;        ///< chains dropped by a resubmission
  std::uint64_t fallbacks = 0;          ///< escalations, forced included
  std::uint64_t stale_escalations = 0;  ///< triggered by the staleness bound
  std::uint64_t oracle_checks = 0;      ///< misrouting-oracle comparisons
  bool finalized = false;         ///< drain-time checks ran

  [[nodiscard]] bool ok() const noexcept {
    return violations_total == 0 && finalized;
  }
  /// Human-readable multi-line summary (counters + every recorded
  /// violation); the message of AuditFailure.
  [[nodiscard]] std::string to_string() const;
};

/// Thrown by throw_if_failed when a report contains violations.
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(const AuditReport& report);
};

/// Throws AuditFailure (carrying report.to_string()) unless report.ok().
void throw_if_failed(const AuditReport& report);

/// Mirrors a distributed FCFS run-to-completion server from hook calls and
/// checks the invariants listed above. Generic over the server: it sees
/// only job ids, host indices, sizes, and times.
class QueueingAuditor {
 public:
  using JobId = std::uint64_t;
  using HostIndex = std::uint32_t;

  /// Where a job was taken from when service began.
  enum class StartSource {
    kDirect,        ///< routed (or centrally received) straight into service
    kHostQueue,     ///< popped from the serving host's own FCFS queue
    kCentralQueue,  ///< pulled from the dispatcher's central queue
  };

  /// What happened to the in-service job when its host failed.
  enum class InterruptResolution {
    kResubmitted,   ///< back to the dispatcher (re-routed like an arrival)
    kRequeuedFront, ///< pushed to the front of the failed host's own queue
    kAbandoned,     ///< dropped; leaves the system without completing
  };

  /// Outcome of one dispatch RPC event (control plane).
  enum class RpcOutcome {
    kDelivered,    ///< request arrived; the job was placed
    kDuplicate,    ///< request arrived for an already placed job: suppressed
    kRequestLost,  ///< request lost in flight; nothing placed
    kAckLost,      ///< placed, but the ack never made it back
    kTimeout,      ///< the dispatcher's timeout for a loss fired
    kCancelled,    ///< chain dropped: the job was interrupted and resubmitted
  };

  /// Why the dispatcher escalated to a fallback level.
  enum class FallbackReason {
    kStale,      ///< snapshot older than the policy's staleness bound
    kExhausted,  ///< retry budget exhausted with the job unplaced
    kForced,     ///< fallback chain exhausted too: reliable forced placement
  };

  explicit QueueingAuditor(AuditConfig config);

  /// Installs an oracle mapping job size -> expected host (SITA cutoff
  /// routing). Every on_dispatch is checked against it. Survives
  /// begin_run; clear with set_expected_route(nullptr).
  void set_expected_route(std::function<HostIndex(double)> oracle);

  /// Resets all shadow state for a fresh run on `hosts` hosts.
  void begin_run(std::size_t hosts);

  // --- hooks, called by the instrumented simulator/server ---

  /// Every simulator event, before its action runs (monotonicity + settled
  /// work-conservation check when time advances).
  void on_event(Time t);
  void on_arrival(JobId id, Time t, double size);
  /// The policy routed `id` to `host` (before the queue/serve decision).
  void on_dispatch(JobId id, HostIndex host);
  /// The policy declined and no host was idle; `id` waits centrally.
  void on_hold(JobId id);
  void on_enqueue(JobId id, HostIndex host);
  /// `service_time` is the host-local duration (size / host speed); negative
  /// (the default) means "equal to size", the homogeneous-fleet case.
  void on_start(JobId id, HostIndex host, Time t, double size,
                StartSource source, double service_time = -1.0);
  void on_complete(JobId id, HostIndex host, Time t);
  // Failure-model hooks. The server calls on_host_down first, then
  // on_interrupt for the in-service job (if any).
  void on_host_down(HostIndex host, Time t);
  void on_host_up(HostIndex host, Time t);
  void on_interrupt(JobId id, HostIndex host, Time t,
                    InterruptResolution resolution);
  // Overload-protection hooks (sim/overload.hpp).
  /// `id` was shed — dropped by admission control (still in the arrival
  /// state) or by a bounded-queue overflow (arriving or already queued). A
  /// held or in-service job can never be shed (overload-semantics).
  void on_shed(JobId id, Time t);
  /// `id`'s patience deadline expired while it waited in a host queue or
  /// the central queue; it leaves the system unserved. Any other state is
  /// an overload-semantics violation.
  void on_renege(JobId id, Time t);
  /// `id` was evacuated from the queue of `from` (drain or failure) and is
  /// the dispatcher's problem again: back to the arrival state, its next
  /// placement legitimate. Legal only from the queued state.
  void on_migrate(JobId id, HostIndex from, Time t);
  /// Autoscaler hook: `host` moved to power state `next` at `t`. Checks the
  /// transition against the power state machine and that the host carries
  /// no work out of the powered states (power-semantics).
  void on_power_state(HostIndex host, PowerState next, Time t);
  // Control-plane hooks (sim/control_plane.hpp). A probe observed `host`
  // at `t` (or was lost) on behalf of `dispatcher`; the per-dispatcher
  // shadow probe times feed the snapshot-age recomputation.
  void on_probe(HostIndex host, Time t, bool lost,
                std::uint32_t dispatcher = 0);
  /// A routing decision was made under snapshots: `age` is the snapshot's
  /// max_age the server used, `bound` the active staleness bound (0 =
  /// unbounded), `stale_sensitive` whether the primary policy declares
  /// state sensitivity, and `level` the fallback level that routed (0 =
  /// primary). Checks stale-dispatch, the snapshot-age shadow (against the
  /// calling dispatcher's own probe stream) and dispatcher ownership.
  void on_control_route(JobId id, Time t, double age, double bound,
                        bool stale_sensitive, std::uint32_t level,
                        std::uint32_t dispatcher = 0);
  void on_rpc_send(JobId id, HostIndex host, std::uint32_t attempt, Time t,
                   std::uint32_t dispatcher = 0);
  /// The server ran the misrouting oracle (a side-effect-free re-evaluation
  /// of the primary policy on live state) for `id`. Legal only inside the
  /// job's primary-level routing decision at this same instant
  /// (misroute-oracle).
  void on_oracle(JobId id, Time t);
  /// One RPC event for `id` (see RpcOutcome). Checks at-most-once-enqueue
  /// via the job's placed flag.
  void on_rpc_outcome(JobId id, RpcOutcome outcome, Time t);
  void on_fallback(JobId id, std::uint32_t from_level, std::uint32_t to_level,
                   FallbackReason reason, Time t);

  /// Runs the drain-time checks (job conservation, Little's law,
  /// utilization accounting) and returns the completed report. The auditor
  /// is inert afterwards until the next begin_run.
  [[nodiscard]] AuditReport finalize(Time end);

  /// The report as accumulated so far (before finalize: online checks only).
  [[nodiscard]] const AuditReport& report() const noexcept { return report_; }

  [[nodiscard]] const AuditConfig& config() const noexcept { return config_; }

 private:
  enum class JobState {
    kArrived,
    kHeld,
    kQueued,
    kRunning,
    kCompleted,
    kAbandoned,
    kShed,     ///< dropped by admission control or bounded-queue overflow
    kReneged,  ///< patience expired while waiting
  };

  struct JobShadow {
    double size = 0.0;
    Time arrival = 0.0;
    Time joined_host = 0.0;  ///< when it became this host's responsibility
    JobState state = JobState::kArrived;
    HostIndex host = 0;
    /// An RPC delivery placed this job (cleared on resubmit): the
    /// idempotency key's shadow for the at-most-once-enqueue check.
    bool rpc_placed = false;
    /// Owner dispatcher, pinned by the job's first control-plane hook;
    /// every later control hook must come from the same dispatcher
    /// (dispatcher-ownership).
    std::uint32_t dispatcher = 0;
    bool dispatcher_pinned = false;
    /// Time of the job's last primary-level control route (< 0 = never);
    /// the misrouting oracle may only fire inside such a decision.
    Time last_primary_route = -1.0;
  };

  struct HostShadow {
    std::deque<JobId> queue;  ///< waiting jobs, excluding the one in service
    bool busy = false;
    bool up = true;           ///< mirrors the failure model's host state
    /// Mirrors the autoscaler's power state (kUp forever when not elastic).
    PowerState power = PowerState::kUp;
    JobId running = 0;
    Time service_start = 0.0;
    double service_time = 0.0;  ///< host-local duration of the running job
    // Accounting integrals for the drain-time identities.
    double busy_integral = 0.0;    ///< total time in service
    double work_completed = 0.0;   ///< sum of completed sizes
    double wasted_work = 0.0;      ///< partial service lost to failures
    double n_integral = 0.0;       ///< integral of jobs-at-host over time
    double sojourn_sum = 0.0;      ///< sum of (completion - joined_host)
    std::size_t n = 0;             ///< jobs at host now (queued + running)
    Time n_changed = 0.0;
    std::uint64_t completed = 0;
  };

  void violate(const char* invariant, Time t, std::string detail);
  void advance_host_integral(HostShadow& h, Time t);
  void advance_system_integral(Time t);
  /// Remove (settle_sub) / restore (settle_add) one host's contribution to
  /// the settled-check counters; every busy/up/queue mutation of a host
  /// shadow is bracketed by the pair.
  void settle_sub(const HostShadow& h);
  void settle_add(const HostShadow& h);
  /// The settled-state conservation checks run when time strictly advances.
  /// O(1) in the clean case via the maintained counters; the O(h) scan runs
  /// only when a counter implies a violation (to emit its full detail).
  void check_settled(Time t);
  JobShadow* find_job(JobId id, const char* hook, Time t);
  HostShadow* find_host(HostIndex host, const char* hook, Time t);
  /// The per-dispatcher probe-time shadow for `dispatcher`, grown lazily
  /// (begin_run does not know the dispatcher count). One Time per host;
  /// 0.0 = never probed.
  std::vector<Time>& probe_shadow(std::uint32_t dispatcher);
  /// Pins or checks the job's owner dispatcher (dispatcher-ownership).
  void check_owner(JobShadow& job, JobId id, std::uint32_t dispatcher,
                   const char* hook, Time t);

  AuditConfig config_;
  std::function<HostIndex(double)> expected_route_;
  AuditReport report_;
  std::vector<HostShadow> hosts_;
  /// probe_shadows_[d][h] = last successful probe of host h by dispatcher
  /// d; lazily grown per dispatcher on first use. probe_hits_[d] counts
  /// dispatcher d's successful probes — the snapshot-age check arms per
  /// dispatcher once its own probe stream has produced an observation
  /// (probe times alone cannot distinguish "probed at t=0" from "never").
  std::vector<std::vector<Time>> probe_shadows_;
  std::vector<std::uint64_t> probe_hits_;
  std::unordered_map<JobId, JobShadow> jobs_;
  std::size_t central_held_ = 0;
  std::size_t system_n_ = 0;
  double system_n_integral_ = 0.0;
  double system_sojourn_sum_ = 0.0;
  Time system_n_changed_ = 0.0;
  Time last_event_ = 0.0;
  bool settled_dirty_ = false;  ///< state changed since last settled check
  // Settled-check counters (see check_settled).
  std::size_t idle_up_hosts_ = 0;    ///< up && power Up && !busy
  std::size_t idle_with_queue_ = 0;  ///< up, idle, queue non-empty (Up or
                                     ///< Draining power state — both must
                                     ///< serve their backlog)
  std::size_t down_busy_ = 0;        ///< !up && busy
  std::size_t off_active_ = 0;       ///< Off/WarmingUp holding work
};

}  // namespace distserv::sim
