#include "sim/autoscaler.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace distserv::sim {

const char* to_string(PowerState state) noexcept {
  switch (state) {
    case PowerState::kUp:
      return "Up";
    case PowerState::kWarmingUp:
      return "WarmingUp";
    case PowerState::kDraining:
      return "Draining";
    case PowerState::kOff:
      return "Off";
  }
  return "?";
}

Autoscaler::Autoscaler(const AutoscalerConfig& config, std::size_t hosts,
                       std::uint64_t seed)
    : config_(config), stream_(seed ^ config.stream_tag) {
  DS_EXPECTS(hosts >= 1);
  DS_EXPECTS(config.check_period > 0.0 && std::isfinite(config.check_period));
  DS_EXPECTS(config.scale_up_threshold > 0.0 &&
             config.scale_up_threshold <= 1.0);
  DS_EXPECTS(config.scale_down_threshold >= 0.0 &&
             config.scale_down_threshold < config.scale_up_threshold);
  DS_EXPECTS(config.window >= 1);
  DS_EXPECTS(config.warmup_delay >= 0.0 && std::isfinite(config.warmup_delay));
  DS_EXPECTS(config.min_hosts >= 1 && config.min_hosts <= hosts);
  DS_EXPECTS(config.scale_step >= 1);
  DS_EXPECTS(config.phase_jitter >= 0.0 && config.phase_jitter < 1.0);
  samples_.assign(config_.window, 0.0);
}

Time Autoscaler::first_eval_at(Time t0) {
  // The phase draw is the stream's first (and only per-run) consumption;
  // with jitter 0 the stream is never touched, so jitter-free enabled runs
  // share draws with every other jitter-free run of the same config.
  double phase = 0.0;
  if (config_.phase_jitter > 0.0) {
    phase = stream_.uniform01() * config_.phase_jitter;
  }
  return t0 + config_.check_period * (1.0 + phase);
}

void Autoscaler::add_sample(double utilization) {
  DS_EXPECTS(utilization >= 0.0 && utilization <= 1.0);
  if (filled_ == config_.window) {
    sum_ -= samples_[next_];
  } else {
    ++filled_;
  }
  samples_[next_] = utilization;
  sum_ += utilization;
  next_ = (next_ + 1) % config_.window;
}

double Autoscaler::window_mean() const noexcept {
  if (filled_ == 0) return 0.0;
  const double mean = sum_ / static_cast<double>(filled_);
  // The running sum drifts by at most a few ulps; decisions compare against
  // thresholds, so clamping to [0, 1] is cosmetic but keeps reports sane.
  if (mean < 0.0) return 0.0;
  if (mean > 1.0) return 1.0;
  return mean;
}

ScaleDecision Autoscaler::decide() const noexcept {
  if (filled_ < config_.window) return ScaleDecision::kNone;
  const double mean = window_mean();
  if (mean > config_.scale_up_threshold) return ScaleDecision::kUp;
  if (mean < config_.scale_down_threshold) return ScaleDecision::kDown;
  return ScaleDecision::kNone;
}

void Autoscaler::clear_window() {
  next_ = 0;
  filled_ = 0;
  sum_ = 0.0;
}

}  // namespace distserv::sim
