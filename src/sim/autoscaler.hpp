// Elastic-fleet autoscaler — a deterministic hysteresis controller.
//
// The server samples fleet utilization once per `check_period` and feeds a
// sliding window of the last `window` samples to the controller. When the
// window is full and its mean crosses `scale_up_threshold`, powered-off
// hosts are brought back (reclaiming Draining hosts first — they are still
// warm — then WarmingUp cold starts with a `warmup_delay`); when it falls
// below `scale_down_threshold`, hosts are released Up -> Draining: they
// accept no new work but finish their backlog, then power Off. A
// `min_hosts` floor is never crossed, and the window is cleared after every
// action so a decision must be re-earned from fresh samples (hysteresis).
//
// The per-host power state machine the server drives:
//
//     Off -> WarmingUp -> Up -> Draining -> Off
//            (cancel)^--/       \--^ (reclaim)
//
// A cancelled warm-up (scale-down before the delay elapses) and a reclaimed
// drain (scale-up before the backlog clears) take the short edges; stale
// warm-up events are fenced by a per-host power epoch, in the idiom of the
// service-epoch fences the fault model uses.
//
// Determinism contract: the controller's only randomness — the phase of the
// first evaluation tick, which desynchronizes the scaler from arrival
// batches — comes from a dedicated RNG stream keyed by `stream_tag`,
// disjoint from the arrival/policy/fault/control streams. A run with the
// autoscaler disabled consumes exactly the same random numbers as before
// this subsystem existed and stays bit-identical; an enabled run is
// reproducible from (seed, AutoscalerConfig) alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dist/rng.hpp"
#include "sim/event_queue.hpp"

namespace distserv::sim {

/// Power state of a host under the autoscaler. Orthogonal to the fault
/// model's up/down: a host is *accepting* only when it is fault-up AND
/// power state kUp. Every host in a non-elastic run is kUp forever.
enum class PowerState : std::uint8_t {
  kUp,         ///< powered and accepting work (the default)
  kWarmingUp,  ///< powering on; serves nothing until the warm-up fires
  kDraining,   ///< accepts no new work, finishes its queue, then powers off
  kOff,        ///< powered down, queue empty
};

[[nodiscard]] const char* to_string(PowerState state) noexcept;

/// What one evaluation of the utilization window asked for.
enum class ScaleDecision : std::uint8_t { kNone, kUp, kDown };

/// Autoscaler knobs. Default-constructed = disabled (zero cost, and the
/// simulation is bit-identical to a build without the subsystem).
struct AutoscalerConfig {
  /// Master switch; when false the server schedules no scaler events at all.
  bool enabled = false;
  /// Sampling/evaluation period; must be > 0 when enabled.
  double check_period = 0.0;
  /// Window-mean utilization above this asks for more capacity. (0, 1].
  double scale_up_threshold = 0.75;
  /// Window-mean utilization below this releases capacity. Must be
  /// strictly below scale_up_threshold (the hysteresis band).
  double scale_down_threshold = 0.35;
  /// Sliding-window length in samples; >= 1. Decisions require a full
  /// window, and every action clears it.
  std::size_t window = 4;
  /// Delay between powering a host on and it accepting work; >= 0.
  double warmup_delay = 0.0;
  /// Fleet floor: at least this many hosts stay powered (Up or WarmingUp)
  /// no matter how idle the window looks. >= 1.
  std::size_t min_hosts = 1;
  /// Hosts powered on / released per decision; >= 1.
  std::size_t scale_step = 1;
  /// Phase of the first evaluation as a fraction of check_period, drawn
  /// uniformly from [0, phase_jitter]; 0 keeps the scaler on the grid.
  double phase_jitter = 0.0;
  /// Keys the dedicated autoscaler RNG stream ("SCALE" tag); change only
  /// to run decorrelated scaling scenarios over one master seed.
  std::uint64_t stream_tag = 0x5343414c45ULL;
};

/// The hysteresis controller: owns the utilization window and the dedicated
/// RNG stream. The server owns the per-host power states and applies the
/// decisions; this class only says when and in which direction to scale.
class Autoscaler {
 public:
  Autoscaler() = default;

  /// Validates `config` (period/threshold/window/floor ranges against
  /// `hosts`) and derives the dedicated stream from `seed`.
  Autoscaler(const AutoscalerConfig& config, std::size_t hosts,
             std::uint64_t seed);

  /// Absolute time of the first evaluation tick; consumes the one phase
  /// draw when phase_jitter > 0 (and no RNG at all otherwise).
  [[nodiscard]] Time first_eval_at(Time t0);

  /// Folds one utilization sample [0, 1] into the sliding window.
  void add_sample(double utilization);
  [[nodiscard]] bool window_full() const noexcept {
    return filled_ == config_.window;
  }
  /// Mean of the current window contents (0 when empty).
  [[nodiscard]] double window_mean() const noexcept;
  /// Direction the full window asks for (kNone when not yet full or the
  /// mean sits inside the hysteresis band).
  [[nodiscard]] ScaleDecision decide() const noexcept;
  /// Forgets all samples — called after every applied action so the next
  /// decision is earned from fresh post-action evidence.
  void clear_window();

  [[nodiscard]] const AutoscalerConfig& config() const noexcept {
    return config_;
  }

 private:
  AutoscalerConfig config_;
  dist::Rng stream_;
  std::vector<double> samples_;  ///< circular, capacity = config_.window
  std::size_t next_ = 0;         ///< write cursor
  std::size_t filled_ = 0;       ///< valid entries, <= window
  double sum_ = 0.0;             ///< running sum of valid entries
};

/// Scaling counters surfaced through RunResult (present only when the
/// autoscaler ran). host_time_* are integrals over the run: `powered` sums
/// non-Off host-time, `total` sums all host-time — their ratio is the
/// cost-of-capacity axis the elastic sweep plots.
struct ScalingStats {
  std::uint64_t evals = 0;             ///< kScaleEval events fired
  std::uint64_t scale_up_decisions = 0;
  std::uint64_t scale_down_decisions = 0;
  std::uint64_t hosts_powered_on = 0;   ///< Off -> WarmingUp starts
  std::uint64_t drains_reclaimed = 0;   ///< Draining -> Up (still warm)
  std::uint64_t warmups_completed = 0;  ///< WarmingUp -> Up
  std::uint64_t warmups_cancelled = 0;  ///< WarmingUp -> Off (epoch fenced)
  std::uint64_t hosts_drained = 0;      ///< Up -> Draining
  std::uint64_t drains_completed = 0;   ///< Draining -> Off (backlog done)
  /// Direct dispatches that raced a scale-down and hit a non-accepting
  /// host; the job was re-held and re-routed, never dropped.
  std::uint64_t bounced_dispatches = 0;
  /// RPC dispatches refused by a non-accepting target (stale snapshot
  /// lagging a scaling decision); the retry/fallback chain re-routes them.
  std::uint64_t rpc_rejects = 0;
  double host_time_powered = 0.0;  ///< integral of non-Off hosts over time
  double host_time_total = 0.0;    ///< hosts * makespan
  std::size_t min_powered = 0;     ///< low-water mark of powered hosts
  std::size_t max_powered = 0;     ///< high-water mark of powered hosts
};

}  // namespace distserv::sim
