#include "sim/control_plane.hpp"

#include <array>
#include <cmath>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::sim {

namespace {

constexpr std::array kAllFallbackModes = {
    FallbackMode::kChain,
    FallbackMode::kTerminal,
    FallbackMode::kNone,
};

constexpr std::array kAllShardModes = {
    ShardMode::kRoundRobin,
    ShardMode::kHash,
};

}  // namespace

std::string to_string(FallbackMode mode) {
  switch (mode) {
    case FallbackMode::kChain: return "chain";
    case FallbackMode::kTerminal: return "terminal";
    case FallbackMode::kNone: return "none";
  }
  return "?";
}

std::optional<FallbackMode> fallback_from_string(std::string_view name) {
  for (FallbackMode mode : kAllFallbackModes) {
    if (util::iequals(to_string(mode), name)) return mode;
  }
  return std::nullopt;
}

std::span<const FallbackMode> all_fallback_modes() noexcept {
  return kAllFallbackModes;
}

std::vector<std::string> registered_fallback_modes() {
  std::vector<std::string> names;
  names.reserve(kAllFallbackModes.size());
  for (FallbackMode mode : kAllFallbackModes) {
    names.push_back(to_string(mode));
  }
  return names;
}

std::string to_string(ShardMode mode) {
  switch (mode) {
    case ShardMode::kRoundRobin: return "round-robin";
    case ShardMode::kHash: return "hash";
  }
  return "?";
}

std::optional<ShardMode> shard_from_string(std::string_view name) {
  for (ShardMode mode : kAllShardModes) {
    if (util::iequals(to_string(mode), name)) return mode;
  }
  return std::nullopt;
}

std::span<const ShardMode> all_shard_modes() noexcept {
  return kAllShardModes;
}

std::vector<std::string> registered_shard_modes() {
  std::vector<std::string> names;
  names.reserve(kAllShardModes.size());
  for (ShardMode mode : kAllShardModes) {
    names.push_back(to_string(mode));
  }
  return names;
}

ControlPlane::ControlPlane(const ControlPlaneConfig& config, std::size_t hosts,
                           std::uint64_t seed)
    : config_(config) {
  DS_EXPECTS(hosts >= 1);
  DS_EXPECTS(config.probe_period >= 0.0 && std::isfinite(config.probe_period));
  DS_EXPECTS(config.probe_jitter >= 0.0 && config.probe_jitter <= 1.0);
  DS_EXPECTS(config.probe_loss >= 0.0 && config.probe_loss < 1.0);
  if (config.probe_loss > 0.0) DS_EXPECTS(config.probe_period > 0.0);
  DS_EXPECTS(config.rpc_timeout >= 0.0 && std::isfinite(config.rpc_timeout));
  DS_EXPECTS(config.rpc_loss >= 0.0 && config.rpc_loss < 1.0);
  DS_EXPECTS(config.ack_loss >= 0.0 && config.ack_loss < 1.0);
  if (config.rpc_loss > 0.0 || config.ack_loss > 0.0) {
    DS_EXPECTS(config.rpc_timeout > 0.0);
  }
  DS_EXPECTS(config.backoff_base >= 0.0 && std::isfinite(config.backoff_base));
  DS_EXPECTS(config.backoff_factor >= 1.0);
  DS_EXPECTS(config.backoff_cap >= 0.0);
  DS_EXPECTS(config.staleness_bound >= 0.0);
  if (config.staleness_bound > 0.0) {
    DS_EXPECTS(config.fallback != FallbackMode::kNone);
    DS_EXPECTS(config.probe_period > 0.0);
  }
  DS_EXPECTS(config.snapshot_jitter >= 0.0 && config.snapshot_jitter <= 1.0);
  if (config.snapshot_jitter > 0.0) DS_EXPECTS(config.probe_period > 0.0);
  DS_EXPECTS(config.dispatchers >= 1 && config.dispatchers <= 4096);

  // Per-host probe substreams plus a shared RPC/fallback stream at
  // split(hosts), disjoint from every per-host stream.
  dist::Rng root(seed ^ config.stream_tag);
  probe_streams_.reserve(hosts);
  first_probe_.reserve(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    probe_streams_.push_back(root.split(h));
    // The phase draw comes first on the host's stream so loss draws stay
    // aligned across jitter settings.
    const double u =
        config.probe_period > 0.0 ? probe_streams_.back().uniform01() : 0.0;
    first_probe_.push_back(u * config.probe_jitter * config.probe_period);
  }
  rpc_stream_ = root.split(hosts);

  // Jitter substreams hang off a separately-tagged root so turning the
  // amplitude on never shifts a draw on the probe or RPC streams.
  if (config.snapshot_jitter > 0.0) {
    dist::Rng jitter_root(seed ^ config.stream_tag ^ 0x4a495454ULL);
    jitter_streams_.reserve(hosts);
    for (std::size_t h = 0; h < hosts; ++h) {
      jitter_streams_.push_back(jitter_root.split(h));
    }
  }
}

Time ControlPlane::first_probe_at(std::uint32_t host) const {
  DS_EXPECTS(host < first_probe_.size());
  return first_probe_[host];
}

bool ControlPlane::probe_lost(std::uint32_t host) {
  DS_EXPECTS(host < probe_streams_.size());
  if (config_.probe_loss <= 0.0) return false;
  return probe_streams_[host].bernoulli(config_.probe_loss);
}

double ControlPlane::snapshot_jitter(std::uint32_t host) {
  if (config_.snapshot_jitter <= 0.0) return 0.0;
  DS_EXPECTS(host < jitter_streams_.size());
  // uniform01() < 1 and the amplitude is <= 1, so the result stays strictly
  // below one queue slot: jitter can reorder exact ties, never real ranks.
  return jitter_streams_[host].uniform01() * config_.snapshot_jitter;
}

bool ControlPlane::request_lost() {
  if (config_.rpc_loss <= 0.0) return false;
  return rpc_stream_.bernoulli(config_.rpc_loss);
}

bool ControlPlane::ack_lost() {
  if (config_.ack_loss <= 0.0) return false;
  return rpc_stream_.bernoulli(config_.ack_loss);
}

Time ControlPlane::backoff(std::uint32_t attempt) const {
  if (config_.backoff_base <= 0.0) return 0.0;
  const double raw =
      config_.backoff_base *
      std::pow(config_.backoff_factor, static_cast<double>(attempt));
  return config_.backoff_cap > 0.0 ? std::min(raw, config_.backoff_cap) : raw;
}

}  // namespace distserv::sim
