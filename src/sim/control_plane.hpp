// Degraded-information control plane — deterministic stale state, probe
// loss, and lossy dispatch RPCs between the dispatcher and its hosts.
//
// The paper's dynamic policies (Shortest-Queue, Least-Work-Left) assume the
// dispatcher sees perfect, instantaneous host state. A real supercomputing
// front-end sees neither: it sees the last *probe* of each host, probes get
// lost, and the dispatch itself is an RPC that can time out. This module
// models exactly that, in three parts:
//
//   1. Snapshot state. Policies read a probe-refreshed snapshot table (a
//      core::HostStateTable in kObserved semantics) — per-host observations
//      (queue length, work left, idleness, liveness) refreshed by periodic
//      probes. Probes fire every `probe_period` per host, start at a
//      per-host jittered phase, and are lost with probability `probe_loss`
//      (a lost probe leaves the previous observation in place). A period of
//      0 means continuous observation: the live view is used directly, so
//      probe_period -> 0 recovers the perfect-information model exactly.
//
//   2. Dispatch RPCs. Each dispatch send is lost with probability
//      `rpc_loss`; a delivered dispatch's acknowledgement is lost with
//      probability `ack_loss`. Either loss fires a timeout `rpc_timeout`
//      plus exponential backoff after the send, and the dispatcher retries
//      up to `max_retries` times. Deliveries are idempotent: the job id is
//      the idempotency key, so a re-delivered dispatch for an already
//      placed job is suppressed (at-most-once enqueue). rpc_timeout of 0
//      means reliable instantaneous RPCs (the pre-control-plane behavior).
//
//   3. Fallback escalation. When a retry budget is exhausted and the job
//      was never placed, the dispatcher escalates along the policy's
//      fallback chain (e.g. LWL -> Power-of-2 -> Random) with a fresh
//      budget per level; when the chain is exhausted too, the job is
//      force-placed over a reliable path. No job is ever silently dropped.
//      A policy-declared staleness bound can also escalate *eagerly*: a
//      state-sensitive policy is never fed a snapshot older than the bound.
//
// Determinism contract (mirrors sim/faults.hpp): all control-plane
// randomness — probe loss, probe phase jitter, RPC loss draws, fallback
// host picks — comes from a dedicated RNG stream keyed by `stream_tag`,
// with per-host substreams for probes, completely disjoint from the
// arrival, policy, and fault streams. A run with the control plane
// disabled consumes exactly the same random numbers as before this
// subsystem existed and stays bit-identical; an enabled run is
// reproducible from (seed, ControlPlaneConfig) alone.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dist/rng.hpp"
#include "sim/event_queue.hpp"

namespace distserv::sim {

/// How the dispatcher escalates when a dispatch retry budget is exhausted.
enum class FallbackMode {
  /// Walk the policy's declared fallback chain one level per exhausted
  /// budget (e.g. LWL -> Power-of-2 -> Random), then force-place.
  kChain,
  /// Skip intermediate levels: go straight to the chain's terminal
  /// (cheapest) fallback, then force-place.
  kTerminal,
  /// No fallback routing at all: an exhausted budget force-places on the
  /// original target (and staleness escalation is disabled).
  kNone,
};

/// Display name, e.g. "chain".
[[nodiscard]] std::string to_string(FallbackMode mode);

/// Inverse of to_string (case-insensitive); nullopt for unknown names.
[[nodiscard]] std::optional<FallbackMode> fallback_from_string(
    std::string_view name);

/// Every FallbackMode, in declaration order.
[[nodiscard]] std::span<const FallbackMode> all_fallback_modes() noexcept;

/// Display names of every fallback mode, in declaration order.
[[nodiscard]] std::vector<std::string> registered_fallback_modes();

/// How arrivals are sharded across dispatchers in multi-dispatcher mode.
enum class ShardMode {
  /// Job k goes to dispatcher k mod d. Job ids are assigned sequentially
  /// at arrival, so this is a strict round-robin over the front-ends.
  kRoundRobin,
  /// Job k goes to dispatcher mix64(k) mod d: an avalanche hash of the id,
  /// modelling consistent-hash front-end selection (uneven per-dispatcher
  /// interarrival times, the realistic case).
  kHash,
};

/// Display name, e.g. "round-robin".
[[nodiscard]] std::string to_string(ShardMode mode);

/// Inverse of to_string (case-insensitive); nullopt for unknown names.
[[nodiscard]] std::optional<ShardMode> shard_from_string(
    std::string_view name);

/// Every ShardMode, in declaration order.
[[nodiscard]] std::span<const ShardMode> all_shard_modes() noexcept;

/// Display names of every shard mode, in declaration order.
[[nodiscard]] std::vector<std::string> registered_shard_modes();

/// Control-plane knobs. Default-constructed = disabled (zero cost, and the
/// simulation is bit-identical to a build without the subsystem).
struct ControlPlaneConfig {
  /// Master switch; when false the server installs no control plane at all.
  bool enabled = false;
  /// Seconds between state probes of one host. 0 = continuous observation
  /// (policies read live state; the perfect-information limit).
  double probe_period = 0.0;
  /// Per-host phase jitter as a fraction of probe_period in [0, 1]: host h
  /// first probes at u_h * probe_jitter * probe_period, decorrelating the
  /// probe phases across hosts. 0 = all hosts probe in lockstep.
  double probe_jitter = 1.0;
  /// Probability in [0, 1) that one probe is lost (the previous
  /// observation stays in place). Requires probe_period > 0.
  double probe_loss = 0.0;
  /// Dispatch RPC timeout. 0 = reliable instantaneous dispatch RPCs (loss
  /// knobs must be 0). When > 0, a lost send or ack times out after this
  /// delay plus backoff and is retried.
  double rpc_timeout = 0.0;
  /// Probability in [0, 1) that a dispatch request is lost in flight (the
  /// job is not placed). Requires rpc_timeout > 0.
  double rpc_loss = 0.0;
  /// Probability in [0, 1) that a delivered dispatch's ack is lost (the
  /// job *is* placed, but the dispatcher cannot know and retries; the
  /// duplicate delivery is suppressed by the idempotency key). Requires
  /// rpc_timeout > 0.
  double ack_loss = 0.0;
  /// Retry budget per (job, fallback level) after the initial send.
  std::uint32_t max_retries = 3;
  /// Backoff before retry k (0-based) = min(backoff_base * backoff_factor^k,
  /// backoff_cap), added to rpc_timeout. backoff_base 0 disables backoff.
  double backoff_base = 0.0;
  double backoff_factor = 2.0;
  double backoff_cap = 0.0;  ///< 0 = uncapped
  /// A state-sensitive policy whose snapshot is older than this bound is
  /// escalated to its first fallback level instead of routing on stale
  /// state. 0 disables the bound. Requires fallback != kNone when set.
  double staleness_bound = 0.0;
  FallbackMode fallback = FallbackMode::kChain;
  /// Tie-break jitter amplitude in [0, 1]: each delivered probe perturbs
  /// the observed queue length by a fresh draw in [0, snapshot_jitter),
  /// strictly less than one queue slot, so it can only reorder exact ties.
  /// Breaks the snapshot-herding mode where every dispatcher decision
  /// between probes piles onto one modal host at large h (all queue keys
  /// tie at 0 after an idle spell and argmin picks the lowest index).
  /// 0 disables jitter and consumes no RNG. Requires probe_period > 0.
  double snapshot_jitter = 0.0;
  /// Keys the dedicated control RNG stream ("CTRL" tag); change only to run
  /// decorrelated control-plane scenarios over one master seed.
  std::uint64_t stream_tag = 0x4354524cULL;
  /// Number of independent dispatcher front-ends racing on the same fleet.
  /// Each dispatcher owns its own probe schedule, kObserved snapshot table,
  /// and RPC/retry RNG state; arrivals are sharded across them per `shard`.
  /// 1 (the default) is bit-identical to the single-dispatcher plane.
  std::uint32_t dispatchers = 1;
  /// Arrival sharding across dispatchers; irrelevant when dispatchers == 1.
  ShardMode shard = ShardMode::kRoundRobin;
  /// When true (the default), every snapshot-routed decision by a pure
  /// policy is replayed against live state and counted in misroute_rate().
  /// The second assign is pure observation — routing never changes — so
  /// throughput-focused runs can turn it off.
  bool misroute_oracle = true;
  /// When true (the default), each dispatcher drives its probes from one
  /// batched timer event that sweeps all due hosts in a tight loop over the
  /// SoA table; per-host phase jitter is preserved by precomputed offsets
  /// and the observation sequence is bit-identical to the per-host path.
  /// False keeps the legacy one-event-per-host schedule (the equivalence
  /// test's reference).
  bool batch_probes = true;

  /// True when policies must read snapshots instead of live state.
  [[nodiscard]] bool snapshots_enabled() const noexcept {
    return enabled && probe_period > 0.0;
  }
  /// True when dispatches travel over the lossy RPC path.
  [[nodiscard]] bool rpc_enabled() const noexcept {
    return enabled && rpc_timeout > 0.0;
  }
};

// (The dispatcher's per-host observation store used to live here as
// HostObservation/StateSnapshot; it is now a core::HostStateTable in
// kObserved semantics, whose incremental min-timestamp index makes the
// per-route max_age staleness check O(1) instead of an O(h) rescan.)

/// Per-run control-plane telemetry, surfaced through RunResult.
struct ControlStats {
  // Probe traffic.
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_lost = 0;
  // Dispatch RPC traffic (zero when rpc_timeout == 0).
  std::uint64_t rpc_dispatches = 0;  ///< routing decisions sent over RPC
  std::uint64_t requests_sent = 0;   ///< initial sends + retries
  std::uint64_t requests_lost = 0;
  std::uint64_t acks_lost = 0;
  std::uint64_t timeouts = 0;  ///< timeout events that found a live chain
  std::uint64_t retries = 0;
  std::uint64_t duplicates_suppressed = 0;  ///< idempotency-key hits
  /// Budget exhausted with the job already placed (only acks were lost):
  /// resolved by the idempotency key, no re-route.
  std::uint64_t reconciled = 0;
  /// Chains cancelled because a host failure interrupted the job and it was
  /// resubmitted through the dispatcher (the chain restarts from scratch).
  std::uint64_t cancelled = 0;
  /// Chains still awaiting a timeout when the run ended (the run stops at
  /// the last job outcome; only already-placed chains can linger).
  std::uint64_t chains_outstanding = 0;
  // Fallback escalation.
  std::uint64_t escalations_stale = 0;      ///< snapshot older than bound
  std::uint64_t escalations_exhausted = 0;  ///< retry budget exhausted
  std::uint64_t forced_placements = 0;      ///< chain exhausted: forced
  // Snapshot staleness observed at routing decisions.
  std::uint64_t routed = 0;            ///< routing decisions under snapshots
  double snapshot_age_sum = 0.0;       ///< over routing decisions
  double snapshot_age_max = 0.0;
  // Misrouting vs the perfect-information oracle (pure policies only).
  std::uint64_t oracle_comparisons = 0;
  std::uint64_t misrouted = 0;

  /// Dispatch-weighted mean snapshot age (0 without routing decisions).
  [[nodiscard]] double mean_snapshot_age() const noexcept {
    return routed > 0 ? snapshot_age_sum / static_cast<double>(routed) : 0.0;
  }
  /// Fraction of oracle comparisons where the stale snapshot picked a
  /// different host than live state would have.
  [[nodiscard]] double misroute_rate() const noexcept {
    return oracle_comparisons > 0
               ? static_cast<double>(misrouted) /
                     static_cast<double>(oracle_comparisons)
               : 0.0;
  }
  /// Every fallback activation, whatever the trigger.
  [[nodiscard]] std::uint64_t fallback_activations() const noexcept {
    return escalations_stale + escalations_exhausted + forced_placements;
  }
};

/// Random-draw engine for the control plane. Owns one probe RNG substream
/// per host, derived as Rng(seed ^ stream_tag).split(host), plus one shared
/// RPC/fallback stream at split(hosts) — disjoint from every arrival,
/// policy, and fault stream by construction.
class ControlPlane {
 public:
  ControlPlane() = default;

  /// Validates `config` (ranges, knob dependencies listed on the fields)
  /// and derives the streams from `seed`.
  ControlPlane(const ControlPlaneConfig& config, std::size_t hosts,
               std::uint64_t seed);

  /// Effective RNG seed for dispatcher `k` of a multi-dispatcher plane:
  /// k = 0 returns `seed` unchanged (so d = 1 consumes exactly the draws
  /// of the single-dispatcher plane and stays bit-identical), k > 0 salts
  /// with the golden-ratio odd constant so sibling dispatchers see
  /// decorrelated probe phase, loss, and RPC draw sequences.
  [[nodiscard]] static std::uint64_t dispatcher_seed(
      std::uint64_t seed, std::uint32_t k) noexcept {
    return seed ^ (static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ULL);
  }

  /// Time of host `host`'s first probe: its jittered phase in
  /// [0, probe_jitter * probe_period]. Drawn once at construction.
  [[nodiscard]] Time first_probe_at(std::uint32_t host) const;

  /// Draws whether the next probe of `host` is lost.
  [[nodiscard]] bool probe_lost(std::uint32_t host);

  /// Tie-break jitter for one delivered probe of `host`: a fresh draw in
  /// [0, snapshot_jitter). Returns 0.0 — and consumes no RNG — when the
  /// amplitude is 0, so jitter-free runs keep their exact draw sequences.
  [[nodiscard]] double snapshot_jitter(std::uint32_t host);

  /// Draws whether a dispatch request is lost in flight.
  [[nodiscard]] bool request_lost();
  /// Draws whether a delivered dispatch's ack is lost.
  [[nodiscard]] bool ack_lost();

  /// Backoff before 0-based retry `attempt`:
  /// min(backoff_base * backoff_factor^attempt, backoff_cap).
  [[nodiscard]] Time backoff(std::uint32_t attempt) const;

  /// The shared stream fallback host picks draw from.
  [[nodiscard]] dist::Rng& fallback_rng() noexcept { return rpc_stream_; }

  [[nodiscard]] const ControlPlaneConfig& config() const noexcept {
    return config_;
  }

 private:
  ControlPlaneConfig config_;
  std::vector<dist::Rng> probe_streams_;
  std::vector<Time> first_probe_;
  dist::Rng rpc_stream_{0};
  /// Per-host jitter substreams, rooted at seed ^ stream_tag ^ "JITT" so
  /// enabling jitter never perturbs the probe/RPC draw sequences above.
  std::vector<dist::Rng> jitter_streams_;
};

}  // namespace distserv::sim
