// The typed simulation event and its handler interface.
//
// Events used to be type-erased closures (std::function<void()>), which put
// a heap allocation and an indirect call on the hottest path in the whole
// system — the event loop executes one closure per arrival, departure,
// probe, failure, repair, and RPC timeout. An Event is now a small
// trivially-copyable record: a (time, sequence) ordering key, a kind tag,
// and three fixed payload slots that each kind interprets for itself. The
// model dispatches on the kind with a switch (see
// DistributedServer::on_event), so scheduling an event allocates nothing
// and firing one is a single virtual call into the owning model.
#pragma once

#include <cstdint>
#include <type_traits>

namespace distserv::sim {

/// Simulation time in seconds (traces are in seconds of service demand).
using Time = double;

/// What an event means. The payload slots each kind reads are listed here;
/// unused slots stay at their zero defaults.
enum class EventKind : std::uint8_t {
  kArrival,     ///< next trace arrival is due (no payload; models keep the
                ///< arrival cursor themselves)
  kDeparture,   ///< service completion: host, id = job, epoch = service epoch
  kHostFail,    ///< host goes down: host, flag = renewal-process failure
                ///< (duration drawn at fire time), else value = duration
  kHostRepair,  ///< outage ends: host, flag = renewal (reschedules the chain)
  kProbe,       ///< control-plane state probe of `host` is due
  kRpcTimeout,  ///< dispatch RPC timeout: id = job, epoch = chain epoch
  kScaleEval,   ///< periodic autoscaler utilization check (no payload)
  kWarmup,      ///< host finishes warming up: host, epoch = power epoch
                ///< (a cancelled warm-up bumps the epoch; stale fires no-op)
  kRenege,      ///< a job's patience deadline passed: id = job (fires no-op
                ///< unless the job is still waiting in some queue)
  kTimer,       ///< generic timer for other simulator clients (tests, ad-hoc
                ///< models): id/epoch/value/host mean whatever they schedule
};

/// One future event. POD by design: the event list stores these by value
/// and never touches the heap per event.
struct Event {
  Time time = 0.0;           ///< absolute fire time (set by the queue)
  std::uint64_t sequence = 0;  ///< scheduling order, ties broken FIFO
  std::uint64_t id = 0;      ///< job id (departures, RPC timeouts)
  std::uint64_t epoch = 0;   ///< invalidation fence (see EventKind)
  double value = 0.0;        ///< duration payload (scheduled outages)
  std::uint32_t host = 0;    ///< host index, where applicable
  EventKind kind = EventKind::kTimer;
  bool flag = false;         ///< kind-specific bit (renewal-process events)

  // Named constructors, so call sites read like the closures they replaced.
  [[nodiscard]] static Event arrival() noexcept {
    Event e;
    e.kind = EventKind::kArrival;
    return e;
  }
  [[nodiscard]] static Event departure(std::uint32_t host, std::uint64_t job,
                                       std::uint64_t epoch) noexcept {
    Event e;
    e.kind = EventKind::kDeparture;
    e.host = host;
    e.id = job;
    e.epoch = epoch;
    return e;
  }
  [[nodiscard]] static Event host_fail(std::uint32_t host, double duration,
                                       bool renewal) noexcept {
    Event e;
    e.kind = EventKind::kHostFail;
    e.host = host;
    e.value = duration;
    e.flag = renewal;
    return e;
  }
  [[nodiscard]] static Event host_repair(std::uint32_t host,
                                         bool renewal) noexcept {
    Event e;
    e.kind = EventKind::kHostRepair;
    e.host = host;
    e.flag = renewal;
    return e;
  }
  [[nodiscard]] static Event probe(std::uint32_t host) noexcept {
    Event e;
    e.kind = EventKind::kProbe;
    e.host = host;
    return e;
  }
  [[nodiscard]] static Event rpc_timeout(std::uint64_t job,
                                         std::uint64_t epoch) noexcept {
    Event e;
    e.kind = EventKind::kRpcTimeout;
    e.id = job;
    e.epoch = epoch;
    return e;
  }
  [[nodiscard]] static Event scale_eval() noexcept {
    Event e;
    e.kind = EventKind::kScaleEval;
    return e;
  }
  [[nodiscard]] static Event warmup(std::uint32_t host,
                                    std::uint64_t epoch) noexcept {
    Event e;
    e.kind = EventKind::kWarmup;
    e.host = host;
    e.epoch = epoch;
    return e;
  }
  [[nodiscard]] static Event renege(std::uint64_t job) noexcept {
    Event e;
    e.kind = EventKind::kRenege;
    e.id = job;
    return e;
  }
  [[nodiscard]] static Event timer(std::uint64_t id = 0) noexcept {
    Event e;
    e.kind = EventKind::kTimer;
    e.id = id;
    return e;
  }
};

static_assert(std::is_trivially_copyable_v<Event>,
              "the event list relies on Events being memcpy-safe");

/// Receiver of fired events: the simulation model implements one switch
/// over EventKind. Non-virtual destructor on purpose — handlers are never
/// owned (or deleted) through this interface.
class EventHandler {
 public:
  virtual void on_event(const Event& event) = 0;

 protected:
  ~EventHandler() = default;
};

}  // namespace distserv::sim
