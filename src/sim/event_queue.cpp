#include "sim/event_queue.hpp"

#include <cmath>
#include <utility>

#include "util/contracts.hpp"

namespace distserv::sim {

void EventQueue::schedule(Time t, std::function<void()> action) {
  DS_EXPECTS(std::isfinite(t) && t >= 0.0);
  DS_EXPECTS(static_cast<bool>(action));
  heap_.push(Event{t, next_sequence_++, std::move(action)});
}

Time EventQueue::next_time() const {
  DS_EXPECTS(!heap_.empty());
  return heap_.top().time;
}

Event EventQueue::pop() {
  DS_EXPECTS(!heap_.empty());
  // std::priority_queue::top() is const; the move is safe because we pop
  // immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return ev;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace distserv::sim
