#include "sim/event_queue.hpp"

#include <cmath>
#include <cstring>

#include "util/contracts.hpp"

namespace distserv::sim {

void EventQueue::sift_up(std::size_t hole, const Node& node) noexcept {
  const auto k = node.key();
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kArity;
    if (k >= heap_[parent].key()) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = node;
}

void EventQueue::sift_down(std::size_t hole, const Node& node) noexcept {
  // Sift-to-leaf: drop the hole all the way down along min children
  // without comparing against `node`, then sift `node` up from the leaf.
  // `node` came from the heap's last slot, so it almost always belongs
  // near the bottom — this saves one compare per level on the dominant
  // path.
  const std::size_t n = heap_.size();
  const std::size_t start = hole;
  for (;;) {
    const std::size_t first = kArity * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    auto best_key = heap_[first].key();
    const std::size_t last = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      const auto ck = heap_[c].key();
      if (ck < best_key) {
        best = c;
        best_key = ck;
      }
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  // Sift up, but never above the original hole.
  const auto k = node.key();
  while (hole > start) {
    const std::size_t parent = (hole - 1) / kArity;
    if (k >= heap_[parent].key()) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = node;
}

void EventQueue::schedule(Time t, Event event) {
  DS_EXPECTS(std::isfinite(t) && t >= 0.0);
  event.time = t;
  event.sequence = next_sequence_++;
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(event);
  } else {
    slot = free_.back();
    free_.pop_back();
    pool_[slot] = event;
  }
  Node node;
  static_assert(sizeof(node.time_bits) == sizeof(event.time));
  std::memcpy(&node.time_bits, &event.time, sizeof(node.time_bits));
  node.sequence = event.sequence;
  node.slot = slot;
  heap_.push_back(node);  // Placeholder; sift_up writes the real slot.
  sift_up(heap_.size() - 1, node);
}

Time EventQueue::next_time() const {
  DS_EXPECTS(!heap_.empty());
  Time t;
  std::memcpy(&t, &heap_.front().time_bits, sizeof(t));
  return t;
}

Event EventQueue::pop() {
  DS_EXPECTS(!heap_.empty());
  const Node root = heap_.front();
  const Event event = pool_[root.slot];
  free_.push_back(root.slot);
  const Node moved = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, moved);
  return event;
}

}  // namespace distserv::sim
