// Future-event list for the discrete-event simulator.
//
// An explicit 4-ary min-heap keyed on (time, sequence). The monotonically
// increasing sequence number makes simultaneous events fire in scheduling
// order, which keeps every simulation fully deterministic — a requirement
// for the LWL ≡ Central-Queue equivalence test, which replays the
// identical arrival sequence through two servers and compares per-job
// completion times.
//
// Layout: the heap itself holds compact 24-byte nodes (time bit-pattern,
// sequence, slot index); event payloads sit still in a slot pool and are
// never moved by sift operations. Compared to heapifying whole 48-byte
// Events (or the original std::priority_queue of std::function thunks),
// sifts move half the bytes and a 4-ary child scan reads adjacent compact
// keys — the difference between one cache line and three per level.
// Scheduled times are finite and non-negative (enforced by schedule()),
// so the IEEE-754 bit pattern of the time orders identically to the
// double itself and the (time, sequence) lexicographic compare fuses into
// one branchless 128-bit integer compare.
//
// All storage (heap, pool, free list) is plain vectors: reserve()
// pre-sizes them, steady-state schedule/pop churn recycles pool slots, so
// a warmed-up simulation never allocates per event — capacity() exposes
// the backing storage for the no-allocation tests.
//
// Heap arity and layout are implementation details: (time, sequence) is a
// strict total order (sequences are unique), so pop order — and therefore
// every simulation result — is identical for any correct heap shape.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"

namespace distserv::sim {

/// Min-heap of events ordered by (time, sequence).
class EventQueue {
 public:
  /// Schedules `event` at absolute time `t`, assigning the next sequence
  /// number (any time/sequence already in `event` is overwritten).
  /// Requires t to be finite and non-negative.
  void schedule(Time t, Event event);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Requires non-empty.
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest event. Requires non-empty.
  [[nodiscard]] Event pop();

  /// Drops all pending events (the backing storage is kept).
  void clear() noexcept {
    heap_.clear();
    pool_.clear();
    free_.clear();
  }

  /// Pre-sizes the backing storage for `n` concurrently pending events.
  void reserve(std::size_t n) {
    heap_.reserve(n);
    pool_.reserve(n);
    free_.reserve(n);
  }

  /// Capacity of the heap's backing vector — constant in steady state
  /// (the no-per-event-allocation tests assert exactly that).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// Total events scheduled over the queue's lifetime.
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept {
    return next_sequence_;
  }

 private:
  static constexpr std::size_t kArity = 4;

  /// 128-bit comparison key (GNU extension; both supported compilers —
  /// GCC and Clang — provide it on 64-bit targets).
  __extension__ using Key = unsigned __int128;

  struct Node {
    std::uint64_t time_bits;  ///< IEEE-754 bits of the fire time
    std::uint64_t sequence;
    std::uint32_t slot;  ///< payload index in pool_

    [[nodiscard]] Key key() const noexcept {
      return (static_cast<Key>(time_bits) << 64) | sequence;
    }
  };

  void sift_up(std::size_t hole, const Node& node) noexcept;
  void sift_down(std::size_t hole, const Node& node) noexcept;

  std::vector<Node> heap_;
  std::vector<Event> pool_;         ///< payloads, addressed by Node::slot
  std::vector<std::uint32_t> free_;  ///< recycled pool slots
  std::uint64_t next_sequence_ = 0;
};

}  // namespace distserv::sim
