// Future-event list for the discrete-event simulator.
//
// A binary heap keyed on (time, sequence). The monotonically increasing
// sequence number makes simultaneous events fire in scheduling order, which
// keeps every simulation fully deterministic — a requirement for the
// LWL ≡ Central-Queue equivalence test, which replays the identical arrival
// sequence through two servers and compares per-job completion times.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace distserv::sim {

/// Simulation time in seconds (traces are in seconds of service demand).
using Time = double;

/// An event: a time and a nullary action.
struct Event {
  Time time = 0.0;
  std::uint64_t sequence = 0;
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, sequence).
class EventQueue {
 public:
  /// Schedules `action` at absolute time `t`. Requires t to be finite and
  /// non-negative.
  void schedule(Time t, std::function<void()> action);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Requires non-empty.
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest event. Requires non-empty.
  [[nodiscard]] Event pop();

  /// Drops all pending events.
  void clear();

  /// Total events scheduled over the queue's lifetime.
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept {
    return next_sequence_;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace distserv::sim
