#include "sim/faults.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace distserv::sim {

FaultProcess::FaultProcess(const FaultConfig& config, std::size_t hosts,
                           std::uint64_t seed)
    : config_(config) {
  DS_EXPECTS(hosts >= 1);
  DS_EXPECTS(config.mtbf >= 0.0 && std::isfinite(config.mtbf));
  if (config.mtbf > 0.0) {
    DS_EXPECTS(config.mttr > 0.0 && std::isfinite(config.mttr));
  }
  for (const HostOutage& outage : config.outages) {
    DS_EXPECTS(outage.host < hosts);
    DS_EXPECTS(outage.at >= 0.0);
    DS_EXPECTS(outage.duration > 0.0);
  }
  streams_.reserve(hosts);
  dist::Rng root(seed ^ config.stream_tag);
  for (std::size_t h = 0; h < hosts; ++h) {
    streams_.push_back(root.split(h));
  }
}

Time FaultProcess::draw(std::uint32_t host, double mean, FaultTimeDist d) {
  DS_EXPECTS(host < streams_.size());
  DS_EXPECTS(mean > 0.0);
  if (d == FaultTimeDist::kDeterministic) return mean;
  // Exponential(rate = 1/mean); the sampler never returns exactly 0, so an
  // up or down period always has positive length.
  return streams_[host].exponential(1.0 / mean);
}

Time FaultProcess::next_uptime(std::uint32_t host) {
  return draw(host, config_.mtbf, config_.uptime_dist);
}

Time FaultProcess::next_downtime(std::uint32_t host) {
  return draw(host, config_.mttr, config_.downtime_dist);
}

}  // namespace distserv::sim
