// Host failure/recovery model — a deterministic fail-stop process.
//
// Each host alternates between up and down periods (an alternating-renewal
// process): up durations with mean `mtbf`, down durations with mean `mttr`,
// each drawn from a configurable distribution. Long-run availability is
// mtbf / (mtbf + mttr). On top of (or instead of) the renewal process,
// scheduled outages pin specific hosts down over specific windows — the
// building block for metamorphic tests ("host down for the whole horizon")
// and reproducible incident replays.
//
// Determinism contract: all failure/repair randomness comes from a dedicated
// RNG stream keyed by `stream_tag` and split per host, completely disjoint
// from the arrival and policy streams. A run with faults disabled therefore
// consumes exactly the same random numbers as before this subsystem existed
// and stays bit-identical; a run with faults enabled is reproducible from
// (seed, FaultConfig) alone.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/rng.hpp"
#include "sim/event_queue.hpp"

namespace distserv::sim {

/// Distribution family for up/down durations.
enum class FaultTimeDist {
  kExponential,   ///< memoryless, mean = mtbf/mttr (the classical model)
  kDeterministic, ///< every duration exactly mtbf/mttr (for tests/laws)
};

/// One scheduled outage: `host` goes down at `at` for `duration`.
/// Overlapping outages (scheduled or renewal) nest: the host is up again
/// only when every covering outage has ended.
struct HostOutage {
  std::uint32_t host = 0;
  Time at = 0.0;
  Time duration = 0.0;
};

/// Failure-model knobs. Default-constructed = disabled (zero cost, and the
/// simulation is bit-identical to a build without the fault subsystem).
struct FaultConfig {
  /// Master switch; when false the server installs no fault process at all.
  bool enabled = false;
  /// Mean up duration per host; 0 disables the renewal process (scheduled
  /// outages, if any, still apply).
  double mtbf = 0.0;
  /// Mean down (repair) duration; must be > 0 whenever mtbf > 0.
  double mttr = 0.0;
  FaultTimeDist uptime_dist = FaultTimeDist::kExponential;
  FaultTimeDist downtime_dist = FaultTimeDist::kExponential;
  /// Deterministic outages, in addition to the renewal process.
  std::vector<HostOutage> outages;
  /// Keys the dedicated fault RNG stream ("FAULT" tag); change only to run
  /// decorrelated failure scenarios over one master seed.
  std::uint64_t stream_tag = 0x4641554c54ULL;

  /// Long-run fraction of time a host is up under the renewal process
  /// (1.0 when the renewal process is disabled).
  [[nodiscard]] double availability() const noexcept {
    return mtbf > 0.0 ? mtbf / (mtbf + mttr) : 1.0;
  }
};

/// Per-host duration sampler for the alternating-renewal process. Owns one
/// RNG substream per host, derived as Rng(seed ^ stream_tag).split(host) —
/// disjoint from every arrival/policy stream by construction.
class FaultProcess {
 public:
  FaultProcess() = default;

  /// Validates `config` (mtbf/mttr ranges, outage hosts < `hosts`) and
  /// derives the per-host streams from `seed`.
  FaultProcess(const FaultConfig& config, std::size_t hosts,
               std::uint64_t seed);

  /// True when up/down durations will be drawn (mtbf > 0).
  [[nodiscard]] bool renewal_enabled() const noexcept {
    return config_.mtbf > 0.0;
  }

  /// Next up duration for `host` (always > 0).
  [[nodiscard]] Time next_uptime(std::uint32_t host);
  /// Next down duration for `host` (always > 0).
  [[nodiscard]] Time next_downtime(std::uint32_t host);

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] Time draw(std::uint32_t host, double mean, FaultTimeDist d);

  FaultConfig config_;
  std::vector<dist::Rng> streams_;
};

}  // namespace distserv::sim
