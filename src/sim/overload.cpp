#include "sim/overload.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::sim {

std::string to_string(OverflowAction action) {
  switch (action) {
    case OverflowAction::kReject: return "reject";
    case OverflowAction::kShedSmallest: return "shed-smallest";
    case OverflowAction::kShedLargest: return "shed-largest";
    case OverflowAction::kBounce: return "bounce";
  }
  return "?";
}

std::optional<OverflowAction> overflow_from_string(std::string_view name) {
  for (OverflowAction action :
       {OverflowAction::kReject, OverflowAction::kShedSmallest,
        OverflowAction::kShedLargest, OverflowAction::kBounce}) {
    if (util::iequals(to_string(action), name)) return action;
  }
  return std::nullopt;
}

std::string to_string(AdmissionMode mode) {
  switch (mode) {
    case AdmissionMode::kNone: return "none";
    case AdmissionMode::kTokenBucket: return "token-bucket";
    case AdmissionMode::kUtilizationGate: return "utilization-gate";
  }
  return "?";
}

AdmissionController::AdmissionController(const OverloadConfig& config,
                                         std::uint64_t seed)
    : config_(config), rng_(seed ^ config.stream_tag) {
  DS_EXPECTS(config.backlog_cap >= 0.0 && std::isfinite(config.backlog_cap));
  DS_EXPECTS(config.patience_mean >= 0.0 &&
             std::isfinite(config.patience_mean));
  if (config.admission == AdmissionMode::kTokenBucket) {
    DS_EXPECTS(config.admission_rate > 0.0 &&
               std::isfinite(config.admission_rate));
    DS_EXPECTS(config.admission_burst >= 1.0 &&
               std::isfinite(config.admission_burst));
  }
  if (config.admission == AdmissionMode::kUtilizationGate) {
    DS_EXPECTS(config.admission_threshold >= 0.0 &&
               config.admission_threshold <= 1.0);
    DS_EXPECTS(config.admission_shed_prob > 0.0 &&
               config.admission_shed_prob <= 1.0);
  }
  tokens_ = config.admission_burst;
}

bool AdmissionController::admit(double now, double utilization) {
  switch (config_.admission) {
    case AdmissionMode::kNone:
      return true;
    case AdmissionMode::kTokenBucket: {
      // Lazy refill: the bucket earns rate * elapsed tokens, capped at the
      // burst depth. Purely arithmetic — no randomness, so the decision
      // stream is a function of arrival times alone.
      tokens_ = std::min(config_.admission_burst,
                         tokens_ + (now - last_refill_) *
                                       config_.admission_rate);
      last_refill_ = now;
      if (tokens_ < 1.0) return false;
      tokens_ -= 1.0;
      return true;
    }
    case AdmissionMode::kUtilizationGate:
      if (utilization < config_.admission_threshold) return true;
      return !rng_.bernoulli(config_.admission_shed_prob);
  }
  return true;
}

double AdmissionController::draw_patience() {
  DS_EXPECTS(config_.patience_mean > 0.0);
  return rng_.exponential(1.0 / config_.patience_mean);
}

}  // namespace distserv::sim
