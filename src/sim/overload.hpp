// Overload-resilience model: bounded per-host queues with configurable
// overflow actions, a deterministic admission controller at the dispatcher,
// deadline-based reneging of queued work, and migration of queued (never
// in-service) jobs off hosts that drain or fail-stop.
//
// The paper analyses its policies at rho < 1; a production fleet spends its
// worst hours at rho >= 1, where every unprotected policy lets queues grow
// without bound. This subsystem makes overload survivable and *measurable*:
// every arrival resolves as exactly one of completed / shed / reneged /
// abandoned (the conservation ledger the audit layer enforces), and the
// run result reports goodput plus per-cause loss counts.
//
// Determinism contract: all overload randomness (utilization-gate coin
// flips, patience draws) comes from a dedicated RNG stream keyed by
// `stream_tag`, disjoint from the arrival, policy, fault, and control
// streams. A run with every overload feature disabled consumes no random
// numbers, schedules no events, and stays bit-identical to a build without
// this subsystem; an enabled run is reproducible from (seed, OverloadConfig)
// alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dist/rng.hpp"

namespace distserv::sim {

/// What happens when a job is delivered to a host whose queue is at
/// capacity (see OverloadConfig::queue_cap / backlog_cap).
enum class OverflowAction : std::uint8_t {
  /// Drop the arriving job (counted as shed, cause: overflow).
  kReject,
  /// Evict the smallest job among {queued jobs, arriving job}; the survivor
  /// set keeps the large jobs (protects long-running work).
  kShedSmallest,
  /// Evict the largest job among {queued jobs, arriving job}; the survivor
  /// set keeps the small jobs (protects latency of the many).
  kShedLargest,
  /// Refuse delivery: on the direct path the job falls back to the central
  /// queue; over RPC the refusal looks like a lost request, so the chain
  /// retries and then escalates through the fallback levels.
  kBounce,
};

/// Admission policy applied at the dispatcher to fresh arrivals only
/// (resubmitted and migrated jobs were already admitted once).
enum class AdmissionMode : std::uint8_t {
  kNone,
  /// Token bucket: `admission_rate` tokens/time, depth `admission_burst`.
  /// Deterministic — no randomness is consumed.
  kTokenBucket,
  /// When the busy-host fraction is at or above `admission_threshold`,
  /// shed the arrival with probability `admission_shed_prob` (dedicated
  /// RNG stream).
  kUtilizationGate,
};

[[nodiscard]] std::string to_string(OverflowAction action);
[[nodiscard]] std::string to_string(AdmissionMode mode);

/// Case-insensitive display-name lookup ("reject", "shed-smallest",
/// "shed-largest", "bounce"); nullopt on an unknown name — the CLI path.
[[nodiscard]] std::optional<OverflowAction> overflow_from_string(
    std::string_view name);

/// Overload-resilience knobs. Default-constructed = disabled (zero cost;
/// the simulation is bit-identical to a build without this subsystem).
/// `enabled = true` with every feature at its default is also a no-op and
/// stays bit-identical — the contract the golden-fixture tests pin down.
struct OverloadConfig {
  /// Master switch; when false the server installs no overload machinery.
  bool enabled = false;
  /// Max jobs in system per host (queued + in service). 0 = unbounded.
  std::uint32_t queue_cap = 0;
  /// Max backlog per host in time units (remaining service of the running
  /// job + queued work, speed-scaled). 0 = unbounded.
  double backlog_cap = 0.0;
  /// Applied when a delivery would exceed a cap.
  OverflowAction overflow = OverflowAction::kBounce;
  AdmissionMode admission = AdmissionMode::kNone;
  /// Token-bucket refill rate (jobs per time unit); required > 0 with
  /// kTokenBucket.
  double admission_rate = 0.0;
  /// Token-bucket depth (>= 1): the burst admitted from a cold start.
  double admission_burst = 1.0;
  /// Utilization-gate bar in [0, 1]: busy-host fraction at which shedding
  /// starts.
  double admission_threshold = 0.9;
  /// Probability an arrival above the bar is shed, in (0, 1].
  double admission_shed_prob = 1.0;
  /// Mean patience (exponential). A queued job whose patience expires
  /// before it starts service reneges. The deadline is fixed at arrival
  /// (arrival + patience) and follows the job through requeues and
  /// migrations; a job in service at its deadline is never cancelled.
  /// 0 = reneging off.
  double patience_mean = 0.0;
  /// Re-dispatch a host's queued jobs through the active policy when the
  /// autoscaler starts draining it (instead of finishing them in place).
  bool migrate_on_drain = false;
  /// Re-dispatch a host's queued jobs when it fail-stops. The in-service
  /// job is NOT migrated — it follows RecoveryMode, after the queue moved.
  bool migrate_on_fail = false;
  /// Keys the dedicated overload RNG stream ("OVER" tag).
  std::uint64_t stream_tag = 0x4f564552ULL;

  /// Any feature on? (enabled && !any_feature() is a bit-identical no-op.)
  [[nodiscard]] bool any_feature() const noexcept {
    return queue_cap > 0 || backlog_cap > 0.0 ||
           admission != AdmissionMode::kNone || patience_mean > 0.0 ||
           migrate_on_drain || migrate_on_fail;
  }
};

/// Per-run overload counters, reported through RunResult::overload.
/// Conservation: admitted + shed_admission == arrivals, and every admitted
/// job resolves as completed, abandoned, shed (overflow), or reneged.
struct OverloadStats {
  std::uint64_t admitted = 0;        ///< fresh arrivals past the controller
  std::uint64_t shed_admission = 0;  ///< dropped by the admission controller
  std::uint64_t shed_overflow = 0;   ///< dropped at a full host (arriving
                                     ///< job or evicted queue victim)
  std::uint64_t bounced_full = 0;    ///< direct deliveries refused by a full
                                     ///< host (job fell back to central)
  std::uint64_t rpc_full_rejects = 0;  ///< RPC deliveries refused by a full
                                       ///< host (chain retries/escalates)
  std::uint64_t reneged = 0;           ///< queued jobs past their deadline
  std::uint64_t migrated_drain = 0;    ///< queued jobs moved off a draining
                                       ///< host
  std::uint64_t migrated_fault = 0;    ///< queued jobs moved off a failed
                                       ///< host

  [[nodiscard]] std::uint64_t migrated() const noexcept {
    return migrated_drain + migrated_fault;
  }
  [[nodiscard]] std::uint64_t shed() const noexcept {
    return shed_admission + shed_overflow;
  }
};

/// The dispatcher-side admission controller plus the patience sampler.
/// Owns the dedicated overload RNG stream, derived as
/// Rng(seed ^ stream_tag) — disjoint from every other stream by
/// construction. Randomness is consumed only by the features that use it
/// (gate coin flips, patience draws), so configurations that don't need it
/// leave the stream untouched.
class AdmissionController {
 public:
  AdmissionController() = default;

  /// Validates `config` (rates, probabilities, cap ranges) and derives the
  /// overload stream from `seed`.
  AdmissionController(const OverloadConfig& config, std::uint64_t seed);

  /// Admission decision for a fresh arrival at `now` with the given
  /// busy-host fraction. kNone always admits.
  [[nodiscard]] bool admit(double now, double utilization);

  /// Exponential patience draw (requires patience_mean > 0).
  [[nodiscard]] double draw_patience();

  [[nodiscard]] const OverloadConfig& config() const noexcept {
    return config_;
  }

 private:
  OverloadConfig config_{};
  dist::Rng rng_{0};
  double tokens_ = 0.0;       ///< current bucket level
  double last_refill_ = 0.0;  ///< lazy-refill timestamp
};

}  // namespace distserv::sim
