#include "sim/simulator.hpp"

#include "util/contracts.hpp"

namespace distserv::sim {

void Simulator::schedule_at(Time t, std::function<void()> action) {
  DS_EXPECTS(t >= now_);
  queue_.schedule(t, std::move(action));
}

void Simulator::schedule_in(Time delay, std::function<void()> action) {
  DS_EXPECTS(delay >= 0.0);
  queue_.schedule(now_ + delay, std::move(action));
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_) {
    Event ev = queue_.pop();
    DS_ASSERT(ev.time >= now_);
    now_ = ev.time;
    if (observer_) observer_(ev.time);
    ev.action();
    ++n;
  }
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_until(Time horizon) {
  DS_EXPECTS(horizon >= now_);
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= horizon) {
    Event ev = queue_.pop();
    now_ = ev.time;
    if (observer_) observer_(ev.time);
    ev.action();
    ++n;
  }
  if (!stopped_) now_ = horizon;
  executed_ += n;
  return n;
}

}  // namespace distserv::sim
