#include "sim/simulator.hpp"

#include "util/contracts.hpp"

namespace distserv::sim {

void Simulator::schedule_at(Time t, const Event& event) {
  DS_EXPECTS(t >= now_);
  queue_.schedule(t, event);
}

void Simulator::schedule_in(Time delay, const Event& event) {
  DS_EXPECTS(delay >= 0.0);
  queue_.schedule(now_ + delay, event);
}

std::uint64_t Simulator::run(EventHandler& handler) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_) {
    const Event event = queue_.pop();
    DS_ASSERT(event.time >= now_);
    now_ = event.time;
    if (observer_) observer_(event.time);
    handler.on_event(event);
    ++n;
  }
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_until(Time horizon, EventHandler& handler) {
  DS_EXPECTS(horizon >= now_);
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= horizon) {
    const Event event = queue_.pop();
    now_ = event.time;
    if (observer_) observer_(event.time);
    handler.on_event(event);
    ++n;
  }
  if (!stopped_) now_ = horizon;
  executed_ += n;
  return n;
}

}  // namespace distserv::sim
