// The discrete-event simulation driver: a clock plus a future-event list.
//
// Model code schedules actions at absolute or relative times; run() pops
// events in (time, sequence) order and advances the clock. Time never moves
// backwards — scheduling in the past is a contract violation, which has
// caught every causality bug in the server model during development.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"

namespace distserv::sim {

/// Discrete-event simulation kernel.
class Simulator {
 public:
  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `t` >= now().
  void schedule_at(Time t, std::function<void()> action);

  /// Schedules `action` `delay` >= 0 seconds from now.
  void schedule_in(Time delay, std::function<void()> action);

  /// Runs until the event list is empty or stop() is called.
  /// Returns the number of events executed by this call.
  std::uint64_t run();

  /// Runs events with time <= `horizon`, then stops with now() == horizon
  /// (unless the queue empties first, leaving now() at the last event).
  std::uint64_t run_until(Time horizon);

  /// Requests that run() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Number of events pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed over the simulator's lifetime.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Installs a hook invoked with each event's time just before its action
  /// runs (the audit layer's monotonicity probe). Pass nullptr to remove.
  /// Costs one branch per event when unset.
  void set_observer(std::function<void(Time)> observer) {
    observer_ = std::move(observer);
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::function<void(Time)> observer_;
};

}  // namespace distserv::sim
