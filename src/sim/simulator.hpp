// The discrete-event simulation driver: a clock plus a future-event list.
//
// Model code schedules typed events at absolute or relative times; run()
// pops them in (time, sequence) order, advances the clock, and hands each
// one to the model's EventHandler, which dispatches on EventKind with a
// switch. Time never moves backwards — scheduling in the past is a
// contract violation, which has caught every causality bug in the server
// model during development.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"

namespace distserv::sim {

/// Discrete-event simulation kernel.
class Simulator {
 public:
  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `event` at absolute time `t` >= now().
  void schedule_at(Time t, const Event& event);

  /// Schedules `event` `delay` >= 0 seconds from now.
  void schedule_in(Time delay, const Event& event);

  /// Runs until the event list is empty or stop() is called, delivering
  /// every event to `handler`. Returns the number of events executed by
  /// this call.
  std::uint64_t run(EventHandler& handler);

  /// Runs events with time <= `horizon`, then stops with now() == horizon
  /// (unless the queue empties first, leaving now() at the last event).
  std::uint64_t run_until(Time horizon, EventHandler& handler);

  /// Requests that run() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Number of events pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Pre-sizes the event list for `n` concurrently pending events, so a
  /// steady-state run never allocates per event.
  void reserve(std::size_t n) { queue_.reserve(n); }

  /// Capacity of the event list's backing storage (no-allocation tests).
  [[nodiscard]] std::size_t pending_capacity() const noexcept {
    return queue_.capacity();
  }

  /// Total events executed over the simulator's lifetime.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Installs a hook invoked with each event's time just before it is
  /// delivered (the audit layer's monotonicity probe). Pass nullptr to
  /// remove. Costs one branch per event when unset.
  void set_observer(std::function<void(Time)> observer) {
    observer_ = std::move(observer);
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::function<void(Time)> observer_;
};

}  // namespace distserv::sim
