#include "stats/confidence.hpp"

#include <cmath>

#include "stats/welford.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"

namespace distserv::stats {

namespace {

// Continued-fraction evaluation of the regularized incomplete beta function
// (Lentz's algorithm, as in Numerical Recipes).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

// Regularized incomplete beta I_x(a, b).
double betai(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double bt = std::exp(std::lgamma(a + b) - std::lgamma(a) -
                             std::lgamma(b) + a * std::log(x) +
                             b * std::log1p(-x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * betacf(a, b, x) / a;
  }
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

// CDF of Student's t with `dof` degrees of freedom.
double t_cdf(double t, double dof) {
  const double x = dof / (dof + t * t);
  const double p = 0.5 * betai(0.5 * dof, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

}  // namespace

double t_critical(double level, unsigned dof) {
  DS_EXPECTS(level > 0.0 && level < 1.0);
  DS_EXPECTS(dof >= 1);
  const double target = 1.0 - 0.5 * (1.0 - level);
  const auto r = util::bisect(
      [&](double t) { return t_cdf(t, static_cast<double>(dof)) - target; },
      0.0, 1e6, 1e-10, 1e-12);
  DS_ENSURES(r.converged);
  return r.x;
}

Interval t_interval(std::span<const double> replications, double level) {
  DS_EXPECTS(replications.size() >= 2);
  Welford w;
  for (double x : replications) w.add(x);
  const double n = static_cast<double>(w.count());
  const double se = w.stddev() / std::sqrt(n);
  const double t = t_critical(level, static_cast<unsigned>(w.count() - 1));
  Interval ci;
  ci.mean = w.mean();
  ci.half_width = t * se;
  ci.lo = ci.mean - ci.half_width;
  ci.hi = ci.mean + ci.half_width;
  return ci;
}

Interval batch_means_interval(std::span<const double> xs, std::size_t batches,
                              double level) {
  DS_EXPECTS(batches >= 2);
  DS_EXPECTS(xs.size() >= batches);
  const std::size_t per_batch = xs.size() / batches;
  std::vector<double> means;
  means.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    Welford w;
    for (std::size_t i = b * per_batch; i < (b + 1) * per_batch; ++i) {
      w.add(xs[i]);
    }
    means.push_back(w.mean());
  }
  return t_interval(means, level);
}

}  // namespace distserv::stats
