// Confidence intervals for simulation output analysis.
//
// Multi-seed replications of a figure point are summarized with a Student-t
// interval on the replication means; single long runs can use the method of
// non-overlapping batch means. Integration tests use these to assert that
// the simulator agrees with closed-form queueing results *statistically*
// rather than with brittle fixed tolerances.
#pragma once

#include <span>

namespace distserv::stats {

/// A two-sided confidence interval [lo, hi] around `mean`.
struct Interval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double half_width = 0.0;

  /// True if `x` lies within [lo, hi].
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lo && x <= hi;
  }
};

/// Two-sided Student-t critical value t_{dof, 1-(1-level)/2}.
/// `level` in (0,1), dof >= 1. Uses a continued-fraction incomplete beta
/// inversion; exact to ~1e-8 for the dof ranges used here.
[[nodiscard]] double t_critical(double level, unsigned dof);

/// t-interval over independent replications (one value per replication).
/// Requires at least 2 values.
[[nodiscard]] Interval t_interval(std::span<const double> replications,
                                  double level = 0.95);

/// Batch-means interval: splits one autocorrelated series into `batches`
/// equal batches and applies a t-interval over the batch means.
/// Requires batches >= 2 and xs.size() >= batches.
[[nodiscard]] Interval batch_means_interval(std::span<const double> xs,
                                            std::size_t batches,
                                            double level = 0.95);

}  // namespace distserv::stats
