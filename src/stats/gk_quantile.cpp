#include "stats/gk_quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::stats {

GkQuantile::GkQuantile(double eps) : eps_(eps) {
  DS_EXPECTS(eps > 0.0 && eps < 0.5);
  buffer_cap_ = std::max<std::size_t>(
      static_cast<std::size_t>(1.0 / (2.0 * eps)), 16);
  buffer_.reserve(buffer_cap_);
}

void GkQuantile::add(double x) {
  DS_EXPECTS(!std::isnan(x));
  ++n_;
  buffer_.push_back(x);
  if (buffer_.size() >= buffer_cap_) flush();
}

std::size_t GkQuantile::summary_size() const {
  flush();
  return entries_.size();
}

void GkQuantile::flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  // Caps computed at the current n are valid forever: n only grows, so
  // every tuple keeps g + delta <= floor(2*eps*n) at all later queries.
  const auto cap = static_cast<std::uint64_t>(
      2.0 * eps_ * static_cast<double>(n_));
  const std::uint64_t interior_delta = cap >= 1 ? cap - 1 : 0;
  scratch_.clear();
  scratch_.reserve(entries_.size() + buffer_.size());
  std::size_t i = 0;
  for (const double v : buffer_) {
    while (i < entries_.size() && entries_[i].v <= v) {
      scratch_.push_back(entries_[i++]);
    }
    // Processing the buffer in sorted order mimics one-at-a-time GK
    // insertion: an element landing before everything seen so far is the
    // new minimum at its insertion instant (rank exactly known, delta 0),
    // and likewise past the summary's end for the new maximum.
    const bool extreme = scratch_.empty() || i == entries_.size();
    scratch_.push_back(Entry{v, 1, extreme ? 0 : interior_delta});
  }
  while (i < entries_.size()) scratch_.push_back(entries_[i++]);
  entries_.swap(scratch_);
  buffer_.clear();
  compress(cap);
}

void GkQuantile::compress(std::uint64_t cap) const {
  if (entries_.size() <= 2) return;
  // Backward pass absorbing entry k into its right survivor j whenever the
  // merged tuple keeps the invariant; the first and last entries pin the
  // exact min/max and are never absorbed. g == 0 marks a tombstone (every
  // live tuple has g >= 1).
  std::size_t j = entries_.size() - 1;
  for (std::size_t k = entries_.size() - 1; k-- > 1;) {
    if (entries_[k].g + entries_[j].g + entries_[j].delta <= cap) {
      entries_[j].g += entries_[k].g;
      entries_[k].g = 0;
    } else {
      j = k;
    }
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [](const Entry& e) { return e.g == 0; }),
                 entries_.end());
}

double GkQuantile::quantile(double q) const {
  flush();
  DS_EXPECTS(n_ > 0);
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n_);
  const double tol = eps_ * static_cast<double>(n_);
  // Return the last entry whose rmax stays within target + tol; the GK
  // invariant makes its true rank land in [target - tol, target + tol].
  std::uint64_t rmin = 0;
  double prev = entries_.front().v;
  for (const Entry& e : entries_) {
    rmin += e.g;
    if (static_cast<double>(rmin + e.delta) > target + tol) return prev;
    prev = e.v;
  }
  return entries_.back().v;
}

}  // namespace distserv::stats
