// Greenwald–Khanna ε-approximate streaming quantiles.
//
// Billion-job streaming runs (workload::JobSource) cannot keep a per-job
// slowdown vector for the exact nearest-rank quantiles in stats/quantile.hpp.
// This sketch keeps a summary of O((1/ε)·log(εn)) tuples (value, g, Δ)
// maintaining the GK invariant g + Δ <= floor(2εn), which guarantees every
// reported q-quantile has true rank within εn of q·n — a deterministic bound,
// independent of the input distribution (heavy tails included).
//
// Inserts are buffered (one sorted merge per ~1/(2ε) adds) so the amortized
// per-observation cost is O(log(1/ε)) comparisons plus an O(s) share of the
// merge, and the only allocations are the geometric growth of the summary
// and its reusable scratch vector — the streaming server's bounded-memory
// regression test (tests/sim/test_stream_alloc.cpp) depends on that.
#pragma once

#include <cstdint>
#include <vector>

namespace distserv::stats {

/// Streaming ε-approximate quantile summary (Greenwald–Khanna 2001).
class GkQuantile {
 public:
  /// Requires 0 < eps < 0.5. Memory grows with 1/eps; 1e-3 keeps the
  /// summary under ~a quarter MB at 10^9 observations.
  explicit GkQuantile(double eps = 1e-3);

  /// Adds one observation. Amortized cost: see header comment.
  void add(double x);

  /// Value whose rank is within eps*count() of q*count(). Requires
  /// count() > 0; q is clamped to [0, 1] (0 = min, 1 = max, exactly).
  /// Logically const: flushes the insert buffer into the summary.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }
  /// Tuples currently held (post-flush; for memory-bound tests).
  [[nodiscard]] std::size_t summary_size() const;

 private:
  struct Entry {
    double v = 0.0;           ///< observed value
    std::uint64_t g = 0;      ///< rmin(this) - rmin(previous)
    std::uint64_t delta = 0;  ///< rmax(this) - rmin(this)
  };

  void flush() const;
  void compress(std::uint64_t cap) const;

  double eps_;
  std::size_t buffer_cap_;
  std::uint64_t n_ = 0;
  // The flush that folds buffered inserts into the summary is an
  // implementation detail of the logically-const queries, hence mutable.
  mutable std::vector<Entry> entries_;   ///< sorted by v
  mutable std::vector<Entry> scratch_;   ///< merge target, recycled
  mutable std::vector<double> buffer_;   ///< pending inserts
};

}  // namespace distserv::stats
