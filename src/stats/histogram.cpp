#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::stats {

LogHistogram::LogHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), log_lo_(std::log(lo)) {
  DS_EXPECTS(lo > 0.0 && lo < hi);
  DS_EXPECTS(buckets >= 1);
  log_ratio_ = (std::log(hi) - log_lo_) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void LogHistogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((std::log(x) - log_lo_) / log_ratio_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::uint64_t LogHistogram::count(std::size_t bucket) const {
  DS_EXPECTS(bucket < counts_.size());
  return counts_[bucket];
}

std::pair<double, double> LogHistogram::bucket_bounds(std::size_t bucket) const {
  DS_EXPECTS(bucket < counts_.size());
  const double lower = std::exp(log_lo_ + log_ratio_ * static_cast<double>(bucket));
  const double upper =
      std::exp(log_lo_ + log_ratio_ * static_cast<double>(bucket + 1));
  return {lower, upper};
}

std::string LogHistogram::render(std::size_t max_width) const {
  std::uint64_t peak = std::max<std::uint64_t>(underflow_, overflow_);
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) peak = 1;
  std::string out;
  auto line = [&](const std::string& label, std::uint64_t c) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(c) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out += label + " | " + std::string(bar, '#') + " " + std::to_string(c) +
           "\n";
  };
  if (underflow_ > 0) line("        < " + util::format_sig(lo_, 3), underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto [lower, upper] = bucket_bounds(i);
    line(util::format_sig(lower, 3) + " .. " + util::format_sig(upper, 3),
         counts_[i]);
  }
  if (overflow_ > 0) {
    const auto top = bucket_bounds(counts_.size() - 1).second;
    line("       >= " + util::format_sig(top, 3), overflow_);
  }
  return out;
}

}  // namespace distserv::stats
