// Log-bucketed histogram. Job sizes and slowdowns span many decades, so the
// buckets are geometric; used for fairness profiles (mean slowdown per size
// decile) and for the workload characterization in Table 1's companion
// output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace distserv::stats {

/// Fixed-range geometric histogram over (0, +inf).
///
/// Bucket i (0-based) covers [lo * ratio^i, lo * ratio^{i+1}). Values below
/// `lo` land in an underflow bucket, values at or above the top in an
/// overflow bucket.
class LogHistogram {
 public:
  /// Requires 0 < lo < hi and buckets >= 1.
  LogHistogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const;

  /// [lower, upper) bounds of a bucket.
  [[nodiscard]] std::pair<double, double> bucket_bounds(
      std::size_t bucket) const;

  /// Renders "lower..upper: count" lines with a proportional bar.
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double log_lo_;
  double log_ratio_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace distserv::stats
