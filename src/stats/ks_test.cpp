#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace distserv::stats {

double kolmogorov_q(double t) {
  if (t <= 0.0) return 1.0;
  // The alternating series converges extremely fast for t > 0.2; below
  // that, Q is 1 to double precision anyway.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> samples,
                 const std::function<double(double)>& cdf) {
  DS_EXPECTS(samples.size() >= 8);
  std::vector<double> xs(samples.begin(), samples.end());
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  double d = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double F = cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(F - lo), std::abs(hi - F)});
  }
  KsResult r;
  r.statistic = d;
  r.n = xs.size();
  // Asymptotic with the Stephens small-sample correction.
  const double sq = std::sqrt(n);
  r.p_value = kolmogorov_q((sq + 0.12 + 0.11 / sq) * d);
  return r;
}

}  // namespace distserv::stats
