// One-sample Kolmogorov–Smirnov goodness-of-fit test.
//
// Used by the distribution property tests to check every sampler against
// its own CDF with a principled statistic instead of ad-hoc moment
// tolerances — important for the heavy-tailed distributions whose moments
// converge too slowly to test directly.
#pragma once

#include <functional>
#include <span>

namespace distserv::stats {

/// Result of a one-sample KS test.
struct KsResult {
  double statistic = 0.0;  ///< D_n = sup |F_n(x) - F(x)|
  double p_value = 0.0;    ///< asymptotic Kolmogorov p-value
  std::size_t n = 0;
};

/// Tests `samples` (need not be sorted) against the continuous CDF `cdf`.
/// Requires at least 8 samples for the asymptotic p-value to make sense.
[[nodiscard]] KsResult ks_test(std::span<const double> samples,
                               const std::function<double(double)>& cdf);

/// Complementary CDF of the Kolmogorov distribution:
/// Q(t) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2).
[[nodiscard]] double kolmogorov_q(double t);

}  // namespace distserv::stats
