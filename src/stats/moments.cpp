#include "stats/moments.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace distserv::stats {

RawMoments::RawMoments() : RawMoments({1.0, 2.0, 3.0, -1.0, -2.0}) {}

RawMoments::RawMoments(std::vector<double> exponents)
    : exponents_(std::move(exponents)) {
  DS_EXPECTS(!exponents_.empty());
  sums_.assign(exponents_.size(), 0.0);
  compensations_.assign(exponents_.size(), 0.0);
}

void RawMoments::add(double x) {
  DS_EXPECTS(x > 0.0);
  for (std::size_t i = 0; i < exponents_.size(); ++i) {
    const double term = std::pow(x, exponents_[i]);
    // Neumaier-compensated accumulation.
    const double t = sums_[i] + term;
    if (std::abs(sums_[i]) >= std::abs(term)) {
      compensations_[i] += (sums_[i] - t) + term;
    } else {
      compensations_[i] += (term - t) + sums_[i];
    }
    sums_[i] = t;
  }
  ++n_;
}

double RawMoments::moment_at(std::size_t i) const {
  DS_EXPECTS(i < exponents_.size());
  DS_EXPECTS(n_ > 0);
  return (sums_[i] + compensations_[i]) / static_cast<double>(n_);
}

double RawMoments::moment(double j) const {
  for (std::size_t i = 0; i < exponents_.size(); ++i) {
    if (exponents_[i] == j) return moment_at(i);
  }
  DS_EXPECTS(false && "exponent not tracked");
  return 0.0;
}

}  // namespace distserv::stats
