// Raw-moment accumulator: tracks E[X^j] for a fixed set of exponents with
// compensated summation. The queueing analysis consumes E[X], E[X^2], E[X^3]
// (waiting time), and E[1/X], E[1/X^2] (slowdown), so those five are the
// default exponent set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace distserv::stats {

/// Streaming estimator of raw moments E[X^j] for user-chosen exponents j.
class RawMoments {
 public:
  /// Default exponent set {1, 2, 3, -1, -2}, the queueing-analysis needs.
  RawMoments();

  /// Custom exponent set; must be non-empty.
  explicit RawMoments(std::vector<double> exponents);

  /// Adds one observation. Requires x > 0 (service requirements and
  /// interarrival gaps are strictly positive).
  void add(double x);

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] const std::vector<double>& exponents() const noexcept {
    return exponents_;
  }

  /// E[X^j] for exponent index i (matching exponents()[i]).
  [[nodiscard]] double moment_at(std::size_t i) const;

  /// E[X^j]; the exponent must be one of the tracked set.
  [[nodiscard]] double moment(double j) const;

 private:
  std::vector<double> exponents_;
  std::vector<double> sums_;          // compensated running sums
  std::vector<double> compensations_;
  std::uint64_t n_ = 0;
};

}  // namespace distserv::stats
