#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::stats {

namespace {
std::size_t rank_of(double q, std::size_t n) {
  // Nearest-rank: ceil(q*n), clamped to [1, n], then 0-based.
  const auto r = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  return std::min(std::max<std::size_t>(r, 1), n) - 1;
}
}  // namespace

double quantile(std::span<const double> xs, double q) {
  DS_EXPECTS(!xs.empty());
  DS_EXPECTS(q > 0.0 && q < 1.0);
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t r = rank_of(q, copy.size());
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(r),
                   copy.end());
  return copy[r];
}

std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs) {
  DS_EXPECTS(!xs.empty());
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    DS_EXPECTS(q > 0.0 && q < 1.0);
    out.push_back(copy[rank_of(q, copy.size())]);
  }
  return out;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

}  // namespace distserv::stats
