// Exact quantiles over collected samples. Simulations keep per-job metric
// vectors anyway (for variance and fairness breakdowns), so quantiles are
// computed exactly with nth_element rather than approximated.
#pragma once

#include <span>
#include <vector>

namespace distserv::stats {

/// q-quantile (0 < q < 1) of `xs` using the nearest-rank method.
/// Does not modify the input. Requires non-empty input.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Several quantiles at once; sorts one copy (cheaper than repeated
/// nth_element for more than ~3 quantiles).
[[nodiscard]] std::vector<double> quantiles(std::span<const double> xs,
                                            std::span<const double> qs);

/// Median shorthand.
[[nodiscard]] double median(std::span<const double> xs);

}  // namespace distserv::stats
