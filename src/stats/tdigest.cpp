#include "stats/tdigest.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::stats {

namespace {
constexpr std::size_t kBufferCap = 512;
constexpr double kPi = 3.141592653589793238462643383279502884;
}  // namespace

TDigest::TDigest(double compression) : compression_(compression) {
  DS_EXPECTS(compression >= 10.0);
  buffer_.reserve(kBufferCap);
}

double TDigest::k_scale(double q) const {
  return compression_ / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

void TDigest::add(double x) {
  DS_EXPECTS(!std::isnan(x));
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  buffer_.push_back(x);
  if (buffer_.size() >= kBufferCap) flush();
}

std::size_t TDigest::centroid_count() const {
  flush();
  return centroids_.size();
}

void TDigest::flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  const double total = total_ + static_cast<double>(buffer_.size());
  // Two-pointer walk over (existing centroids, sorted buffer), greedily
  // re-clustering under the k1 size limit: a neighbor joins the current
  // centroid while the merged span covers less than one k-unit.
  std::size_t ci = 0;
  std::size_t bi = 0;
  const auto next_candidate = [&]() -> Centroid {
    if (ci < centroids_.size() &&
        (bi >= buffer_.size() || centroids_[ci].mean <= buffer_[bi])) {
      return centroids_[ci++];
    }
    return Centroid{buffer_[bi++], 1.0};
  };
  const std::size_t m = centroids_.size() + buffer_.size();
  scratch_.clear();
  Centroid cur = next_candidate();
  double emitted = 0.0;  // weight fully emitted before cur
  double k_left = k_scale(0.0);
  for (std::size_t idx = 1; idx < m; ++idx) {
    const Centroid nxt = next_candidate();
    const double q_merged = (emitted + cur.weight + nxt.weight) / total;
    if (k_scale(q_merged) - k_left <= 1.0) {
      cur.mean +=
          (nxt.mean - cur.mean) * (nxt.weight / (cur.weight + nxt.weight));
      cur.weight += nxt.weight;
    } else {
      scratch_.push_back(cur);
      emitted += cur.weight;
      k_left = k_scale(emitted / total);
      cur = nxt;
    }
  }
  scratch_.push_back(cur);
  centroids_.swap(scratch_);
  total_ = total;
  buffer_.clear();
}

double TDigest::quantile(double q) const {
  flush();
  DS_EXPECTS(n_ > 0);
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * total_;
  // Piecewise-linear through the centroid midpoints, anchored at the exact
  // extremes: (0, min) .. (w1/2, m1) .. (total - wk/2, mk) .. (total, max).
  double cum = 0.0;
  double prev_pos = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double mid = cum + c.weight / 2.0;
    if (target < mid) {
      const double t = (target - prev_pos) / (mid - prev_pos);
      return prev_mean + t * (c.mean - prev_mean);
    }
    prev_pos = mid;
    prev_mean = c.mean;
    cum += c.weight;
  }
  const double t = (target - prev_pos) / (total_ - prev_pos);
  return prev_mean + t * (max_ - prev_mean);
}

}  // namespace distserv::stats
