// Merging t-digest: streaming quantiles with relative accuracy at the tails.
//
// Complements the GK sketch (stats/gk_quantile.hpp): GK gives a hard
// distribution-free rank bound ε·n uniformly over q, while the t-digest's
// k1 scale function concentrates centroids near q = 0 and q = 1, so extreme
// quantiles (p99, p999 slowdown under heavy-tailed sizes) come out far
// tighter for the same memory. No deterministic worst-case bound, which is
// why the streaming server reports through GK and the t-digest ships as the
// tail-accurate alternative (both are covered by the sketch property tests).
//
// This is the buffer-and-merge variant of Dunning & Ertl: incoming points
// collect in a buffer and are periodically sort-merged with the existing
// centroids under the k1 size limit, giving amortized O(log n) adds and
// O(compression) centroids.
#pragma once

#include <cstdint>
#include <vector>

namespace distserv::stats {

/// Streaming quantile digest (Dunning & Ertl), merging variant, k1 scale.
class TDigest {
 public:
  /// `compression` (δ) bounds the centroid count (~2δ); 100–500 is the
  /// practical range. Requires compression >= 10.
  explicit TDigest(double compression = 200.0);

  /// Adds one observation.
  void add(double x);

  /// Interpolated q-quantile estimate. Requires count() > 0; q clamped to
  /// [0, 1] (exact min/max at the ends). Logically const: flushes the
  /// insert buffer.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double compression() const noexcept { return compression_; }
  /// Centroids currently held (post-flush; for memory-bound tests).
  [[nodiscard]] std::size_t centroid_count() const;

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  void flush() const;
  [[nodiscard]] double k_scale(double q) const;

  double compression_;
  std::uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Flushing buffered inserts is an implementation detail of the
  // logically-const queries, hence mutable.
  mutable std::vector<Centroid> centroids_;  ///< sorted by mean
  mutable std::vector<Centroid> scratch_;    ///< merge target, recycled
  mutable std::vector<double> buffer_;       ///< pending inserts
  mutable double total_ = 0.0;               ///< weight in centroids_
};

}  // namespace distserv::stats
