#include "stats/tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace distserv::stats {

bool close(double a, double b, double rtol, double atol) {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (a == b) return true;  // covers equal infinities
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

double relative_error(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<double>::infinity();
  }
  if (a == b) return 0.0;
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale == 0.0 ? 0.0 : std::abs(a - b) / scale;
}

}  // namespace distserv::stats
