// Closeness predicates shared by the audit layer and validation tests.
//
// Accounting identities (Little's law, utilization integrals) hold exactly
// in real arithmetic but accumulate rounding over millions of additions, so
// every comparison states an explicit tolerance instead of using ==.
#pragma once

namespace distserv::stats {

/// True if |a - b| <= atol + rtol * max(|a|, |b|).
[[nodiscard]] bool close(double a, double b, double rtol, double atol = 0.0);

/// |a - b| / max(|a|, |b|); defined as 0 when both are 0, and infinity if
/// either input is NaN.
[[nodiscard]] double relative_error(double a, double b);

}  // namespace distserv::stats
