#include "stats/welford.hpp"

#include <algorithm>
#include <cmath>

namespace distserv::stats {

void Welford::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance_population() const noexcept {
  if (n_ < 1) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Welford::variance_sample() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance_sample()); }

double Welford::scv() const noexcept {
  if (mean_ == 0.0) return 0.0;
  return variance_sample() / (mean_ * mean_);
}

double Welford::sum() const noexcept {
  return mean_ * static_cast<double>(n_);
}

}  // namespace distserv::stats
