// Welford's online algorithm for numerically stable streaming mean/variance.
// Every per-job metric (slowdown, response time, waiting time) is accumulated
// through this; simulations run hundreds of thousands of jobs per data point
// and slowdowns span six orders of magnitude, so naive sum-of-squares would
// lose the variance signal the paper's bottom panels plot.
#pragma once

#include <cstdint>
#include <limits>

namespace distserv::stats {

/// Streaming count / mean / variance / extrema accumulator.
class Welford {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-reduction friendly).
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  /// Mean of observations; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance (divide by n); 0 when n < 1.
  [[nodiscard]] double variance_population() const noexcept;
  /// Sample variance (divide by n-1); 0 when n < 2.
  [[nodiscard]] double variance_sample() const noexcept;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;
  /// Squared coefficient of variation (sample variance / mean^2).
  [[nodiscard]] double scv() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace distserv::stats
