#include "util/cli.hpp"

#include <sstream>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::util {

Cli::Cli(int argc, const char* const* argv) {
  DS_EXPECTS(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      options_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // `--name value` if the next token exists and is not itself an option;
    // otherwise a boolean flag.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      options_[std::string(arg)] = "";
    }
  }
}

bool Cli::has(const std::string& name) const {
  return options_.contains(name);
}

std::optional<std::string> Cli::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

void Cli::require_known(std::span<const std::string_view> known) const {
  for (const auto& [name, value] : options_) {
    bool found = false;
    for (std::string_view k : known) {
      if (name == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      throw CliError("unknown option --" + name);
    }
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  double out = 0.0;
  if (!parse_double(*v, out)) {
    throw CliError("option --" + name + ": '" + *v + "' is not a number");
  }
  return out;
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  long long out = 0;
  if (!parse_int64(*v, out)) {
    throw CliError("option --" + name + ": '" + *v + "' is not an integer");
  }
  return out;
}

double Cli::get_double_in(const std::string& name, double fallback, double lo,
                          double hi) const {
  DS_EXPECTS(lo <= hi);
  DS_EXPECTS(fallback >= lo && fallback <= hi);
  const double out = get_double(name, fallback);
  if (out < lo || out > hi) {
    std::ostringstream what;
    what << "option --" << name << ": " << out << " is outside [" << lo
         << ", " << hi << "]";
    throw CliError(what.str());
  }
  return out;
}

long long Cli::get_int_in(const std::string& name, long long fallback,
                          long long lo, long long hi) const {
  DS_EXPECTS(lo <= hi);
  DS_EXPECTS(fallback >= lo && fallback <= hi);
  const long long out = get_int(name, fallback);
  if (out < lo || out > hi) {
    std::ostringstream what;
    what << "option --" << name << ": " << out << " is outside [" << lo
         << ", " << hi << "]";
    throw CliError(what.str());
  }
  return out;
}

std::string Cli::get_string(const std::string& name, std::string fallback) const {
  const auto v = get(name);
  return v ? *v : std::move(fallback);
}

}  // namespace distserv::util
