// Tiny command-line option parser for the examples and bench binaries.
// Supports `--name value`, `--name=value`, and boolean `--flag`.
//
// Errors — an unknown flag (require_known), a malformed numeric value, or a
// value outside a get_*_in range — throw CliError with a message naming the
// offending flag, so a bench can catch one and print usage instead of dying
// on an assert.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace distserv::util {

/// A user mistake on the command line: unknown flag, malformed number, or
/// out-of-range value. what() names the flag.
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses argv into named options and positional arguments.
class Cli {
 public:
  /// Parses `argv[1..argc)`. Throws ContractViolation on malformed input
  /// such as a value-less `--opt` at the end used as a valued option later.
  Cli(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name`, or nullopt.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// Throws CliError unless every option given on the command line appears
  /// in `known` — catches typos like `--mtfb` silently falling back to the
  /// default. Positional arguments are unaffected.
  void require_known(std::span<const std::string_view> known) const;

  /// Value of `--name` parsed as double, or `fallback`. Throws CliError
  /// (naming the flag) on a malformed value.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Value of `--name` parsed as int64, or `fallback`. Throws CliError
  /// (naming the flag) on a malformed value.
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;

  /// get_double restricted to [lo, hi]; out-of-range throws CliError
  /// naming the flag and the accepted range. `fallback` must itself be in
  /// range.
  [[nodiscard]] double get_double_in(const std::string& name, double fallback,
                                     double lo, double hi) const;

  /// get_int restricted to [lo, hi]; out-of-range throws CliError naming
  /// the flag and the accepted range. `fallback` must itself be in range.
  [[nodiscard]] long long get_int_in(const std::string& name,
                                     long long fallback, long long lo,
                                     long long hi) const;

  /// Value of `--name` as string, or `fallback`.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;

  /// Positional (non-option) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace distserv::util
