// Tiny command-line option parser for the examples and bench binaries.
// Supports `--name value`, `--name=value`, and boolean `--flag`.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace distserv::util {

/// Parses argv into named options and positional arguments.
class Cli {
 public:
  /// Parses `argv[1..argc)`. Throws ContractViolation on malformed input
  /// such as a value-less `--opt` at the end used as a valued option later.
  Cli(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name`, or nullopt.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// Value of `--name` parsed as double, or `fallback`.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Value of `--name` parsed as int64, or `fallback`.
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;

  /// Value of `--name` as string, or `fallback`.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;

  /// Positional (non-option) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace distserv::util
