#include "util/contracts.hpp"

namespace distserv {

namespace {
std::string format_message(const char* kind, const char* condition,
                           const char* file, int line) {
  std::string msg;
  msg += kind;
  msg += " violated: `";
  msg += condition;
  msg += "` at ";
  msg += file;
  msg += ":";
  msg += std::to_string(line);
  return msg;
}
}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* condition,
                                     const char* file, int line)
    : std::logic_error(format_message(kind, condition, file, line)) {}

namespace detail {
void contract_failed(const char* kind, const char* condition, const char* file,
                     int line) {
  throw ContractViolation(kind, condition, file, line);
}
}  // namespace detail

}  // namespace distserv
