// Contract checking for distserv.
//
// Following the C++ Core Guidelines (I.6, I.8), public API functions state
// their preconditions with DS_EXPECTS and postconditions with DS_ENSURES.
// Internal invariants use DS_ASSERT. All three are active in every build
// mode: the library is a research instrument, and a wrong answer is far more
// expensive than the nanoseconds these checks cost next to event-queue work.
//
// A violated contract throws ContractViolation (rather than aborting) so that
// tests can assert on misuse and long experiment sweeps can report which
// configuration was infeasible.
#pragma once

#include <stdexcept>
#include <string>

namespace distserv {

/// Thrown when a DS_EXPECTS / DS_ENSURES / DS_ASSERT condition fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* condition, const char* file,
                    int line);
};

namespace detail {
[[noreturn]] void contract_failed(const char* kind, const char* condition,
                                  const char* file, int line);
}  // namespace detail

}  // namespace distserv

#define DS_CONTRACT_CHECK(kind, cond)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::distserv::detail::contract_failed(kind, #cond, __FILE__, __LINE__); \
    }                                                                     \
  } while (false)

/// Precondition: caller must satisfy `cond` before the call.
#define DS_EXPECTS(cond) DS_CONTRACT_CHECK("precondition", cond)
/// Postcondition: callee guarantees `cond` on normal return.
#define DS_ENSURES(cond) DS_CONTRACT_CHECK("postcondition", cond)
/// Internal invariant.
#define DS_ASSERT(cond) DS_CONTRACT_CHECK("assertion", cond)
