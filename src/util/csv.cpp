#include "util/csv.hpp"

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  DS_EXPECTS(!header_written_ && rows_ == 0);
  DS_EXPECTS(!names.empty());
  columns_ = names.size();
  header_written_ = true;
  write_fields(names);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (columns_ == 0) columns_ = fields.size();
  DS_EXPECTS(fields.size() == columns_);
  write_fields(fields);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_sig(v, 9));
  row(fields);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

}  // namespace distserv::util
