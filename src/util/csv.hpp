// Minimal CSV writer. Bench binaries emit machine-readable series alongside
// the human-readable tables so figures can be re-plotted externally.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace distserv::util {

/// Streams rows of a CSV file. Fields containing commas, quotes or newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row. Must be called at most once, before any row.
  void header(const std::vector<std::string>& names);

  /// Writes one data row of strings.
  void row(const std::vector<std::string>& fields);

  /// Writes one data row of doubles (formatted with %.9g).
  void row(const std::vector<double>& values);

  /// Number of data rows written so far (header excluded).
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::ostream* out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace distserv::util
