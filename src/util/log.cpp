#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/strings.hpp"

namespace distserv::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) noexcept {
  const std::string n = to_lower(name);
  if (n == "debug") return LogLevel::kDebug;
  if (n == "info") return LogLevel::kInfo;
  if (n == "warn") return LogLevel::kWarn;
  if (n == "error") return LogLevel::kError;
  if (n == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::cerr << "[distserv " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace distserv::util
