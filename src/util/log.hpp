// Leveled stderr logger. Experiments are long; progress lines keep the user
// informed without polluting the stdout tables that tests/tools parse.
#pragma once

#include <sstream>
#include <string>

namespace distserv::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn, so
/// library users see nothing unless something is wrong.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off"; returns kWarn for unknown.
[[nodiscard]] LogLevel parse_log_level(const std::string& name) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement:  DS_LOG(kInfo) << "ran " << n << " jobs";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace distserv::util

#define DS_LOG(level) \
  ::distserv::util::LogLine(::distserv::util::LogLevel::level)
