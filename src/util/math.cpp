#include "util/math.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace distserv::util {

void KahanSum::add(double x) noexcept {
  // Neumaier variant: works even when |x| > |sum_|.
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    compensation_ += (sum_ - t) + x;
  } else {
    compensation_ += (x - t) + sum_;
  }
  sum_ = t;
}

double compensated_sum(std::span<const double> xs) noexcept {
  KahanSum acc;
  for (double x : xs) acc.add(x);
  return acc.value();
}

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  double xtol, double ftol, int max_iter) {
  DS_EXPECTS(lo <= hi);
  double flo = f(lo);
  double fhi = f(hi);
  RootResult r;
  if (flo == 0.0) return {lo, 0.0, true, 0};
  if (fhi == 0.0) return {hi, 0.0, true, 0};
  DS_EXPECTS(std::signbit(flo) != std::signbit(fhi));
  for (int i = 0; i < max_iter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    r.iterations = i + 1;
    if (std::abs(fmid) <= ftol || (hi - lo) <= xtol) {
      return {mid, fmid, true, r.iterations};
    }
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  const double mid = 0.5 * (lo + hi);
  return {mid, f(mid), false, max_iter};
}

MinResult golden_section_minimize(const std::function<double(double)>& f,
                                  double lo, double hi, double xtol,
                                  int max_iter) {
  DS_EXPECTS(lo <= hi);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c), fd = f(d);
  int it = 0;
  while ((b - a) > xtol && it < max_iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
    ++it;
  }
  const double x = 0.5 * (a + b);
  return {x, f(x), (b - a) <= xtol, it};
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  DS_EXPECTS(n >= 2);
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid accumulated rounding on the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  DS_EXPECTS(lo > 0.0 && lo < hi);
  DS_EXPECTS(n >= 2);
  std::vector<double> out = linspace(std::log(lo), std::log(hi), n);
  for (double& x : out) x = std::exp(x);
  out.front() = lo;
  out.back() = hi;
  return out;
}

bool approx_equal(double a, double b, double rtol, double atol) noexcept {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace distserv::util
