// Small numeric toolbox shared across distserv: compensated summation,
// 1-D root finding and minimization, and grid builders for load sweeps.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace distserv::util {

/// Kahan–Neumaier compensated accumulator. Traces contain job sizes spanning
/// ~6 orders of magnitude, so naive summation of squares loses precision.
class KahanSum {
 public:
  /// Adds `x` to the running sum.
  void add(double x) noexcept;
  /// Current compensated total.
  [[nodiscard]] double value() const noexcept { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sums a range with compensation.
[[nodiscard]] double compensated_sum(std::span<const double> xs) noexcept;

/// Result of a bracketing root search.
struct RootResult {
  double x = 0.0;        ///< abscissa of the root
  double fx = 0.0;       ///< residual f(x)
  bool converged = false;
  int iterations = 0;
};

/// Bisection on [lo, hi]. Requires f(lo) and f(hi) to have opposite signs
/// (or one of them to be zero). Converges to |hi-lo| <= xtol or |f| <= ftol.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double lo, double hi, double xtol = 1e-10,
                                double ftol = 0.0, int max_iter = 200);

/// Result of a scalar minimization.
struct MinResult {
  double x = 0.0;
  double fx = 0.0;
  bool converged = false;
  int iterations = 0;
};

/// Golden-section minimization of a unimodal f on [lo, hi].
[[nodiscard]] MinResult golden_section_minimize(
    const std::function<double(double)>& f, double lo, double hi,
    double xtol = 1e-8, int max_iter = 300);

/// n evenly spaced points from lo to hi inclusive. Requires n >= 2.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// n log-spaced points from lo to hi inclusive. Requires 0 < lo < hi, n >= 2.
[[nodiscard]] std::vector<double> logspace(double lo, double hi,
                                           std::size_t n);

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
[[nodiscard]] bool approx_equal(double a, double b, double rtol = 1e-9,
                                double atol = 0.0) noexcept;

}  // namespace distserv::util
