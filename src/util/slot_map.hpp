// A slot-pool hash map in the style of the event engine's slot-pool heap:
// values live in a contiguous slot vector recycled through a free list, and
// an open-addressing index (power-of-two, linear probing, backward-shift
// deletion) maps keys to slots. After the initial warm-up the steady state
// performs zero allocations per insert/erase cycle — the property the RPC
// pending-dispatch table needs, where every routed job inserts one entry
// and erases it on ack.
//
// Deliberately narrower than std::unordered_map: no iterators (use
// for_each), no node handles, keys are trivially copyable values hashed
// with a SplitMix64-style avalanche. Iteration order is a deterministic
// function of the operation sequence (probe order), never of pointer
// values, so audited runs stay reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace distserv::util {

/// SplitMix64 finalizer on a value (the stateless cousin of
/// dist::splitmix64, which advances a stream). Used wherever a single
/// well-mixed 64-bit hash of an integer key is needed.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Slot-pooled open-addressing map from a trivially copyable integer-like
/// key to a default-constructible value. upsert() matches
/// unordered_map::operator[] semantics (insert default if absent).
template <typename Key, typename Value>
class SlotMap {
 public:
  /// Returns the value for `key`, default-constructing it first if the key
  /// is absent. The reference stays valid until the next upsert/erase/
  /// clear (slot storage may reallocate while the pool is still growing).
  Value& upsert(Key key) {
    if (buckets_.empty() || (size_ + 1) * 10 > buckets_.size() * 7) {
      grow();
    }
    std::size_t b = bucket_of(key);
    while (buckets_[b] != kEmpty) {
      if (slots_[buckets_[b]].key == key) return slots_[buckets_[b]].value;
      b = (b + 1) & mask_;
    }
    std::uint32_t s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
      slots_[s].key = key;
      slots_[s].value = Value{};
    } else {
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{key, Value{}});
    }
    buckets_[b] = s;
    ++size_;
    return slots_[s].value;
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  [[nodiscard]] Value* find(Key key) noexcept {
    const std::size_t b = find_bucket(key);
    return b == kNone ? nullptr : &slots_[buckets_[b]].value;
  }
  [[nodiscard]] const Value* find(Key key) const noexcept {
    const std::size_t b = find_bucket(key);
    return b == kNone ? nullptr : &slots_[buckets_[b]].value;
  }

  /// Removes `key` if present; the slot returns to the free list. Uses
  /// backward-shift deletion so lookups never cross tombstones.
  bool erase(Key key) noexcept {
    std::size_t b = find_bucket(key);
    if (b == kNone) return false;
    free_.push_back(buckets_[b]);
    --size_;
    // Backward-shift: pull displaced entries into the hole so every
    // remaining entry stays reachable from its home bucket.
    std::size_t hole = b;
    std::size_t j = b;
    for (;;) {
      j = (j + 1) & mask_;
      if (buckets_[j] == kEmpty) break;
      const std::size_t home = bucket_of(slots_[buckets_[j]].key);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        buckets_[hole] = buckets_[j];
        hole = j;
      }
    }
    buckets_[hole] = kEmpty;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Drops every entry but keeps the slot pool and index capacity, so a
  /// cleared map re-fills without allocating.
  void clear() noexcept {
    for (auto& bucket : buckets_) bucket = kEmpty;
    slots_.clear();
    free_.clear();
    size_ = 0;
  }

  /// Pre-sizes the index for `n` entries (rounded up to the load-factor
  /// headroom) so the warm-up rehashes happen before the hot loop.
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (n * 10 > want * 7) want *= 2;
    if (want > buckets_.size()) rehash(want);
    slots_.reserve(n);
  }

  /// Calls fn(key, value&) for every live entry, in probe-table order
  /// (deterministic for a fixed operation sequence).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (const std::uint32_t s : buckets_) {
      if (s != kEmpty) fn(slots_[s].key, slots_[s].value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::uint32_t s : buckets_) {
      if (s != kEmpty) fn(slots_[s].key, slots_[s].value);
    }
  }

 private:
  struct Slot {
    Key key;
    Value value;
  };
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t bucket_of(Key key) const noexcept {
    return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(key))) &
           mask_;
  }

  [[nodiscard]] std::size_t find_bucket(Key key) const noexcept {
    if (buckets_.empty()) return kNone;
    std::size_t b = bucket_of(key);
    while (buckets_[b] != kEmpty) {
      if (slots_[buckets_[b]].key == key) return b;
      b = (b + 1) & mask_;
    }
    return kNone;
  }

  void grow() { rehash(buckets_.empty() ? 16 : buckets_.size() * 2); }

  void rehash(std::size_t new_cap) {
    DS_ASSERT((new_cap & (new_cap - 1)) == 0);
    std::vector<std::uint32_t> old = std::move(buckets_);
    buckets_.assign(new_cap, kEmpty);
    mask_ = new_cap - 1;
    for (const std::uint32_t s : old) {
      if (s == kEmpty) continue;
      std::size_t b = bucket_of(slots_[s].key);
      while (buckets_[b] != kEmpty) b = (b + 1) & mask_;
      buckets_[b] = s;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> buckets_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace distserv::util
