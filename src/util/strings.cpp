#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace distserv::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  const std::size_t n = s.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_int64(std::string_view s, long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::string format_sig(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, x);
  return buf;
}

std::string format_fixed(double x, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, x);
  return buf;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace distserv::util
