// String helpers used by the trace readers, CSV writer, and CLI parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace distserv::util {

/// Splits `s` on `delim`, keeping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Splits `s` on runs of whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string_view> split_whitespace(
    std::string_view s);

/// Removes leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; returns false on any trailing garbage or empty input.
[[nodiscard]] bool parse_double(std::string_view s, double& out);

/// Parses a signed 64-bit integer; returns false on failure.
[[nodiscard]] bool parse_int64(std::string_view s, long long& out);

/// Formats `x` with `digits` significant digits (%.{digits}g).
[[nodiscard]] std::string format_sig(double x, int digits = 6);

/// Formats `x` with fixed decimals (%.{decimals}f).
[[nodiscard]] std::string format_fixed(double x, int decimals = 3);

/// Joins strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Lower-cases ASCII.
[[nodiscard]] std::string to_lower(std::string_view s);

/// ASCII case-insensitive equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

}  // namespace distserv::util
