#include "util/table.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DS_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::string& label,
                            const std::vector<double>& values,
                            int sig_digits) {
  DS_EXPECTS(values.size() + 1 == headers_.size());
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_sig(v, sig_digits));
  add_row(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  // Left-align the label column, right-align everything else (numbers).
  auto print_aligned = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        out << cells[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cells[c];
      }
    }
    out << '\n';
  };
  print_aligned(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_aligned(row);
}

}  // namespace distserv::util
