// Aligned console table printer. All figure-reproduction binaries print
// their series through this so the output reads like the paper's tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace distserv::util {

/// Builds a column-aligned text table and renders it to a stream.
///
/// Usage:
///   Table t({"load", "Random", "LWL", "SITA-E"});
///   t.add_row({"0.5", "182.0", "31.7", "9.2"});
///   t.print(std::cout);
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest are numbers formatted with
  /// `sig_digits` significant digits.
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int sig_digits = 5);

  /// Number of data rows.
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace distserv::util
