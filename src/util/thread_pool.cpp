#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"

namespace distserv::util {

ThreadPool::ThreadPool(std::size_t threads) {
  DS_EXPECTS(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    batch_done_.wait(lock, [this] { return in_flight_ == 0; });
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DS_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    DS_EXPECTS(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t ThreadPool::hardware_threads() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    batch_done_.notify_all();
  }
}

}  // namespace distserv::util
