// A small fixed-size worker pool for deterministic fan-out workloads.
//
// The sweep engine (core/sweep_runner) schedules thousands of independent,
// pre-indexed simulation tasks; all it needs from a pool is submit(),
// wait(), and first-error propagation. Tasks must not submit further tasks
// from within the pool (no work stealing, no futures) — keeping the
// contract this small is what makes the determinism argument in
// DESIGN.md §"Parallel sweep engine" a one-liner: tasks write to disjoint
// pre-sized slots, so execution order cannot matter.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace distserv::util {

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains outstanding tasks and joins.
class ThreadPool {
 public:
  /// Spawns `threads` >= 1 workers.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (equivalent to wait()) and joins all workers.
  /// Exceptions still pending from tasks are swallowed at this point —
  /// call wait() if you need them rethrown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Thread-safe. Must not be called from inside a
  /// running task (the pool is a flat fan-out, not a DAG executor).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the *first* exception (by completion order) exactly once;
  /// later exceptions from the same batch are dropped.
  void wait();

  /// Number of worker threads.
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// std::thread::hardware_concurrency() clamped to >= 1 (the standard
  /// allows it to return 0 when undetectable).
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

}  // namespace distserv::util
