#include "workload/arrival.hpp"

#include <cmath>

#include "stats/welford.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace distserv::workload {

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  DS_EXPECTS(rate > 0.0);
}

double PoissonArrivals::next_gap(dist::Rng& rng) {
  return rng.exponential(rate_);
}

std::string PoissonArrivals::name() const {
  return "Poisson(rate=" + util::format_sig(rate_) + ")";
}

RenewalArrivals::RenewalArrivals(dist::DistributionPtr gap_distribution)
    : gaps_(std::move(gap_distribution)) {
  DS_EXPECTS(gaps_ != nullptr);
  const double mean = gaps_->mean();
  DS_EXPECTS(std::isfinite(mean) && mean > 0.0);
  rate_ = 1.0 / mean;
}

double RenewalArrivals::next_gap(dist::Rng& rng) {
  return gaps_->sample(rng);
}

std::string RenewalArrivals::name() const {
  return "Renewal(" + gaps_->name() + ")";
}

Mmpp2Arrivals::Mmpp2Arrivals(double rate0, double rate1, double switch0,
                             double switch1) {
  DS_EXPECTS(rate0 > 0.0 && rate1 > 0.0);
  DS_EXPECTS(switch0 > 0.0 && switch1 > 0.0);
  rate_[0] = rate0;
  rate_[1] = rate1;
  switch_[0] = switch0;
  switch_[1] = switch1;
}

Mmpp2Arrivals Mmpp2Arrivals::with_burstiness(double rate, double burst_ratio,
                                             double burst_time_fraction,
                                             double mean_cycle_arrivals) {
  DS_EXPECTS(rate > 0.0);
  DS_EXPECTS(burst_ratio > 1.0);
  DS_EXPECTS(burst_time_fraction > 0.0 && burst_time_fraction < 1.0);
  DS_EXPECTS(mean_cycle_arrivals > 1.0);
  const double f = burst_time_fraction;
  // Phase 1 is the burst phase. Weighted rates must average to `rate`.
  const double rate0 = rate / (f * burst_ratio + (1.0 - f));
  const double rate1 = burst_ratio * rate0;
  // Cycle length chosen so that `mean_cycle_arrivals` arrivals occur per
  // burst+calm cycle; longer cycles -> stronger correlation.
  const double cycle = mean_cycle_arrivals / rate;
  const double switch1 = 1.0 / (f * cycle);          // leave burst
  const double switch0 = 1.0 / ((1.0 - f) * cycle);  // leave calm
  return Mmpp2Arrivals(rate0, rate1, switch0, switch1);
}

double Mmpp2Arrivals::next_gap(dist::Rng& rng) {
  // Exact simulation: race the next arrival against the phase switch; both
  // clocks are exponential, so no residual bookkeeping beyond the phase's
  // remaining sojourn is needed.
  double gap = 0.0;
  while (true) {
    if (!residual_valid_) {
      residual_ = rng.exponential(switch_[phase_]);
      residual_valid_ = true;
    }
    const double to_arrival = rng.exponential(rate_[phase_]);
    if (to_arrival < residual_) {
      residual_ -= to_arrival;
      return gap + to_arrival;
    }
    gap += residual_;
    phase_ ^= 1;
    residual_valid_ = false;
  }
}

double Mmpp2Arrivals::rate() const {
  const double sojourn0 = 1.0 / switch_[0];
  const double sojourn1 = 1.0 / switch_[1];
  const double f1 = sojourn1 / (sojourn0 + sojourn1);
  return (1.0 - f1) * rate_[0] + f1 * rate_[1];
}

void Mmpp2Arrivals::reset() {
  phase_ = 0;
  residual_valid_ = false;
}

std::string Mmpp2Arrivals::name() const {
  return "MMPP2(rate0=" + util::format_sig(rate_[0]) +
         ", rate1=" + util::format_sig(rate_[1]) + ")";
}

double Mmpp2Arrivals::gap_scv_estimate(dist::Rng& rng, std::size_t samples) {
  DS_EXPECTS(samples >= 2);
  reset();
  stats::Welford w;
  for (std::size_t i = 0; i < samples; ++i) w.add(next_gap(rng));
  reset();
  return w.scv();
}

DiurnalArrivals::DiurnalArrivals(double rate, double amplitude, double period)
    : rate_(rate), amplitude_(amplitude), period_(period) {
  DS_EXPECTS(rate > 0.0);
  DS_EXPECTS(amplitude >= 0.0 && amplitude < 1.0);
  DS_EXPECTS(period > 0.0);
}

double DiurnalArrivals::rate_at(double t) const noexcept {
  constexpr double kTwoPi = 6.283185307179586;
  return rate_ * (1.0 + amplitude_ * std::sin(kTwoPi * t / period_));
}

double DiurnalArrivals::next_gap(dist::Rng& rng) {
  // Thinning (Lewis & Shedler): propose at the envelope rate
  // rate*(1+amplitude), accept with probability lambda(t)/envelope.
  const double envelope = rate_ * (1.0 + amplitude_);
  const double start = clock_;
  while (true) {
    clock_ += rng.exponential(envelope);
    if (rng.uniform01() * envelope <= rate_at(clock_)) {
      return clock_ - start;
    }
  }
}

std::string DiurnalArrivals::name() const {
  return "Diurnal(rate=" + util::format_sig(rate_) +
         ", amplitude=" + util::format_sig(amplitude_) + ")";
}

}  // namespace distserv::workload
