// Arrival processes.
//
// The paper evaluates policies under Poisson arrivals (§2.2) and, in §6,
// under the burstier arrivals of the original traces scaled to each load.
// We provide: Poisson, general renewal (any gap distribution), and a 2-state
// Markov-modulated Poisson process — the standard synthetic stand-in for
// bursty, positively-correlated trace arrivals (see DESIGN.md substitutions).
#pragma once

#include <memory>
#include <string>

#include "dist/distribution.hpp"
#include "dist/rng.hpp"

namespace distserv::workload {

/// Generates successive interarrival gaps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Next gap (seconds) after the previous arrival. Strictly positive.
  [[nodiscard]] virtual double next_gap(dist::Rng& rng) = 0;

  /// Long-run arrival rate (jobs/second).
  [[nodiscard]] virtual double rate() const = 0;

  /// Resets internal state (e.g. the MMPP phase) for a fresh run.
  virtual void reset() {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Poisson process: exponential i.i.d. gaps.
class PoissonArrivals final : public ArrivalProcess {
 public:
  /// Requires rate > 0.
  explicit PoissonArrivals(double rate);

  [[nodiscard]] double next_gap(dist::Rng& rng) override;
  [[nodiscard]] double rate() const override { return rate_; }
  [[nodiscard]] std::string name() const override;

 private:
  double rate_;
};

/// Renewal process with i.i.d. gaps from an arbitrary distribution.
class RenewalArrivals final : public ArrivalProcess {
 public:
  /// Requires a distribution with finite positive mean.
  explicit RenewalArrivals(dist::DistributionPtr gap_distribution);

  [[nodiscard]] double next_gap(dist::Rng& rng) override;
  [[nodiscard]] double rate() const override { return rate_; }
  [[nodiscard]] std::string name() const override;

 private:
  dist::DistributionPtr gaps_;
  double rate_;
};

/// Two-state Markov-modulated Poisson process. The process alternates
/// between a "burst" phase with high arrival rate and a "calm" phase with a
/// low rate; phase sojourns are exponential. Produces bursty, correlated
/// arrivals like scaled supercomputer trace arrivals.
class Mmpp2Arrivals final : public ArrivalProcess {
 public:
  /// Direct parameterization. rates: arrival rate per phase; switch_rates:
  /// rate of leaving each phase. All > 0.
  Mmpp2Arrivals(double rate0, double rate1, double switch0, double switch1);

  /// Shape-based factory: overall mean arrival rate `rate`, `burst_ratio` =
  /// (burst rate)/(calm rate) > 1, `burst_time_fraction` in (0,1) = long-run
  /// fraction of time in the burst phase, `mean_cycle_arrivals` ~ number of
  /// arrivals per burst-calm cycle (controls correlation length).
  static Mmpp2Arrivals with_burstiness(double rate, double burst_ratio,
                                       double burst_time_fraction,
                                       double mean_cycle_arrivals);

  [[nodiscard]] double next_gap(dist::Rng& rng) override;
  [[nodiscard]] double rate() const override;
  void reset() override;
  [[nodiscard]] std::string name() const override;

  /// Squared coefficient of variation of the stationary interarrival gap
  /// (> 1 for any genuinely two-phase parameterization).
  [[nodiscard]] double gap_scv_estimate(dist::Rng& rng,
                                        std::size_t samples = 200000);

 private:
  double rate_[2];
  double switch_[2];
  int phase_ = 0;
  double residual_ = 0.0;  // time left in current phase
  bool residual_valid_ = false;
};

/// Non-homogeneous Poisson process with a sinusoidal daily cycle:
///   lambda(t) = rate * (1 + amplitude * sin(2*pi*t/period)).
/// Supercomputing submission logs show strong diurnal patterns; this is
/// the standard NHPP model of them, sampled exactly by thinning.
class DiurnalArrivals final : public ArrivalProcess {
 public:
  /// Requires rate > 0, 0 <= amplitude < 1, period > 0.
  /// Default period: 24 hours in seconds.
  DiurnalArrivals(double rate, double amplitude, double period = 86400.0);

  [[nodiscard]] double next_gap(dist::Rng& rng) override;
  [[nodiscard]] double rate() const override { return rate_; }
  void reset() override { clock_ = 0.0; }
  [[nodiscard]] std::string name() const override;

  /// Instantaneous rate at absolute time t.
  [[nodiscard]] double rate_at(double t) const noexcept;

 private:
  double rate_;
  double amplitude_;
  double period_;
  double clock_ = 0.0;  ///< absolute time of the previous arrival
};

}  // namespace distserv::workload
