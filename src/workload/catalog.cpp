#include "workload/catalog.hpp"

#include <map>
#include <mutex>

#include "dist/fit.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"
#include "workload/synthetic.hpp"

namespace distserv::workload {

const std::vector<WorkloadSpec>& workload_catalog() {
  static const std::vector<WorkloadSpec> kCatalog = {
      WorkloadSpec{
          WorkloadId::kC90, "c90",
          "PSC Cray C90 (16-proc hosts, distributed server)",
          "January 1997 - December 1997",
          /*mean_size=*/4500.0, /*scv_size=*/43.0, /*min_size=*/1.0,
          // Body: log-spread jobs from 1 s to ~20 min; tail: Pareto 1.05.
          BodyTailShape{/*alpha_body=*/0.25, /*body_break=*/1200.0,
                        /*alpha_tail=*/1.05},
          /*cap=*/std::nullopt, /*default_jobs=*/60000},
      WorkloadSpec{
          WorkloadId::kJ90, "j90",
          "PSC Cray J90 (8-proc hosts, distributed server)",
          "January 1997 - December 1997",
          /*mean_size=*/3600.0, /*scv_size=*/38.0, /*min_size=*/1.0,
          BodyTailShape{/*alpha_body=*/0.3, /*body_break=*/900.0,
                        /*alpha_tail=*/1.08},
          /*cap=*/std::nullopt, /*default_jobs=*/50000},
      WorkloadSpec{
          WorkloadId::kCtc, "ctc", "CTC IBM SP2 (512 nodes, 8-proc jobs)",
          "July 1996 - May 1997",
          // With a hard 43,200 s cap a Bounded Pareto cannot reach C^2 much
          // above ~10 unless the mean is small; the archive's 8-processor
          // CTC jobs are indeed dominated by short runs. mean 2,000 s with
          // C^2 = 8 keeps the "considerably lower variance" contrast.
          /*mean_size=*/2000.0, /*scv_size=*/8.0, /*min_size=*/1.0,
          /*body_tail=*/std::nullopt, /*cap=*/43200.0,
          /*default_jobs=*/50000},
  };
  return kCatalog;
}

const WorkloadSpec& find_workload(const std::string& name) {
  const std::string lowered = util::to_lower(name);
  for (const WorkloadSpec& spec : workload_catalog()) {
    if (spec.name == lowered) return spec;
  }
  DS_EXPECTS(false && "unknown workload name (expected c90|j90|ctc)");
  return workload_catalog().front();  // unreachable
}

const WorkloadSpec& get_workload(WorkloadId id) {
  for (const WorkloadSpec& spec : workload_catalog()) {
    if (spec.id == id) return spec;
  }
  DS_ASSERT(false && "catalog is missing an id");
  return workload_catalog().front();  // unreachable
}

const dist::BoundedParetoMixture& service_distribution(
    const WorkloadSpec& spec) {
  static std::mutex mutex;
  static std::map<std::string, dist::BoundedParetoMixture> cache;
  std::scoped_lock lock(mutex);
  const auto it = cache.find(spec.name);
  if (it != cache.end()) return it->second;

  dist::BoundedParetoMixture fitted = [&] {
    if (spec.body_tail) {
      const dist::BodyTailFit fit = dist::fit_body_tail(
          spec.mean_size, spec.scv_size, spec.min_size,
          spec.body_tail->body_break, spec.body_tail->alpha_body,
          spec.body_tail->alpha_tail);
      DS_ENSURES(fit.converged);
      return fit.distribution();
    }
    if (spec.cap) {
      const dist::BoundedParetoFit fit = dist::fit_bounded_pareto_fixed_p(
          spec.mean_size, spec.scv_size, *spec.cap);
      DS_ENSURES(fit.converged);
      return dist::BoundedParetoMixture(fit.distribution());
    }
    const dist::BoundedParetoFit fit = dist::fit_bounded_pareto_fixed_k(
        spec.mean_size, spec.scv_size, spec.min_size);
    DS_ENSURES(fit.converged);
    return dist::BoundedParetoMixture(fit.distribution());
  }();

  const auto [pos, inserted] = cache.emplace(spec.name, std::move(fitted));
  DS_ASSERT(inserted);
  return pos->second;
}

Trace make_trace(const WorkloadSpec& spec, double rho, std::size_t hosts,
                 std::uint64_t seed, std::size_t n) {
  if (n == 0) n = spec.default_jobs;
  dist::Rng rng(seed);
  return generate_trace_poisson(service_distribution(spec), n, rho, hosts,
                                rng);
}

std::vector<double> make_sizes(const WorkloadSpec& spec, std::uint64_t seed,
                               std::size_t n) {
  if (n == 0) n = spec.default_jobs;
  dist::Rng rng(seed);
  return generate_sizes(service_distribution(spec), n, rng);
}

}  // namespace distserv::workload
