// Catalog of paper-calibrated workloads.
//
// The paper evaluates on three traces (Table 1): PSC Cray C90, PSC Cray J90
// (both Jan–Dec 1997, run-to-completion batch jobs) and the CTC IBM SP2
// (Jul 1996–May 1997, 12-hour runtime cap). We do not have the raw logs; the
// numeric columns of Table 1 are also corrupted in our source text. The
// calibration targets below come from the paper's prose:
//   * C90: squared coefficient of variation C^2 = 43 (§3.3), "half the
//     total load is made up by only the biggest 1.3% of all the jobs" and
//     "98.7% of jobs go to Host 1 under SITA-E" (§3.3/§4.3), jobs down to
//     seconds in size;
//   * J90: "virtually identical" results to C90 — similar heavy tail;
//   * CTC: hard 12 h = 43,200 s cap, "considerably lower variance", same
//     policy ranking.
// C90/J90 use a body+tail Bounded-Pareto mixture (broad mass of small jobs
// plus a Pareto tail with alpha ~ 1.05–1.1, the shape reported for these
// systems in [11,12]); CTC uses a single capped Bounded Pareto. The fits are
// verified by tests (tests/workload/test_catalog.cpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dist/bp_mixture.hpp"
#include "workload/trace.hpp"

namespace distserv::workload {

/// Identifies a calibrated workload.
enum class WorkloadId { kC90, kJ90, kCtc };

/// Body+tail shape parameters (see dist::fit_body_tail).
struct BodyTailShape {
  double alpha_body;   ///< body tail index (< 1: log-spread small jobs)
  double body_break;   ///< size where the Pareto tail takes over (s)
  double alpha_tail;   ///< tail index (> 1)
};

/// Calibration targets and provenance for one workload.
struct WorkloadSpec {
  WorkloadId id;
  std::string name;        ///< short name: "c90", "j90", "ctc"
  std::string system;      ///< paper's system description
  std::string period;      ///< trace collection period
  double mean_size;        ///< target mean service requirement (s)
  double scv_size;         ///< target squared coefficient of variation
  double min_size;         ///< smallest job (s)
  std::optional<BodyTailShape> body_tail;  ///< mixture shape (C90/J90)
  std::optional<double> cap;  ///< administrative runtime cap (s), if any
  std::size_t default_jobs;   ///< default synthetic trace length
};

/// The three paper workloads.
[[nodiscard]] const std::vector<WorkloadSpec>& workload_catalog();

/// Looks up by short name ("c90" | "j90" | "ctc"); case-insensitive.
/// Throws ContractViolation for unknown names.
[[nodiscard]] const WorkloadSpec& find_workload(const std::string& name);

[[nodiscard]] const WorkloadSpec& get_workload(WorkloadId id);

/// The calibrated service-time distribution for a workload. Deterministic;
/// memoized internally.
[[nodiscard]] const dist::BoundedParetoMixture& service_distribution(
    const WorkloadSpec& spec);

/// Generates the standard synthetic trace for a workload: `n` sizes (0 =
/// spec.default_jobs) and Poisson arrivals at system load `rho` for `hosts`
/// hosts.
[[nodiscard]] Trace make_trace(const WorkloadSpec& spec, double rho,
                               std::size_t hosts, std::uint64_t seed,
                               std::size_t n = 0);

/// Size samples only (arrivals generated separately per experiment point).
[[nodiscard]] std::vector<double> make_sizes(const WorkloadSpec& spec,
                                             std::uint64_t seed,
                                             std::size_t n = 0);

}  // namespace distserv::workload
