// job.hpp is header-only; this translation unit exists so the build system
// has a home for the target and to force the header to compile standalone.
#include "workload/job.hpp"

namespace distserv::workload {

static_assert(sizeof(Job) == 24, "Job should stay a compact POD");

}  // namespace distserv::workload
