// The unit of work: a batch job with an arrival time and a service
// requirement (CPU seconds on one host). Per the paper's architectural model
// (§1.1) a job occupies a whole host machine, so processors and memory do
// not appear here — only when reading SWF traces, where they act as filters.
#pragma once

#include <cstdint>

namespace distserv::workload {

/// Identifies a job within one trace.
using JobId = std::uint64_t;

/// One batch job.
struct Job {
  JobId id = 0;
  /// Absolute arrival (dispatch) time, seconds.
  double arrival = 0.0;
  /// Service requirement, seconds of exclusive host time. Always > 0.
  double size = 0.0;
};

/// Strict weak ordering by (arrival, id) — trace order.
[[nodiscard]] constexpr bool arrives_before(const Job& a,
                                            const Job& b) noexcept {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.id < b.id;
}

}  // namespace distserv::workload
