#include "workload/job_source.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "workload/arrival.hpp"

namespace distserv::workload {

std::optional<Job> TraceSource::next() {
  if (index_ >= trace_->size()) return std::nullopt;
  return trace_->jobs()[index_++];
}

GeneratedSource::GeneratedSource(std::span<const double> sizes,
                                 ArrivalProcess& arrivals, dist::Rng& rng)
    : sizes_(sizes), arrivals_(&arrivals), rng_(&rng) {}

std::optional<Job> GeneratedSource::next() {
  if (index_ >= sizes_.size()) return std::nullopt;
  // Same draw sequence as Trace::with_arrivals: one gap per job, sizes
  // replayed in order — a streaming run is bit-identical to the
  // materialised run over the trace built from the same triple.
  clock_ += arrivals_->next_gap(*rng_);
  const Job job{index_, clock_, sizes_[index_]};
  ++index_;
  return job;
}

SyntheticSource::SyntheticSource(std::uint64_t count,
                                 const dist::Distribution& sizes,
                                 ArrivalProcess& arrivals, dist::Rng& rng)
    : count_(count), sizes_(&sizes), arrivals_(&arrivals), rng_(&rng) {
  DS_EXPECTS(count >= 1);
}

std::optional<Job> SyntheticSource::next() {
  if (emitted_ >= count_) return std::nullopt;
  clock_ += arrivals_->next_gap(*rng_);
  const double size = sizes_->sample(*rng_);
  DS_ASSERT(size > 0.0 && std::isfinite(size));
  const Job job{emitted_, clock_, size};
  ++emitted_;
  return job;
}

}  // namespace distserv::workload
