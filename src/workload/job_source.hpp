// Pull-based job streams: the bounded-memory alternative to Trace.
//
// A Trace materialises every job of a run in one vector, capping run length
// at what RAM holds. A JobSource hands out the next job on demand, so the
// simulator (core/server.hpp: DistributedServer::run_stream) can consume a
// 10^9-job workload while holding O(hosts) state — the event list already
// carries at most one pending arrival at a time, making the source the only
// O(n) piece left to remove.
//
// Contract every source must satisfy (asserted by the server):
//   * ids are emitted sequentially: 0, 1, 2, ... in emission order;
//   * arrivals are nondecreasing in emission order;
//   * sizes are strictly positive and finite, arrivals nonnegative.
//
// Implementations here: TraceSource (adapter over a materialised Trace),
// GeneratedSource (fixed sizes + arrivals drawn per job — draw-for-draw
// identical to Trace::with_arrivals), SyntheticSource (sizes AND arrivals
// drawn per job, for runs longer than any size vector). The chunked SWF
// file reader lives in workload/swf_stream.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dist/distribution.hpp"
#include "dist/rng.hpp"
#include "workload/job.hpp"
#include "workload/trace.hpp"

namespace distserv::workload {

class ArrivalProcess;  // arrival.hpp

/// One job at a time, on demand. See the header comment for the contract.
class JobSource {
 public:
  virtual ~JobSource() = default;

  /// The next job, or nullopt when the stream is exhausted (it stays
  /// exhausted: further calls keep returning nullopt).
  [[nodiscard]] virtual std::optional<Job> next() = 0;

  /// Total job count when known up front (reservation hint); nullopt for
  /// open-ended streams (e.g. an SWF file of unknown length).
  [[nodiscard]] virtual std::optional<std::uint64_t> size_hint() const {
    return std::nullopt;
  }
};

/// Streams an existing Trace in order. The trace must outlive the source.
class TraceSource final : public JobSource {
 public:
  explicit TraceSource(const Trace& trace) : trace_(&trace) {}

  [[nodiscard]] std::optional<Job> next() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return trace_->size();
  }

 private:
  const Trace* trace_;
  std::size_t index_ = 0;
};

/// Streams a fixed size sequence with arrivals drawn one gap per job —
/// exactly the draws Trace::with_arrivals makes, so a streaming run over a
/// GeneratedSource is bit-identical to the materialised run over the trace
/// built from the same (sizes, arrivals, rng) triple. The spanned storage,
/// process, and rng must outlive the source.
class GeneratedSource final : public JobSource {
 public:
  GeneratedSource(std::span<const double> sizes, ArrivalProcess& arrivals,
                  dist::Rng& rng);

  [[nodiscard]] std::optional<Job> next() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return sizes_.size();
  }

 private:
  std::span<const double> sizes_;
  ArrivalProcess* arrivals_;
  dist::Rng* rng_;
  std::size_t index_ = 0;
  double clock_ = 0.0;
};

/// Draws `count` jobs entirely on the fly — one interarrival gap and one
/// size per next() — so a 10^9-job run needs no size vector at all. Draw
/// order per job: gap first, then size. The distribution, process, and rng
/// must outlive the source.
class SyntheticSource final : public JobSource {
 public:
  /// Requires count >= 1.
  SyntheticSource(std::uint64_t count, const dist::Distribution& sizes,
                  ArrivalProcess& arrivals, dist::Rng& rng);

  [[nodiscard]] std::optional<Job> next() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return count_;
  }

 private:
  std::uint64_t count_;
  const dist::Distribution* sizes_;
  ArrivalProcess* arrivals_;
  dist::Rng* rng_;
  std::uint64_t emitted_ = 0;
  double clock_ = 0.0;
};

}  // namespace distserv::workload
