// Standard Workload Format (SWF) reader/writer.
//
// The paper's CTC trace comes from Feitelson's Parallel Workloads Archive,
// which distributes logs in SWF: one job per line, 18 whitespace-separated
// fields, ';' comment lines carrying header metadata. A downstream user of
// this library can therefore run every experiment on a *real* archive trace
// instead of our calibrated synthetic ones.
//
// Field indices (1-based, per the SWF v2.2 definition):
//   1 job number        7 used memory       13 executable number
//   2 submit time       8 requested procs   14 queue number
//   3 wait time         9 requested time    15 partition number
//   4 run time         10 requested memory  16 preceding job
//   5 allocated procs  11 status            17 think time
//   6 avg cpu time     12 user id           18 (unused here)
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "workload/trace.hpp"

namespace distserv::workload {

/// Filters applied while reading an SWF log.
struct SwfFilter {
  /// Keep only jobs with exactly this allocated-processor count
  /// (the paper keeps the 8-processor CTC jobs). Unset = keep all.
  std::optional<long long> processors;
  /// Drop jobs with run time 0 (cancelled / failed). Default on. Negative
  /// run times are corrupt data, counted as malformed regardless of this
  /// flag; zero-size jobs can never enter a Trace, so they are counted as
  /// filtered even when the flag is off.
  bool require_positive_runtime = true;
  /// Keep only jobs with SWF status 1 (completed). Default off: several
  /// archive logs use status 0/5 inconsistently.
  bool completed_only = false;
};

/// Result of parsing an SWF stream.
struct SwfReadResult {
  Trace trace;
  std::size_t lines_total = 0;
  std::size_t lines_parsed = 0;
  std::size_t lines_filtered = 0;  ///< parsed but rejected by the filter
  /// Short lines, unparseable fields, and corrupt values (negative or
  /// non-finite submit/run time) — skipped with a count, never fatal.
  std::size_t lines_malformed = 0;

  /// True when no line was skipped as malformed.
  [[nodiscard]] bool clean() const noexcept;
  /// One-line diagnostic, e.g. "swf: 4 jobs from 7 lines (5 parsed, ...)".
  [[nodiscard]] std::string summary() const;
};

/// Classification of one SWF line by the shared line parser.
enum class SwfLineKind {
  kSkip,       ///< blank line or ';' comment: counted in lines_total only
  kMalformed,  ///< short / unparseable / corrupt-valued line
  kFiltered,   ///< parsed fine but rejected by the filter
  kJob,        ///< parsed and kept: submit/runtime below are valid
};

/// One classified SWF line.
struct SwfParsedLine {
  SwfLineKind kind = SwfLineKind::kSkip;
  double submit = 0.0;   ///< valid when kind == kJob
  double runtime = 0.0;  ///< valid when kind == kJob
};

/// Classifies one raw SWF line (a trailing '\r' is tolerated, as getline
/// leaves one on CRLF input). The single source of truth for the format:
/// read_swf and the chunked SwfStreamSource (workload/swf_stream.hpp) both
/// parse through here, which is what makes their diagnostics agree on any
/// input, byte for byte.
[[nodiscard]] SwfParsedLine parse_swf_line(std::string_view line,
                                           const SwfFilter& filter);

/// Parses SWF text. Malformed lines are counted, not fatal.
/// Job arrival = submit time (field 2), size = run time (field 4).
[[nodiscard]] SwfReadResult read_swf(std::istream& in,
                                     const SwfFilter& filter = {});

/// Reads an SWF file from disk. Throws ContractViolation if unreadable.
[[nodiscard]] SwfReadResult read_swf_file(const std::string& path,
                                          const SwfFilter& filter = {});

/// Writes a trace as a minimal SWF log (fields we do not model are -1,
/// allocated processors written as `processors`). Round-trips through
/// read_swf.
void write_swf(std::ostream& out, const Trace& trace,
               long long processors = 8,
               const std::string& comment = "distserv synthetic trace");

/// Writes to a file. Throws ContractViolation if the file cannot be opened.
void write_swf_file(const std::string& path, const Trace& trace,
                    long long processors = 8,
                    const std::string& comment = "distserv synthetic trace");

}  // namespace distserv::workload
