#include "workload/swf_stream.hpp"

#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/contracts.hpp"

namespace distserv::workload {

namespace {
std::unique_ptr<std::istream> open_file(const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
  DS_EXPECTS(in->good());
  return in;
}
}  // namespace

SwfStreamSource::SwfStreamSource(const std::string& path,
                                 const SwfFilter& filter,
                                 std::size_t chunk_bytes)
    : SwfStreamSource(open_file(path), filter, chunk_bytes) {}

SwfStreamSource::SwfStreamSource(std::unique_ptr<std::istream> in,
                                 const SwfFilter& filter,
                                 std::size_t chunk_bytes)
    : in_(std::move(in)), filter_(filter), chunk_bytes_(chunk_bytes) {
  DS_EXPECTS(in_ != nullptr);
  DS_EXPECTS(chunk_bytes_ >= 1);
  chunk_.reserve(chunk_bytes_);
}

bool SwfStreamSource::refill() {
  if (eof_) return false;
  chunk_.resize(chunk_bytes_);
  in_->read(chunk_.data(), static_cast<std::streamsize>(chunk_bytes_));
  const auto got = static_cast<std::size_t>(in_->gcount());
  chunk_.resize(got);
  pos_ = 0;
  if (got < chunk_bytes_) eof_ = true;
  return got > 0;
}

std::optional<Job> SwfStreamSource::pump() {
  // One iteration per buffered line; refills between chunks. Mirrors the
  // getline loop in read_swf: '\n' is stripped (a '\r' before it is left
  // for parse_swf_line's trim, like getline), a final unterminated line
  // still counts, and a trailing newline adds no phantom empty line.
  for (;;) {
    if (pos_ >= chunk_.size() && !refill()) {
      // Input exhausted; flush the carried partial line, if any.
      done_ = true;
      if (carry_.empty()) return std::nullopt;
      const std::string line = std::exchange(carry_, {});
      ++lines_total_;
      const SwfParsedLine parsed = parse_swf_line(line, filter_);
      switch (parsed.kind) {
        case SwfLineKind::kSkip:
          return std::nullopt;
        case SwfLineKind::kMalformed:
          ++lines_malformed_;
          return std::nullopt;
        case SwfLineKind::kFiltered:
          ++lines_parsed_;
          ++lines_filtered_;
          return std::nullopt;
        case SwfLineKind::kJob:
          ++lines_parsed_;
          return Job{next_id_++, parsed.submit, parsed.runtime};
      }
      DS_ASSERT(false);  // unreachable: every kind returns above
      return std::nullopt;
    }
    const std::size_t nl = chunk_.find('\n', pos_);
    if (nl == std::string::npos) {
      // Record split across the chunk boundary: stash and read on.
      carry_.append(chunk_, pos_, chunk_.size() - pos_);
      pos_ = chunk_.size();
      continue;
    }
    std::string_view line(chunk_.data() + pos_, nl - pos_);
    std::string joined;
    if (!carry_.empty()) {
      joined = std::exchange(carry_, {});
      joined.append(line);
      line = joined;
    }
    pos_ = nl + 1;
    ++lines_total_;
    const SwfParsedLine parsed = parse_swf_line(line, filter_);
    switch (parsed.kind) {
      case SwfLineKind::kSkip:
        continue;
      case SwfLineKind::kMalformed:
        ++lines_malformed_;
        continue;
      case SwfLineKind::kFiltered:
        ++lines_parsed_;
        ++lines_filtered_;
        continue;
      case SwfLineKind::kJob:
        ++lines_parsed_;
        return Job{next_id_++, parsed.submit, parsed.runtime};
    }
  }
}

std::optional<Job> SwfStreamSource::next() {
  if (done_) return std::nullopt;
  return pump();
}

std::string SwfStreamSource::summary() const {
  std::ostringstream out;
  out << "swf: " << next_id_ << " jobs from " << lines_total_ << " lines ("
      << lines_parsed_ << " parsed, " << lines_filtered_ << " filtered, "
      << lines_malformed_ << " malformed)";
  return out.str();
}

}  // namespace distserv::workload
