// Chunked SWF reader: a JobSource over an archive log of any size.
//
// read_swf (workload/swf.hpp) materialises the whole log as a Trace, so a
// multi-gigabyte archive file costs multi-gigabyte RSS. SwfStreamSource
// reads the file in fixed-size chunks, carries the partial line at each
// chunk boundary over to the next read, and emits one Job per kept record —
// peak memory is one chunk plus one line, independent of file length.
//
// Every line is classified by the same parse_swf_line used by read_swf, so
// on any input the streaming counters (lines_total/parsed/filtered/
// malformed) and summary() match SwfReadResult byte for byte. Jobs are
// emitted in file order with sequential ids; SWF logs are sorted by submit
// time, so the JobSource arrival-monotonicity contract holds for any
// archive log (the server asserts it either way).
#pragma once

#include <cstddef>
#include <istream>
#include <memory>
#include <string>

#include "workload/job_source.hpp"
#include "workload/swf.hpp"

namespace distserv::workload {

/// Streams jobs out of an SWF log without materialising it.
class SwfStreamSource final : public JobSource {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  /// Opens `path` for reading. Throws ContractViolation if unreadable.
  /// Requires chunk_bytes >= 1.
  explicit SwfStreamSource(const std::string& path,
                           const SwfFilter& filter = {},
                           std::size_t chunk_bytes = kDefaultChunkBytes);

  /// Takes ownership of an already-open stream (tests feed string streams
  /// through here). Requires in != nullptr and chunk_bytes >= 1.
  explicit SwfStreamSource(std::unique_ptr<std::istream> in,
                           const SwfFilter& filter = {},
                           std::size_t chunk_bytes = kDefaultChunkBytes);

  [[nodiscard]] std::optional<Job> next() override;
  // size_hint stays nullopt: the file length is unknown without a full scan.

  /// Counters over the lines consumed SO FAR — totals only once next() has
  /// returned nullopt. Identical semantics to SwfReadResult's fields.
  [[nodiscard]] std::size_t lines_total() const noexcept {
    return lines_total_;
  }
  [[nodiscard]] std::size_t lines_parsed() const noexcept {
    return lines_parsed_;
  }
  [[nodiscard]] std::size_t lines_filtered() const noexcept {
    return lines_filtered_;
  }
  [[nodiscard]] std::size_t lines_malformed() const noexcept {
    return lines_malformed_;
  }
  [[nodiscard]] std::uint64_t jobs_emitted() const noexcept { return next_id_; }

  /// True when no line was skipped as malformed (so far).
  [[nodiscard]] bool clean() const noexcept { return lines_malformed_ == 0; }
  /// Same format as SwfReadResult::summary, with jobs emitted so far in
  /// place of the trace size.
  [[nodiscard]] std::string summary() const;

 private:
  /// Consumes buffered lines until one yields a job or input is exhausted.
  [[nodiscard]] std::optional<Job> pump();
  /// Reads the next chunk into chunk_; false at EOF.
  bool refill();

  std::unique_ptr<std::istream> in_;
  SwfFilter filter_;
  std::size_t chunk_bytes_;
  std::string chunk_;    ///< raw bytes of the current chunk
  std::size_t pos_ = 0;  ///< cursor into chunk_
  std::string carry_;    ///< partial line carried across a chunk boundary
  bool eof_ = false;
  bool done_ = false;
  std::uint64_t next_id_ = 0;
  std::size_t lines_total_ = 0;
  std::size_t lines_parsed_ = 0;
  std::size_t lines_filtered_ = 0;
  std::size_t lines_malformed_ = 0;
};

}  // namespace distserv::workload
