#include "workload/synthetic.hpp"

#include "util/contracts.hpp"
#include "util/math.hpp"
#include "workload/arrival.hpp"

namespace distserv::workload {

std::vector<double> generate_sizes(const dist::Distribution& d, std::size_t n,
                                   dist::Rng& rng) {
  DS_EXPECTS(n > 0);
  std::vector<double> sizes;
  sizes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sizes.push_back(d.sample(rng));
  return sizes;
}

Trace generate_trace_poisson(const dist::Distribution& d, std::size_t n,
                             double rho, std::size_t hosts, dist::Rng& rng) {
  const std::vector<double> sizes = generate_sizes(d, n, rng);
  return Trace::with_poisson_load(sizes, rho, hosts, rng);
}

Trace generate_trace_bursty(const dist::Distribution& d, std::size_t n,
                            double rho, std::size_t hosts, dist::Rng& rng,
                            double burst_ratio, double burst_time_fraction,
                            double mean_cycle_arrivals) {
  DS_EXPECTS(rho > 0.0 && hosts >= 1);
  const std::vector<double> sizes = generate_sizes(d, n, rng);
  const double mean = util::compensated_sum(sizes) /
                      static_cast<double>(sizes.size());
  const double lambda = rho * static_cast<double>(hosts) / mean;
  Mmpp2Arrivals arrivals = Mmpp2Arrivals::with_burstiness(
      lambda, burst_ratio, burst_time_fraction, mean_cycle_arrivals);
  return Trace::with_arrivals(sizes, arrivals, rng);
}

}  // namespace distserv::workload
