// Synthetic workload generation.
//
// Produces job-size samples from a calibrated service-time distribution and
// assembles full traces with a chosen arrival process. The calibrated
// distributions for the paper's three traces live in catalog.hpp; this file
// is the generic machinery.
#pragma once

#include <string>
#include <vector>

#include "dist/distribution.hpp"
#include "workload/trace.hpp"

namespace distserv::workload {

/// Draws `n` i.i.d. job sizes from `d`.
[[nodiscard]] std::vector<double> generate_sizes(const dist::Distribution& d,
                                                 std::size_t n,
                                                 dist::Rng& rng);

/// Generates a full trace: `n` sizes from `d`, Poisson arrivals tuned so a
/// server with `hosts` hosts runs at system load `rho`.
[[nodiscard]] Trace generate_trace_poisson(const dist::Distribution& d,
                                           std::size_t n, double rho,
                                           std::size_t hosts, dist::Rng& rng);

/// Generates a full trace with bursty MMPP2 arrivals at system load `rho`
/// (used for the §6 non-Poisson experiments). `burst_ratio`,
/// `burst_time_fraction`, `mean_cycle_arrivals` parameterize the MMPP —
/// see Mmpp2Arrivals::with_burstiness.
[[nodiscard]] Trace generate_trace_bursty(const dist::Distribution& d,
                                          std::size_t n, double rho,
                                          std::size_t hosts, dist::Rng& rng,
                                          double burst_ratio = 10.0,
                                          double burst_time_fraction = 0.1,
                                          double mean_cycle_arrivals = 50.0);

}  // namespace distserv::workload
