#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>

#include "stats/welford.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "workload/arrival.hpp"

namespace distserv::workload {

Trace::Trace(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
  std::sort(jobs_.begin(), jobs_.end(), arrives_before);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    DS_EXPECTS(jobs_[i].size > 0.0);
    DS_EXPECTS(jobs_[i].arrival >= 0.0);
    jobs_[i].id = i;
  }
}

Trace Trace::with_arrivals(std::span<const double> sizes,
                           ArrivalProcess& arrivals, dist::Rng& rng) {
  return with_arrivals(sizes, arrivals, rng, {});
}

Trace Trace::with_arrivals(std::span<const double> sizes,
                           ArrivalProcess& arrivals, dist::Rng& rng,
                           std::vector<Job>&& buffer) {
  std::vector<Job> jobs = std::move(buffer);
  jobs.clear();
  jobs.reserve(sizes.size());
  double t = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t += arrivals.next_gap(rng);
    jobs.push_back(Job{i, t, sizes[i]});
  }
  return Trace(std::move(jobs));
}

Trace Trace::with_poisson_load(std::span<const double> sizes, double rho,
                               std::size_t hosts, dist::Rng& rng) {
  DS_EXPECTS(rho > 0.0);
  DS_EXPECTS(hosts >= 1);
  DS_EXPECTS(!sizes.empty());
  const double mean = util::compensated_sum(sizes) /
                      static_cast<double>(sizes.size());
  const double lambda = rho * static_cast<double>(hosts) / mean;
  PoissonArrivals arrivals(lambda);
  return with_arrivals(sizes, arrivals, rng);
}

std::vector<double> Trace::sizes() const {
  std::vector<double> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) out.push_back(j.size);
  return out;
}

std::vector<double> Trace::interarrival_gaps() const {
  std::vector<double> out;
  if (jobs_.size() < 2) return out;
  out.reserve(jobs_.size() - 1);
  for (std::size_t i = 1; i < jobs_.size(); ++i) {
    out.push_back(jobs_[i].arrival - jobs_[i - 1].arrival);
  }
  return out;
}

double Trace::total_work() const {
  util::KahanSum acc;
  for (const Job& j : jobs_) acc.add(j.size);
  return acc.value();
}

double Trace::arrival_rate() const {
  DS_EXPECTS(jobs_.size() >= 2);
  const double duration = jobs_.back().arrival - jobs_.front().arrival;
  DS_EXPECTS(duration > 0.0);
  return static_cast<double>(jobs_.size() - 1) / duration;
}

double Trace::offered_load(std::size_t hosts) const {
  DS_EXPECTS(hosts >= 1);
  const double mean = total_work() / static_cast<double>(jobs_.size());
  return arrival_rate() * mean / static_cast<double>(hosts);
}

TraceStats Trace::stats() const {
  DS_EXPECTS(!jobs_.empty());
  TraceStats s;
  s.job_count = jobs_.size();
  s.duration = jobs_.back().arrival - jobs_.front().arrival;
  stats::Welford sizes_w;
  for (const Job& j : jobs_) sizes_w.add(j.size);
  s.mean_size = sizes_w.mean();
  s.min_size = sizes_w.min();
  s.max_size = sizes_w.max();
  s.scv_size = sizes_w.scv();
  stats::Welford gaps_w;
  for (double g : interarrival_gaps()) gaps_w.add(g);
  if (gaps_w.count() > 0) {
    s.mean_interarrival = gaps_w.mean();
    s.scv_interarrival = gaps_w.scv();
  }
  // Smallest tail fraction of jobs carrying half the total load: sort sizes
  // descending and walk until the running sum reaches 50%.
  std::vector<double> sorted = sizes();
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double half = 0.5 * total_work();
  util::KahanSum acc;
  std::size_t count = 0;
  for (double x : sorted) {
    acc.add(x);
    ++count;
    if (acc.value() >= half) break;
  }
  s.half_load_tail_fraction =
      static_cast<double>(count) / static_cast<double>(jobs_.size());
  return s;
}

dist::Empirical Trace::size_distribution() const {
  const std::vector<double> s = sizes();
  return dist::Empirical(s);
}

std::pair<Trace, Trace> Trace::split_halves() const {
  DS_EXPECTS(jobs_.size() >= 2);
  const std::size_t mid = jobs_.size() / 2;
  std::vector<Job> first(jobs_.begin(),
                         jobs_.begin() + static_cast<std::ptrdiff_t>(mid));
  std::vector<Job> second(jobs_.begin() + static_cast<std::ptrdiff_t>(mid),
                          jobs_.end());
  const double shift = second.front().arrival;
  for (Job& j : second) j.arrival -= shift;
  return {Trace(std::move(first)), Trace(std::move(second))};
}

Trace Trace::scale_interarrivals(double factor) const {
  DS_EXPECTS(factor > 0.0);
  std::vector<Job> scaled = jobs_;
  if (!scaled.empty()) {
    double t = scaled.front().arrival * factor;
    double prev_arrival = scaled.front().arrival;
    scaled.front().arrival = t;
    for (std::size_t i = 1; i < scaled.size(); ++i) {
      const double gap = scaled[i].arrival - prev_arrival;
      prev_arrival = scaled[i].arrival;
      t += gap * factor;
      scaled[i].arrival = t;
    }
  }
  return Trace(std::move(scaled));
}

Trace Trace::scaled_to_load(double rho, std::size_t hosts) const {
  DS_EXPECTS(rho > 0.0);
  const double current = offered_load(hosts);
  return scale_interarrivals(current / rho);
}

}  // namespace distserv::workload
