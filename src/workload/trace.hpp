// A job trace: the jobs of one workload in arrival order, plus the
// characterization and manipulation operations the paper's methodology
// needs — Table 1 statistics, train/test splitting (cutoffs are derived on
// the first half of the data and evaluated on the second), arrival-time
// (re)generation at a chosen system load, and interarrival scaling for the
// non-Poisson experiments of §6.
#pragma once

#include <span>
#include <vector>

#include "dist/empirical.hpp"
#include "dist/rng.hpp"
#include "workload/job.hpp"

namespace distserv::workload {

class ArrivalProcess;  // arrival.hpp

/// Summary statistics as reported in the paper's Table 1.
struct TraceStats {
  std::size_t job_count = 0;
  double duration = 0.0;           ///< last arrival - first arrival
  double mean_size = 0.0;          ///< mean service requirement (sec)
  double min_size = 0.0;
  double max_size = 0.0;
  double scv_size = 0.0;           ///< squared coefficient of variation
  double mean_interarrival = 0.0;
  double scv_interarrival = 0.0;
  /// Smallest fraction q of (largest) jobs carrying >= half the total load;
  /// the paper highlights q = 1.3% for the C90 trace.
  double half_load_tail_fraction = 0.0;
};

/// Immutable-ish container of jobs in arrival order.
class Trace {
 public:
  Trace() = default;

  /// Takes ownership; sorts by (arrival, id) and renumbers ids 0..n-1.
  /// Requires all sizes > 0 and arrivals >= 0.
  explicit Trace(std::vector<Job> jobs);

  /// Builds a trace with the given sizes (kept in order) and arrival times
  /// drawn from `arrivals` starting at time 0.
  static Trace with_arrivals(std::span<const double> sizes,
                             ArrivalProcess& arrivals, dist::Rng& rng);

  /// As above, but recycles `buffer`'s storage for the job vector — a
  /// replication loop that round-trips the buffer through take_jobs()
  /// allocates the trace exactly once, not once per replication.
  static Trace with_arrivals(std::span<const double> sizes,
                             ArrivalProcess& arrivals, dist::Rng& rng,
                             std::vector<Job>&& buffer);

  /// Builds a trace with Poisson arrivals tuned so that a distributed server
  /// with `hosts` hosts sees system load `rho` (lambda = rho*hosts/mean).
  /// Requires 0 < rho and hosts >= 1.
  static Trace with_poisson_load(std::span<const double> sizes, double rho,
                                 std::size_t hosts, dist::Rng& rng);

  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }

  /// Steals the job vector (leaving the trace empty) so its storage can be
  /// recycled into the next with_arrivals call.
  [[nodiscard]] std::vector<Job> take_jobs() && noexcept {
    return std::move(jobs_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }

  /// Job sizes in trace order.
  [[nodiscard]] std::vector<double> sizes() const;

  /// Interarrival gaps (size n-1).
  [[nodiscard]] std::vector<double> interarrival_gaps() const;

  /// Sum of all service requirements.
  [[nodiscard]] double total_work() const;

  /// Arrival rate lambda = (n-1)/duration; requires >= 2 jobs.
  [[nodiscard]] double arrival_rate() const;

  /// System load rho = lambda * E[X] / hosts this trace would offer.
  [[nodiscard]] double offered_load(std::size_t hosts) const;

  /// Table-1 style statistics.
  [[nodiscard]] TraceStats stats() const;

  /// Empirical distribution of the job sizes.
  [[nodiscard]] dist::Empirical size_distribution() const;

  /// First/second half split by trace order (paper: derive cutoffs on the
  /// first half, evaluate policies on the second). Second-half arrivals are
  /// shifted to start at 0.
  [[nodiscard]] std::pair<Trace, Trace> split_halves() const;

  /// Returns a copy whose interarrival gaps are multiplied by `factor`
  /// (the paper's §6 "scaled trace arrivals"); sizes unchanged.
  [[nodiscard]] Trace scale_interarrivals(double factor) const;

  /// Returns a copy rescaled so that `offered_load(hosts) == rho`.
  [[nodiscard]] Trace scaled_to_load(double rho, std::size_t hosts) const;

 private:
  std::vector<Job> jobs_;
};

}  // namespace distserv::workload
