// The shared bench flag parser: control-plane flags wire into
// ExperimentConfig::control with the documented coupling rules, and every
// malformed or out-of-range value exits with status 2 naming the flag
// (strict CLI contract — a typo never silently falls back to a default).
#include <gtest/gtest.h>

#include <vector>

#include "common.hpp"

namespace distserv::bench {
namespace {

BenchOptions parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_under_test");
  return BenchOptions::parse(static_cast<int>(args.size()), args.data());
}

BenchOptions parse_elastic(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_under_test");
  return BenchOptions::parse(static_cast<int>(args.size()), args.data(),
                             "c90", {}, /*sweeps_probe_period=*/false,
                             /*supports_elastic=*/true);
}

TEST(BenchFlags, ControlPlaneIsOffByDefault) {
  const BenchOptions o = parse({});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  EXPECT_FALSE(cfg.control.enabled);
}

TEST(BenchFlags, ControlFlagsWireIntoTheExperimentConfig) {
  const BenchOptions o = parse({"--probe-period", "12.5",
                                "--probe-loss", "0.25",
                                "--rpc-timeout", "2.0",
                                "--rpc-loss", "0.1",
                                "--ack-loss", "0.05",
                                "--retries", "5",
                                "--fallback", "terminal"});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  ASSERT_TRUE(cfg.control.enabled);
  EXPECT_DOUBLE_EQ(cfg.control.probe_period, 12.5);
  EXPECT_DOUBLE_EQ(cfg.control.probe_loss, 0.25);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_timeout, 2.0);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_loss, 0.1);
  EXPECT_DOUBLE_EQ(cfg.control.ack_loss, 0.05);
  EXPECT_EQ(cfg.control.max_retries, 5u);
  EXPECT_DOUBLE_EQ(cfg.control.backoff_base, 2.0);  // anchored to timeout
  EXPECT_EQ(cfg.control.fallback, sim::FallbackMode::kTerminal);
}

TEST(BenchFlags, SnapshotsAloneEnableTheControlPlane) {
  const BenchOptions o = parse({"--probe-period", "3.0"});
  const core::ExperimentConfig cfg = o.experiment_config(2);
  ASSERT_TRUE(cfg.control.enabled);
  EXPECT_DOUBLE_EQ(cfg.control.probe_period, 3.0);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_timeout, 0.0);
}

TEST(BenchFlags, ProbePeriodSweepingBenchAcceptsBareProbeLoss) {
  // bench_staleness_sweep supplies the probe period per grid point, so it
  // lifts the --probe-loss/--probe-period coupling.
  const std::vector<const char*> args = {"bench_under_test",
                                         "--probe-loss", "0.3"};
  const BenchOptions o = BenchOptions::parse(
      static_cast<int>(args.size()), args.data(), "c90", {},
      /*sweeps_probe_period=*/true);
  EXPECT_DOUBLE_EQ(o.probe_loss, 0.3);
}



TEST(BenchFlagsDeathTest, ProbeLossWithoutProbePeriodExits) {
  EXPECT_EXIT(parse({"--probe-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--probe-loss");
}

TEST(BenchFlagsDeathTest, RpcLossWithoutRpcTimeoutExits) {
  EXPECT_EXIT(parse({"--rpc-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--rpc-loss");
}

TEST(BenchFlagsDeathTest, AckLossWithoutRpcTimeoutExits) {
  EXPECT_EXIT(parse({"--ack-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--rpc-timeout");
}

TEST(BenchFlagsDeathTest, CertainProbeLossIsOutOfRange) {
  EXPECT_EXIT(parse({"--probe-period", "1.0", "--probe-loss", "1.0"}),
              ::testing::ExitedWithCode(2), "probe-loss");
}

TEST(BenchFlagsDeathTest, NegativeProbePeriodIsOutOfRange) {
  EXPECT_EXIT(parse({"--probe-period", "-1.0"}),
              ::testing::ExitedWithCode(2), "probe-period");
}

TEST(BenchFlagsDeathTest, UnknownFallbackModeExits) {
  EXPECT_EXIT(parse({"--fallback", "panic"}),
              ::testing::ExitedWithCode(2), "--fallback");
}

TEST(BenchFlagsDeathTest, MalformedRetriesExits) {
  EXPECT_EXIT(parse({"--retries", "many"}),
              ::testing::ExitedWithCode(2), "retries");
}

TEST(BenchFlagsDeathTest, MisspelledControlFlagExits) {
  EXPECT_EXIT(parse({"--probe-perid", "1.0"}),
              ::testing::ExitedWithCode(2), "probe-perid");
}

TEST(BenchFlags, ElasticFlagsAreOffByDefault) {
  const BenchOptions o = parse_elastic({});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  EXPECT_TRUE(cfg.host_speeds.empty());
  EXPECT_FALSE(cfg.autoscaler.enabled);
}

TEST(BenchFlags, ElasticFlagsWireIntoTheExperimentConfig) {
  const BenchOptions o = parse_elastic({"--speeds", "1,2,4",
                                        "--scale-up", "0.8",
                                        "--scale-down", "0.2",
                                        "--scale-period", "10",
                                        "--warmup", "5",
                                        "--min-hosts", "3"});
  const core::ExperimentConfig cfg = o.experiment_config(5);
  // The speeds pattern tiles cyclically across the fleet.
  ASSERT_EQ(cfg.host_speeds.size(), 5u);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[1], 2.0);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[2], 4.0);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[3], 1.0);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[4], 2.0);
  ASSERT_TRUE(cfg.autoscaler.enabled);
  EXPECT_DOUBLE_EQ(cfg.autoscaler.scale_up_threshold, 0.8);
  EXPECT_DOUBLE_EQ(cfg.autoscaler.scale_down_threshold, 0.2);
  EXPECT_DOUBLE_EQ(cfg.autoscaler.check_period, 10.0);
  EXPECT_DOUBLE_EQ(cfg.autoscaler.warmup_delay, 5.0);
  EXPECT_EQ(cfg.autoscaler.min_hosts, 3u);
}

TEST(BenchFlagsDeathTest, ElasticFlagsAreUnknownWithoutOptIn) {
  EXPECT_EXIT(parse({"--speeds", "1,2"}),
              ::testing::ExitedWithCode(2), "speeds");
  EXPECT_EXIT(parse({"--scale-up", "0.8"}),
              ::testing::ExitedWithCode(2), "scale-up");
}

TEST(BenchFlagsDeathTest, NonPositiveSpeedExits) {
  EXPECT_EXIT(parse_elastic({"--speeds", "1,0,2"}),
              ::testing::ExitedWithCode(2), "--speeds");
  EXPECT_EXIT(parse_elastic({"--speeds", "1,-3"}),
              ::testing::ExitedWithCode(2), "--speeds");
}

TEST(BenchFlagsDeathTest, MalformedSpeedExits) {
  EXPECT_EXIT(parse_elastic({"--speeds", "fast,slow"}),
              ::testing::ExitedWithCode(2), "--speeds");
}

TEST(BenchFlagsDeathTest, ScaleUpAboveOneIsOutOfRange) {
  EXPECT_EXIT(parse_elastic({"--scale-up", "1.5"}),
              ::testing::ExitedWithCode(2), "scale-up");
}

TEST(BenchFlagsDeathTest, ScaleDownAboveScaleUpExits) {
  EXPECT_EXIT(parse_elastic({"--scale-up", "0.5", "--scale-down", "0.6"}),
              ::testing::ExitedWithCode(2), "--scale-down");
}

TEST(BenchFlagsDeathTest, WarmupWithoutScaleUpExits) {
  EXPECT_EXIT(parse_elastic({"--warmup", "5"}),
              ::testing::ExitedWithCode(2), "--scale-up");
}

TEST(BenchFlagsDeathTest, MinHostsOfZeroIsOutOfRange) {
  EXPECT_EXIT(parse_elastic({"--scale-up", "0.8", "--min-hosts", "0"}),
              ::testing::ExitedWithCode(2), "min-hosts");
}

}  // namespace
}  // namespace distserv::bench
