// The shared bench flag parser: control-plane flags wire into
// ExperimentConfig::control with the documented coupling rules, and every
// malformed or out-of-range value exits with status 2 naming the flag
// (strict CLI contract — a typo never silently falls back to a default).
#include <gtest/gtest.h>

#include <vector>

#include "common.hpp"

namespace distserv::bench {
namespace {

BenchOptions parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_under_test");
  return BenchOptions::parse(static_cast<int>(args.size()), args.data());
}

BenchOptions parse_elastic(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_under_test");
  return BenchOptions::parse(static_cast<int>(args.size()), args.data(),
                             "c90", {}, /*sweeps_probe_period=*/false,
                             /*supports_elastic=*/true);
}

TEST(BenchFlags, ControlPlaneIsOffByDefault) {
  const BenchOptions o = parse({});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  EXPECT_FALSE(cfg.control.enabled);
}

TEST(BenchFlags, ControlFlagsWireIntoTheExperimentConfig) {
  const BenchOptions o = parse({"--probe-period", "12.5",
                                "--probe-loss", "0.25",
                                "--rpc-timeout", "2.0",
                                "--rpc-loss", "0.1",
                                "--ack-loss", "0.05",
                                "--retries", "5",
                                "--fallback", "terminal"});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  ASSERT_TRUE(cfg.control.enabled);
  EXPECT_DOUBLE_EQ(cfg.control.probe_period, 12.5);
  EXPECT_DOUBLE_EQ(cfg.control.probe_loss, 0.25);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_timeout, 2.0);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_loss, 0.1);
  EXPECT_DOUBLE_EQ(cfg.control.ack_loss, 0.05);
  EXPECT_EQ(cfg.control.max_retries, 5u);
  EXPECT_DOUBLE_EQ(cfg.control.backoff_base, 2.0);  // anchored to timeout
  EXPECT_EQ(cfg.control.fallback, sim::FallbackMode::kTerminal);
}

TEST(BenchFlags, SnapshotsAloneEnableTheControlPlane) {
  const BenchOptions o = parse({"--probe-period", "3.0"});
  const core::ExperimentConfig cfg = o.experiment_config(2);
  ASSERT_TRUE(cfg.control.enabled);
  EXPECT_DOUBLE_EQ(cfg.control.probe_period, 3.0);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_timeout, 0.0);
}

TEST(BenchFlags, ProbePeriodSweepingBenchAcceptsBareProbeLoss) {
  // bench_staleness_sweep supplies the probe period per grid point, so it
  // lifts the --probe-loss/--probe-period coupling.
  const std::vector<const char*> args = {"bench_under_test",
                                         "--probe-loss", "0.3"};
  const BenchOptions o = BenchOptions::parse(
      static_cast<int>(args.size()), args.data(), "c90", {},
      /*sweeps_probe_period=*/true);
  EXPECT_DOUBLE_EQ(o.probe_loss, 0.3);
}



TEST(BenchFlagsDeathTest, ProbeLossWithoutProbePeriodExits) {
  EXPECT_EXIT(parse({"--probe-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--probe-loss");
}

TEST(BenchFlagsDeathTest, RpcLossWithoutRpcTimeoutExits) {
  EXPECT_EXIT(parse({"--rpc-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--rpc-loss");
}

TEST(BenchFlagsDeathTest, AckLossWithoutRpcTimeoutExits) {
  EXPECT_EXIT(parse({"--ack-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--rpc-timeout");
}

TEST(BenchFlagsDeathTest, CertainProbeLossIsOutOfRange) {
  EXPECT_EXIT(parse({"--probe-period", "1.0", "--probe-loss", "1.0"}),
              ::testing::ExitedWithCode(2), "probe-loss");
}

TEST(BenchFlagsDeathTest, NegativeProbePeriodIsOutOfRange) {
  EXPECT_EXIT(parse({"--probe-period", "-1.0"}),
              ::testing::ExitedWithCode(2), "probe-period");
}

TEST(BenchFlagsDeathTest, UnknownFallbackModeExits) {
  EXPECT_EXIT(parse({"--fallback", "panic"}),
              ::testing::ExitedWithCode(2), "--fallback");
}

TEST(BenchFlagsDeathTest, MalformedRetriesExits) {
  EXPECT_EXIT(parse({"--retries", "many"}),
              ::testing::ExitedWithCode(2), "retries");
}

TEST(BenchFlagsDeathTest, MisspelledControlFlagExits) {
  EXPECT_EXIT(parse({"--probe-perid", "1.0"}),
              ::testing::ExitedWithCode(2), "probe-perid");
}

TEST(BenchFlags, ElasticFlagsAreOffByDefault) {
  const BenchOptions o = parse_elastic({});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  EXPECT_TRUE(cfg.host_speeds.empty());
  EXPECT_FALSE(cfg.autoscaler.enabled);
}

TEST(BenchFlags, ElasticFlagsWireIntoTheExperimentConfig) {
  const BenchOptions o = parse_elastic({"--speeds", "1,2,4",
                                        "--scale-up", "0.8",
                                        "--scale-down", "0.2",
                                        "--scale-period", "10",
                                        "--warmup", "5",
                                        "--min-hosts", "3"});
  const core::ExperimentConfig cfg = o.experiment_config(5);
  // The speeds pattern tiles cyclically across the fleet.
  ASSERT_EQ(cfg.host_speeds.size(), 5u);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[1], 2.0);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[2], 4.0);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[3], 1.0);
  EXPECT_DOUBLE_EQ(cfg.host_speeds[4], 2.0);
  ASSERT_TRUE(cfg.autoscaler.enabled);
  EXPECT_DOUBLE_EQ(cfg.autoscaler.scale_up_threshold, 0.8);
  EXPECT_DOUBLE_EQ(cfg.autoscaler.scale_down_threshold, 0.2);
  EXPECT_DOUBLE_EQ(cfg.autoscaler.check_period, 10.0);
  EXPECT_DOUBLE_EQ(cfg.autoscaler.warmup_delay, 5.0);
  EXPECT_EQ(cfg.autoscaler.min_hosts, 3u);
}

TEST(BenchFlagsDeathTest, ElasticFlagsAreUnknownWithoutOptIn) {
  EXPECT_EXIT(parse({"--speeds", "1,2"}),
              ::testing::ExitedWithCode(2), "speeds");
  EXPECT_EXIT(parse({"--scale-up", "0.8"}),
              ::testing::ExitedWithCode(2), "scale-up");
}

TEST(BenchFlagsDeathTest, NonPositiveSpeedExits) {
  EXPECT_EXIT(parse_elastic({"--speeds", "1,0,2"}),
              ::testing::ExitedWithCode(2), "--speeds");
  EXPECT_EXIT(parse_elastic({"--speeds", "1,-3"}),
              ::testing::ExitedWithCode(2), "--speeds");
}

TEST(BenchFlagsDeathTest, MalformedSpeedExits) {
  EXPECT_EXIT(parse_elastic({"--speeds", "fast,slow"}),
              ::testing::ExitedWithCode(2), "--speeds");
}

TEST(BenchFlagsDeathTest, ScaleUpAboveOneIsOutOfRange) {
  EXPECT_EXIT(parse_elastic({"--scale-up", "1.5"}),
              ::testing::ExitedWithCode(2), "scale-up");
}

TEST(BenchFlagsDeathTest, ScaleDownAboveScaleUpExits) {
  EXPECT_EXIT(parse_elastic({"--scale-up", "0.5", "--scale-down", "0.6"}),
              ::testing::ExitedWithCode(2), "--scale-down");
}

TEST(BenchFlagsDeathTest, WarmupWithoutScaleUpExits) {
  EXPECT_EXIT(parse_elastic({"--warmup", "5"}),
              ::testing::ExitedWithCode(2), "--scale-up");
}

TEST(BenchFlagsDeathTest, MinHostsOfZeroIsOutOfRange) {
  EXPECT_EXIT(parse_elastic({"--scale-up", "0.8", "--min-hosts", "0"}),
              ::testing::ExitedWithCode(2), "min-hosts");
}

BenchOptions parse_overload(std::vector<const char*> args,
                            bool supports_elastic = false) {
  args.insert(args.begin(), "bench_under_test");
  return BenchOptions::parse(static_cast<int>(args.size()), args.data(),
                             "c90", {}, /*sweeps_probe_period=*/false,
                             supports_elastic, /*supports_overload=*/true);
}

TEST(BenchFlags, OverloadProtectionIsOffByDefault) {
  const BenchOptions o = parse_overload({});
  EXPECT_FALSE(o.overload.any_feature());
  const core::ExperimentConfig cfg = o.experiment_config(4);
  EXPECT_FALSE(cfg.overload.enabled);
}

TEST(BenchFlags, OverloadFlagsWireIntoTheExperimentConfig) {
  const BenchOptions o = parse_overload({"--queue-cap", "6",
                                         "--backlog-cap", "120",
                                         "--overflow", "shed-largest",
                                         "--admission", "token:2.5:4",
                                         "--patience", "30",
                                         "--migrate-on-fail"});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  ASSERT_TRUE(cfg.overload.enabled);
  EXPECT_EQ(cfg.overload.queue_cap, 6u);
  EXPECT_DOUBLE_EQ(cfg.overload.backlog_cap, 120.0);
  EXPECT_EQ(cfg.overload.overflow, sim::OverflowAction::kShedLargest);
  EXPECT_EQ(cfg.overload.admission, sim::AdmissionMode::kTokenBucket);
  EXPECT_DOUBLE_EQ(cfg.overload.admission_rate, 2.5);
  EXPECT_DOUBLE_EQ(cfg.overload.admission_burst, 4.0);
  EXPECT_DOUBLE_EQ(cfg.overload.patience_mean, 30.0);
  EXPECT_TRUE(cfg.overload.migrate_on_fail);
  EXPECT_FALSE(cfg.overload.migrate_on_drain);
}

TEST(BenchFlags, UtilizationGateSpecFillsThresholdAndProbability) {
  const BenchOptions o = parse_overload({"--admission", "util:0.85:0.5"});
  EXPECT_EQ(o.overload.admission, sim::AdmissionMode::kUtilizationGate);
  EXPECT_DOUBLE_EQ(o.overload.admission_threshold, 0.85);
  EXPECT_DOUBLE_EQ(o.overload.admission_shed_prob, 0.5);
  // The shed probability defaults to 1 (deterministic gate) when omitted.
  const BenchOptions bare = parse_overload({"--admission", "util:0.7"});
  EXPECT_DOUBLE_EQ(bare.overload.admission_threshold, 0.7);
  EXPECT_DOUBLE_EQ(bare.overload.admission_shed_prob, 1.0);
}

TEST(BenchFlags, MigrateOnDrainRequiresAnElasticBench) {
  const BenchOptions o = parse_overload({"--migrate-on-drain"},
                                        /*supports_elastic=*/true);
  EXPECT_TRUE(o.overload.migrate_on_drain);
  EXPECT_TRUE(o.overload.any_feature());
}

TEST(BenchFlagsDeathTest, OverloadFlagsAreUnknownWithoutOptIn) {
  EXPECT_EXIT(parse({"--queue-cap", "4"}),
              ::testing::ExitedWithCode(2), "queue-cap");
  EXPECT_EXIT(parse({"--admission", "token:1"}),
              ::testing::ExitedWithCode(2), "admission");
}

TEST(BenchFlagsDeathTest, UnknownOverflowActionExits) {
  EXPECT_EXIT(parse_overload({"--queue-cap", "4", "--overflow", "explode"}),
              ::testing::ExitedWithCode(2), "--overflow");
}

TEST(BenchFlagsDeathTest, OverflowWithoutACapExits) {
  EXPECT_EXIT(parse_overload({"--overflow", "reject"}),
              ::testing::ExitedWithCode(2), "--overflow");
}

TEST(BenchFlagsDeathTest, MalformedAdmissionSpecExits) {
  EXPECT_EXIT(parse_overload({"--admission", "lottery"}),
              ::testing::ExitedWithCode(2), "--admission");
  EXPECT_EXIT(parse_overload({"--admission", "token"}),
              ::testing::ExitedWithCode(2), "--admission");
  EXPECT_EXIT(parse_overload({"--admission", "token:fast"}),
              ::testing::ExitedWithCode(2), "--admission");
  EXPECT_EXIT(parse_overload({"--admission", "util:1.5"}),
              ::testing::ExitedWithCode(2), "--admission");
  EXPECT_EXIT(parse_overload({"--admission", "util:0.9:0"}),
              ::testing::ExitedWithCode(2), "--admission");
  EXPECT_EXIT(parse_overload({"--admission", "none:0.5"}),
              ::testing::ExitedWithCode(2), "--admission");
}

TEST(BenchFlagsDeathTest, NegativePatienceIsOutOfRange) {
  EXPECT_EXIT(parse_overload({"--patience", "-1"}),
              ::testing::ExitedWithCode(2), "patience");
}

TEST(BenchFlagsDeathTest, MigrateOnDrainWithoutAnAutoscalerExits) {
  EXPECT_EXIT(parse_overload({"--migrate-on-drain"}),
              ::testing::ExitedWithCode(2), "--migrate-on-drain");
}

}  // namespace
}  // namespace distserv::bench
