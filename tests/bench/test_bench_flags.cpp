// The shared bench flag parser: control-plane flags wire into
// ExperimentConfig::control with the documented coupling rules, and every
// malformed or out-of-range value exits with status 2 naming the flag
// (strict CLI contract — a typo never silently falls back to a default).
#include <gtest/gtest.h>

#include <vector>

#include "common.hpp"

namespace distserv::bench {
namespace {

BenchOptions parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_under_test");
  return BenchOptions::parse(static_cast<int>(args.size()), args.data());
}

TEST(BenchFlags, ControlPlaneIsOffByDefault) {
  const BenchOptions o = parse({});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  EXPECT_FALSE(cfg.control.enabled);
}

TEST(BenchFlags, ControlFlagsWireIntoTheExperimentConfig) {
  const BenchOptions o = parse({"--probe-period", "12.5",
                                "--probe-loss", "0.25",
                                "--rpc-timeout", "2.0",
                                "--rpc-loss", "0.1",
                                "--ack-loss", "0.05",
                                "--retries", "5",
                                "--fallback", "terminal"});
  const core::ExperimentConfig cfg = o.experiment_config(4);
  ASSERT_TRUE(cfg.control.enabled);
  EXPECT_DOUBLE_EQ(cfg.control.probe_period, 12.5);
  EXPECT_DOUBLE_EQ(cfg.control.probe_loss, 0.25);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_timeout, 2.0);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_loss, 0.1);
  EXPECT_DOUBLE_EQ(cfg.control.ack_loss, 0.05);
  EXPECT_EQ(cfg.control.max_retries, 5u);
  EXPECT_DOUBLE_EQ(cfg.control.backoff_base, 2.0);  // anchored to timeout
  EXPECT_EQ(cfg.control.fallback, sim::FallbackMode::kTerminal);
}

TEST(BenchFlags, SnapshotsAloneEnableTheControlPlane) {
  const BenchOptions o = parse({"--probe-period", "3.0"});
  const core::ExperimentConfig cfg = o.experiment_config(2);
  ASSERT_TRUE(cfg.control.enabled);
  EXPECT_DOUBLE_EQ(cfg.control.probe_period, 3.0);
  EXPECT_DOUBLE_EQ(cfg.control.rpc_timeout, 0.0);
}

TEST(BenchFlags, ProbePeriodSweepingBenchAcceptsBareProbeLoss) {
  // bench_staleness_sweep supplies the probe period per grid point, so it
  // lifts the --probe-loss/--probe-period coupling.
  const std::vector<const char*> args = {"bench_under_test",
                                         "--probe-loss", "0.3"};
  const BenchOptions o = BenchOptions::parse(
      static_cast<int>(args.size()), args.data(), "c90", {},
      /*sweeps_probe_period=*/true);
  EXPECT_DOUBLE_EQ(o.probe_loss, 0.3);
}



TEST(BenchFlagsDeathTest, ProbeLossWithoutProbePeriodExits) {
  EXPECT_EXIT(parse({"--probe-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--probe-loss");
}

TEST(BenchFlagsDeathTest, RpcLossWithoutRpcTimeoutExits) {
  EXPECT_EXIT(parse({"--rpc-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--rpc-loss");
}

TEST(BenchFlagsDeathTest, AckLossWithoutRpcTimeoutExits) {
  EXPECT_EXIT(parse({"--ack-loss", "0.1"}),
              ::testing::ExitedWithCode(2), "--rpc-timeout");
}

TEST(BenchFlagsDeathTest, CertainProbeLossIsOutOfRange) {
  EXPECT_EXIT(parse({"--probe-period", "1.0", "--probe-loss", "1.0"}),
              ::testing::ExitedWithCode(2), "probe-loss");
}

TEST(BenchFlagsDeathTest, NegativeProbePeriodIsOutOfRange) {
  EXPECT_EXIT(parse({"--probe-period", "-1.0"}),
              ::testing::ExitedWithCode(2), "probe-period");
}

TEST(BenchFlagsDeathTest, UnknownFallbackModeExits) {
  EXPECT_EXIT(parse({"--fallback", "panic"}),
              ::testing::ExitedWithCode(2), "--fallback");
}

TEST(BenchFlagsDeathTest, MalformedRetriesExits) {
  EXPECT_EXIT(parse({"--retries", "many"}),
              ::testing::ExitedWithCode(2), "retries");
}

TEST(BenchFlagsDeathTest, MisspelledControlFlagExits) {
  EXPECT_EXIT(parse({"--probe-perid", "1.0"}),
              ::testing::ExitedWithCode(2), "probe-perid");
}

}  // namespace
}  // namespace distserv::bench
