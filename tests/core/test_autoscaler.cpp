// The hysteresis autoscaler: config validation, window/decision mechanics
// on the controller in isolation, and the server-level contracts — a
// disabled scaler leaves runs bit-identical, a calm fleet drains down to
// the floor, and a burst after a calm stretch powers hosts back on through
// the warm-up path without losing a job.
#include "sim/autoscaler.hpp"

#include <gtest/gtest.h>

#include "core/policies/least_work_left.hpp"
#include "core/policies/shortest_queue.hpp"
#include "core/server.hpp"
#include "util/contracts.hpp"
#include "workload/catalog.hpp"

namespace distserv::core {
namespace {

using sim::Autoscaler;
using sim::AutoscalerConfig;
using sim::ScaleDecision;
using workload::Job;
using workload::Trace;

AutoscalerConfig valid_config() {
  AutoscalerConfig config;
  config.enabled = true;
  config.check_period = 10.0;
  config.scale_up_threshold = 0.75;
  config.scale_down_threshold = 0.35;
  config.window = 3;
  return config;
}

TEST(AutoscalerConfigValidation, RejectsOutOfRangeKnobs) {
  const std::uint64_t seed = 1;
  {
    AutoscalerConfig c = valid_config();
    c.check_period = 0.0;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  {
    AutoscalerConfig c = valid_config();
    c.scale_up_threshold = 1.5;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  {
    // A degenerate hysteresis band (down == up) would chatter; rejected.
    AutoscalerConfig c = valid_config();
    c.scale_down_threshold = c.scale_up_threshold;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  {
    AutoscalerConfig c = valid_config();
    c.window = 0;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  {
    AutoscalerConfig c = valid_config();
    c.warmup_delay = -1.0;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  {
    AutoscalerConfig c = valid_config();
    c.min_hosts = 0;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  {
    // The floor cannot exceed the fleet.
    AutoscalerConfig c = valid_config();
    c.min_hosts = 5;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  {
    AutoscalerConfig c = valid_config();
    c.scale_step = 0;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  {
    AutoscalerConfig c = valid_config();
    c.phase_jitter = 1.0;
    EXPECT_THROW(Autoscaler(c, 4, seed), ContractViolation);
  }
  EXPECT_NO_THROW(Autoscaler(valid_config(), 4, seed));
}

TEST(AutoscalerWindow, DecidesOnlyOnAFullWindow) {
  Autoscaler scaler(valid_config(), 4, /*seed=*/9);
  scaler.add_sample(0.9);
  scaler.add_sample(0.9);
  EXPECT_FALSE(scaler.window_full());
  EXPECT_EQ(scaler.decide(), ScaleDecision::kNone);
  scaler.add_sample(0.9);
  ASSERT_TRUE(scaler.window_full());
  EXPECT_EQ(scaler.decide(), ScaleDecision::kUp);
}

TEST(AutoscalerWindow, HysteresisBandAsksForNothing) {
  Autoscaler scaler(valid_config(), 4, /*seed=*/9);
  for (int i = 0; i < 3; ++i) scaler.add_sample(0.5);
  EXPECT_EQ(scaler.decide(), ScaleDecision::kNone);
  // The window slides: two idle samples pull the mean under 0.35.
  scaler.add_sample(0.0);
  scaler.add_sample(0.0);
  EXPECT_NEAR(scaler.window_mean(), 0.5 / 3.0, 1e-12);
  EXPECT_EQ(scaler.decide(), ScaleDecision::kDown);
}

TEST(AutoscalerWindow, ClearForcesADecisionToBeReEarned) {
  Autoscaler scaler(valid_config(), 4, /*seed=*/9);
  for (int i = 0; i < 3; ++i) scaler.add_sample(0.9);
  EXPECT_EQ(scaler.decide(), ScaleDecision::kUp);
  scaler.clear_window();
  EXPECT_EQ(scaler.decide(), ScaleDecision::kNone);
  scaler.add_sample(0.9);
  EXPECT_EQ(scaler.decide(), ScaleDecision::kNone);  // 1 of 3 samples
}

TEST(AutoscalerWindow, ThresholdsAreStrict) {
  AutoscalerConfig config = valid_config();
  config.window = 1;
  Autoscaler scaler(config, 4, /*seed=*/9);
  scaler.add_sample(0.75);  // exactly at the up threshold: no action
  EXPECT_EQ(scaler.decide(), ScaleDecision::kNone);
  scaler.add_sample(0.35);  // exactly at the down threshold: no action
  EXPECT_EQ(scaler.decide(), ScaleDecision::kNone);
}

TEST(AutoscalerPhase, JitterFreeFirstEvalIsOnTheGrid) {
  Autoscaler scaler(valid_config(), 4, /*seed=*/9);
  EXPECT_DOUBLE_EQ(scaler.first_eval_at(0.0), 10.0);
}

TEST(AutoscalerPhase, JitterDrawIsSeedReproducible) {
  AutoscalerConfig config = valid_config();
  config.phase_jitter = 0.5;
  Autoscaler a(config, 4, /*seed=*/123);
  Autoscaler b(config, 4, /*seed=*/123);
  const sim::Time ta = a.first_eval_at(0.0);
  EXPECT_DOUBLE_EQ(ta, b.first_eval_at(0.0));
  EXPECT_GE(ta, 10.0);
  EXPECT_LT(ta, 15.0);  // phase in [0, 0.5) periods
}

// ---------------------------------------------------------------------------
// Server-level contracts.

Trace bursty_then_calm_then_bursty() {
  // ~0-40: every host busy; 40-400: a trickle; 400-440: busy again.
  std::vector<Job> jobs;
  workload::JobId id = 0;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(Job{id++, 1.0 * i, 4.0});
  }
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(Job{id++, 40.0 + 30.0 * i, 1.0});
  }
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(Job{id++, 400.0 + 1.0 * i, 4.0});
  }
  return Trace(std::move(jobs));
}

TEST(AutoscalerServer, DisabledScalerLeavesRunsBitIdentical) {
  const workload::WorkloadSpec& spec = workload::find_workload("c90");
  const Trace trace = workload::make_trace(spec, 0.7, 4, /*seed=*/11, 2000);
  LeastWorkLeftPolicy a_policy, b_policy;
  DistributedServer plain(4, a_policy);
  DistributedServer elastic(4, b_policy);
  AutoscalerConfig disabled;  // default-constructed = disabled
  elastic.enable_autoscaler(disabled);
  const RunResult a = plain.run(trace, /*seed=*/42);
  const RunResult b = elastic.run(trace, /*seed=*/42);
  EXPECT_FALSE(b.scaling.has_value());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].host, b.records[i].host);
    EXPECT_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
  }
}

TEST(AutoscalerServer, CalmFleetDrainsDownToTheFloorAndSavesHostTime) {
  ShortestQueuePolicy policy;
  DistributedServer server(8, policy);
  AutoscalerConfig config = valid_config();
  config.check_period = 8.0;
  config.window = 2;
  config.min_hosts = 2;
  server.enable_autoscaler(config);
  const Trace trace = bursty_then_calm_then_bursty();
  const RunResult r = server.run(trace, /*seed=*/5);
  ASSERT_EQ(r.records.size(), trace.size());
  ASSERT_TRUE(r.scaling.has_value());
  const sim::ScalingStats& s = *r.scaling;
  EXPECT_GT(s.evals, 0u);
  // The calm stretch drains capacity, but never through the floor.
  EXPECT_GT(s.hosts_drained, 0u);
  EXPECT_GE(s.min_powered, 2u);
  EXPECT_LT(s.host_time_powered, s.host_time_total);
  // The closing burst brings capacity back through the warm-up path.
  EXPECT_GT(s.hosts_powered_on + s.drains_reclaimed, 0u);
}

TEST(AutoscalerServer, WarmupDelayDefersReactivation) {
  ShortestQueuePolicy policy;
  DistributedServer server(8, policy);
  AutoscalerConfig config = valid_config();
  config.check_period = 8.0;
  config.window = 2;
  config.min_hosts = 1;
  config.warmup_delay = 6.0;
  server.enable_autoscaler(config);
  const Trace trace = bursty_then_calm_then_bursty();
  const RunResult r = server.run(trace, /*seed=*/5);
  ASSERT_EQ(r.records.size(), trace.size());
  ASSERT_TRUE(r.scaling.has_value());
  // Every cold start either completed its warm-up or was cancelled by a
  // scale-down racing the delay; nothing leaks.
  EXPECT_LE(r.scaling->warmups_completed + r.scaling->warmups_cancelled,
            r.scaling->hosts_powered_on);
}

TEST(AutoscalerServer, ScalingIsSeedReproducible) {
  AutoscalerConfig config = valid_config();
  config.check_period = 8.0;
  config.window = 2;
  config.phase_jitter = 0.5;
  ShortestQueuePolicy pa, pb;
  DistributedServer a(8, pa);
  DistributedServer b(8, pb);
  a.enable_autoscaler(config);
  b.enable_autoscaler(config);
  const Trace trace = bursty_then_calm_then_bursty();
  const RunResult ra = a.run(trace, /*seed=*/77);
  const RunResult rb = b.run(trace, /*seed=*/77);
  ASSERT_TRUE(ra.scaling && rb.scaling);
  EXPECT_EQ(ra.scaling->evals, rb.scaling->evals);
  EXPECT_EQ(ra.scaling->hosts_drained, rb.scaling->hosts_drained);
  EXPECT_DOUBLE_EQ(ra.scaling->host_time_powered,
                   rb.scaling->host_time_powered);
  ASSERT_EQ(ra.records.size(), rb.records.size());
  for (std::size_t i = 0; i < ra.records.size(); ++i) {
    EXPECT_EQ(ra.records[i].completion, rb.records[i].completion);
  }
}

TEST(AutoscalerServer, RunningWithAnInvalidConfigThrows) {
  ShortestQueuePolicy policy;
  DistributedServer server(4, policy);
  AutoscalerConfig config = valid_config();
  config.min_hosts = 9;  // floor above the fleet
  server.enable_autoscaler(config);
  const Trace trace({Job{0, 0.0, 1.0}});
  // The controller validates its knobs when the run constructs it.
  EXPECT_THROW((void)server.run(trace, /*seed=*/1), ContractViolation);
}

}  // namespace
}  // namespace distserv::core
