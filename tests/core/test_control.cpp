// Degraded-information control plane: config validation, RNG stream
// determinism, backoff arithmetic, the bit-identical-when-off contract,
// a hand-computed retry/backoff/escalation timeline, perfect-information
// equivalence in the probe-period -> 0 limit, and the paper-facing claim
// that state-blind SITA is unaffected by staleness while Shortest-Queue
// and Least-Work-Left misroute.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/metrics.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/random.hpp"
#include "core/policies/shortest_queue.hpp"
#include "core/policies/sita.hpp"
#include "core/server.hpp"
#include "dist/exponential.hpp"
#include "dist/rng.hpp"
#include "sim/control_plane.hpp"
#include "sim/faults.hpp"
#include "util/contracts.hpp"
#include "workload/trace.hpp"

namespace distserv::core {
namespace {

using workload::Job;

sim::ControlPlaneConfig snapshots_only(double period) {
  sim::ControlPlaneConfig c;
  c.enabled = true;
  c.probe_period = period;
  c.probe_jitter = 0.0;
  return c;
}

workload::Trace poisson_trace(std::size_t n, double rho, std::size_t hosts,
                              std::uint64_t seed) {
  dist::Rng rng(seed);
  const dist::Exponential d = dist::Exponential::from_mean(10.0);
  std::vector<double> sizes;
  sizes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sizes.push_back(d.sample(rng));
  return workload::Trace::with_poisson_load(sizes, rho, hosts, rng);
}

// ---------------------------------------------------------------- config --

TEST(ControlPlaneConfig, ValidatesItsConstraints) {
  const auto make = [](const sim::ControlPlaneConfig& c) {
    return sim::ControlPlane(c, /*hosts=*/2, /*seed=*/1);
  };
  sim::ControlPlaneConfig loss_without_probes;
  loss_without_probes.enabled = true;
  loss_without_probes.probe_loss = 0.1;
  EXPECT_THROW(make(loss_without_probes), ContractViolation);

  sim::ControlPlaneConfig loss_without_rpc;
  loss_without_rpc.enabled = true;
  loss_without_rpc.rpc_loss = 0.1;
  EXPECT_THROW(make(loss_without_rpc), ContractViolation);

  sim::ControlPlaneConfig certain_loss = snapshots_only(5.0);
  certain_loss.probe_loss = 1.0;  // a channel that never delivers
  EXPECT_THROW(make(certain_loss), ContractViolation);

  sim::ControlPlaneConfig bound_without_fallback = snapshots_only(5.0);
  bound_without_fallback.staleness_bound = 10.0;
  bound_without_fallback.fallback = sim::FallbackMode::kNone;
  EXPECT_THROW(make(bound_without_fallback), ContractViolation);

  sim::ControlPlaneConfig bound_without_probes;
  bound_without_probes.enabled = true;
  bound_without_probes.rpc_timeout = 1.0;
  bound_without_probes.staleness_bound = 10.0;
  EXPECT_THROW(make(bound_without_probes), ContractViolation);

  sim::ControlPlaneConfig shrinking_backoff;
  shrinking_backoff.enabled = true;
  shrinking_backoff.rpc_timeout = 1.0;
  shrinking_backoff.backoff_factor = 0.5;
  EXPECT_THROW(make(shrinking_backoff), ContractViolation);

  EXPECT_NO_THROW(make(snapshots_only(5.0)));
}

TEST(ControlPlaneConfig, FallbackModeStringRoundTrip) {
  for (sim::FallbackMode mode : sim::all_fallback_modes()) {
    const auto parsed = sim::fallback_from_string(sim::to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << sim::to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(sim::fallback_from_string("Terminal"),
            sim::FallbackMode::kTerminal);  // case-insensitive
  EXPECT_FALSE(sim::fallback_from_string("panic").has_value());
  EXPECT_EQ(sim::registered_fallback_modes().size(),
            sim::all_fallback_modes().size());
}

TEST(ControlPlane, BackoffGrowsGeometricallyUpToTheCap) {
  sim::ControlPlaneConfig c;
  c.enabled = true;
  c.rpc_timeout = 1.0;
  c.backoff_base = 1.0;
  c.backoff_factor = 2.0;
  c.backoff_cap = 5.0;
  const sim::ControlPlane plane(c, 1, 1);
  EXPECT_DOUBLE_EQ(plane.backoff(0), 1.0);
  EXPECT_DOUBLE_EQ(plane.backoff(1), 2.0);
  EXPECT_DOUBLE_EQ(plane.backoff(2), 4.0);
  EXPECT_DOUBLE_EQ(plane.backoff(3), 5.0);  // capped
  EXPECT_DOUBLE_EQ(plane.backoff(4), 5.0);

  c.backoff_base = 0.0;  // no backoff: the timeout alone paces retries
  const sim::ControlPlane flat(c, 1, 1);
  EXPECT_DOUBLE_EQ(flat.backoff(0), 0.0);
  EXPECT_DOUBLE_EQ(flat.backoff(7), 0.0);
}

TEST(ControlPlane, DeterministicPerSeedWithIndependentHostStreams) {
  sim::ControlPlaneConfig c = snapshots_only(10.0);
  c.probe_jitter = 1.0;
  c.probe_loss = 0.3;
  sim::ControlPlane a(c, 4, 42);
  sim::ControlPlane b(c, 4, 42);
  for (std::uint32_t h = 0; h < 4; ++h) {
    EXPECT_EQ(a.first_probe_at(h), b.first_probe_at(h));
    EXPECT_GE(a.first_probe_at(h), 0.0);
    EXPECT_LE(a.first_probe_at(h), 10.0);
  }
  // Drawing from host 0's probe stream must not perturb host 1's.
  for (int i = 0; i < 20; ++i) (void)a.probe_lost(0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.probe_lost(1), b.probe_lost(1));
  }
}

// ----------------------------------------------------- off == byte-equal --

TEST(ControlPlane, EnabledButInertControlIsBitIdenticalToPlainRuns) {
  // enabled=true with probe_period=0 and rpc_timeout=0 walks the degraded
  // route path but reads live state and dispatches directly — the records
  // must be byte-for-byte the plain-simulate() output.
  const workload::Trace trace = poisson_trace(800, 0.7, 3, 9001);
  ShortestQueuePolicy plain_policy, control_policy;
  const RunResult plain = simulate(plain_policy, trace, 3, /*seed=*/7);
  sim::ControlPlaneConfig inert;
  inert.enabled = true;
  const RunResult controlled =
      simulate_with_control(control_policy, trace, 3, inert, /*seed=*/7);
  ASSERT_TRUE(controlled.control.has_value());
  ASSERT_EQ(plain.records.size(), controlled.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_EQ(plain.records[i].host, controlled.records[i].host);
    EXPECT_EQ(plain.records[i].start, controlled.records[i].start);
    EXPECT_EQ(plain.records[i].completion, controlled.records[i].completion);
  }
  EXPECT_EQ(controlled.control->probes_sent, 0u);
  EXPECT_EQ(controlled.control->rpc_dispatches, 0u);
}

TEST(ControlPlane, LosslessRpcDispatchIsBitIdenticalToPlainRuns) {
  // RPCs with zero loss deliver synchronously: same placements, same
  // times; only the accounting notices the RPC layer exists.
  const workload::Trace trace = poisson_trace(600, 0.6, 2, 303);
  LeastWorkLeftPolicy plain_policy, control_policy;
  const RunResult plain = simulate(plain_policy, trace, 2, /*seed=*/5);
  sim::ControlPlaneConfig rpc_only;
  rpc_only.enabled = true;
  rpc_only.rpc_timeout = 1.0;
  const RunResult controlled =
      simulate_with_control(control_policy, trace, 2, rpc_only, /*seed=*/5);
  ASSERT_EQ(plain.records.size(), controlled.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_EQ(plain.records[i].host, controlled.records[i].host);
    EXPECT_EQ(plain.records[i].start, controlled.records[i].start);
    EXPECT_EQ(plain.records[i].completion, controlled.records[i].completion);
  }
  ASSERT_TRUE(controlled.control.has_value());
  const sim::ControlStats& c = *controlled.control;
  EXPECT_EQ(c.rpc_dispatches, trace.size());
  EXPECT_EQ(c.requests_sent, trace.size());
  EXPECT_EQ(c.requests_lost, 0u);
  EXPECT_EQ(c.retries, 0u);
  EXPECT_EQ(c.timeouts, 0u);
  EXPECT_EQ(c.duplicates_suppressed, 0u);
}

// ------------------------------------------------- hand-computed timeline --

TEST(ControlPlane, RetryBackoffAndEscalationFollowTheComputedTimeline) {
  // One job, two hosts, both probed healthy at t=0, both down when the job
  // arrives at t=1. Shortest-Queue trusts the stale snapshot and targets
  // host 0; the dispatch request is forced-lost against the dead host.
  // With rpc_timeout=1, backoff 1*2^attempt, and a budget of 2 retries:
  //   send@1  -> timeout at 1 + (1+1) = 3
  //   retry@3 -> timeout at 3 + (1+2) = 6
  //   retry@6 -> timeout at 6 + (1+4) = 11
  // Host 0 is back up at t=10.6, so the t=11 exhaustion escalates to the
  // power-of-two fallback, which sees host 0 as the only live host and
  // delivers: the job starts at t=11 and completes at t=13.
  const std::vector<Job> jobs = {{/*id=*/0, /*arrival=*/1.0, /*size=*/2.0}};
  const workload::Trace trace{std::vector<Job>(jobs)};
  ShortestQueuePolicy policy;
  DistributedServer server(/*hosts=*/2, policy);
  sim::FaultConfig faults;
  faults.enabled = true;
  faults.outages.push_back({/*host=*/0, /*at=*/0.5, /*duration=*/10.1});
  faults.outages.push_back({/*host=*/1, /*at=*/0.4, /*duration=*/29.6});
  server.enable_faults(faults, RecoveryMode::kResubmit);
  sim::ControlPlaneConfig control = snapshots_only(100.0);
  control.rpc_timeout = 1.0;
  control.max_retries = 2;
  control.backoff_base = 1.0;
  control.backoff_factor = 2.0;
  server.enable_control(control);
  const RunResult result = server.run(trace, /*seed=*/1);

  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].host, 0u);
  EXPECT_DOUBLE_EQ(result.records[0].start, 11.0);
  EXPECT_DOUBLE_EQ(result.records[0].completion, 13.0);

  ASSERT_TRUE(result.control.has_value());
  const sim::ControlStats& c = *result.control;
  EXPECT_EQ(c.rpc_dispatches, 2u);  // primary chain + escalated chain
  EXPECT_EQ(c.requests_sent, 4u);
  EXPECT_EQ(c.requests_lost, 3u);
  EXPECT_EQ(c.timeouts, 3u);
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.escalations_exhausted, 1u);
  EXPECT_EQ(c.forced_placements, 0u);
  EXPECT_EQ(c.reconciled, 0u);
  EXPECT_EQ(c.chains_outstanding, 0u);
  // The stale snapshot said "up", live state said "no host": a misroute.
  EXPECT_EQ(c.oracle_comparisons, 1u);
  EXPECT_EQ(c.misrouted, 1u);
  // Route accounting: the primary route at age 1 and the escalated route
  // at age 11 (probes landed at t=0, the next wave is at t=100).
  EXPECT_EQ(c.routed, 2u);
  EXPECT_DOUBLE_EQ(c.snapshot_age_sum, 12.0);
  EXPECT_DOUBLE_EQ(c.snapshot_age_max, 11.0);
  EXPECT_EQ(c.probes_sent, 2u);

  EXPECT_TRUE(validate_run(result).empty());
}

// ----------------------------------------------- perfect-information limit --

TEST(ControlPlane, TinyProbePeriodMatchesPerfectInformationBaseline) {
  // Probe period -> 0 at zero loss: the snapshot is refreshed far more
  // often than arrivals occur, so Shortest-Queue and Least-Work-Left must
  // reproduce their live-state mean slowdown to within a small tolerance
  // (decisions can still differ for the rare arrival inside a refresh gap).
  const std::size_t hosts = 4;
  const workload::Trace trace = poisson_trace(3000, 0.7, hosts, 111);
  const auto run_pair = [&](Policy& live_policy, Policy& snap_policy) {
    const RunResult live = simulate(live_policy, trace, hosts, /*seed=*/3);
    const RunResult snap = simulate_with_control(
        snap_policy, trace, hosts, snapshots_only(0.05), /*seed=*/3);
    const MetricsSummary live_m = summarize(live);
    const MetricsSummary snap_m = summarize(snap);
    EXPECT_GT(snap_m.mean_snapshot_age, 0.0);
    EXPECT_LT(snap_m.misroute_rate, 0.02);
    EXPECT_NEAR(snap_m.mean_slowdown, live_m.mean_slowdown,
                0.05 * live_m.mean_slowdown);
  };
  ShortestQueuePolicy sq_live, sq_snap;
  run_pair(sq_live, sq_snap);
  LeastWorkLeftPolicy lwl_live, lwl_snap;
  run_pair(lwl_live, lwl_snap);
}

TEST(ControlPlane, StaleSnapshotsMakeStatefulPoliciesMisroute) {
  const std::size_t hosts = 4;
  const workload::Trace trace = poisson_trace(2000, 0.7, hosts, 222);
  ShortestQueuePolicy policy;
  const RunResult result = simulate_with_control(
      policy, trace, hosts, snapshots_only(100.0), /*seed=*/3);
  ASSERT_TRUE(result.control.has_value());
  EXPECT_GT(result.control->oracle_comparisons, 0u);
  EXPECT_GT(result.control->misrouted, result.control->oracle_comparisons / 4);
  EXPECT_TRUE(validate_run(result).empty());
}

TEST(ControlPlane, StateBlindSitaIsUnaffectedByStaleness) {
  // The paper-facing claim: SITA routes on the job size and static
  // cutoffs, so arbitrarily stale snapshots change nothing — placements
  // are byte-identical and the oracle never observes a disagreement.
  const std::size_t hosts = 2;
  const workload::Trace trace = poisson_trace(1500, 0.6, hosts, 333);
  SitaPolicy live_policy({10.0}, "SITA-test");
  SitaPolicy snap_policy({10.0}, "SITA-test");
  const RunResult live = simulate(live_policy, trace, hosts, /*seed=*/3);
  const RunResult snap = simulate_with_control(
      snap_policy, trace, hosts, snapshots_only(500.0), /*seed=*/3);
  ASSERT_EQ(live.records.size(), snap.records.size());
  for (std::size_t i = 0; i < live.records.size(); ++i) {
    EXPECT_EQ(live.records[i].host, snap.records[i].host);
    EXPECT_EQ(live.records[i].start, snap.records[i].start);
    EXPECT_EQ(live.records[i].completion, snap.records[i].completion);
  }
  ASSERT_TRUE(snap.control.has_value());
  EXPECT_EQ(snap.control->misrouted, 0u);
}

// --------------------------------------------------- snapshot herding -----

/// Fraction of all dispatches landing on the single most popular host.
double modal_host_fraction(const RunResult& result, std::size_t hosts) {
  std::vector<std::size_t> counts(hosts, 0);
  for (const JobRecord& rec : result.records) ++counts[rec.host];
  return static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
         static_cast<double>(result.records.size());
}

TEST(ControlPlane, SnapshotJitterBreaksUpLargeFleetHerding) {
  // The h-large failure mode (EXPERIMENTS.md, h=1024 control rows): on a
  // lightly loaded fleet most hosts report queue length 0 at every probe,
  // Shortest-Queue's deterministic lowest-index tie break resolves every
  // one of those ties to host 0, and each refresh window dumps its whole
  // arrival batch there while the rest of the fleet sits idle. The regime
  // below makes the pathology total by construction: rho * h < 1, so host
  // 0 clears each window's pile before the next probe, looks idle again,
  // and wins the tie forever. Tie-break jitter redraws each host's key
  // perturbation per delivered probe, so the all-zeros tie resolves to a
  // fresh host every cycle and the load spreads across the fleet.
  const std::size_t hosts = 64;
  const workload::Trace trace = poisson_trace(3000, 0.01, hosts, 444);
  // Mean interarrival = 10 / (0.01 * 64) ~ 15.6; span ~25 arrivals per
  // refresh so each window is a real pile, not a single job.
  const double period = 25.0 * 10.0 / (0.01 * static_cast<double>(hosts));
  sim::ControlPlaneConfig frozen = snapshots_only(period);
  sim::ControlPlaneConfig jittered = snapshots_only(period);
  jittered.snapshot_jitter = 1.0;
  ShortestQueuePolicy frozen_policy, jittered_policy;
  const RunResult herded = simulate_with_control(frozen_policy, trace, hosts,
                                                 frozen, /*seed=*/3);
  const RunResult spread = simulate_with_control(jittered_policy, trace,
                                                 hosts, jittered, /*seed=*/3);
  const double herded_modal = modal_host_fraction(herded, hosts);
  const double spread_modal = modal_host_fraction(spread, hosts);
  // Unjittered: the bulk of the trace lands on one host. Jittered: no
  // host collects more than a few windows' worth (uniform would be
  // 1/64 ~ 1.6%; a loose 4x allows collisions).
  EXPECT_GT(herded_modal, 0.5);
  EXPECT_LT(spread_modal, 0.25 * herded_modal);
  EXPECT_TRUE(validate_run(herded).empty());
  EXPECT_TRUE(validate_run(spread).empty());
}

TEST(ControlPlane, ZeroJitterKeepsSnapshotRunsBitIdentical) {
  // snapshot_jitter = 0 consumes no RNG, so a build with the knob produces
  // byte-identical schedules to one without it.
  const std::size_t hosts = 8;
  const workload::Trace trace = poisson_trace(1500, 0.6, hosts, 555);
  sim::ControlPlaneConfig plain = snapshots_only(5.0);
  sim::ControlPlaneConfig zeroed = snapshots_only(5.0);
  zeroed.snapshot_jitter = 0.0;
  ShortestQueuePolicy pa, pb;
  const RunResult a = simulate_with_control(pa, trace, hosts, plain, 9);
  const RunResult b = simulate_with_control(pb, trace, hosts, zeroed, 9);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].host, b.records[i].host);
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
  }
}

}  // namespace
}  // namespace distserv::core
