#include "core/cutoffs.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "workload/catalog.hpp"

namespace distserv::core {
namespace {

std::vector<double> training_sizes() {
  return workload::make_sizes(workload::find_workload("c90"), /*seed=*/2,
                              30000);
}

TEST(CutoffDeriver, SitaECutoffsEqualizeTrainingLoad) {
  const auto sizes = training_sizes();
  const CutoffDeriver deriver(sizes);
  const auto cutoffs = deriver.sita_e(2);
  ASSERT_EQ(cutoffs.size(), 1u);
  EXPECT_NEAR(deriver.model().load_fraction_below(cutoffs[0]), 0.5, 0.01);
  const auto four = deriver.sita_e(4);
  ASSERT_EQ(four.size(), 3u);
  EXPECT_TRUE(std::is_sorted(four.begin(), four.end()));
}

TEST(CutoffDeriver, LambdaForLoadInverts) {
  const auto sizes = training_sizes();
  const CutoffDeriver deriver(sizes);
  const double lambda = deriver.lambda_for(0.7, 2);
  const double mean = deriver.model().overall_moments().m1;
  EXPECT_NEAR(lambda * mean / 2.0, 0.7, 1e-9);
}

TEST(CutoffDeriver, SitaUOptUnderloadsHostOne) {
  const CutoffDeriver deriver(training_sizes());
  const auto r = deriver.sita_u_opt(0.7, 200);
  ASSERT_TRUE(r.feasible);
  EXPECT_LT(r.host1_load_fraction, 0.5);
  EXPECT_GT(r.host1_load_fraction, 0.1);
  EXPECT_GT(r.host1_job_fraction, 0.8);  // most jobs still go short
}

TEST(CutoffDeriver, SitaUFairEqualizesSlowdowns) {
  const CutoffDeriver deriver(training_sizes());
  const auto r = deriver.sita_u_fair(0.6, 200);
  ASSERT_TRUE(r.feasible);
  const double s1 = r.metrics.hosts[0].mg1.mean_slowdown;
  const double s2 = r.metrics.hosts[1].mg1.mean_slowdown;
  EXPECT_NEAR(s1 / s2, 1.0, 0.1);
}

TEST(CutoffDeriver, RuleOfThumbLoadFraction) {
  const CutoffDeriver deriver(training_sizes());
  const double c = deriver.rule_of_thumb(0.8);
  EXPECT_NEAR(deriver.model().load_fraction_below(c), 0.4, 0.01);
}

TEST(CutoffDeriver, ValidatesLoadRange) {
  const CutoffDeriver deriver(training_sizes());
  EXPECT_THROW((void)deriver.sita_u_opt(1.0), ContractViolation);
  EXPECT_THROW((void)deriver.sita_u_fair(0.0), ContractViolation);
}

}  // namespace
}  // namespace distserv::core
