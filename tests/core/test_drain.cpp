// Drain correctness: after run() returns, nothing may be left behind — no
// pending events, no queued or running jobs, every arrival completed. One
// regression test per registered policy, each run under the audit layer so
// a stuck job is diagnosed, not just detected.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/server.hpp"
#include "workload/catalog.hpp"

namespace distserv::core {
namespace {

class DrainTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(DrainTest, RunDrainsCompletely) {
  const PolicyKind kind = GetParam();
  // Every registered kind is valid at 2 hosts (the hybrids need >= 2 and
  // split 1+1); plan_point derives any cutoffs the kind requires.
  ExperimentConfig config;
  config.hosts = 2;
  config.n_jobs = 2000;
  // SITA-class derives its cutoffs from the capacity classes, so it needs
  // per-host speeds forming at least two classes; every other kind ignores
  // the field.
  config.host_speeds = {1.0, 2.0};
  const workload::WorkloadSpec& spec = workload::find_workload("c90");
  const Workbench bench(spec, config);
  const Workbench::PointPlan plan = bench.plan_point(kind, 0.7);
  const PolicyPtr policy = plan.make_policy();

  const workload::Trace trace =
      workload::make_trace(spec, 0.7, config.hosts, /*seed=*/11, 2000);
  sim::AuditConfig audit;
  audit.enabled = true;
  const RunResult result =
      simulate_audited(*policy, trace, config.hosts, audit, /*seed=*/11);

  EXPECT_EQ(result.events_pending, 0u) << to_string(kind);
  EXPECT_EQ(result.records.size(), trace.size()) << to_string(kind);
  ASSERT_TRUE(result.audit.has_value());
  EXPECT_TRUE(result.audit->ok()) << to_string(kind) << "\n"
                                  << result.audit->to_string();
  // The audit's finalize step asserts per-host queues drained and all jobs
  // completed; cross-check its counters against the trace.
  EXPECT_EQ(result.audit->arrivals, trace.size());
  EXPECT_EQ(result.audit->completions, trace.size());
  // And the offline validator agrees the records are self-consistent.
  EXPECT_TRUE(validate_run(result).empty()) << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredPolicies, DrainTest,
    ::testing::ValuesIn(all_policy_kinds().begin(), all_policy_kinds().end()),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+' || c == '/') c = '_';
      }
      return name;
    });

TEST(DrainTest, AuditedReplicationRunsCleanForEveryPolicy) {
  // The Workbench path: config.audit.enabled makes run_replication verify
  // every invariant and throw on violation — it must stay silent.
  ExperimentConfig config;
  config.hosts = 2;
  config.n_jobs = 1000;
  config.replications = 1;
  config.audit.enabled = true;
  // Two capacity classes (1x, 2x): SITA-class requires them, and running
  // every other policy on a heterogeneous pair exercises the speed-aware
  // audit arithmetic for free.
  config.host_speeds = {1.0, 2.0};
  const Workbench bench(workload::find_workload("c90"), config);
  for (PolicyKind kind : all_policy_kinds()) {
    const Workbench::PointPlan plan = bench.plan_point(kind, 0.7);
    EXPECT_NO_THROW((void)bench.run_replication(plan, 0)) << to_string(kind);
  }
}

}  // namespace
}  // namespace distserv::core
