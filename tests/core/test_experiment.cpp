#include "core/experiment.hpp"

#include <set>

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace distserv::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.hosts = 2;
  cfg.n_jobs = 16000;  // 8k train / 8k eval
  cfg.seed = 5;
  cfg.replications = 2;
  cfg.cutoff_grid = 150;
  return cfg;
}

TEST(Workbench, RunPointProducesAveragedSummaries) {
  Workbench wb(workload::find_workload("c90"), small_config());
  const ExperimentPoint p = wb.run_point(PolicyKind::kLeastWorkLeft, 0.5);
  EXPECT_EQ(p.policy, PolicyKind::kLeastWorkLeft);
  EXPECT_DOUBLE_EQ(p.rho, 0.5);
  EXPECT_EQ(p.replication_summaries.size(), 2u);
  EXPECT_GE(p.summary.mean_slowdown, 1.0);
  EXPECT_FALSE(p.has_cutoff);
}

TEST(Workbench, SitaPointsCarryCutoffMetadata) {
  Workbench wb(workload::find_workload("c90"), small_config());
  const ExperimentPoint e = wb.run_point(PolicyKind::kSitaE, 0.5);
  EXPECT_TRUE(e.has_cutoff);
  EXPECT_GT(e.cutoff, 0.0);
  EXPECT_DOUBLE_EQ(e.host1_load_fraction, 0.5);
  const ExperimentPoint u = wb.run_point(PolicyKind::kSitaUOpt, 0.5);
  EXPECT_TRUE(u.has_cutoff);
  EXPECT_LT(u.host1_load_fraction, 0.5);
  EXPECT_LT(u.cutoff, e.cutoff);
}

TEST(Workbench, ReproducibleAcrossInstances) {
  Workbench a(workload::find_workload("ctc"), small_config());
  Workbench b(workload::find_workload("ctc"), small_config());
  const auto pa = a.run_point(PolicyKind::kRandom, 0.6);
  const auto pb = b.run_point(PolicyKind::kRandom, 0.6);
  EXPECT_DOUBLE_EQ(pa.summary.mean_slowdown, pb.summary.mean_slowdown);
  EXPECT_DOUBLE_EQ(pa.summary.var_slowdown, pb.summary.var_slowdown);
}

TEST(Workbench, ConfidenceIntervalCoversTheMean) {
  Workbench wb(workload::find_workload("ctc"), small_config());
  const auto p = wb.run_point(PolicyKind::kLeastWorkLeft, 0.6);
  EXPECT_GT(p.slowdown_ci.half_width, 0.0);
  EXPECT_TRUE(p.slowdown_ci.contains(p.summary.mean_slowdown));
  EXPECT_NEAR(p.slowdown_ci.mean, p.summary.mean_slowdown, 1e-9);
}

TEST(Workbench, SingleReplicationHasDegenerateInterval) {
  ExperimentConfig cfg = small_config();
  cfg.replications = 1;
  Workbench wb(workload::find_workload("ctc"), cfg);
  const auto p = wb.run_point(PolicyKind::kRandom, 0.5);
  EXPECT_DOUBLE_EQ(p.slowdown_ci.lo, p.slowdown_ci.hi);
}

TEST(Workbench, ReplicationsDiffer) {
  Workbench wb(workload::find_workload("ctc"), small_config());
  const auto p = wb.run_point(PolicyKind::kRandom, 0.6);
  ASSERT_EQ(p.replication_summaries.size(), 2u);
  EXPECT_NE(p.replication_summaries[0].mean_slowdown,
            p.replication_summaries[1].mean_slowdown);
}

TEST(Workbench, SweepCoversCrossProduct) {
  Workbench wb(workload::find_workload("ctc"), small_config());
  const PolicyKind policies[] = {PolicyKind::kRandom,
                                 PolicyKind::kLeastWorkLeft};
  const double loads[] = {0.3, 0.6};
  const auto points = wb.sweep(policies, loads);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points[0].rho, 0.3);
  EXPECT_EQ(points[1].policy, PolicyKind::kLeastWorkLeft);
  EXPECT_DOUBLE_EQ(points[3].rho, 0.6);
}

TEST(Workbench, BurstyArrivalsRaiseSlowdownAtHighLoad) {
  ExperimentConfig poisson = small_config();
  ExperimentConfig bursty = small_config();
  bursty.arrivals = ArrivalKind::kBursty;
  Workbench wp(workload::find_workload("ctc"), poisson);
  Workbench wbst(workload::find_workload("ctc"), bursty);
  const double sp =
      wp.run_point(PolicyKind::kLeastWorkLeft, 0.8).summary.mean_slowdown;
  const double sb =
      wbst.run_point(PolicyKind::kLeastWorkLeft, 0.8).summary.mean_slowdown;
  EXPECT_GT(sb, sp);
}

TEST(Workbench, DiurnalArrivalsAlsoRaiseSlowdown) {
  ExperimentConfig poisson = small_config();
  ExperimentConfig diurnal = small_config();
  diurnal.arrivals = ArrivalKind::kDiurnal;
  diurnal.diurnal_amplitude = 0.9;
  // Period chosen so the trace spans several cycles.
  diurnal.diurnal_period = 20000.0;
  Workbench wp(workload::find_workload("ctc"), poisson);
  Workbench wd(workload::find_workload("ctc"), diurnal);
  const double sp =
      wp.run_point(PolicyKind::kLeastWorkLeft, 0.8).summary.mean_slowdown;
  const double sd =
      wd.run_point(PolicyKind::kLeastWorkLeft, 0.8).summary.mean_slowdown;
  EXPECT_GT(sd, sp);
}

TEST(Workbench, SitaUVariantsRequireTwoHosts) {
  ExperimentConfig cfg = small_config();
  cfg.hosts = 4;
  Workbench wb(workload::find_workload("c90"), cfg);
  EXPECT_THROW((void)wb.run_point(PolicyKind::kSitaUOpt, 0.5),
               ContractViolation);
  // The grouped hybrid variant is the supported many-host form.
  EXPECT_NO_THROW((void)wb.run_point(PolicyKind::kHybridSitaUOpt, 0.5));
}

TEST(Workbench, HybridGroupedPoliciesRunOnManyHosts) {
  ExperimentConfig cfg = small_config();
  cfg.hosts = 6;
  cfg.replications = 1;
  Workbench wb(workload::find_workload("c90"), cfg);
  for (PolicyKind kind : {PolicyKind::kHybridSitaE,
                          PolicyKind::kHybridSitaUFair}) {
    const auto p = wb.run_point(kind, 0.7);
    EXPECT_TRUE(p.has_cutoff);
    EXPECT_GE(p.summary.mean_slowdown, 1.0);
  }
}

TEST(Workbench, MultiCutoffSitaURunsOnFourHosts) {
  ExperimentConfig cfg = small_config();
  cfg.hosts = 4;
  cfg.replications = 1;
  Workbench wb(workload::find_workload("c90"), cfg);
  const auto sita_e = wb.run_point(PolicyKind::kSitaE, 0.7);
  const auto opt = wb.run_point(PolicyKind::kSitaUOptMulti, 0.7);
  const auto fair = wb.run_point(PolicyKind::kSitaUFairMulti, 0.7);
  EXPECT_TRUE(opt.has_cutoff);
  EXPECT_TRUE(fair.has_cutoff);
  // The true multi-cutoff policies beat SITA-E in simulation too.
  EXPECT_LT(opt.summary.mean_slowdown, sita_e.summary.mean_slowdown);
  EXPECT_LT(fair.summary.mean_slowdown, sita_e.summary.mean_slowdown);
}

TEST(Workbench, MisclassificationDegradesSita) {
  ExperimentConfig clean = small_config();
  ExperimentConfig noisy = small_config();
  noisy.sita_error_rate = 0.3;
  Workbench wc(workload::find_workload("c90"), clean);
  Workbench wn(workload::find_workload("c90"), noisy);
  const double sc =
      wc.run_point(PolicyKind::kSitaUFair, 0.7).summary.mean_slowdown;
  const double sn =
      wn.run_point(PolicyKind::kSitaUFair, 0.7).summary.mean_slowdown;
  EXPECT_GT(sn, sc);
}

TEST(Workbench, ValidatesLoadRange) {
  Workbench wb(workload::find_workload("ctc"), small_config());
  EXPECT_THROW((void)wb.run_point(PolicyKind::kRandom, 0.0),
               ContractViolation);
  EXPECT_THROW((void)wb.run_point(PolicyKind::kRandom, 1.0),
               ContractViolation);
}

TEST(PolicyKindNames, AllDistinct) {
  const PolicyKind all[] = {
      PolicyKind::kRandom,       PolicyKind::kRoundRobin,
      PolicyKind::kShortestQueue, PolicyKind::kLeastWorkLeft,
      PolicyKind::kCentralQueue, PolicyKind::kSitaE,
      PolicyKind::kSitaUOpt,     PolicyKind::kSitaUFair,
      PolicyKind::kSitaRuleOfThumb, PolicyKind::kHybridSitaE,
      PolicyKind::kHybridSitaUOpt, PolicyKind::kHybridSitaUFair,
      PolicyKind::kSitaUOptMulti, PolicyKind::kSitaUFairMulti,
      PolicyKind::kLeastLoaded2,  PolicyKind::kSitaClass};
  std::set<std::string> names;
  for (PolicyKind k : all) names.insert(to_string(k));
  EXPECT_EQ(names.size(), std::size(all));
}

TEST(PolicyRegistry, ListsEveryEnumeratorExactlyOnce) {
  const auto all = all_policy_kinds();
  EXPECT_EQ(all.size(), 16u);
  std::set<PolicyKind> distinct(all.begin(), all.end());
  EXPECT_EQ(distinct.size(), all.size());
  EXPECT_EQ(all.front(), PolicyKind::kRandom);
  EXPECT_EQ(all.back(), PolicyKind::kSitaClass);
}

TEST(PolicyRegistry, RoundTripsWithToStringForEveryEnumerator) {
  for (PolicyKind kind : all_policy_kinds()) {
    const auto resolved = policy_from_string(to_string(kind));
    ASSERT_TRUE(resolved.has_value()) << to_string(kind);
    EXPECT_EQ(*resolved, kind);
  }
}

TEST(PolicyRegistry, LookupIsCaseInsensitive) {
  EXPECT_EQ(policy_from_string("sita-u-fair"), PolicyKind::kSitaUFair);
  EXPECT_EQ(policy_from_string("LEAST-WORK-LEFT"),
            PolicyKind::kLeastWorkLeft);
  EXPECT_EQ(policy_from_string("rOuNd-RoBiN"), PolicyKind::kRoundRobin);
}

TEST(PolicyRegistry, RejectsUnknownNames) {
  EXPECT_EQ(policy_from_string(""), std::nullopt);
  EXPECT_EQ(policy_from_string("SITA"), std::nullopt);
  EXPECT_EQ(policy_from_string("Least-Work-Left "), std::nullopt);
  EXPECT_EQ(policy_from_string("nonsense"), std::nullopt);
}

TEST(PolicyRegistry, RegisteredNamesMatchEnumOrder) {
  const auto names = registered_policies();
  const auto all = all_policy_kinds();
  ASSERT_EQ(names.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(names[i], to_string(all[i]));
    EXPECT_EQ(policy_from_string(names[i]), all[i]);
  }
}

}  // namespace
}  // namespace distserv::core
