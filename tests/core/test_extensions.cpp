// Tests for the extension components: simulation-scored cutoff search,
// multi-cutoff SITA-U, noisy-estimate LWL, and power-of-d choices.
#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/noisy_lwl.hpp"
#include "core/policies/power_of_d.hpp"
#include "core/policies/random.hpp"
#include "core/server.hpp"
#include "core/sim_cutoff_search.hpp"
#include "queueing/cutoff_search.hpp"
#include "queueing/policy_analysis.hpp"
#include "util/contracts.hpp"
#include "workload/catalog.hpp"

namespace distserv::core {
namespace {

using workload::Trace;

queueing::MixtureSizeModel c90_model() {
  return queueing::MixtureSizeModel(
      workload::service_distribution(workload::find_workload("c90")));
}

// ---------------------------------------------------------------------------
// Simulation-scored cutoff search (the paper's "experimental" derivation).

TEST(SimCutoffSearch, AgreesWithAnalyticDerivation) {
  const auto sizes =
      workload::make_sizes(workload::find_workload("c90"), 7, 30000);
  const double rho = 0.7;
  const auto sim_opt = find_cutoff_by_simulation(
      sizes, rho, SimCutoffObjective::kMinMeanSlowdown, 24, 3);
  const auto sim_fair = find_cutoff_by_simulation(
      sizes, rho, SimCutoffObjective::kFairness, 24, 3);
  ASSERT_TRUE(sim_opt.feasible);
  ASSERT_TRUE(sim_fair.feasible);
  const queueing::EmpiricalSizeModel model(sizes);
  const double lambda = queueing::lambda_for_load(model, rho, 2);
  const auto ana_opt = queueing::find_sita_u_opt(model, lambda);
  const auto ana_fair = queueing::find_sita_u_fair(model, lambda);
  // "Both methods yielded about the same result" (paper sec 4.1): load
  // fractions within ~0.12 of each other.
  EXPECT_NEAR(sim_opt.host1_load_fraction, ana_opt.host1_load_fraction, 0.12);
  EXPECT_NEAR(sim_fair.host1_load_fraction, ana_fair.host1_load_fraction,
              0.12);
  // Both unbalance toward the short host.
  EXPECT_LT(sim_opt.host1_load_fraction, 0.5);
  EXPECT_LT(sim_fair.host1_load_fraction, 0.5);
}

TEST(SimCutoffSearch, ValidatesArguments) {
  const std::vector<double> sizes = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)find_cutoff_by_simulation(
                   sizes, 1.0, SimCutoffObjective::kFairness),
               ContractViolation);
  EXPECT_THROW((void)find_cutoff_by_simulation(
                   {}, 0.5, SimCutoffObjective::kFairness),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Multi-cutoff SITA-U.

TEST(MultiCutoff, OptBeatsSitaEAndGroupingAtFourHosts) {
  const auto model = c90_model();
  const double lambda = queueing::lambda_for_load(model, 0.7, 4);
  const auto opt = queueing::find_sita_u_opt_multi(model, lambda, 4);
  ASSERT_TRUE(opt.feasible);
  const auto sita_e = queueing::analyze_sita_e(model, lambda, 4);
  EXPECT_LT(opt.metrics.mean_slowdown, sita_e.mean_slowdown * 0.5);
  ASSERT_EQ(opt.cutoffs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(opt.cutoffs.begin(), opt.cutoffs.end()));
}

TEST(MultiCutoff, FairEqualizesAllHostSlowdowns) {
  const auto model = c90_model();
  for (std::size_t h : {2u, 4u, 8u}) {
    const double lambda = queueing::lambda_for_load(model, 0.7, h);
    const auto fair = queueing::find_sita_u_fair_multi(model, lambda, h);
    ASSERT_TRUE(fair.feasible) << h;
    const auto& hosts = fair.metrics.hosts;
    for (std::size_t i = 1; i < hosts.size(); ++i) {
      EXPECT_NEAR(hosts[i].mg1.mean_slowdown / hosts[0].mg1.mean_slowdown,
                  1.0, 0.02)
          << "h=" << h << " host " << i;
    }
  }
}

TEST(MultiCutoff, TwoHostCaseMatchesDedicatedSearch) {
  const auto model = c90_model();
  const double lambda = queueing::lambda_for_load(model, 0.6, 2);
  const auto multi = queueing::find_sita_u_fair_multi(model, lambda, 2);
  const auto direct = queueing::find_sita_u_fair(model, lambda, 400);
  ASSERT_TRUE(multi.feasible && direct.feasible);
  EXPECT_NEAR(multi.cutoffs[0] / direct.cutoff, 1.0, 0.05);
  EXPECT_NEAR(multi.metrics.mean_slowdown / direct.metrics.mean_slowdown,
              1.0, 0.05);
}

TEST(MultiCutoff, FairIsOnlyModeratelyWorseThanOpt) {
  const auto model = c90_model();
  const double lambda = queueing::lambda_for_load(model, 0.7, 4);
  const auto opt = queueing::find_sita_u_opt_multi(model, lambda, 4);
  const auto fair = queueing::find_sita_u_fair_multi(model, lambda, 4);
  ASSERT_TRUE(opt.feasible && fair.feasible);
  EXPECT_GE(fair.metrics.mean_slowdown,
            opt.metrics.mean_slowdown * (1.0 - 1e-9));
  EXPECT_LT(fair.metrics.mean_slowdown, opt.metrics.mean_slowdown * 5.0);
}

// ---------------------------------------------------------------------------
// Noisy LWL.

TEST(NoisyLwl, ZeroNoiseEqualsExactLwl) {
  const Trace trace = workload::make_trace(
      workload::find_workload("c90"), 0.7, 2, /*seed=*/9, 6000);
  NoisyLeastWorkLeftPolicy noisy(0.0);
  LeastWorkLeftPolicy exact;
  const RunResult a = simulate(noisy, trace, 2, 1);
  const RunResult b = simulate(exact, trace, 2, 1);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i].host, b.records[i].host);
  }
}

TEST(NoisyLwl, DegradesMonotonicallyInExpectation) {
  const Trace trace = workload::make_trace(
      workload::find_workload("c90"), 0.7, 2, /*seed=*/13, 30000);
  double exact = 0.0, heavy_noise = 0.0;
  {
    NoisyLeastWorkLeftPolicy p(0.0);
    exact = summarize(simulate(p, trace, 2, 3)).mean_slowdown;
  }
  {
    NoisyLeastWorkLeftPolicy p(3.0);
    heavy_noise = summarize(simulate(p, trace, 2, 3)).mean_slowdown;
  }
  EXPECT_GT(heavy_noise, exact);
  // Even infinite noise cannot be worse than Random in expectation (it
  // still sees idle hosts exactly); sanity-bound it.
  RandomPolicy random;
  const double rand_s = summarize(simulate(random, trace, 2, 3)).mean_slowdown;
  EXPECT_LT(heavy_noise, rand_s * 1.5);
}

TEST(NoisyLwl, ValidatesSigma) {
  EXPECT_THROW(NoisyLeastWorkLeftPolicy(-0.1), ContractViolation);
}

// ---------------------------------------------------------------------------
// Power of d choices.

TEST(PowerOfD, OneChoiceIsRandomLike) {
  const Trace trace = workload::make_trace(
      workload::find_workload("ctc"), 0.7, 8, /*seed=*/17, 20000);
  PowerOfDPolicy d1(1);
  RandomPolicy random;
  const double s1 = summarize(simulate(d1, trace, 8, 5)).mean_slowdown;
  const double sr = summarize(simulate(random, trace, 8, 5)).mean_slowdown;
  EXPECT_NEAR(s1 / sr, 1.0, 0.5);
}

TEST(PowerOfD, TwoChoicesBeatOne) {
  const Trace trace = workload::make_trace(
      workload::find_workload("ctc"), 0.8, 8, /*seed=*/19, 30000);
  PowerOfDPolicy d1(1);
  PowerOfDPolicy d2(2);
  const double s1 = summarize(simulate(d1, trace, 8, 5)).mean_slowdown;
  const double s2 = summarize(simulate(d2, trace, 8, 5)).mean_slowdown;
  EXPECT_LT(s2, s1);
}

TEST(PowerOfD, FullProbingEqualsLwlBehaviorally) {
  const Trace trace = workload::make_trace(
      workload::find_workload("ctc"), 0.7, 4, /*seed=*/23, 20000);
  PowerOfDPolicy all(4);
  LeastWorkLeftPolicy lwl;
  const double sa = summarize(simulate(all, trace, 4, 5)).mean_slowdown;
  const double sl = summarize(simulate(lwl, trace, 4, 5)).mean_slowdown;
  EXPECT_NEAR(sa / sl, 1.0, 0.25);
}

TEST(PowerOfD, QueueCriterionWorksToo) {
  const Trace trace = workload::make_trace(
      workload::find_workload("ctc"), 0.7, 4, /*seed=*/29, 10000);
  PowerOfDPolicy p(2, PowerOfDPolicy::Criterion::kQueueLength);
  const RunResult r = simulate(p, trace, 4, 5);
  EXPECT_EQ(r.records.size(), 10000u);
  EXPECT_GE(summarize(r).mean_slowdown, 1.0);
}

TEST(PowerOfD, ValidatesD) {
  EXPECT_THROW(PowerOfDPolicy(0), ContractViolation);
}

}  // namespace
}  // namespace distserv::core
