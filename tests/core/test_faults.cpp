// Host failure model: FaultProcess determinism and validation, recovery
// mode parsing, per-policy masking of down hosts, and hand-computed
// single-host recovery scenarios (one per RecoveryMode).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/metrics.hpp"
#include "core/policies/central_queue.hpp"
#include "core/policies/hybrid_sita_lwl.hpp"
#include "core/policies/least_work_left.hpp"
#include "core/policies/noisy_lwl.hpp"
#include "core/policies/power_of_d.hpp"
#include "core/policies/random.hpp"
#include "core/policies/round_robin.hpp"
#include "core/policies/shortest_queue.hpp"
#include "core/policies/sita.hpp"
#include "core/recovery.hpp"
#include "core/server.hpp"
#include "sim/faults.hpp"
#include "util/contracts.hpp"
#include "workload/arrival.hpp"
#include "workload/trace.hpp"

namespace distserv::core {
namespace {

using workload::Job;

// ---------------------------------------------------------------- faults --

sim::FaultConfig renewal_config(double mtbf, double mttr) {
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.mtbf = mtbf;
  cfg.mttr = mttr;
  return cfg;
}

TEST(FaultProcess, DeterministicPerSeed) {
  const sim::FaultConfig cfg = renewal_config(100.0, 10.0);
  sim::FaultProcess a(cfg, 4, 42);
  sim::FaultProcess b(cfg, 4, 42);
  for (std::uint32_t host = 0; host < 4; ++host) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(a.next_uptime(host), b.next_uptime(host));
      EXPECT_EQ(a.next_downtime(host), b.next_downtime(host));
    }
  }
}

TEST(FaultProcess, HostStreamsAreIndependent) {
  const sim::FaultConfig cfg = renewal_config(100.0, 10.0);
  sim::FaultProcess p(cfg, 2, 42);
  // Drawing from host 0 must not perturb host 1's stream.
  sim::FaultProcess q(cfg, 2, 42);
  for (int i = 0; i < 20; ++i) (void)q.next_uptime(0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.next_uptime(1), q.next_uptime(1));
  }
}

TEST(FaultProcess, DrawsArePositiveWithRoughlyTheConfiguredMean) {
  const sim::FaultConfig cfg = renewal_config(100.0, 10.0);
  sim::FaultProcess p(cfg, 1, 7);
  double up_sum = 0.0, down_sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double up = p.next_uptime(0);
    const double down = p.next_downtime(0);
    ASSERT_GT(up, 0.0);
    ASSERT_GT(down, 0.0);
    up_sum += up;
    down_sum += down;
  }
  EXPECT_NEAR(up_sum / n, 100.0, 3.0);
  EXPECT_NEAR(down_sum / n, 10.0, 0.3);
}

TEST(FaultProcess, DeterministicDistributionReturnsTheMeanExactly) {
  sim::FaultConfig cfg = renewal_config(100.0, 10.0);
  cfg.uptime_dist = sim::FaultTimeDist::kDeterministic;
  cfg.downtime_dist = sim::FaultTimeDist::kDeterministic;
  sim::FaultProcess p(cfg, 1, 7);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(p.next_uptime(0), 100.0);
    EXPECT_DOUBLE_EQ(p.next_downtime(0), 10.0);
  }
}

TEST(FaultProcess, ValidatesItsConfig) {
  EXPECT_THROW(sim::FaultProcess(renewal_config(-1.0, 10.0), 2, 1),
               ContractViolation);
  EXPECT_THROW(sim::FaultProcess(renewal_config(100.0, 0.0), 2, 1),
               ContractViolation);
  sim::FaultConfig bad_host;
  bad_host.enabled = true;
  bad_host.outages.push_back({/*host=*/5, /*at=*/1.0, /*duration=*/1.0});
  EXPECT_THROW(sim::FaultProcess(bad_host, 2, 1), ContractViolation);
  sim::FaultConfig bad_duration;
  bad_duration.enabled = true;
  bad_duration.outages.push_back({0, 1.0, 0.0});
  EXPECT_THROW(sim::FaultProcess(bad_duration, 2, 1),
               ContractViolation);
}

TEST(FaultConfig, AvailabilityFormula) {
  EXPECT_DOUBLE_EQ(sim::FaultConfig{}.availability(), 1.0);
  EXPECT_DOUBLE_EQ(renewal_config(90.0, 10.0).availability(), 0.9);
}

// -------------------------------------------------------------- recovery --

TEST(RecoveryMode, StringRoundTrip) {
  for (RecoveryMode mode : all_recovery_modes()) {
    const auto parsed = recovery_from_string(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(recovery_from_string("Requeue-Front"),
            RecoveryMode::kRequeueFront);  // case-insensitive
  EXPECT_FALSE(recovery_from_string("retry-twice").has_value());
  EXPECT_EQ(registered_recovery_modes().size(), all_recovery_modes().size());
}

// --------------------------------------------------------------- masking --

/// Scriptable view with per-host up/down state: tests script the vectors
/// and hosts() projects them into an observed-semantics table on each read.
class FaultStubView final : public ServerView {
 public:
  explicit FaultStubView(std::size_t hosts)
      : lens_(hosts, 0), work_(hosts, 0.0), up_(hosts, true) {
    table_.reset(hosts, HostStateTable::Semantics::kObserved);
  }

  const HostStateTable& hosts() const override {
    for (HostId h = 0; h < lens_.size(); ++h) {
      table_.set_up(h, up_[h]);
      table_.set_observation(h, static_cast<std::uint32_t>(lens_[h]),
                             work_[h], lens_[h] == 0 && work_[h] == 0.0,
                             /*at=*/0.0);
    }
    return table_;
  }
  double now() const override { return 0.0; }

  std::vector<std::size_t> lens_;
  std::vector<double> work_;
  std::vector<bool> up_;

 private:
  mutable HostStateTable table_;
};

Job job(double size) { return Job{0, 0.0, size}; }

TEST(FaultMasking, RandomNeverPicksADownHost) {
  RandomPolicy p;
  p.reset(4, 42);
  FaultStubView view(4);
  view.up_ = {true, false, true, false};
  for (int i = 0; i < 2000; ++i) {
    const auto h = p.assign(job(1.0), view);
    ASSERT_TRUE(h.has_value());
    EXPECT_TRUE(*h == 0 || *h == 2);
  }
  view.up_ = {false, false, false, false};
  EXPECT_FALSE(p.assign(job(1.0), view).has_value());
}

TEST(FaultMasking, RoundRobinSkipsDownHosts) {
  RoundRobinPolicy p;
  p.reset(3, 0);
  FaultStubView view(3);
  view.up_ = {true, false, true};
  EXPECT_EQ(*p.assign(job(1.0), view), 0u);
  EXPECT_EQ(*p.assign(job(1.0), view), 2u);  // 1 is down
  EXPECT_EQ(*p.assign(job(1.0), view), 0u);
  view.up_ = {false, false, false};
  EXPECT_FALSE(p.assign(job(1.0), view).has_value());
}

TEST(FaultMasking, ShortestQueueAndLeastWorkSkipDownHosts) {
  ShortestQueuePolicy sq;
  LeastWorkLeftPolicy lwl;
  FaultStubView view(3);
  view.lens_ = {5, 0, 2};
  view.work_ = {50.0, 0.0, 20.0};
  view.up_ = {true, false, true};  // host 1 would win both
  EXPECT_EQ(*sq.assign(job(1.0), view), 2u);
  EXPECT_EQ(*lwl.assign(job(1.0), view), 2u);
  view.up_ = {false, false, false};
  EXPECT_FALSE(sq.assign(job(1.0), view).has_value());
  EXPECT_FALSE(lwl.assign(job(1.0), view).has_value());
}

TEST(FaultMasking, PowerOfDProbesOnlyUpHosts) {
  PowerOfDPolicy p(2);
  p.reset(4, 9);
  FaultStubView view(4);
  view.up_ = {false, true, false, true};
  for (int i = 0; i < 500; ++i) {
    const auto h = p.assign(job(1.0), view);
    ASSERT_TRUE(h.has_value());
    EXPECT_TRUE(*h == 1 || *h == 3);
  }
  view.up_ = {false, false, false, false};
  EXPECT_FALSE(p.assign(job(1.0), view).has_value());
}

TEST(FaultMasking, NoisyLwlSkipsDownHosts) {
  NoisyLeastWorkLeftPolicy p(/*sigma=*/2.0);
  p.reset(3, 11);
  FaultStubView view(3);
  view.work_ = {0.0, 100.0, 100.0};
  view.up_ = {false, true, true};
  for (int i = 0; i < 200; ++i) {
    const auto h = p.assign(job(1.0), view);
    ASSERT_TRUE(h.has_value());
    EXPECT_NE(*h, 0u);
  }
}

TEST(FaultMasking, SitaRemapsDeadRangeToNearestLiveNeighbor) {
  SitaPolicy p({10.0, 100.0}, "SITA-test");
  p.reset(3, 1);
  FaultStubView view(3);
  // Host 1 (sizes in (10, 100]) down: its jobs go to the nearest live
  // neighbor; ties prefer the smaller-size side.
  view.up_ = {true, false, true};
  EXPECT_EQ(*p.assign(job(50.0), view), 0u);
  EXPECT_EQ(*p.assign(job(5.0), view), 0u);    // own host, untouched
  EXPECT_EQ(*p.assign(job(500.0), view), 2u);  // own host, untouched
  view.up_ = {false, false, true};
  EXPECT_EQ(*p.assign(job(5.0), view), 2u);  // both lower hosts dead
  view.up_ = {false, false, false};
  EXPECT_FALSE(p.assign(job(50.0), view).has_value());
}

TEST(FaultMasking, HybridFallsBackToTheOtherGroup) {
  HybridSitaLwlPolicy p(/*cutoff=*/10.0, /*short_hosts=*/2, "hybrid-test");
  p.reset(4, 1);
  FaultStubView view(4);
  view.up_ = {false, false, true, true};  // whole short group down
  EXPECT_EQ(*p.assign(job(1.0), view), 2u);
  view.up_ = {false, false, false, false};
  EXPECT_FALSE(p.assign(job(1.0), view).has_value());
}

TEST(FaultMasking, CentralQueueStillDeclines) {
  CentralQueuePolicy p;
  FaultStubView view(2);
  view.up_ = {false, false};
  EXPECT_FALSE(p.assign(job(1.0), view).has_value());
}

// ------------------------------------------------- recovery end-to-end ---

/// One host, one job of size 10 arriving at t=0, one scheduled outage at
/// t=4 for 3 time units. Everything below is checkable by hand.
RunResult outage_run(RecoveryMode recovery) {
  std::vector<Job> jobs = {Job{0, 0.0, 10.0}};
  const workload::Trace trace(std::move(jobs));
  sim::FaultConfig faults;
  faults.enabled = true;
  faults.outages.push_back({/*host=*/0, /*at=*/4.0, /*duration=*/3.0});
  RoundRobinPolicy policy;
  return simulate_with_faults(policy, trace, /*hosts=*/1, faults, recovery);
}

TEST(Recovery, ResubmitRestartsAfterRepair) {
  const RunResult r = outage_run(RecoveryMode::kResubmit);
  ASSERT_EQ(r.records.size(), 1u);
  const JobRecord& rec = r.records[0];
  EXPECT_FALSE(rec.failed);
  EXPECT_DOUBLE_EQ(rec.start, 7.0);       // restarted at repair time
  EXPECT_DOUBLE_EQ(rec.completion, 17.0);  // full size again (fail-stop)
  EXPECT_EQ(rec.restarts, 1u);
  EXPECT_EQ(r.interruptions, 1u);
  EXPECT_EQ(r.jobs_failed, 0u);
  const HostStats& hs = r.host_stats[0];
  EXPECT_DOUBLE_EQ(hs.busy_time, 14.0);  // 4 wasted + 10 completed
  EXPECT_DOUBLE_EQ(hs.wasted_work, 4.0);
  EXPECT_DOUBLE_EQ(hs.work_done, 10.0);
  EXPECT_DOUBLE_EQ(hs.down_time, 3.0);
  EXPECT_EQ(hs.failures, 1u);
  EXPECT_EQ(hs.jobs_interrupted, 1u);
  EXPECT_TRUE(validate_run(r).empty())
      << validate_run(r).front();
}

TEST(Recovery, RequeueFrontRestartsOnTheSameHost) {
  const RunResult r = outage_run(RecoveryMode::kRequeueFront);
  ASSERT_EQ(r.records.size(), 1u);
  const JobRecord& rec = r.records[0];
  EXPECT_FALSE(rec.failed);
  EXPECT_DOUBLE_EQ(rec.start, 7.0);
  EXPECT_DOUBLE_EQ(rec.completion, 17.0);
  EXPECT_EQ(rec.restarts, 1u);
  EXPECT_EQ(rec.host, 0u);
  EXPECT_TRUE(validate_run(r).empty())
      << validate_run(r).front();
}

TEST(Recovery, AbandonDropsTheJobAtTheFailure) {
  const RunResult r = outage_run(RecoveryMode::kAbandon);
  ASSERT_EQ(r.records.size(), 1u);
  const JobRecord& rec = r.records[0];
  EXPECT_TRUE(rec.failed);
  EXPECT_DOUBLE_EQ(rec.start, 0.0);
  EXPECT_DOUBLE_EQ(rec.completion, 4.0);  // abandonment time
  EXPECT_EQ(r.jobs_failed, 1u);
  EXPECT_EQ(r.interruptions, 1u);
  const HostStats& hs = r.host_stats[0];
  EXPECT_DOUBLE_EQ(hs.busy_time, 4.0);
  EXPECT_DOUBLE_EQ(hs.wasted_work, 4.0);
  EXPECT_DOUBLE_EQ(hs.work_done, 0.0);
  EXPECT_EQ(hs.jobs_completed, 0u);
  EXPECT_TRUE(validate_run(r).empty())
      << validate_run(r).front();
  const MetricsSummary m = summarize(r);
  EXPECT_EQ(m.jobs, 0u);
  EXPECT_EQ(m.jobs_failed, 1u);
}

TEST(Recovery, QueuedJobsSurviveAFailureUntouched) {
  // Two jobs; the second is queued when the host fails, keeps its place,
  // and runs after the interrupted first job (resubmit puts the first at
  // the *back* via central routing, so the queued one goes first).
  std::vector<Job> jobs = {Job{0, 0.0, 10.0}, Job{1, 1.0, 2.0}};
  const workload::Trace trace(std::move(jobs));
  sim::FaultConfig faults;
  faults.enabled = true;
  faults.outages.push_back({0, 4.0, 3.0});
  RoundRobinPolicy policy;
  const RunResult r = simulate_with_faults(policy, trace, 1, faults,
                                           RecoveryMode::kRequeueFront);
  ASSERT_EQ(r.records.size(), 2u);
  // Requeue-front: the interrupted job restarts first at t=7, then the
  // queued job follows at t=17.
  EXPECT_DOUBLE_EQ(r.records[0].start, 7.0);
  EXPECT_DOUBLE_EQ(r.records[0].completion, 17.0);
  EXPECT_DOUBLE_EQ(r.records[1].start, 17.0);
  EXPECT_DOUBLE_EQ(r.records[1].completion, 19.0);
  EXPECT_TRUE(validate_run(r).empty()) << validate_run(r).front();
}

TEST(Faults, InvalidConfigThrowsAtRun) {
  std::vector<Job> jobs = {Job{0, 0.0, 1.0}};
  const workload::Trace trace(std::move(jobs));
  RoundRobinPolicy policy;
  DistributedServer server(1, policy);
  sim::FaultConfig bad = renewal_config(100.0, 0.0);  // mttr must be > 0
  server.enable_faults(bad);
  EXPECT_THROW((void)server.run(trace), ContractViolation);
}

TEST(Recovery, RoundRobinRotationStaysFairAcrossAFailRecoverCycle) {
  // Twelve well-spaced small jobs on three hosts; host 1 is down while
  // idle for the middle third. The rotation must skip host 1 while it is
  // down and slot it back into its normal turn once it recovers — no
  // permanent skew toward the hosts that covered for it.
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < 12; ++i) {
    jobs.push_back(Job{i, static_cast<double>(i), 0.5});
  }
  const workload::Trace trace(std::move(jobs));
  sim::FaultConfig faults;
  faults.enabled = true;
  faults.outages.push_back({/*host=*/1, /*at=*/2.5, /*duration=*/4.0});
  RoundRobinPolicy policy;
  const RunResult r = simulate_with_faults(policy, trace, /*hosts=*/3,
                                           faults, RecoveryMode::kResubmit);
  ASSERT_EQ(r.records.size(), 12u);
  // Hand-traced wheel: 0,1,2 | skip-1 era: 0,2,0,2 | host 1 back at t=6.5,
  // scan resumes from the last dispatch (host 2): 0,1,2,0,1.
  const std::vector<HostId> expected = {0, 1, 2, 0, 2, 0, 2, 0, 1, 2, 0, 1};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.records[i].host, expected[i]) << "job " << i;
  }
  EXPECT_EQ(r.interruptions, 0u);  // host 1 was idle when it failed
  // Post-recovery fairness: the last rotation covers every host equally.
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t i = 7; i < 12; ++i) ++counts[r.records[i].host];
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_TRUE(validate_run(r).empty()) << validate_run(r).front();
}

TEST(Recovery, RequeueFrontSurvivesASecondOutageMidRestart) {
  // The restarted job is interrupted again before it can finish: size 10
  // starting at t=0, outage at t=4 (repair t=7), restart at t=7, second
  // outage at t=9 (repair t=11), final restart at t=11 -> completes t=21.
  std::vector<Job> jobs = {Job{0, 0.0, 10.0}};
  const workload::Trace trace(std::move(jobs));
  sim::FaultConfig faults;
  faults.enabled = true;
  faults.outages.push_back({/*host=*/0, /*at=*/4.0, /*duration=*/3.0});
  faults.outages.push_back({/*host=*/0, /*at=*/9.0, /*duration=*/2.0});
  RoundRobinPolicy policy;
  const RunResult r = simulate_with_faults(policy, trace, /*hosts=*/1,
                                           faults,
                                           RecoveryMode::kRequeueFront);
  ASSERT_EQ(r.records.size(), 1u);
  const JobRecord& rec = r.records[0];
  EXPECT_FALSE(rec.failed);
  EXPECT_EQ(rec.host, 0u);
  EXPECT_DOUBLE_EQ(rec.start, 11.0);
  EXPECT_DOUBLE_EQ(rec.completion, 21.0);
  EXPECT_EQ(rec.restarts, 2u);
  EXPECT_EQ(r.interruptions, 2u);
  const HostStats& hs = r.host_stats[0];
  EXPECT_DOUBLE_EQ(hs.wasted_work, 6.0);  // 4 lost at t=4, 2 lost at t=9
  EXPECT_DOUBLE_EQ(hs.busy_time, 16.0);
  EXPECT_DOUBLE_EQ(hs.work_done, 10.0);
  EXPECT_DOUBLE_EQ(hs.down_time, 5.0);
  EXPECT_EQ(hs.failures, 2u);
  EXPECT_EQ(hs.jobs_interrupted, 2u);
  EXPECT_TRUE(validate_run(r).empty()) << validate_run(r).front();
}

TEST(Recovery, AbandonSatisfiesAuditConservationAtDrain) {
  // Job 0 is abandoned by the outage while job 1 waits in the queue; the
  // audit layer's job-conservation invariant must accept the abandonment
  // as a terminal state and still account for the queued survivor.
  std::vector<Job> jobs = {Job{0, 0.0, 10.0}, Job{1, 1.0, 2.0}};
  const workload::Trace trace(std::move(jobs));
  sim::FaultConfig faults;
  faults.enabled = true;
  faults.outages.push_back({/*host=*/0, /*at=*/4.0, /*duration=*/3.0});
  RoundRobinPolicy policy;
  DistributedServer server(/*hosts=*/1, policy);
  server.enable_faults(faults, RecoveryMode::kAbandon);
  sim::AuditConfig audit;
  audit.enabled = true;
  server.enable_audit(audit);
  const RunResult r = server.run(trace);
  ASSERT_TRUE(r.audit.has_value());
  EXPECT_TRUE(r.audit->ok()) << r.audit->to_string();
  EXPECT_EQ(r.audit->arrivals, 2u);
  EXPECT_EQ(r.audit->abandoned, 1u);
  EXPECT_EQ(r.audit->completions, 1u);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_TRUE(r.records[0].failed);
  EXPECT_DOUBLE_EQ(r.records[0].completion, 4.0);
  EXPECT_FALSE(r.records[1].failed);
  EXPECT_DOUBLE_EQ(r.records[1].start, 7.0);
  EXPECT_DOUBLE_EQ(r.records[1].completion, 9.0);
  EXPECT_EQ(r.jobs_failed, 1u);
  EXPECT_TRUE(validate_run(r).empty()) << validate_run(r).front();
}

TEST(Faults, DisabledConfigIsIdenticalToNoFaultCall) {
  std::vector<double> sizes;
  dist::Rng rng(5);
  for (int i = 0; i < 300; ++i) sizes.push_back(rng.uniform(1.0, 20.0));
  workload::PoissonArrivals arrivals(0.2);
  const workload::Trace trace =
      workload::Trace::with_arrivals(sizes, arrivals, rng);

  RandomPolicy a, b;
  const RunResult plain = simulate(a, trace, 3, /*seed=*/11);
  DistributedServer server(3, b);
  server.enable_faults(sim::FaultConfig{});  // enabled = false
  const RunResult gated = server.run(trace, /*seed=*/11);
  ASSERT_EQ(plain.records.size(), gated.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_EQ(plain.records[i].host, gated.records[i].host);
    EXPECT_DOUBLE_EQ(plain.records[i].start, gated.records[i].start);
    EXPECT_DOUBLE_EQ(plain.records[i].completion,
                     gated.records[i].completion);
  }
}

}  // namespace
}  // namespace distserv::core
